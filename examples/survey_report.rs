//! Compile and print the full survey report: center selection, Tables I
//! and II, the Figure 1 interaction matrix, the Figure 2 map, the
//! cross-site analysis, and every site's Q1–Q8 responses.
//!
//! ```sh
//! cargo run --release --example survey_report           # full week per site
//! cargo run --example survey_report -- --fast           # 8 h per site
//! ```

use epa_jsrm::prelude::*;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let configs = epa_jsrm::sites::all_sites(2026)
        .into_iter()
        .map(|mut s| {
            if fast {
                s.horizon = SimTime::from_hours(8.0);
            }
            s
        })
        .collect();
    let survey = SurveyReport::compile(configs);
    println!("{}", survey.render_full());
}
