//! Per-user energy billing at LRZ prices: run a site week, attribute
//! every joule to its submitting user, price it, and grade it — the
//! user-facing half of EPA JSRM (Tokyo Tech's marks, JCAHPC's post-job
//! reports, STFC's reporting tool, LRZ's cost pressure).
//!
//! ```sh
//! cargo run --release --example user_billing
//! ```

use epa_jsrm::prelude::*;
use epa_jsrm::survey::billing::bill_users;
use epa_jsrm::workload::generator::WorkloadGenerator;
use std::collections::BTreeMap;

fn main() {
    let mut site = epa_jsrm::sites::centers::lrz::config(3);
    site.horizon = SimTime::from_days(2.0);
    // Regenerate the same jobs the runner will use, to map jobs → users.
    let jobs = WorkloadGenerator::new(site.workload.clone()).generate(site.horizon, 0);
    let user_of: BTreeMap<u64, u32> = jobs.iter().map(|j| (j.id.0, j.user)).collect();
    let report = run_site(&site);

    let price = site.facility.supplies[0].cost_per_mwh;
    let bill = bill_users(
        &report.outcome,
        &user_of,
        site.system.node.nominal_watts,
        price,
    );
    println!(
        "LRZ, 2 simulated days, {} jobs completed — top-10 users by energy:\n",
        report.outcome.completed
    );
    println!("{}", bill.render(10));
    println!("efficiency-mark totals: {:?}", bill.mark_totals());
}
