//! Per-user energy billing at LRZ prices: run a site week, attribute
//! every joule to its submitting user, price it, and grade it — the
//! user-facing half of EPA JSRM (Tokyo Tech's marks, JCAHPC's post-job
//! reports, STFC's reporting tool, LRZ's cost pressure).
//!
//! Pricing is time-of-day: the site's diurnal tariff (an `epa-grid`
//! price trace) is integrated against the run's power trace, and the
//! bill uses the resulting energy-weighted effective rate — running the
//! same jobs at night is cheaper than at the evening peak.
//!
//! ```sh
//! cargo run --release --example user_billing
//! ```

use epa_jsrm::grid::GridTrace;
use epa_jsrm::prelude::*;
use epa_jsrm::survey::billing::bill_users;
use epa_jsrm::workload::generator::WorkloadGenerator;
use std::collections::BTreeMap;

fn main() {
    let mut site = epa_jsrm::sites::centers::lrz::config(3);
    site.horizon = SimTime::from_days(2.0);
    // Regenerate the same jobs the runner will use, to map jobs → users.
    let jobs = WorkloadGenerator::new(site.workload.clone()).generate(site.horizon, 0);
    let user_of: BTreeMap<u64, u32> = jobs.iter().map(|j| (j.id.0, j.user)).collect();
    let report = run_site(&site);

    // The flat contract rate swings ±35% over the day (LRZ local time).
    let base_price = site.facility.supplies[0].cost_per_mwh;
    let tariff = GridTrace::synthetic_price(base_price, 0.35, 2, site.meta.lon / 15.0, 3);

    // Energy-weighted effective rate: integrate tariff × power over the
    // run's power trace, divide by the energy.
    let (mut weighted, mut energy) = (0.0f64, 0.0f64);
    for w in report.outcome.power_trace.windows(2) {
        let (t, watts) = w[0];
        let dt = w[1].0 - t;
        let joules = watts * dt;
        weighted += joules * tariff.value_at(SimTime::from_secs(t));
        energy += joules;
    }
    let effective_price = if energy > 0.0 {
        weighted / energy
    } else {
        base_price
    };

    let bill = bill_users(
        &report.outcome,
        &user_of,
        site.system.node.nominal_watts,
        effective_price,
    );
    println!(
        "LRZ, 2 simulated days, {} jobs completed — top-10 users by energy:\n",
        report.outcome.completed
    );
    println!("{}", bill.render(10));
    println!(
        "time-of-day tariff: base {base_price:.0}/MWh, energy-weighted effective {:.2}/MWh",
        effective_price
    );
    println!("efficiency-mark totals: {:?}", bill.mark_totals());
}
