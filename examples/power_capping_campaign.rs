//! Power-capping campaign: sweep a system power budget and watch the
//! throughput / energy trade-off — the experiment every surveyed site ran
//! before committing to production capping (KAUST's 270 W policy,
//! Trinity's admin caps).
//!
//! ```sh
//! cargo run --example power_capping_campaign
//! ```

use epa_jsrm::prelude::*;

fn main() {
    let nodes = 128u32;
    let spec = {
        use epa_jsrm::cluster::node::NodeSpec;
        use epa_jsrm::cluster::topology::Topology;
        SystemSpec {
            name: "capping-campaign".into(),
            cabinets: 8,
            nodes_per_cabinet: 16,
            node: NodeSpec::typical_xeon(),
            topology: Topology::Dragonfly {
                nodes_per_router: 4,
                routers_per_group: 8,
            },
            peak_tflops: 100.0,
        }
    };
    let horizon = SimTime::from_days(2.0);
    let jobs = WorkloadGenerator::new(WorkloadParams::typical(nodes, 7)).generate(horizon, 0);
    let nominal = spec.nominal_watts();

    println!(
        "power-capping campaign: {nodes} nodes, nominal {:.0} kW, {} jobs\n",
        nominal / 1e3,
        jobs.len()
    );
    println!(
        "{:>9} {:>10} {:>8} {:>12} {:>10} {:>12}",
        "budget %", "completed", "util %", "wait min", "peak kW", "energy MWh"
    );
    for frac in [1.0, 0.9, 0.8, 0.7, 0.6] {
        let mut config = EngineConfig::new(horizon);
        config.power_budget_watts = Some(nominal * frac);
        let mut policy = PowerAwareBackfill::default();
        let out = ClusterSim::new(spec.clone().build(), jobs.clone(), &mut policy, config).run();
        println!(
            "{:>9.0} {:>10} {:>8.1} {:>12.1} {:>10.1} {:>12.2}",
            frac * 100.0,
            out.completed,
            100.0 * out.utilization,
            out.mean_wait_secs / 60.0,
            out.peak_watts / 1e3,
            out.energy_joules / 3.6e9
        );
        assert!(
            out.peak_watts <= nominal * frac * 1.02 + spec.idle_watts(),
            "cap grossly violated"
        );
    }
    println!("\nThe cap binds: peak power tracks the budget while throughput degrades gracefully.");
}
