//! Quickstart: build a machine, generate a workload, run two schedulers,
//! and compare them — the five-minute tour of the framework.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use epa_jsrm::cluster::node::NodeSpec;
use epa_jsrm::cluster::topology::Topology;
use epa_jsrm::prelude::*;

fn main() {
    // 1. Describe a machine: 8 cabinets × 16 Xeon nodes on a fat-tree.
    let spec = SystemSpec {
        name: "quickstart-cluster".into(),
        cabinets: 8,
        nodes_per_cabinet: 16,
        node: NodeSpec::typical_xeon(),
        topology: Topology::FatTree { arity: 16 },
        peak_tflops: 100.0,
    };
    println!(
        "machine: {} nodes, {} cores, idle {:.0} kW, peak {:.0} kW",
        spec.total_nodes(),
        spec.total_cores(),
        spec.idle_watts() / 1e3,
        spec.peak_watts() / 1e3
    );

    // 2. Generate two simulated days of a typical HPC workload.
    let horizon = SimTime::from_days(2.0);
    let params = WorkloadParams::typical(spec.total_nodes(), 42);
    let jobs = WorkloadGenerator::new(params).generate(horizon, 0);
    println!("workload: {} jobs over {}", jobs.len(), horizon);

    // 3. Run the same workload under FCFS and under EASY backfilling.
    for (name, run) in [
        (
            "fcfs",
            run_policy(&spec, &jobs, horizon, PolicyChoice::Fcfs),
        ),
        (
            "easy",
            run_policy(&spec, &jobs, horizon, PolicyChoice::Easy),
        ),
    ] {
        println!(
            "{name:>5}: {} completed | utilization {:.1}% | mean wait {:.1} min | energy {:.2} MWh",
            run.completed,
            100.0 * run.utilization,
            run.mean_wait_secs / 60.0,
            run.energy_joules / 3.6e9
        );
    }
}

enum PolicyChoice {
    Fcfs,
    Easy,
}

fn run_policy(
    spec: &SystemSpec,
    jobs: &[Job],
    horizon: SimTime,
    choice: PolicyChoice,
) -> SimOutcome {
    let config = EngineConfig::new(horizon);
    let mut fcfs = Fcfs;
    let mut easy = EasyBackfill;
    let policy: &mut dyn Policy = match choice {
        PolicyChoice::Fcfs => &mut fcfs,
        PolicyChoice::Easy => &mut easy,
    };
    ClusterSim::new(spec.clone().build(), jobs.to_vec(), policy, config).run()
}
