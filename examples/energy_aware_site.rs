//! Energy-aware scheduling at LRZ: the administrator flips the site goal
//! between "best performance" and "energy to solution" (Table I, LRZ
//! production row) and compares a simulated week under each.
//!
//! ```sh
//! cargo run --example energy_aware_site
//! ```

use epa_jsrm::prelude::*;
use epa_jsrm::sites::config::PolicyKind;

fn main() {
    println!("LRZ: administrator-selected scheduling goal (Table I, production row)\n");
    let mut results = Vec::new();
    for (label, energy_goal) in [("performance", false), ("energy-to-solution", true)] {
        let mut site = epa_jsrm::sites::centers::lrz::config(11);
        site.horizon = SimTime::from_days(3.0);
        site.policy = PolicyKind::EnergyAware { energy_goal };
        let report = run_site(&site);
        println!(
            "{label:>19}: {} jobs | {:.2} MWh | {:.1} kWh/job | util {:.1}% | mean wait {:.1} min",
            report.outcome.completed,
            report.outcome.energy_joules / 3.6e9,
            report.outcome.energy_per_job_joules / 3.6e6,
            100.0 * report.outcome.utilization,
            report.outcome.mean_wait_secs / 60.0
        );
        results.push((label, report.outcome));
    }
    let perf = &results[0].1;
    let energy = &results[1].1;
    let saving = 100.0 * (perf.energy_per_job_joules - energy.energy_per_job_joules)
        / perf.energy_per_job_joules;
    println!(
        "\nenergy-to-solution saves {saving:.1}% energy per job — the trade LRZ's LoadLeveler \
         makes when the administrator selects the energy goal."
    );
}
