//! Emergency power response at RIKEN: inject a shrinking power limit and
//! watch the automated job killer hold it (Table I, RIKEN production
//! row: "automated emergency job killing if power limit exceeded").
//!
//! ```sh
//! cargo run --example emergency_response
//! ```

use epa_jsrm::prelude::*;
use epa_jsrm::sched::emergency::EmergencyPolicy;

fn main() {
    println!("RIKEN: automated emergency job killing under a shrinking power limit\n");
    let base = {
        let mut s = epa_jsrm::sites::centers::riken::config(13);
        s.horizon = SimTime::from_days(2.0);
        s
    };
    let nominal = base.system.nominal_watts();
    println!(
        "machine nominal draw {:.0} kW; admission budget {:.0} kW\n",
        nominal / 1e3,
        base.power_budget_watts.unwrap_or(f64::NAN) / 1e3
    );
    println!(
        "{:>14} {:>9} {:>6} {:>11} {:>10}",
        "limit kW", "breaches", "kills", "completed", "peak kW"
    );
    for frac in [1.00, 0.90, 0.80] {
        let mut site = base.clone();
        site.emergency = Some(EmergencyPolicy::new(nominal * frac));
        let report = run_site(&site);
        println!(
            "{:>14.0} {:>9} {:>6} {:>11} {:>10.1}",
            nominal * frac / 1e3,
            report
                .outcome
                .counters
                .get("emergency/breaches")
                .copied()
                .unwrap_or(0),
            report.outcome.emergency_kills,
            report.outcome.completed,
            report.outcome.peak_watts / 1e3
        );
    }
    println!(
        "\nLower limits trigger more responses; killed jobs are the price of holding the contract."
    );
}
