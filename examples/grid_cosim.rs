//! Grid co-simulation quickstart: one site, three simulated days under a
//! facility digital twin — time-of-day electricity prices, grid carbon
//! intensity, a cooling loop whose PUE tracks IT load, and one
//! demand-response window with contractual penalty settlement.
//!
//! ```sh
//! cargo run --release --example grid_cosim
//! ```

use epa_jsrm::grid::{DrContract, DrEvent, GridConfig, GridTrace};
use epa_jsrm::prelude::*;

fn main() {
    // LRZ's production machine and workload, three simulated days.
    let mut site = epa_jsrm::sites::centers::lrz::config(3);
    site.horizon = SimTime::from_days(3.0);
    let system = site.system.clone().build();
    let jobs = WorkloadGenerator::new(site.workload.clone()).generate(site.horizon, 0);
    let nominal = system.spec().nominal_watts();

    // The twin: synthetic diurnal price/carbon traces in local time, a
    // cooling loop fed from a facility sized 30% above the IT budget.
    let mut grid = GridConfig::synthetic(nominal, nominal * 1.3, 92.0, 380.0, 3, 0.8, 42);

    // Operators can also load measured tariffs — the CSV-ish format is
    // "hours,value" rows. Swap the synthetic price for a day-ahead-style
    // tariff that repeats a cheap-night / peak-evening pattern.
    let tariff = "\
# day-ahead tariff, EUR/MWh (hour offset, price)
0,61\n6,58\n9,104\n13,96\n18,131\n22,74\n24,61\n30,58\n33,104\n37,96\n42,131\n46,74\n48,61\n\
54,58\n57,104\n61,96\n66,131\n70,74\n72,61";
    grid.price = GridTrace::parse_csv(tariff).expect("tariff parses");

    // Follow the renewables a little: shed up to 30% of the budget at
    // peak price, 20% at peak carbon.
    grid.price_follow = 0.3;
    grid.carbon_follow = 0.2;

    // One demand-response window: shed to 60% for the second evening,
    // 0.5 kWh of tolerance, 12 EUR per excess kWh beyond it.
    grid.contract = DrContract {
        events: vec![DrEvent {
            start: SimTime::from_hours(42.0),
            end: SimTime::from_hours(46.0),
            target_frac: 0.6,
            enforce: true,
        }],
        penalty_per_excess_kwh: 12.0,
        tolerance_kwh: 0.5,
    };

    let mut config = EngineConfig::new(site.horizon);
    config.power_budget_watts = Some(nominal);
    config.seed = 3;
    config.grid = Some(grid);

    let mut policy = EasyBackfill;
    let (out, summary) = ClusterSim::new(system, jobs, &mut policy, config).run_with_grid();
    let summary = summary.expect("grid twin configured");

    println!("LRZ under the grid twin, 3 simulated days:\n");
    println!("  jobs completed        {}", out.completed);
    println!("  mean bounded slowdown {:.2}", out.mean_bounded_slowdown);
    println!("  IT energy             {:.2} MWh", summary.energy_it_mwh);
    println!(
        "  facility energy       {:.2} MWh (mean PUE {:.3})",
        summary.energy_facility_mwh, summary.mean_pue
    );
    println!("  electricity cost      {:.0} EUR", summary.cost);
    println!("  carbon                {:.0} kg CO2", summary.carbon_kg);
    for ev in &summary.dr.events {
        println!(
            "  DR event {}: {:.0} s in violation, {:.2} excess kWh, {:.2} EUR penalty",
            ev.event, ev.violation_secs, ev.excess_kwh, ev.penalty
        );
    }
    println!(
        "  total (cost+penalty)  {:.0} EUR",
        summary.cost_with_penalty
    );
}
