//! Observability dashboard for one site: runs LRZ for two simulated days
//! with every trace category enabled, then shows the three faces of the
//! `epa-obs` subsystem — the Prometheus-text metrics exposition, the tail
//! of the JSONL decision trace, and the replay verifier proving the trace
//! is a pure function of the seed.
//!
//! ```sh
//! cargo run --example oda_dashboard
//! ```
//!
//! Narrow the trace with the enable mask, e.g.
//! `EPA_JSRM_TRACE=job,emergency cargo run --example oda_dashboard`.

use epa_jsrm::obs::{trace_to_jsonl, verify_replay};
use epa_jsrm::prelude::*;

fn main() {
    // The site runner reads the category mask from the environment;
    // default to everything so the dashboard has data to show.
    if std::env::var("EPA_JSRM_TRACE").is_err() {
        std::env::set_var("EPA_JSRM_TRACE", "all");
    }
    let site = || {
        let mut s = epa_jsrm::sites::centers::lrz::config(11);
        s.horizon = SimTime::from_days(2.0);
        s
    };
    let report = run_site(&site());

    println!("== metrics exposition (Prometheus text) ==");
    print!("{}", report.obs.registry.to_prometheus_text());

    let jsonl = trace_to_jsonl(&report.obs.trace);
    let lines: Vec<&str> = jsonl.lines().collect();
    println!("\n== decision trace: {} events, tail ==", lines.len() - 1);
    // Line 0 is the schema-versioned header; show it plus the last few
    // decisions.
    println!("{}", lines[0]);
    for line in lines.iter().skip(1.max(lines.len().saturating_sub(8))) {
        println!("{line}");
    }

    println!("\n== replay verification ==");
    match verify_replay(|| trace_to_jsonl(&run_site(&site()).obs.trace)) {
        Ok(r) => println!(
            "two fresh runs produced byte-identical traces ({} events, {} bytes)",
            r.events, r.bytes
        ),
        Err(d) => {
            eprintln!("trace diverged at line {}:", d.line);
            eprintln!("  first : {}", d.first);
            eprintln!("  second: {}", d.second);
            std::process::exit(1);
        }
    }
}
