//! Per-component snapshot roundtrip properties.
//!
//! Each stateful subsystem the engine snapshot captures is exercised in
//! isolation: drive it through a randomized operation sequence, freeze
//! it (`snapshot_into`), restore it (`restore_from`), and freeze the
//! restored copy again. The two frames must be **byte-equal** — the
//! strongest statement that restore loses nothing, including the bits
//! of every floating-point accumulator.

use epa_cluster::alloc::{AllocStrategy, Allocator};
use epa_cluster::node::NodeId;
use epa_cluster::shard::ShardTopology;
use epa_cluster::topology::Topology;
use epa_power::meter::EnergyMeter;
use epa_sched::shards::{LocalEv, ShardSet};
use epa_simcore::rng::SimRng;
use epa_simcore::snap::{SnapReader, SnapWriter};
use epa_simcore::time::SimTime;
use epa_workload::job::JobId;
use proptest::collection::vec;
use proptest::prelude::*;

const VERSION: u32 = 1;

/// Freezes one component into a standalone test frame.
fn freeze(f: impl FnOnce(&mut SnapWriter)) -> Vec<u8> {
    let mut w = SnapWriter::new();
    f(&mut w);
    w.finish(VERSION)
}

/// Opens a test frame, restores a component from it, and checks the
/// payload was consumed exactly.
fn thaw<T>(
    bytes: &[u8],
    f: impl FnOnce(&mut SnapReader<'_>) -> Result<T, epa_simcore::snap::SnapshotError>,
) -> T {
    let mut r = SnapReader::open(bytes, VERSION).expect("frame opens");
    let value = f(&mut r).expect("component restores");
    r.finish().expect("no trailing bytes");
    value
}

proptest! {
    /// Interval-run allocator: random allocate / release / fence
    /// sequences, then snapshot → restore → snapshot byte-equality.
    #[test]
    fn allocator_roundtrip_is_byte_exact(
        ops in vec((0u8..3, 1u32..9), 0..48),
        strategy_pick in 0u8..3,
    ) {
        let strategy = match strategy_pick {
            0 => AllocStrategy::FirstFit,
            1 => AllocStrategy::Contiguous,
            _ => AllocStrategy::TopologyAware,
        };
        let topology = Topology::FatTree { arity: 8 };
        let mut alloc = Allocator::new(32, strategy, topology.clone());
        let mut live: Vec<Vec<NodeId>> = Vec::new();
        for &(op, arg) in &ops {
            match op {
                0 => {
                    if let Ok(nodes) = alloc.allocate(arg) {
                        live.push(nodes);
                    }
                }
                1 => {
                    if !live.is_empty() {
                        let idx = arg as usize % live.len();
                        let nodes = live.swap_remove(idx);
                        alloc.release(&nodes);
                    }
                }
                _ => {
                    // Fence/unfence a node; both are no-ops unless the
                    // node is in the right state, which is fine.
                    let node = NodeId(arg % 32);
                    if arg % 2 == 0 {
                        alloc.mark_unavailable(node);
                    } else {
                        alloc.mark_available(node);
                    }
                }
            }
        }
        let a = freeze(|w| alloc.snapshot_into(w));
        let restored = thaw(&a, |r| {
            Allocator::restore_from(r, strategy, topology.clone())
        });
        let b = freeze(|w| restored.snapshot_into(w));
        prop_assert_eq!(&a, &b, "allocator frames diverged");
    }

    /// Energy meter: monotone-time watt updates plus group open/retag/
    /// close cycles, deliberately leaving some groups **open** at the
    /// snapshot point — the mid-campaign case.
    #[test]
    fn meter_roundtrip_is_byte_exact_with_open_groups(
        ops in vec((0u8..4, 0u32..16, 50.0f64..400.0, 0.5f64..600.0), 0..40),
    ) {
        let mut meter = EnergyMeter::new();
        let mut t = 0.0f64;
        // Nodes not currently inside a group (groups must stay disjoint).
        let mut pool: Vec<u32> = (0..16).collect();
        let mut open: Vec<(epa_power::meter::GroupId, Vec<NodeId>)> = Vec::new();
        for &(op, pick, watts, dt) in &ops {
            t += dt;
            let now = SimTime::from_secs(t);
            match op {
                0 => {
                    if !pool.is_empty() {
                        let node = NodeId(pool[pick as usize % pool.len()]);
                        meter.set_node_watts(node, now, watts);
                    }
                }
                1 => {
                    // Open a group over 1..=4 pooled nodes.
                    let take = (1 + pick as usize % 4).min(pool.len());
                    if take > 0 {
                        let members: Vec<NodeId> =
                            pool.drain(..take).map(NodeId).collect();
                        let (gid, _) = meter.open_group(&members, now, watts);
                        open.push((gid, members));
                    }
                }
                2 => {
                    if !open.is_empty() {
                        let (gid, _) = open[pick as usize % open.len()];
                        meter.set_group_watts(gid, now, watts);
                    }
                }
                _ => {
                    if !open.is_empty() {
                        let idx = pick as usize % open.len();
                        let (gid, members) = open.swap_remove(idx);
                        meter.close_group(gid, &members, now, watts);
                        pool.extend(members.iter().map(|n| n.0));
                    }
                }
            }
        }
        let a = freeze(|w| meter.snapshot_into(w));
        let restored = thaw(&a, EnergyMeter::restore_from);
        let b = freeze(|w| restored.snapshot_into(w));
        prop_assert_eq!(&a, &b, "meter frames diverged ({} open groups)", open.len());
    }

    /// RNG substreams: after an arbitrary number of draws, the
    /// (seed, position) state roundtrips byte-exactly and the restored
    /// stream continues with bit-identical draws.
    #[test]
    fn rng_substream_roundtrip_is_byte_exact(
        seed in any::<u64>(),
        stream_idx in 0u64..8,
        draws in 0usize..300,
    ) {
        let mut rng = SimRng::new(seed).stream_indexed("roundtrip", stream_idx);
        for _ in 0..draws {
            rng.uniform();
        }
        let a = freeze(|w| {
            let (s, pos) = rng.snapshot_state();
            w.u64(s);
            w.u64(pos);
        });
        let mut restored = thaw(&a, |r| {
            let s = r.u64()?;
            let pos = r.u64()?;
            Ok(SimRng::from_state(s, pos))
        });
        let b = freeze(|w| {
            let (s, pos) = restored.snapshot_state();
            w.u64(s);
            w.u64(pos);
        });
        prop_assert_eq!(&a, &b, "rng state frames diverged");
        // The continuation is the point: identical bits after restore.
        for i in 0..16 {
            let x = rng.uniform();
            let y = restored.uniform();
            prop_assert_eq!(x.to_bits(), y.to_bits(), "draw {} diverged", i);
        }
    }

    /// Shard mailboxes: random posts and window drains across 1–4
    /// shards, snapshotted with messages still queued and clocks
    /// mid-flight.
    #[test]
    fn shard_mailbox_roundtrip_is_byte_exact(
        seed in any::<u64>(),
        shards in 1u32..5,
        ops in vec((0u8..3, 0u32..32, 0.0f64..10.0), 0..60),
    ) {
        let topo = ShardTopology::cabinet_aligned(32, 8, shards);
        let root = SimRng::new(seed);
        let mut set = ShardSet::new(topo.clone(), &root);
        // Burn a different number of draws per shard substream so the
        // snapshot must capture distinct positions.
        for s in 0..topo.shards() {
            for _ in 0..=s {
                set.rng(s).uniform();
            }
        }
        let mut t = 0.0f64;
        let mut seq = 0u64;
        for &(op, pick, dt) in &ops {
            t += dt;
            seq += 1;
            match op {
                0 => {
                    let node = pick % 32;
                    let shard = topo.shard_of(NodeId(node));
                    set.post(
                        shard,
                        SimTime::from_secs(t),
                        seq,
                        LocalEv::PhaseChange(JobId(u64::from(pick)), pick, pick as usize % 4),
                    );
                }
                1 => {
                    let node = pick % 32;
                    let shard = topo.shard_of(NodeId(node));
                    set.post(
                        shard,
                        SimTime::from_secs(t),
                        seq,
                        LocalEv::ShutdownDone(NodeId(node)),
                    );
                }
                _ => {
                    // Drain everything strictly before the current key:
                    // advances shard clocks, leaves later posts queued.
                    let _ = set.pop_window(
                        Some((SimTime::from_secs(t), seq)),
                        SimTime::from_secs(1e9),
                    );
                }
            }
        }
        let a = freeze(|w| set.snapshot_into(w));
        let restored = thaw(&a, |r| ShardSet::restore_from(r, topo.clone()));
        let b = freeze(|w| restored.snapshot_into(w));
        prop_assert_eq!(&a, &b, "shard mailbox frames diverged");
    }
}
