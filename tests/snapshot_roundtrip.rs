//! Per-component snapshot roundtrip properties.
//!
//! Each stateful subsystem the engine snapshot captures is exercised in
//! isolation: drive it through a randomized operation sequence, freeze
//! it (`snapshot_into`), restore it (`restore_from`), and freeze the
//! restored copy again. The two frames must be **byte-equal** — the
//! strongest statement that restore loses nothing, including the bits
//! of every floating-point accumulator.

use epa_cluster::alloc::{AllocStrategy, Allocator};
use epa_cluster::node::NodeId;
use epa_cluster::shard::ShardTopology;
use epa_cluster::topology::Topology;
use epa_grid::{DrContract, DrEvent, GridConfig, GridState};
use epa_power::meter::EnergyMeter;
use epa_sched::shards::{LocalEv, ShardSet};
use epa_simcore::rng::SimRng;
use epa_simcore::snap::{SnapReader, SnapWriter};
use epa_simcore::time::SimTime;
use epa_workload::job::JobId;
use proptest::collection::vec;
use proptest::prelude::*;

const VERSION: u32 = 1;

/// Freezes one component into a standalone test frame.
fn freeze(f: impl FnOnce(&mut SnapWriter)) -> Vec<u8> {
    let mut w = SnapWriter::new();
    f(&mut w);
    w.finish(VERSION)
}

/// Opens a test frame, restores a component from it, and checks the
/// payload was consumed exactly.
fn thaw<T>(
    bytes: &[u8],
    f: impl FnOnce(&mut SnapReader<'_>) -> Result<T, epa_simcore::snap::SnapshotError>,
) -> T {
    let mut r = SnapReader::open(bytes, VERSION).expect("frame opens");
    let value = f(&mut r).expect("component restores");
    r.finish().expect("no trailing bytes");
    value
}

proptest! {
    /// Interval-run allocator: random allocate / release / fence
    /// sequences, then snapshot → restore → snapshot byte-equality.
    #[test]
    fn allocator_roundtrip_is_byte_exact(
        ops in vec((0u8..3, 1u32..9), 0..48),
        strategy_pick in 0u8..3,
    ) {
        let strategy = match strategy_pick {
            0 => AllocStrategy::FirstFit,
            1 => AllocStrategy::Contiguous,
            _ => AllocStrategy::TopologyAware,
        };
        let topology = Topology::FatTree { arity: 8 };
        let mut alloc = Allocator::new(32, strategy, topology.clone());
        let mut live: Vec<Vec<NodeId>> = Vec::new();
        for &(op, arg) in &ops {
            match op {
                0 => {
                    if let Ok(nodes) = alloc.allocate(arg) {
                        live.push(nodes);
                    }
                }
                1 => {
                    if !live.is_empty() {
                        let idx = arg as usize % live.len();
                        let nodes = live.swap_remove(idx);
                        alloc.release(&nodes);
                    }
                }
                _ => {
                    // Fence/unfence a node; both are no-ops unless the
                    // node is in the right state, which is fine.
                    let node = NodeId(arg % 32);
                    if arg % 2 == 0 {
                        alloc.mark_unavailable(node);
                    } else {
                        alloc.mark_available(node);
                    }
                }
            }
        }
        let a = freeze(|w| alloc.snapshot_into(w));
        let restored = thaw(&a, |r| {
            Allocator::restore_from(r, strategy, topology.clone())
        });
        let b = freeze(|w| restored.snapshot_into(w));
        prop_assert_eq!(&a, &b, "allocator frames diverged");
    }

    /// Energy meter: monotone-time watt updates plus group open/retag/
    /// close cycles, deliberately leaving some groups **open** at the
    /// snapshot point — the mid-campaign case.
    #[test]
    fn meter_roundtrip_is_byte_exact_with_open_groups(
        ops in vec((0u8..4, 0u32..16, 50.0f64..400.0, 0.5f64..600.0), 0..40),
    ) {
        let mut meter = EnergyMeter::new();
        let mut t = 0.0f64;
        // Nodes not currently inside a group (groups must stay disjoint).
        let mut pool: Vec<u32> = (0..16).collect();
        let mut open: Vec<(epa_power::meter::GroupId, Vec<NodeId>)> = Vec::new();
        for &(op, pick, watts, dt) in &ops {
            t += dt;
            let now = SimTime::from_secs(t);
            match op {
                0 => {
                    if !pool.is_empty() {
                        let node = NodeId(pool[pick as usize % pool.len()]);
                        meter.set_node_watts(node, now, watts);
                    }
                }
                1 => {
                    // Open a group over 1..=4 pooled nodes.
                    let take = (1 + pick as usize % 4).min(pool.len());
                    if take > 0 {
                        let members: Vec<NodeId> =
                            pool.drain(..take).map(NodeId).collect();
                        let (gid, _) = meter.open_group(&members, now, watts);
                        open.push((gid, members));
                    }
                }
                2 => {
                    if !open.is_empty() {
                        let (gid, _) = open[pick as usize % open.len()];
                        meter.set_group_watts(gid, now, watts);
                    }
                }
                _ => {
                    if !open.is_empty() {
                        let idx = pick as usize % open.len();
                        let (gid, members) = open.swap_remove(idx);
                        meter.close_group(gid, &members, now, watts);
                        pool.extend(members.iter().map(|n| n.0));
                    }
                }
            }
        }
        let a = freeze(|w| meter.snapshot_into(w));
        let restored = thaw(&a, EnergyMeter::restore_from);
        let b = freeze(|w| restored.snapshot_into(w));
        prop_assert_eq!(&a, &b, "meter frames diverged ({} open groups)", open.len());
    }

    /// RNG substreams: after an arbitrary number of draws, the
    /// (seed, position) state roundtrips byte-exactly and the restored
    /// stream continues with bit-identical draws.
    #[test]
    fn rng_substream_roundtrip_is_byte_exact(
        seed in any::<u64>(),
        stream_idx in 0u64..8,
        draws in 0usize..300,
    ) {
        let mut rng = SimRng::new(seed).stream_indexed("roundtrip", stream_idx);
        for _ in 0..draws {
            rng.uniform();
        }
        let a = freeze(|w| {
            let (s, pos) = rng.snapshot_state();
            w.u64(s);
            w.u64(pos);
        });
        let mut restored = thaw(&a, |r| {
            let s = r.u64()?;
            let pos = r.u64()?;
            Ok(SimRng::from_state(s, pos))
        });
        let b = freeze(|w| {
            let (s, pos) = restored.snapshot_state();
            w.u64(s);
            w.u64(pos);
        });
        prop_assert_eq!(&a, &b, "rng state frames diverged");
        // The continuation is the point: identical bits after restore.
        for i in 0..16 {
            let x = rng.uniform();
            let y = restored.uniform();
            prop_assert_eq!(x.to_bits(), y.to_bits(), "draw {} diverged", i);
        }
    }

    /// Shard mailboxes: random posts and window drains across 1–4
    /// shards, snapshotted with messages still queued and clocks
    /// mid-flight.
    #[test]
    fn shard_mailbox_roundtrip_is_byte_exact(
        seed in any::<u64>(),
        shards in 1u32..5,
        ops in vec((0u8..3, 0u32..32, 0.0f64..10.0), 0..60),
    ) {
        let topo = ShardTopology::cabinet_aligned(32, 8, shards);
        let root = SimRng::new(seed);
        let mut set = ShardSet::new(topo.clone(), &root);
        // Burn a different number of draws per shard substream so the
        // snapshot must capture distinct positions.
        for s in 0..topo.shards() {
            for _ in 0..=s {
                set.rng(s).uniform();
            }
        }
        let mut t = 0.0f64;
        let mut seq = 0u64;
        for &(op, pick, dt) in &ops {
            t += dt;
            seq += 1;
            match op {
                0 => {
                    let node = pick % 32;
                    let shard = topo.shard_of(NodeId(node));
                    set.post(
                        shard,
                        SimTime::from_secs(t),
                        seq,
                        LocalEv::PhaseChange(JobId(u64::from(pick)), pick, pick as usize % 4),
                    );
                }
                1 => {
                    let node = pick % 32;
                    let shard = topo.shard_of(NodeId(node));
                    set.post(
                        shard,
                        SimTime::from_secs(t),
                        seq,
                        LocalEv::ShutdownDone(NodeId(node)),
                    );
                }
                _ => {
                    // Drain everything strictly before the current key:
                    // advances shard clocks, leaves later posts queued.
                    let _ = set.pop_window(
                        Some((SimTime::from_secs(t), seq)),
                        SimTime::from_secs(1e9),
                    );
                }
            }
        }
        let a = freeze(|w| set.snapshot_into(w));
        let restored = thaw(&a, |r| ShardSet::restore_from(r, topo.clone()));
        let b = freeze(|w| restored.snapshot_into(w));
        prop_assert_eq!(&a, &b, "shard mailbox frames diverged");
    }

    /// Grid twin: random tick sequences (monotone time, varying draw and
    /// temperature) interleaved with DR event boundaries, snapshotted
    /// mid-event. The restored state must re-freeze byte-identically —
    /// trace cursors, per-event accumulators, and every settled
    /// floating-point total included.
    #[test]
    fn grid_state_roundtrip_is_byte_exact(
        seed in any::<u64>(),
        follow in (0.0f64..0.8, 0.0f64..0.8),
        ops in vec((0u8..4, 60.0f64..7200.0, 0.0f64..1200.0, -5.0f64..40.0), 0..60),
    ) {
        let mut cfg = GridConfig::synthetic(1000.0, 1400.0, 80.0, 350.0, 3, 1.5, seed);
        cfg.price_follow = follow.0;
        cfg.carbon_follow = follow.1;
        cfg.contract = DrContract {
            events: vec![
                DrEvent {
                    start: SimTime::from_hours(10.0),
                    end: SimTime::from_hours(14.0),
                    target_frac: 0.5,
                    enforce: false,
                },
                DrEvent {
                    start: SimTime::from_hours(30.0),
                    end: SimTime::from_hours(33.0),
                    target_frac: 0.7,
                    enforce: true,
                },
            ],
            penalty_per_excess_kwh: 8.0,
            tolerance_kwh: 0.25,
        };
        cfg.validate().expect("grid config validates");
        let mut state = GridState::new(&cfg);
        let mut t = 0.0f64;
        for &(op, dt, watts, temp) in &ops {
            match op {
                0 => state.on_event_start(0),
                1 => state.on_event_end(0),
                2 => state.on_event_start(1),
                _ => {
                    t += dt;
                    state.on_tick(&cfg, SimTime::from_secs(t), dt, watts, temp, 1.0);
                }
            }
        }
        let a = freeze(|w| state.snapshot_into(w));
        let restored = thaw(&a, |r| GridState::restore_from(r, &cfg));
        let b = freeze(|w| restored.snapshot_into(w));
        prop_assert_eq!(&a, &b, "grid state frames diverged");
        prop_assert_eq!(&restored, &state);
        // Settlement is part of the contract: the restored twin must
        // price the run identically.
        prop_assert_eq!(restored.summary(&cfg), state.summary(&cfg));
    }
}

/// A grid-enabled engine killed at a window barrier and resumed from the
/// snapshot bytes must replay to the same outcome **and** the same grid
/// settlement as the uninterrupted run — the v4 snapshot's grid section
/// carries the twin's cursors and accumulators across the crash.
#[test]
fn grid_enabled_engine_resumes_byte_identically() {
    use epa_cluster::system::SystemSpec;
    use epa_sched::engine::{ClusterSim, EngineConfig};
    use epa_sched::policies::backfill::EasyBackfill;
    use epa_sched::Snapshot;
    use epa_workload::generator::{WorkloadGenerator, WorkloadParams};

    let nodes = 32u32;
    let system = || {
        SystemSpec {
            name: "grid-resume-32".into(),
            cabinets: 4,
            nodes_per_cabinet: 8,
            node: epa_cluster::node::NodeSpec::typical_xeon(),
            topology: Topology::FatTree { arity: 16 },
            peak_tflops: 32.0,
        }
        .build()
    };
    let horizon = SimTime::from_days(2.0);
    let jobs = WorkloadGenerator::new(WorkloadParams::typical(nodes, 5)).generate(horizon, 0);
    let nominal = f64::from(nodes) * system().spec().node.nominal_watts;
    let config = || {
        let mut grid = GridConfig::synthetic(nominal, nominal * 1.3, 90.0, 300.0, 2, 1.0, 77);
        grid.price_follow = 0.4;
        grid.carbon_follow = 0.2;
        grid.contract = DrContract {
            events: vec![DrEvent {
                start: SimTime::from_hours(20.0),
                end: SimTime::from_hours(24.0),
                target_frac: 0.6,
                enforce: true,
            }],
            penalty_per_excess_kwh: 10.0,
            tolerance_kwh: 0.5,
        };
        let mut config = EngineConfig::new(horizon);
        config.power_budget_watts = Some(nominal);
        config.seed = 5;
        config.grid = Some(grid);
        config
    };

    let mut policy = EasyBackfill;
    let (base_out, base_grid) =
        ClusterSim::new(system(), jobs.clone(), &mut policy, config()).run_with_grid();
    let base_grid = base_grid.expect("grid twin configured");

    // Crash mid-DR-event (hour 22 of 48), resume from the bytes only.
    let mut policy = EasyBackfill;
    let mut sim = ClusterSim::new(system(), jobs.clone(), &mut policy, config());
    let snap = sim.run_until(SimTime::from_hours(22.0));
    drop(sim); // the crash
    let bytes = Snapshot::from_bytes(snap.into_bytes());
    bytes.verify_frame().expect("snapshot frame intact");
    let mut policy = EasyBackfill;
    let sim = ClusterSim::resume(system(), jobs, &mut policy, config(), &bytes)
        .expect("resume from intact snapshot");
    let (out, grid) = sim.run_with_grid();
    let grid = grid.expect("grid twin survives resume");

    assert_eq!(
        serde_json::to_string_pretty(&out).unwrap(),
        serde_json::to_string_pretty(&base_out).unwrap(),
        "resumed outcome drifted from the uninterrupted run"
    );
    assert_eq!(
        serde_json::to_string_pretty(&grid).unwrap(),
        serde_json::to_string_pretty(&base_grid).unwrap(),
        "resumed grid settlement drifted from the uninterrupted run"
    );
}
