//! Trace determinism: the exported JSONL decision trace is a pure
//! function of (config, seed) — byte-identical run to run and invariant
//! under the thread-pool size. Payloads are keyed on `SimTime` and bus
//! sequence numbers only; any wall-clock leakage or thread-order
//! sensitivity shows up here as a byte diff.
//!
//! The scenario mirrors the golden determinism test: backfilling, a power
//! budget with demand-response resizes, idle shutdown, emergency kills
//! with requeue, and node failures, so every trace category fires.
//!
//! CI runs this binary under `EPA_JSRM_THREADS=1` and `=4` with
//! `TRACE_EXPORT=<path>` set, then byte-diffs the two exported files.

use epa_cluster::node::NodeSpec;
use epa_cluster::system::{System, SystemSpec};
use epa_cluster::topology::Topology;
use epa_obs::{trace_to_jsonl, verify_replay, ObsBundle, TraceConfig};
use epa_sched::emergency::EmergencyPolicy;
use epa_sched::engine::{ClusterSim, EngineConfig, SimOutcome};
use epa_sched::policies::backfill::EasyBackfill;
use epa_sched::shutdown::ShutdownPolicy;
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::generator::{WorkloadGenerator, WorkloadParams};

fn traced_system() -> System {
    SystemSpec {
        name: "traced-32".into(),
        cabinets: 2,
        nodes_per_cabinet: 16,
        node: NodeSpec::typical_xeon(),
        topology: Topology::FatTree { arity: 16 },
        peak_tflops: 32.0,
    }
    .build()
}

fn traced_run() -> (SimOutcome, ObsBundle) {
    let horizon = SimTime::from_days(2.0);
    let jobs = WorkloadGenerator::new(WorkloadParams::typical(32, 42)).generate(horizon, 0);
    let mut config = EngineConfig::new(horizon);
    config.trace = TraceConfig::all();
    config.power_budget_watts = Some(32.0 * 290.0 * 0.7);
    config.budget_schedule = vec![
        (SimTime::from_hours(20.0), 32.0 * 290.0 * 0.4),
        (SimTime::from_hours(26.0), 32.0 * 290.0 * 0.7),
    ];
    config.shutdown = Some(ShutdownPolicy::default());
    config.emergency = Some(EmergencyPolicy::new(32.0 * 290.0 * 0.65));
    config.requeue_killed = true;
    config.checkpoint_interval = Some(SimDuration::from_mins(30.0));
    config.node_mtbf = Some(SimDuration::from_hours(18.0));
    config.repair_time = SimDuration::from_hours(2.0);
    config.seed = 0xD5;
    let mut policy = EasyBackfill;
    ClusterSim::new(traced_system(), jobs, &mut policy, config).run_traced()
}

fn export() -> String {
    trace_to_jsonl(&traced_run().1.trace)
}

#[test]
fn trace_is_run_to_run_deterministic() {
    let report = verify_replay(export).unwrap_or_else(|d| {
        panic!(
            "trace diverged between two runs at line {}:\n  first : {}\n  second: {}",
            d.line, d.first, d.second
        )
    });
    assert!(report.events > 0, "scenario must produce trace events");

    // CI hook: write the export so the workflow can byte-diff traces
    // produced under different EPA_JSRM_THREADS settings.
    if let Some(path) = std::env::var_os("TRACE_EXPORT") {
        std::fs::write(&path, export()).expect("write trace export");
    }
}

#[test]
fn trace_is_invariant_under_thread_count() {
    let serial = rayon::with_num_threads(1, export);
    let par = rayon::with_num_threads(4, export);
    assert!(serial == par, "trace drifted between 1 and 4 threads");
}

#[test]
fn trace_header_carries_schema_version() {
    let jsonl = export();
    let header = jsonl.lines().next().expect("header line");
    assert!(
        header.starts_with(&format!(
            "{{\"schema_version\":{},\"kind\":\"epa-obs-trace\"",
            epa_obs::OBS_SCHEMA_VERSION
        )),
        "unexpected header: {header}"
    );
}

#[test]
fn outcome_is_unchanged_by_tracing() {
    // The traced run and an untraced run of the same scenario must agree
    // on the outcome bytes: observability is read-only.
    let traced = serde_json::to_string(&traced_run().0).expect("serializes");
    let untraced = {
        let horizon = SimTime::from_days(2.0);
        let jobs = WorkloadGenerator::new(WorkloadParams::typical(32, 42)).generate(horizon, 0);
        let mut config = EngineConfig::new(horizon);
        config.power_budget_watts = Some(32.0 * 290.0 * 0.7);
        config.budget_schedule = vec![
            (SimTime::from_hours(20.0), 32.0 * 290.0 * 0.4),
            (SimTime::from_hours(26.0), 32.0 * 290.0 * 0.7),
        ];
        config.shutdown = Some(ShutdownPolicy::default());
        config.emergency = Some(EmergencyPolicy::new(32.0 * 290.0 * 0.65));
        config.requeue_killed = true;
        config.checkpoint_interval = Some(SimDuration::from_mins(30.0));
        config.node_mtbf = Some(SimDuration::from_hours(18.0));
        config.repair_time = SimDuration::from_hours(2.0);
        config.seed = 0xD5;
        let mut policy = EasyBackfill;
        let sim = ClusterSim::new(traced_system(), jobs, &mut policy, config);
        serde_json::to_string(&sim.run()).expect("serializes")
    };
    assert!(traced == untraced, "tracing perturbed the outcome");
}
