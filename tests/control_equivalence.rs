//! Control-plane equivalence: the engineered adapters routed through the
//! unified `ControlAction` apply path ([`ControlMode::Adapters`], the
//! default) produce **byte-identical** outcomes and JSONL traces to the
//! pre-refactor inline dispatch ([`ControlMode::DirectLegacy`]), across
//! shard counts {1, 4} × thread counts {1, 4}.
//!
//! The scenario exercises every adapter: a power budget with scheduled
//! resizes (budget adapter), idle shutdown (shutdown adapter), emergency
//! kills (emergency adapter), a temperature-conditioned job-limit gate
//! (gate adapter), plus failures/requeues so the interleaving is rich.

use epa_cluster::node::NodeSpec;
use epa_cluster::system::{System, SystemSpec};
use epa_cluster::topology::Topology;
use epa_obs::{trace_to_jsonl, TraceConfig};
use epa_sched::control::ControlMode;
use epa_sched::emergency::EmergencyPolicy;
use epa_sched::engine::{ClusterSim, EngineConfig};
use epa_sched::limiting::JobLimitGate;
use epa_sched::policies::backfill::EasyBackfill;
use epa_sched::shutdown::ShutdownPolicy;
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::generator::{WorkloadGenerator, WorkloadParams};
use proptest::prelude::*;

fn system() -> System {
    SystemSpec {
        name: "ctl-eq-32".into(),
        cabinets: 4,
        nodes_per_cabinet: 8,
        node: NodeSpec::typical_xeon(),
        topology: Topology::FatTree { arity: 8 },
        peak_tflops: 32.0,
    }
    .build()
}

/// Serialized (outcome, trace) for one run of the full-feature scenario.
fn outcome_and_trace(seed: u64, mode: ControlMode, shards: u32) -> (String, String) {
    let horizon = SimTime::from_days(2.0);
    let jobs = WorkloadGenerator::new(WorkloadParams::typical(32, seed)).generate(horizon, 0);
    let mut config = EngineConfig::new(horizon);
    config.control_mode = mode;
    config.shards = Some(shards);
    config.trace = TraceConfig::all();
    config.power_budget_watts = Some(32.0 * 290.0 * 0.7);
    config.budget_schedule = vec![
        (SimTime::from_hours(20.0), 32.0 * 290.0 * 0.4),
        (SimTime::from_hours(26.0), 32.0 * 290.0 * 0.7),
    ];
    config.shutdown = Some(ShutdownPolicy::default());
    config.emergency = Some(EmergencyPolicy::windowed(
        32.0 * 290.0 * 0.65,
        SimTime::from_hours(6.0),
        SimTime::from_hours(40.0),
    ))
    .map(|e| e.with_cooldown(SimDuration::from_mins(10.0)));
    config.limit_gate = Some(JobLimitGate {
        normal_limit: 24,
        hot_limit: 6,
        hot_threshold_c: 26.0,
    });
    config.requeue_killed = true;
    config.checkpoint_interval = Some(SimDuration::from_mins(30.0));
    config.node_mtbf = Some(SimDuration::from_hours(18.0));
    config.repair_time = SimDuration::from_hours(2.0);
    config.seed = seed ^ 0xD5;
    let mut policy = EasyBackfill;
    let (outcome, bundle) = ClusterSim::new(system(), jobs, &mut policy, config).run_traced();
    (
        serde_json::to_string(&outcome).expect("serializes"),
        trace_to_jsonl(&bundle.trace),
    )
}

#[test]
fn adapters_match_legacy_across_shards_and_threads() {
    let (base_out, base_trace) =
        rayon::with_num_threads(1, || outcome_and_trace(0xC0, ControlMode::DirectLegacy, 1));
    assert!(
        base_trace.contains("emergency_breach") || base_out.contains("emergency_kills"),
        "scenario should exercise the emergency path"
    );
    for shards in [1u32, 4] {
        for threads in [1usize, 4] {
            let (out, trace) = rayon::with_num_threads(threads, || {
                outcome_and_trace(0xC0, ControlMode::Adapters, shards)
            });
            assert!(
                out == base_out,
                "outcome drifted: adapters vs legacy at {shards} shards / {threads} threads"
            );
            assert!(
                trace == base_trace,
                "trace drifted: adapters vs legacy at {shards} shards / {threads} threads"
            );
            let (lout, ltrace) = rayon::with_num_threads(threads, || {
                outcome_and_trace(0xC0, ControlMode::DirectLegacy, shards)
            });
            assert!(
                lout == base_out && ltrace == base_trace,
                "legacy mode itself drifted at {shards} shards / {threads} threads"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property form: for random seeds, the adapter path and the legacy
    /// path agree byte-for-byte on outcome and trace at 1 and 4 shards.
    #[test]
    fn adapters_equiv_legacy_random_seeds(seed in 0u64..1_000) {
        let (base_out, base_trace) = outcome_and_trace(seed, ControlMode::DirectLegacy, 1);
        for shards in [1u32, 4] {
            let (out, trace) = outcome_and_trace(seed, ControlMode::Adapters, shards);
            prop_assert!(out == base_out, "seed {seed}: outcome drifted at {shards} shards");
            prop_assert!(trace == base_trace, "seed {seed}: trace drifted at {shards} shards");
        }
    }
}
