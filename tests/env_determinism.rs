//! Learned-controller determinism: training is a pure function of the
//! seed. A fixed-seed Q-learning run produces an identical trajectory
//! (every episode, step, chosen action, observation, and reward) every
//! time it is repeated, and a mid-training environment can be frozen and
//! revived without perturbing a byte of the remaining episode.
//!
//! CI runs the `e16_policy_env` bench twice and byte-diffs the emitted
//! trajectory + JSON fingerprints; this suite is the fast in-tree check.

use epa_cluster::node::NodeSpec;
use epa_cluster::system::{System, SystemSpec};
use epa_cluster::topology::Topology;
use epa_sched::engine::EngineConfig;
use epa_sched::env::{EnvConfig, PolicyEnv, RewardConfig};
use epa_sched::learn::{
    context_bucket, observation_features, standard_tiling, ActionCatalog, BanditConfig,
    ContextualBandit, QConfig, QLearner, N_CONTEXTS,
};
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::generator::{WorkloadGenerator, WorkloadParams};

fn system() -> System {
    SystemSpec {
        name: "env-det-24".into(),
        cabinets: 3,
        nodes_per_cabinet: 8,
        node: NodeSpec::typical_xeon(),
        topology: Topology::FatTree { arity: 8 },
        peak_tflops: 24.0,
    }
    .build()
}

fn make_env() -> PolicyEnv {
    let horizon = SimTime::from_hours(24.0);
    let jobs = WorkloadGenerator::new(WorkloadParams::typical(24, 11)).generate(horizon, 0);
    let mut config = EngineConfig::new(horizon);
    config.power_budget_watts = Some(24.0 * 290.0 * 0.8);
    config.seed = 0xE16;
    let env_config = EnvConfig {
        decision_interval: SimDuration::from_hours(2.0),
        reward: RewardConfig::default(),
    };
    PolicyEnv::new(system(), jobs, "easy-backfill", config, env_config).unwrap()
}

/// Trains a Q-learner for `episodes` episodes and returns the full
/// trajectory, one line per step: `episode step action reward obs-json`.
fn q_trajectory(episodes: u32) -> Vec<String> {
    let catalog = ActionCatalog::standard();
    let config = QConfig {
        episodes,
        ..QConfig::default()
    };
    let mut learner = QLearner::new(standard_tiling(), catalog.len(), config);
    let mut env = make_env();
    let mut lines = Vec::new();
    for ep in 0..episodes {
        let mut obs = env.reset();
        loop {
            let x = observation_features(&obs);
            let a = learner.act(&x);
            let r = env.step(&catalog.entries[a].actions);
            let x_next = observation_features(&r.observation);
            learner.update(&x, a, r.reward, &x_next, r.done);
            lines.push(format!(
                "{ep} {} {} {} {}",
                obs.t.as_secs(),
                catalog.entries[a].name,
                r.reward.to_bits(),
                serde_json::to_string(&r.observation).unwrap()
            ));
            obs = r.observation;
            if r.done {
                break;
            }
        }
        learner.end_episode();
        let outcome = env.finish();
        lines.push(format!(
            "{ep} outcome {}",
            serde_json::to_string(&outcome).unwrap()
        ));
    }
    lines
}

#[test]
fn q_training_is_byte_reproducible_from_seed() {
    let a = q_trajectory(3);
    let b = q_trajectory(3);
    assert!(a.len() > 10, "training must produce steps");
    assert!(a == b, "fixed-seed Q training diverged between two runs");
}

#[test]
fn bandit_training_is_byte_reproducible_from_seed() {
    let run = || {
        let catalog = ActionCatalog::standard();
        let mut bandit = ContextualBandit::new(N_CONTEXTS, catalog.len(), BanditConfig::default());
        let mut env = make_env();
        let mut lines = Vec::new();
        for ep in 0..2 {
            let mut obs = env.reset();
            loop {
                let c = context_bucket(&obs);
                let a = bandit.act(c);
                let r = env.step(&catalog.entries[a].actions);
                bandit.update(c, a, r.reward);
                lines.push(format!(
                    "{ep} {c} {} {}",
                    catalog.entries[a].name,
                    r.reward.to_bits()
                ));
                obs = r.observation;
                if r.done {
                    break;
                }
            }
            env.finish();
        }
        lines
    };
    assert!(run() == run(), "fixed-seed bandit training diverged");
}

#[test]
fn mid_training_env_snapshot_resumes_byte_identically() {
    // Drive an episode with learner-chosen actions, freeze mid-episode,
    // revive into a *fresh* environment, and check the remaining steps
    // and final outcome agree byte-for-byte with the uninterrupted run.
    let catalog = ActionCatalog::standard();
    let drive = |env: &mut PolicyEnv, learner: &mut QLearner, steps: usize| -> Vec<String> {
        let mut out = Vec::new();
        for _ in 0..steps {
            let x = observation_features(&env.observe());
            let a = learner.act(&x);
            let r = env.step(&catalog.entries[a].actions);
            out.push(format!(
                "{} {}",
                catalog.entries[a].name,
                serde_json::to_string(&r).unwrap()
            ));
            if r.done {
                break;
            }
        }
        out
    };

    // Uninterrupted run.
    let mut learner = QLearner::new(standard_tiling(), catalog.len(), QConfig::default());
    let mut env = make_env();
    env.reset();
    let head = drive(&mut env, &mut learner, 4);
    let tail_straight = drive(&mut env, &mut learner, 20);
    let out_straight = serde_json::to_string(&env.finish()).unwrap();

    // Interrupted run: same learner seed, same head, freeze, revive.
    let mut learner2 = QLearner::new(standard_tiling(), catalog.len(), QConfig::default());
    let mut env2 = make_env();
    env2.reset();
    let head2 = drive(&mut env2, &mut learner2, 4);
    assert!(head == head2, "pre-snapshot steps must already agree");
    let frozen = env2.snapshot();
    let mut env3 = make_env();
    env3.restore(&frozen)
        .expect("mid-training snapshot revives");
    let tail_resumed = drive(&mut env3, &mut learner2, 20);
    let out_resumed = serde_json::to_string(&env3.finish()).unwrap();

    assert!(
        tail_straight == tail_resumed,
        "post-resume steps diverged from the uninterrupted run"
    );
    assert!(
        out_straight == out_resumed,
        "final outcome diverged after mid-training resume"
    );
}
