//! Integration: every scheduling policy runs the same workload to
//! completion with sane outcomes, and theory-predicted orderings hold.

use epa_jsrm::cluster::node::NodeSpec;
use epa_jsrm::cluster::system::SystemSpec;
use epa_jsrm::cluster::topology::Topology;
use epa_jsrm::prelude::*;
use epa_jsrm::sched::policies::energy_aware::SchedulingGoal;

fn system(nodes: u32) -> SystemSpec {
    SystemSpec {
        name: "policy-matrix".into(),
        cabinets: nodes.div_ceil(16),
        nodes_per_cabinet: 16,
        node: NodeSpec::typical_xeon(),
        topology: Topology::FatTree { arity: 16 },
        peak_tflops: 1.0,
    }
}

fn workload(nodes: u32, seed: u64, days: f64) -> Vec<Job> {
    WorkloadGenerator::new(WorkloadParams::typical(nodes, seed))
        .generate(SimTime::from_days(days), 0)
}

fn run(policy: &mut dyn Policy, budget: Option<f64>) -> SimOutcome {
    // Debug-mode conservative backfilling is quadratic in queue depth;
    // half a day on 64 nodes exercises everything while staying fast.
    let nodes = 64u32;
    let horizon = SimTime::from_hours(12.0);
    let mut config = EngineConfig::new(horizon);
    config.power_budget_watts = budget;
    ClusterSim::new(
        system(nodes).build(),
        workload(nodes, 99, 0.5),
        policy,
        config,
    )
    .run()
}

#[test]
fn every_policy_completes_work() {
    let budget = Some(64.0 * 290.0 * 0.85);
    let outcomes = vec![
        run(&mut Fcfs, None),
        run(&mut EasyBackfill, None),
        run(&mut ConservativeBackfill, None),
        run(&mut PowerAwareBackfill::default(), budget),
        run(
            &mut EnergyAwareScheduler {
                goal: SchedulingGoal::EnergyToSolution,
                max_slowdown: 1.15,
            },
            None,
        ),
        run(&mut OverprovisionScheduler::default(), budget),
    ];
    for o in &outcomes {
        assert!(o.completed > 5, "{}: completed {}", o.policy, o.completed);
        assert!(o.utilization > 0.1, "{}: util {}", o.policy, o.utilization);
        assert!(o.energy_joules > 0.0);
        assert!(
            o.mean_bounded_slowdown >= 1.0,
            "{}: slowdown {}",
            o.policy,
            o.mean_bounded_slowdown
        );
    }
}

#[test]
fn energy_goal_uses_less_energy_per_job_than_performance_goal() {
    let energy = run(
        &mut EnergyAwareScheduler {
            goal: SchedulingGoal::EnergyToSolution,
            max_slowdown: 1.15,
        },
        None,
    );
    let perf = run(
        &mut EnergyAwareScheduler {
            goal: SchedulingGoal::Performance,
            max_slowdown: 1.15,
        },
        None,
    );
    // Energy per completed job must favor the energy goal (the LRZ knob).
    assert!(
        energy.energy_per_job_joules < perf.energy_per_job_joules,
        "energy goal {} vs performance goal {}",
        energy.energy_per_job_joules,
        perf.energy_per_job_joules
    );
}

#[test]
fn power_aware_holds_budget_where_easy_violates() {
    let budget_w = 64.0 * 290.0 * 0.7;
    let mut pa = PowerAwareBackfill::default();
    let constrained = run(&mut pa, Some(budget_w));
    // With the engine enforcing the ledger, violations are structural
    // zero; the policy's job is throughput under the cap.
    assert!(constrained.peak_watts <= budget_w + 64.0 * 90.0 + 1e-6);
    let mut easy = EasyBackfill;
    let unconstrained = run(&mut easy, None);
    assert!(
        unconstrained.peak_watts > budget_w,
        "unconstrained run should exceed the budget level ({} <= {})",
        unconstrained.peak_watts,
        budget_w
    );
}

#[test]
fn deterministic_across_policy_reuse() {
    // Using the same policy object twice must not leak state between runs.
    let mut p = EasyBackfill;
    let a = run(&mut p, None);
    let b = run(&mut p, None);
    assert_eq!(a.completed, b.completed);
    assert!((a.energy_joules - b.energy_joules).abs() < 1e-6);
}
