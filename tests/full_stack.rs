//! Integration tests spanning the whole workspace: site runs are
//! deterministic, physically consistent, and the survey pipeline
//! regenerates the paper's exhibits.

use epa_jsrm::prelude::*;
use epa_jsrm::survey::tables;

fn quick(key: &str, seed: u64) -> (epa_jsrm::sites::SiteConfig, SiteReport) {
    let mut site = epa_jsrm::sites::all_sites(seed)
        .into_iter()
        .find(|s| s.meta.key == key)
        .expect("site exists");
    site.horizon = SimTime::from_hours(12.0);
    let report = run_site(&site);
    (site, report)
}

#[test]
fn site_runs_are_deterministic() {
    let (_, a) = quick("lrz", 99);
    let (_, b) = quick("lrz", 99);
    assert_eq!(a.outcome.completed, b.outcome.completed);
    assert!((a.outcome.energy_joules - b.outcome.energy_joules).abs() < 1e-6);
    assert!((a.outcome.mean_wait_secs - b.outcome.mean_wait_secs).abs() < 1e-9);
    assert_eq!(a.interactions.total(), b.interactions.total());
}

#[test]
fn different_seeds_differ() {
    let (_, a) = quick("lrz", 1);
    let (_, b) = quick("lrz", 2);
    assert_ne!(
        (a.outcome.completed, a.outcome.energy_joules.to_bits()),
        (b.outcome.completed, b.outcome.energy_joules.to_bits())
    );
}

#[test]
fn energy_is_physically_bounded() {
    for key in ["stfc", "kaust", "cineca"] {
        let (site, report) = quick(key, 5);
        let span_secs = 12.0 * 3600.0;
        let idle_floor = site.system.idle_watts() * span_secs;
        let peak_ceiling = site.system.peak_watts() * span_secs;
        assert!(
            report.outcome.energy_joules >= idle_floor * 0.5,
            "{key}: energy below plausible idle floor"
        );
        assert!(
            report.outcome.energy_joules <= peak_ceiling,
            "{key}: energy above physical ceiling"
        );
        assert!(report.outcome.peak_watts <= site.system.peak_watts() * 1.001);
    }
}

#[test]
fn budgeted_sites_hold_their_budget() {
    // KAUST and Trinity run hard admission budgets; the measured peak may
    // exceed the *granted* budget only by the idle draw of non-busy nodes
    // (grants cover running nodes; idle nodes draw idle watts).
    for key in ["kaust", "trinity"] {
        let (site, report) = quick(key, 5);
        let budget = site.power_budget_watts.unwrap();
        let slack = site.system.idle_watts();
        assert!(
            report.outcome.peak_watts <= budget + slack,
            "{key}: peak {} exceeds budget {} + idle slack {}",
            report.outcome.peak_watts,
            budget,
            slack
        );
    }
}

#[test]
fn workload_summaries_answer_q3e() {
    let (_, report) = quick("tokyo-tech", 5);
    let w = report.workload.expect("workload present");
    assert!(w.size.min >= 1.0);
    assert!(w.size.p10 <= w.size.p25 && w.size.p25 <= w.size.median);
    assert!(w.size.median <= w.size.p75 && w.size.p75 <= w.size.p90);
    assert!(w.size.p90 <= w.size.max);
    assert!(w.runtime_secs.min > 0.0);
    assert!(w.jobs_per_month > 0.0);
}

#[test]
fn tables_render_from_fresh_runs() {
    let reports: Vec<SiteReport> = epa_jsrm::sites::all_sites(4)
        .into_iter()
        .map(|mut s| {
            s.horizon = SimTime::from_hours(6.0);
            run_site(&s)
        })
        .collect();
    let t1 = tables::render_table1(&reports);
    let t2 = tables::render_table2(&reports);
    assert!(t1.contains("RIKEN"));
    assert!(t1.contains("270 W"));
    assert!(t2.contains("CINECA"));
    assert!(t2.contains("post-job energy"));
    let evidence = tables::render_evidence(&reports);
    assert_eq!(evidence.lines().count(), 10);
}

#[test]
fn interaction_ledger_reflects_activity() {
    use epa_jsrm::rm::interactions::{Component, InteractionKind};
    let (_, report) = quick("tokyo-tech", 5);
    // Telemetry sampled hardware at every power tick.
    assert!(
        report.interactions.count(
            Component::Telemetry,
            Component::Hardware,
            InteractionKind::PowerMonitor
        ) > 100
    );
    // User submissions flowed to the scheduler.
    assert!(
        report.interactions.count(
            Component::Users,
            Component::JobScheduler,
            InteractionKind::ResourceControl
        ) > 0
    );
}

#[test]
fn swf_roundtrip_through_engine() {
    // Jobs written to SWF, read back, and simulated produce the same
    // outcome as the originals (within SWF's 1-second quantization).
    use epa_jsrm::workload::trace::{read_swf, write_swf};
    let nodes = 64u32;
    let spec = epa_jsrm::cluster::system::SystemSpec {
        name: "swf-test".into(),
        cabinets: 4,
        nodes_per_cabinet: 16,
        node: epa_jsrm::cluster::node::NodeSpec::typical_xeon(),
        topology: epa_jsrm::cluster::topology::Topology::FatTree { arity: 16 },
        peak_tflops: 1.0,
    };
    let horizon = SimTime::from_hours(24.0);
    let jobs = WorkloadGenerator::new(WorkloadParams::typical(nodes, 77)).generate(horizon, 0);
    let roundtripped = read_swf(&write_swf(&jobs)).unwrap();
    assert_eq!(jobs.len(), roundtripped.len());

    let mut p1 = EasyBackfill;
    let out1 = ClusterSim::new(
        spec.clone().build(),
        jobs,
        &mut p1,
        EngineConfig::new(horizon),
    )
    .run();
    let mut p2 = EasyBackfill;
    let out2 = ClusterSim::new(
        spec.build(),
        roundtripped,
        &mut p2,
        EngineConfig::new(horizon),
    )
    .run();
    assert_eq!(out1.completed, out2.completed);
    let diff = (out1.utilization - out2.utilization).abs();
    assert!(
        diff < 0.02,
        "utilization drifted {diff} after SWF roundtrip"
    );
}

#[test]
fn easy_dominates_fcfs_on_heavy_load() {
    // The E8 headline, asserted as a test: EASY utilization >= FCFS.
    use epa_jsrm::workload::arrival::ArrivalProcess;
    let nodes = 64u32;
    let spec = epa_jsrm::cluster::system::SystemSpec {
        name: "e8-test".into(),
        cabinets: 4,
        nodes_per_cabinet: 16,
        node: epa_jsrm::cluster::node::NodeSpec::typical_xeon(),
        topology: epa_jsrm::cluster::topology::Topology::FatTree { arity: 16 },
        peak_tflops: 1.0,
    };
    let horizon = SimTime::from_days(2.0);
    let mut params = WorkloadParams::typical(nodes, 31);
    params.arrivals = ArrivalProcess::Poisson {
        rate_per_hour: 10.0,
    };
    let jobs = WorkloadGenerator::new(params).generate(horizon, 0);
    let mut fcfs = Fcfs;
    let a = ClusterSim::new(
        spec.clone().build(),
        jobs.clone(),
        &mut fcfs,
        EngineConfig::new(horizon),
    )
    .run();
    let mut easy = EasyBackfill;
    let b = ClusterSim::new(spec.build(), jobs, &mut easy, EngineConfig::new(horizon)).run();
    assert!(
        b.utilization >= a.utilization - 1e-9,
        "easy {} < fcfs {}",
        b.utilization,
        a.utilization
    );
    assert!(b.completed >= a.completed);
}
