//! Shard determinism: the partitioned engine is **byte-identical** to
//! the single-shard engine at every shard count and every thread count.
//!
//! The conservative-window design makes this a hard guarantee, not a
//! tolerance: shard queues share the global `(time, seq)` numbering, so
//! the merged application order — and every floating-point fold — is the
//! single-queue order regardless of how many queues the events waited in.
//! These tests pin the guarantee over a scenario that crosses shard
//! boundaries deliberately: multi-cabinet jobs, correlated failure-domain
//! (cabinet/PDU) faults, emergency kills, requeue, and idle shutdown on a
//! 16-cabinet machine, for shard counts {1, 2, 4, 16} × seeds.

use epa_cluster::node::NodeSpec;
use epa_cluster::system::{System, SystemSpec};
use epa_cluster::topology::Topology;
use epa_faults::{DomainFaultConfig, FaultConfig};
use epa_obs::{trace_to_jsonl, TraceConfig};
use epa_sched::emergency::EmergencyPolicy;
use epa_sched::engine::{ClusterSim, EngineConfig};
use epa_sched::policies::backfill::EasyBackfill;
use epa_sched::shutdown::ShutdownPolicy;
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::generator::{WorkloadGenerator, WorkloadParams};
use proptest::prelude::*;

const NODES: u32 = 32;
const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 16];

/// 16 cabinets × 2 nodes: at 16 shards every cabinet is its own shard,
/// so any 3+-node job and any cabinet-level domain fault crosses a
/// shard boundary.
fn sharded_system() -> System {
    SystemSpec {
        name: "sharded-32".into(),
        cabinets: 16,
        nodes_per_cabinet: 2,
        node: NodeSpec::typical_xeon(),
        topology: Topology::FatTree { arity: 16 },
        peak_tflops: 32.0,
    }
    .build()
}

/// A run that exercises every barrier interaction with the shard
/// mailboxes: domain faults kill jobs whose phase changes are staged in
/// other shards' queues, shutdown drains complete shard-locally, the
/// emergency policy kills at power ticks, and requeue restarts attempts.
fn outcome_and_trace(seed: u64, shards: u32) -> (String, String) {
    let horizon = SimTime::from_days(1.0);
    let jobs = WorkloadGenerator::new(WorkloadParams::typical(NODES, seed)).generate(horizon, 0);
    let mut config = EngineConfig::new(horizon);
    config.trace = TraceConfig::all();
    config.power_budget_watts = Some(f64::from(NODES) * 290.0 * 0.7);
    config.emergency = Some(EmergencyPolicy::new(f64::from(NODES) * 290.0 * 0.65));
    config.shutdown = Some(ShutdownPolicy::default());
    config.requeue_killed = true;
    config.checkpoint_interval = Some(SimDuration::from_mins(30.0));
    config.node_mtbf = Some(SimDuration::from_hours(18.0));
    config.repair_time = SimDuration::from_hours(1.0);
    config.faults = Some(FaultConfig {
        domain: Some(DomainFaultConfig {
            mtbf: SimDuration::from_hours(8.0),
            repair_time: SimDuration::from_hours(1.0),
        }),
        ..FaultConfig::default()
    });
    config.seed = seed;
    config.shards = Some(shards);
    let mut policy = EasyBackfill;
    let (out, obs) = ClusterSim::new(sharded_system(), jobs, &mut policy, config).run_traced();
    let outcome = serde_json::to_string_pretty(&out).expect("SimOutcome serializes");
    (outcome, trace_to_jsonl(&obs.trace))
}

#[test]
fn sharded_outcome_and_trace_match_single_shard() {
    let (base_out, base_trace) = outcome_and_trace(0xD5, 1);
    for shards in &SHARD_COUNTS[1..] {
        let (out, trace) = outcome_and_trace(0xD5, *shards);
        assert!(
            out == base_out,
            "SimOutcome drifted between 1 and {shards} shards"
        );
        assert!(
            trace == base_trace,
            "exported trace drifted between 1 and {shards} shards"
        );
    }
}

#[test]
fn sharded_outcome_invariant_under_thread_count() {
    for &shards in &SHARD_COUNTS {
        let serial = rayon::with_num_threads(1, || outcome_and_trace(42, shards));
        let par = rayon::with_num_threads(4, || outcome_and_trace(42, shards));
        assert!(
            serial == par,
            "{shards}-shard run drifted between 1 and 4 threads"
        );
    }
}

#[test]
fn shard_count_beyond_cabinets_clamps_and_matches() {
    // More shards than cabinets clamps to one shard per cabinet — the
    // outcome must still match exactly.
    let (base, _) = outcome_and_trace(7, 1);
    let (clamped, _) = outcome_and_trace(7, 64);
    assert!(clamped == base, "clamped shard count drifted");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// Byte-identity holds for arbitrary seeds and shard counts, domain
    /// faults and all — not just the hand-picked scenarios above.
    #[test]
    fn sharding_never_changes_bytes(seed in 0u64..1_000_000, k in 1usize..SHARD_COUNTS.len()) {
        let base = outcome_and_trace(seed, 1);
        let sharded = outcome_and_trace(seed, SHARD_COUNTS[k]);
        prop_assert!(sharded == base, "seed {seed}: {} shards drifted", SHARD_COUNTS[k]);
    }
}
