//! Chaos invariant harness: the full fault model — correlated rack/PDU
//! events, sensor dropout/stuck-at with staleness fallback, unreliable
//! actuators with retry/fence escalation — switched on simultaneously
//! over many seeds, asserting the invariants that graceful degradation
//! must preserve:
//!
//! 1. **No job is lost** with `requeue_killed` on: every submitted job
//!    either reaches exactly one clean terminal record or is still
//!    queued/running at the horizon.
//! 2. **Energy is conserved**: system energy dominates the sum of job
//!    energies and sits between the idle floor and the nameplate ceiling.
//! 3. **The power budget is never exceeded beyond the declared margin**:
//!    peak draw stays under budget + the idle draw of non-granted nodes,
//!    even while sensors lie — the grant ledger is structural, not
//!    telemetry-driven.
//! 4. **Determinism**: identical seeds produce byte-identical serialized
//!    outcomes, faults and all.
//!
//! Plus failure-accounting consistency (per-node counts sum to the
//! total, MTTR respects the configured repair times) on every run.

use epa_cluster::node::NodeSpec;
use epa_cluster::system::{System, SystemSpec};
use epa_cluster::topology::Topology;
use epa_faults::{ActuatorFaultConfig, DomainFaultConfig, FaultConfig, SensorFaultConfig};
use epa_sched::emergency::EmergencyPolicy;
use epa_sched::engine::{ClusterSim, EngineConfig, SimOutcome};
use epa_sched::policies::backfill::EasyBackfill;
use epa_sched::policies::fcfs::Fcfs;
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::generator::{WorkloadGenerator, WorkloadParams};
use epa_workload::job::JobBuilder;
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};

const NODES: u32 = 32;
const IDLE_W: f64 = 90.0;
const PEAK_W: f64 = 400.0;
const NOMINAL_W: f64 = 290.0;
const BUDGET_FRAC: f64 = 0.7;
const REPAIR_HOURS: f64 = 1.0;

/// Fixed seed set; ≥10 per the harness contract.
const SEEDS: [u64; 12] = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233];

fn chaos_system() -> System {
    SystemSpec {
        name: "chaos-32".into(),
        cabinets: 4,
        nodes_per_cabinet: 8,
        node: NodeSpec::typical_xeon(),
        topology: Topology::FatTree { arity: 16 },
        peak_tflops: 32.0,
    }
    .build()
}

fn chaos_faults(seed: u64) -> FaultConfig {
    FaultConfig {
        domain: Some(DomainFaultConfig {
            mtbf: SimDuration::from_hours(12.0),
            repair_time: SimDuration::from_hours(REPAIR_HOURS),
        }),
        sensor: Some(SensorFaultConfig {
            dropout_prob: 0.25,
            stuck_prob: 0.05,
            ..SensorFaultConfig::default()
        }),
        actuator: Some(ActuatorFaultConfig {
            fail_prob: 0.15,
            ..ActuatorFaultConfig::default()
        }),
        seed,
    }
}

/// One fully-loaded chaos run: budget + demand response, emergency
/// response, requeue + checkpointing, independent node failures, and
/// every fault stream — executed on the 4-shard partitioned engine, so
/// the debug-build shard invariant checker (partition integrity, no
/// time-travelling mailbox messages) runs under full chaos.
/// Returns the outcome and the submitted-job count.
fn chaos_run(seed: u64) -> (SimOutcome, u64) {
    chaos_run_sharded(seed, 4)
}

fn chaos_jobs(seed: u64) -> Vec<epa_workload::job::Job> {
    let horizon = SimTime::from_days(2.0);
    WorkloadGenerator::new(WorkloadParams::typical(NODES, seed)).generate(horizon, 0)
}

fn chaos_config(seed: u64, shards: u32) -> EngineConfig {
    let mut config = EngineConfig::new(SimTime::from_days(2.0));
    config.power_budget_watts = Some(f64::from(NODES) * NOMINAL_W * BUDGET_FRAC);
    config.emergency = Some(EmergencyPolicy::new(f64::from(NODES) * NOMINAL_W * 0.65));
    config.requeue_killed = true;
    config.checkpoint_interval = Some(SimDuration::from_mins(30.0));
    config.node_mtbf = Some(SimDuration::from_hours(24.0));
    config.repair_time = SimDuration::from_hours(REPAIR_HOURS);
    config.seed = seed;
    config.faults = Some(chaos_faults(seed));
    config.shards = Some(shards);
    config
}

fn chaos_run_sharded(seed: u64, shards: u32) -> (SimOutcome, u64) {
    let jobs = chaos_jobs(seed);
    let n = jobs.len() as u64;
    let mut policy = EasyBackfill;
    let out = ClusterSim::new(
        chaos_system(),
        jobs,
        &mut policy,
        chaos_config(seed, shards),
    )
    .run();
    (out, n)
}

fn assert_invariants(out: &SimOutcome, n: u64, seed: u64) {
    // 1. No job lost: exactly one clean terminal record per finished id,
    //    and terminal ids + unfinished account for every submission.
    let mut terminal: HashMap<u64, u64> = HashMap::new();
    for j in &out.jobs {
        if !j.killed_by_emergency && !j.killed_by_failure {
            *terminal.entry(j.id.0).or_insert(0) += 1;
        }
    }
    for (id, count) in &terminal {
        assert_eq!(*count, 1, "seed {seed}: job {id} finished {count} times");
    }
    assert_eq!(
        terminal.len() as u64 + out.unfinished,
        n,
        "seed {seed}: jobs lost (terminal {} + unfinished {} != submitted {n})",
        terminal.len(),
        out.unfinished
    );

    // 2. Energy conservation.
    let job_energy: f64 = out.jobs.iter().map(|j| j.energy_joules).sum();
    assert!(
        out.energy_joules >= job_energy,
        "seed {seed}: system energy {} below job sum {job_energy}",
        out.energy_joules
    );
    let span = 2.0 * 86_400.0;
    let idle_floor = f64::from(NODES) * IDLE_W * span;
    let peak_ceiling = f64::from(NODES) * PEAK_W * span;
    assert!(out.energy_joules >= idle_floor * 0.9, "seed {seed}");
    assert!(out.energy_joules <= peak_ceiling * 1.001, "seed {seed}");

    // 3. Budget never exceeded beyond the declared margin: granted power
    //    is bounded by the ledger; non-granted nodes add at most idle.
    let budget = f64::from(NODES) * NOMINAL_W * BUDGET_FRAC;
    let idle_slack = f64::from(NODES) * IDLE_W;
    assert!(
        out.peak_watts <= budget + idle_slack + 1e-6,
        "seed {seed}: peak {} vs budget {budget} + idle slack {idle_slack}",
        out.peak_watts
    );

    // Failure accounting is internally consistent.
    assert_eq!(
        out.per_node_failures.iter().sum::<u64>(),
        out.node_failures,
        "seed {seed}"
    );
    if out.node_failures > 0 {
        assert!(out.node_downtime_secs > 0.0, "seed {seed}");
    }
    if out.mttr_secs > 0.0 {
        assert!(
            out.mttr_secs >= REPAIR_HOURS * 3600.0 - 1e-6,
            "seed {seed}: MTTR {} below configured repair time",
            out.mttr_secs
        );
    }
    assert!(
        out.utilization >= 0.0 && out.utilization <= 1.0 + 1e-9,
        "seed {seed}"
    );

    // Robustness counters come from the obs metrics registry — the one
    // source of truth — and are folded into both the typed outcome fields
    // and the legacy counter map; the two views must agree.
    let c = |k: &str| out.counters.get(k).copied().unwrap_or(0);
    assert_eq!(out.requeues, c("jobs/requeued"), "seed {seed}");
    assert_eq!(
        out.telemetry_fallbacks,
        c("faults/telemetry_fallbacks"),
        "seed {seed}"
    );
    assert_eq!(out.fenced_nodes, c("faults/fenced_nodes"), "seed {seed}");
}

#[test]
fn chaos_invariants_hold_across_seeds() {
    // Seeds are independent simulations — fan them across the pool and
    // assert over the collected outcomes in seed order.
    let outcomes: Vec<(SimOutcome, u64)> = SEEDS.par_iter().map(|&seed| chaos_run(seed)).collect();
    let mut total_faults = 0u64;
    for (&seed, (out, n)) in SEEDS.iter().zip(&outcomes) {
        assert_invariants(out, *n, seed);
        total_faults += out.node_failures;
    }
    // The harness must actually be chaotic: faults fired somewhere.
    assert!(total_faults > 0, "no fault ever fired across all seeds");
}

#[test]
fn chaos_runs_are_byte_identical_per_seed() {
    let pairs: Vec<(u64, String, String)> = SEEDS[..4]
        .par_iter()
        .map(|&seed| {
            let (a, _) = chaos_run(seed);
            let (b, _) = chaos_run(seed);
            let sa = serde_json::to_string_pretty(&a).expect("serializes");
            let sb = serde_json::to_string_pretty(&b).expect("serializes");
            (seed, sa, sb)
        })
        .collect();
    for (seed, sa, sb) in &pairs {
        assert!(sa == sb, "seed {seed}: outcomes drifted between runs");
    }
}

#[test]
fn chaos_runs_are_byte_identical_across_shard_counts() {
    // The partitioned engine must survive full chaos — correlated domain
    // failures killing jobs whose phase changes sit in other shards'
    // mailboxes — without a byte of drift from the single-shard run.
    let pairs: Vec<(u64, String, String)> = SEEDS[..4]
        .par_iter()
        .map(|&seed| {
            let (a, _) = chaos_run_sharded(seed, 1);
            let (b, _) = chaos_run_sharded(seed, 4);
            let sa = serde_json::to_string_pretty(&a).expect("serializes");
            let sb = serde_json::to_string_pretty(&b).expect("serializes");
            (seed, sa, sb)
        })
        .collect();
    for (seed, sa, sb) in &pairs {
        assert!(
            sa == sb,
            "seed {seed}: outcomes drifted between 1 and 4 shards"
        );
    }
}

/// Invariant 5 — **crash-safe resume**: for every seed, snapshotting the
/// fully chaotic 4-shard run mid-horizon, dropping the engine, and
/// resuming from the snapshot bytes lands on an outcome byte-identical
/// to the straight-through run. Faults, sensors, actuators, budget
/// ledger, and requeue state all cross the crash boundary.
#[test]
fn chaos_resume_mid_horizon_is_byte_identical() {
    let results: Vec<(u64, String, String)> = SEEDS
        .par_iter()
        .map(|&seed| {
            let (straight, _) = chaos_run(seed);
            let mut policy = EasyBackfill;
            let mut sim = ClusterSim::new(
                chaos_system(),
                chaos_jobs(seed),
                &mut policy,
                chaos_config(seed, 4),
            );
            let snap = sim.run_until(SimTime::from_days(1.0));
            drop(sim); // the crash: only the snapshot bytes survive
            let mut policy = EasyBackfill;
            let resumed = ClusterSim::resume(
                chaos_system(),
                chaos_jobs(seed),
                &mut policy,
                chaos_config(seed, 4),
                &snap,
            )
            .expect("resume from a mid-horizon chaos snapshot");
            let out = resumed.run();
            let sa = serde_json::to_string_pretty(&straight).expect("serializes");
            let sb = serde_json::to_string_pretty(&out).expect("serializes");
            (seed, sa, sb)
        })
        .collect();
    for (seed, sa, sb) in &results {
        assert!(
            sa == sb,
            "seed {seed}: resumed chaos outcome drifted from the straight-through run"
        );
    }
}

/// Total sensor dropout drives telemetry past the staleness bound: the
/// scheduler must fall back to conservative estimates (counter fires),
/// keep completing work, and never let the degraded mode push draw past
/// the budget + margin.
#[test]
fn sensor_blackout_triggers_fallback_without_budget_breach() {
    let horizon = SimTime::from_days(1.0);
    let jobs = WorkloadGenerator::new(WorkloadParams::typical(NODES, 7)).generate(horizon, 0);
    let mut config = EngineConfig::new(horizon);
    config.power_budget_watts = Some(f64::from(NODES) * NOMINAL_W * BUDGET_FRAC);
    config.requeue_killed = true;
    config.faults = Some(FaultConfig {
        sensor: Some(SensorFaultConfig {
            dropout_prob: 1.0,
            stuck_prob: 0.0,
            ..SensorFaultConfig::default()
        }),
        ..FaultConfig::default()
    });
    let mut policy = EasyBackfill;
    let out = ClusterSim::new(chaos_system(), jobs, &mut policy, config).run();
    let stale_ticks = out
        .counters
        .get("faults/telemetry_stale_ticks")
        .copied()
        .unwrap_or(0);
    // The typed field is fed by the obs registry; the counter map carries
    // the same value (one source of truth, two views).
    assert!(
        out.telemetry_fallbacks > 0,
        "staleness must trigger the fallback"
    );
    assert_eq!(
        out.telemetry_fallbacks,
        out.counters
            .get("faults/telemetry_fallbacks")
            .copied()
            .unwrap_or(0)
    );
    assert!(stale_ticks > 0, "blackout keeps telemetry stale");
    assert!(
        out.counters
            .get("faults/telemetry_dropouts")
            .copied()
            .unwrap_or(0)
            > 0
    );
    assert!(out.completed > 0, "degraded mode must keep scheduling");
    let budget = f64::from(NODES) * NOMINAL_W * BUDGET_FRAC;
    let idle_slack = f64::from(NODES) * IDLE_W;
    assert!(
        out.peak_watts <= budget + idle_slack + 1e-6,
        "degraded mode exceeded the budget: peak {}",
        out.peak_watts
    );
}

/// A dead actuation channel escalates to fencing: cap writes fail on
/// every attempt, the engine rolls the starts back (no job lost), and
/// nodes that keep failing cap writes are fenced and repaired.
#[test]
fn dead_actuator_fences_nodes_without_losing_jobs() {
    let horizon = SimTime::from_hours(24.0);
    // 8-node jobs over an 8-node machine with a sub-demand budget: every
    // start needs a cap-to-fit write, which always fails.
    let jobs: Vec<_> = (0..4)
        .map(|i| {
            JobBuilder::new(i)
                .nodes(8)
                .app(epa_workload::job::AppProfile::compute_bound("hpl"))
                .runtime(SimDuration::from_hours(1.0))
                .estimate(SimDuration::from_hours(3.0))
                .submit(SimTime::from_hours(f64::from(i as u32)))
                .build()
        })
        .collect();
    let n = jobs.len() as u64;
    let sys = SystemSpec {
        name: "fence-8".into(),
        cabinets: 1,
        nodes_per_cabinet: 8,
        node: NodeSpec::typical_xeon(),
        topology: Topology::FatTree { arity: 8 },
        peak_tflops: 1.0,
    }
    .build();
    let mut config = EngineConfig::new(horizon);
    config.power_budget_watts = Some(1900.0);
    config.requeue_killed = true;
    config.repair_time = SimDuration::from_hours(2.0);
    config.faults = Some(FaultConfig {
        actuator: Some(ActuatorFaultConfig {
            fail_prob: 1.0,
            max_retries: 1,
            fence_after: 2,
            ..ActuatorFaultConfig::default()
        }),
        ..FaultConfig::default()
    });
    let mut policy = Fcfs;
    let out = ClusterSim::new(sys, jobs, &mut policy, config).run();
    let failed_starts = out
        .counters
        .get("sched/start_actuation_failed")
        .copied()
        .unwrap_or(0);
    let fenced = out.fenced_nodes;
    assert!(failed_starts > 0, "cap writes must fail");
    assert!(fenced > 0, "repeated failures must fence nodes");
    assert_eq!(
        fenced,
        out.counters
            .get("faults/fenced_nodes")
            .copied()
            .unwrap_or(0),
        "typed field and counter map must agree"
    );
    assert!(
        out.counters
            .get("faults/actuator_attempts")
            .copied()
            .unwrap_or(0)
            >= 2 * failed_starts,
        "retries must be attempted and logged"
    );
    // No job can ever start, but none is lost either.
    let terminal: HashSet<u64> = out
        .jobs
        .iter()
        .filter(|j| !j.killed_by_emergency && !j.killed_by_failure)
        .map(|j| j.id.0)
        .collect();
    assert_eq!(terminal.len() as u64 + out.unfinished, n, "jobs lost");
    // Fenced nodes were repaired and counted.
    assert!(out.node_failures >= fenced);
}
