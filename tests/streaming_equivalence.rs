//! Streaming-path equivalence properties.
//!
//! Two contracts under test:
//!
//! 1. **SWF parsing** — a trace pulled job-by-job through the streaming
//!    [`SwfStreamSource`] yields exactly the jobs the materialized
//!    `read_swf` parser yields, both for round-tripped generated
//!    workloads and for adversarial hand-built traces: `-1` missing
//!    fields, cancelled lines (non-positive runtime or node count),
//!    `; App:` tag-table lines interleaved between job lines, plain
//!    comments, and blank lines.
//! 2. **Engine equivalence** — an engine fed by a
//!    [`LazyGeneratorSource`] is byte-identical (pretty-JSON outcome
//!    plus exported JSONL decision trace) to the materialized engine
//!    over the same horizon, across shards {1, 4} × threads {1, 4},
//!    including a mid-run snapshot/crash/resume of the streaming
//!    engine in every grid cell. This is the small-scale property twin
//!    of the `streaming_smoke` CI binary: proptest varies the workload
//!    seed instead of pinning one.
//!
//! [`SwfStreamSource`]: epa_workload::source::SwfStreamSource
//! [`LazyGeneratorSource`]: epa_workload::source::LazyGeneratorSource

use epa_cluster::node::NodeSpec;
use epa_cluster::system::{System, SystemSpec};
use epa_cluster::topology::Topology;
use epa_obs::{trace_to_jsonl, CategoryMask, TraceConfig};
use epa_sched::engine::{ClusterSim, EngineConfig};
use epa_sched::policies::backfill::EasyBackfill;
use epa_simcore::time::SimTime;
use epa_workload::generator::{WorkloadGenerator, WorkloadParams};
use epa_workload::job::Job;
use epa_workload::source::{collect_source, swf_text_source, JobSource, LazyGeneratorSource};
use epa_workload::trace::{read_swf, write_swf};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Part 1: SWF streaming parse == materialized parse.
// ---------------------------------------------------------------------------

/// Parses `text` both ways and asserts the job lists are identical and
/// the streaming cursor agrees with the number of jobs it handed out.
fn assert_swf_paths_agree(text: String) -> Vec<Job> {
    let materialized = read_swf(&text).expect("generated SWF text parses");
    let mut source = swf_text_source(text, "prop");
    let streamed = collect_source(&mut source);
    assert_eq!(source.emitted(), streamed.len() as u64);
    assert_eq!(streamed, materialized);
    materialized
}

/// An SWF integer field that is present or `-1` (missing).
fn maybe(present: std::ops::Range<i64>) -> BoxedStrategy<i64> {
    prop_oneof![Just(-1i64), present].boxed()
}

/// One 18-field SWF job line with the columns this parser reads
/// (id, submit, runtime, allocated procs, requested procs, requested
/// time, user, application id) randomized — any of them possibly `-1`.
/// Lines whose runtime and node count do not both come out positive
/// are cancelled entries both parsers must skip.
fn job_line() -> BoxedStrategy<String> {
    (
        (1u64..10_000, 0i64..100_000, maybe(1..86_400), maybe(1..64)),
        (maybe(1..64), maybe(60..100_000), maybe(0..32), maybe(0..8)),
    )
        .prop_map(
            |((id, submit, runtime, alloc), (req, req_time, user, app))| {
                format!(
                    "{id} {submit} -1 {runtime} {alloc} -1 -1 {req} {req_time} \
                 -1 -1 {user} -1 {app} -1 -1 -1 -1"
                )
            },
        )
        .boxed()
}

/// One line of an adversarial SWF file. Job lines are weighted up so a
/// typical case still parses a few dozen jobs.
fn swf_line() -> BoxedStrategy<String> {
    prop_oneof![
        Just(String::new()),
        Just("; an ordinary comment".to_owned()),
        (0i64..8, 0u32..5).prop_map(|(id, tag)| format!("; App: {id} tag{tag}")),
        job_line(),
        job_line(),
        job_line(),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Round trip: a generated workload written with `write_swf` parses
    /// to the same jobs through the streaming and materialized paths.
    #[test]
    fn swf_stream_matches_read_on_roundtripped_workloads(seed in 0u64..1_000_000) {
        let params = WorkloadParams::typical(64, seed);
        let jobs = WorkloadGenerator::new(params).generate(SimTime::from_hours(12.0), 0);
        let parsed = assert_swf_paths_agree(write_swf(&jobs));
        // Cross-check against the writer: every written job survives
        // (ids in order), since the generator never emits cancelled rows.
        assert_eq!(
            parsed.iter().map(|j| j.id).collect::<Vec<_>>(),
            jobs.iter().map(|j| j.id).collect::<Vec<_>>(),
        );
    }

    /// Adversarial traces: random interleavings of blank lines,
    /// comments, `; App:` tag-table entries (which only apply to job
    /// lines *after* them — both parsers are single-pass), and job
    /// lines with `-1` holes and cancelled rows.
    #[test]
    fn swf_stream_matches_read_on_adversarial_traces(
        lines in proptest::collection::vec(swf_line(), 0..60),
        trailing_newline in proptest::bool::ANY,
    ) {
        let mut text = lines.join("\n");
        if trailing_newline {
            text.push('\n');
        }
        assert_swf_paths_agree(text);
    }
}

// ---------------------------------------------------------------------------
// Part 2: lazy-generator engine == materialized engine, across the grid.
// ---------------------------------------------------------------------------

const NODES: u32 = 32;
const HORIZON_HOURS: f64 = 24.0;

fn grid_system() -> System {
    SystemSpec {
        name: "stream-eq-32".into(),
        cabinets: 4,
        nodes_per_cabinet: 8,
        node: NodeSpec::typical_xeon(),
        topology: Topology::FatTree { arity: 16 },
        peak_tflops: 32.0,
    }
    .build()
}

fn horizon() -> SimTime {
    SimTime::from_hours(HORIZON_HOURS)
}

/// The streaming engine configuration (aggregate-only completions,
/// bounded power trace, no prediction history) with full decision
/// tracing on, applied to *both* sides so outcomes are comparable
/// byte for byte.
fn grid_config(seed: u64, shards: u32) -> EngineConfig {
    let mut config = EngineConfig::new(horizon());
    config.seed = seed;
    config.shards = Some(shards);
    config.record_history = false;
    config.retain_completed = false;
    config.bounded_power_trace = true;
    config.trace = TraceConfig {
        mask: CategoryMask::ALL,
        ..TraceConfig::default()
    };
    config
}

/// Serialized outcome + exported JSONL trace of a finished run.
fn run_fingerprint(sim: ClusterSim<'_>) -> (String, String) {
    let (out, bundle) = sim.run_traced();
    let outcome = serde_json::to_string(&out).expect("outcome serializes");
    (outcome, trace_to_jsonl(&bundle.trace))
}

fn materialized_run(seed: u64, shards: u32) -> (String, String) {
    let jobs = WorkloadGenerator::new(WorkloadParams::typical(NODES, seed)).generate(horizon(), 0);
    let mut policy = EasyBackfill;
    run_fingerprint(ClusterSim::new(
        grid_system(),
        jobs,
        &mut policy,
        grid_config(seed, shards),
    ))
}

fn lazy_source(seed: u64) -> Box<LazyGeneratorSource> {
    Box::new(LazyGeneratorSource::new(
        WorkloadParams::typical(NODES, seed),
        horizon(),
        0,
    ))
}

fn streaming_run(seed: u64, shards: u32) -> (String, String) {
    let mut policy = EasyBackfill;
    run_fingerprint(
        ClusterSim::try_new_with_source(
            grid_system(),
            lazy_source(seed),
            &mut policy,
            grid_config(seed, shards),
        )
        .expect("valid streaming config"),
    )
}

/// Streaming run killed at mid-horizon and resumed from the snapshot
/// with a freshly constructed source (the snapshot carries the source
/// cursor, which replays the generator up to the crash point).
fn streaming_resumed_run(seed: u64, shards: u32) -> (String, String) {
    let mut policy = EasyBackfill;
    let mut sim = ClusterSim::try_new_with_source(
        grid_system(),
        lazy_source(seed),
        &mut policy,
        grid_config(seed, shards),
    )
    .expect("valid streaming config");
    let snap = sim.run_until(SimTime::from_secs(horizon().as_secs() / 2.0));
    drop(sim); // the crash
    let mut policy = EasyBackfill;
    run_fingerprint(
        ClusterSim::resume_with_source(
            grid_system(),
            lazy_source(seed),
            &mut policy,
            grid_config(seed, shards),
            &snap,
        )
        .expect("streaming snapshot resumes"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Outcome + trace of the lazy-generator engine match the
    /// materialized engine at every shard × thread combination, with
    /// and without a mid-run crash/resume.
    #[test]
    fn lazy_engine_is_byte_identical_across_the_grid(seed in 0u64..1_000_000) {
        let base = rayon::with_num_threads(1, || materialized_run(seed, 1));
        for shards in [1u32, 4] {
            for threads in [1usize, 4] {
                let m = rayon::with_num_threads(threads, || materialized_run(seed, shards));
                let s = rayon::with_num_threads(threads, || streaming_run(seed, shards));
                let r =
                    rayon::with_num_threads(threads, || streaming_resumed_run(seed, shards));
                for (label, got) in
                    [("materialized", &m), ("streaming", &s), ("streaming+resume", &r)]
                {
                    assert_eq!(
                        got, &base,
                        "{label} run diverged from the 1-shard/1-thread materialized \
                         baseline at seed {seed}, {shards} shards x {threads} threads"
                    );
                }
            }
        }
    }
}
