//! Kill-point injection harness for crash-safe snapshot/resume.
//!
//! Per chaos seed, the engine is killed (dropped) at randomized window
//! barriers — including mid-campaign under 4 shards × 4 threads — and
//! resumed from the latest snapshot, possibly several times in a chain
//! (crash → resume → crash again → resume). The contract under test:
//!
//! 1. The final [`SimOutcome`] of the resumed run is **byte-identical**
//!    (pretty-JSON) to the uninterrupted run of the same seed.
//! 2. The exported JSONL decision trace is byte-identical too: the
//!    snapshot carries the trace ring, so a resumed run's trace is
//!    indistinguishable from one that never crashed.
//! 3. Both hold across the shard × thread grid: the snapshot's shard
//!    layout must match at resume, but the thread count is free to
//!    change across the crash boundary.
//! 4. Corrupt, truncated, version-skewed, or mismatched snapshots are
//!    rejected with typed [`SnapshotError`]s — never a panic, never a
//!    silently divergent run.

use epa_cluster::node::NodeSpec;
use epa_cluster::system::{System, SystemSpec};
use epa_cluster::topology::Topology;
use epa_faults::{ActuatorFaultConfig, DomainFaultConfig, FaultConfig, SensorFaultConfig};
use epa_obs::{trace_to_jsonl, TraceConfig};
use epa_sched::emergency::EmergencyPolicy;
use epa_sched::engine::{ClusterSim, EngineConfig};
use epa_sched::policies::backfill::EasyBackfill;
use epa_sched::Snapshot;
use epa_simcore::snap::SnapshotError;
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::generator::{WorkloadGenerator, WorkloadParams};
use epa_workload::job::Job;

const NODES: u32 = 32;
const NOMINAL_W: f64 = 290.0;
const BUDGET_FRAC: f64 = 0.7;
const HORIZON_DAYS: f64 = 2.0;

fn chaos_system() -> System {
    SystemSpec {
        name: "resume-32".into(),
        cabinets: 4,
        nodes_per_cabinet: 8,
        node: NodeSpec::typical_xeon(),
        topology: Topology::FatTree { arity: 16 },
        peak_tflops: 32.0,
    }
    .build()
}

fn chaos_jobs(seed: u64) -> Vec<Job> {
    let horizon = SimTime::from_days(HORIZON_DAYS);
    WorkloadGenerator::new(WorkloadParams::typical(NODES, seed)).generate(horizon, 0)
}

/// The full chaos configuration from `tests/chaos.rs`, with the trace
/// fully enabled so the JSONL export exercises every category.
fn chaos_config(seed: u64, shards: u32) -> EngineConfig {
    let mut config = EngineConfig::new(SimTime::from_days(HORIZON_DAYS));
    config.power_budget_watts = Some(f64::from(NODES) * NOMINAL_W * BUDGET_FRAC);
    config.emergency = Some(EmergencyPolicy::new(f64::from(NODES) * NOMINAL_W * 0.65));
    config.requeue_killed = true;
    config.checkpoint_interval = Some(SimDuration::from_mins(30.0));
    config.node_mtbf = Some(SimDuration::from_hours(24.0));
    config.repair_time = SimDuration::from_hours(1.0);
    config.seed = seed;
    config.faults = Some(FaultConfig {
        domain: Some(DomainFaultConfig {
            mtbf: SimDuration::from_hours(12.0),
            repair_time: SimDuration::from_hours(1.0),
        }),
        sensor: Some(SensorFaultConfig {
            dropout_prob: 0.25,
            stuck_prob: 0.05,
            ..SensorFaultConfig::default()
        }),
        actuator: Some(ActuatorFaultConfig {
            fail_prob: 0.15,
            ..ActuatorFaultConfig::default()
        }),
        seed,
    });
    config.shards = Some(shards);
    config.trace = TraceConfig::all();
    config
}

/// Serialized (outcome, trace) pair used for byte comparison.
fn fingerprint_run(
    out: &epa_sched::engine::SimOutcome,
    bundle: &epa_obs::ObsBundle,
) -> (String, String) {
    (
        serde_json::to_string_pretty(out).expect("outcome serializes"),
        trace_to_jsonl(&bundle.trace),
    )
}

/// Straight-through run: no crash, no snapshot.
fn uninterrupted(seed: u64, shards: u32) -> (String, String) {
    let mut policy = EasyBackfill;
    let sim = ClusterSim::new(
        chaos_system(),
        chaos_jobs(seed),
        &mut policy,
        chaos_config(seed, shards),
    );
    let (out, bundle) = sim.run_traced();
    fingerprint_run(&out, &bundle)
}

/// Deterministic pseudo-random kill fractions of the horizon, ascending,
/// derived from the seed so every seed crashes at different barriers.
fn kill_fractions(seed: u64) -> [f64; 3] {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut fracs = [0.0f64; 3];
    for (i, slot) in fracs.iter_mut().enumerate() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let jitter = (x % 1000) as f64 / 1000.0;
        *slot = 0.12 + 0.25 * i as f64 + 0.12 * jitter;
    }
    fracs
}

/// Runs the same workload but killed at each fraction of the horizon:
/// the engine is advanced to the barrier, snapshotted, *dropped* (the
/// crash), and a brand-new engine is resumed from the snapshot bytes
/// (round-tripped through `from_bytes` to model a disk read). After the
/// last crash the run is driven to completion with full tracing.
fn killed_and_resumed(seed: u64, shards: u32, fracs: &[f64]) -> (String, String) {
    let horizon_secs = HORIZON_DAYS * 86_400.0;
    let mut policy = EasyBackfill;
    let mut sim = ClusterSim::new(
        chaos_system(),
        chaos_jobs(seed),
        &mut policy,
        chaos_config(seed, shards),
    );
    let mut snap = sim.run_until(SimTime::from_secs(horizon_secs * fracs[0]));
    drop(sim); // the crash
    for &frac in &fracs[1..] {
        // Model the crash boundary: only the bytes survive.
        let bytes = Snapshot::from_bytes(snap.as_bytes().to_vec());
        bytes.verify_frame().expect("snapshot frame intact");
        let mut policy = EasyBackfill;
        let mut sim = ClusterSim::resume(
            chaos_system(),
            chaos_jobs(seed),
            &mut policy,
            chaos_config(seed, shards),
            &bytes,
        )
        .expect("resume from intact snapshot");
        snap = sim.run_until(SimTime::from_secs(horizon_secs * frac));
        drop(sim);
    }
    let bytes = Snapshot::from_bytes(snap.into_bytes());
    let mut policy = EasyBackfill;
    let sim = ClusterSim::resume(
        chaos_system(),
        chaos_jobs(seed),
        &mut policy,
        chaos_config(seed, shards),
        &bytes,
    )
    .expect("resume from intact snapshot");
    let (out, bundle) = sim.run_traced();
    fingerprint_run(&out, &bundle)
}

/// Mid-campaign crashes under 4 shards × 4 threads: a three-crash chain
/// at seed-randomized barriers must replay to a byte-identical outcome
/// and trace.
#[test]
fn multi_crash_resume_is_byte_identical_4_shards_4_threads() {
    for seed in [1u64, 8, 55] {
        let fracs = kill_fractions(seed);
        let (base_out, base_trace) = rayon::with_num_threads(4, || uninterrupted(seed, 4));
        let (out, trace) = rayon::with_num_threads(4, || killed_and_resumed(seed, 4, &fracs));
        assert!(
            out == base_out,
            "seed {seed}: resumed outcome drifted (kill points {fracs:?})"
        );
        assert!(
            trace == base_trace,
            "seed {seed}: resumed trace drifted (kill points {fracs:?})"
        );
    }
}

/// The shard × thread grid: every combination of shards ∈ {1, 4} and
/// threads ∈ {1, 4}, crashed once mid-horizon, must land on the same
/// bytes as the uninterrupted single-shard serial run.
#[test]
fn crash_resume_matches_across_shard_thread_grid() {
    let seed = 13u64;
    let (base_out, base_trace) = rayon::with_num_threads(1, || uninterrupted(seed, 1));
    for shards in [1u32, 4] {
        for threads in [1usize, 4] {
            let (out, trace) =
                rayon::with_num_threads(threads, || killed_and_resumed(seed, shards, &[0.5]));
            assert!(
                out == base_out,
                "seed {seed}: outcome drifted at {shards} shards x {threads} threads"
            );
            assert!(
                trace == base_trace,
                "seed {seed}: trace drifted at {shards} shards x {threads} threads"
            );
        }
    }
}

/// The thread count may change across the crash boundary: snapshot under
/// one thread, finish under four (and vice versa).
#[test]
fn thread_count_may_change_across_the_crash_boundary() {
    let seed = 21u64;
    let (base_out, base_trace) = rayon::with_num_threads(1, || uninterrupted(seed, 4));
    let snap = rayon::with_num_threads(1, || {
        let mut policy = EasyBackfill;
        let mut sim = ClusterSim::new(
            chaos_system(),
            chaos_jobs(seed),
            &mut policy,
            chaos_config(seed, 4),
        );
        sim.run_until(SimTime::from_days(HORIZON_DAYS / 2.0))
    });
    let (out, trace) = rayon::with_num_threads(4, || {
        let mut policy = EasyBackfill;
        let sim = ClusterSim::resume(
            chaos_system(),
            chaos_jobs(seed),
            &mut policy,
            chaos_config(seed, 4),
            &snap,
        )
        .expect("resume across thread-count change");
        let (out, bundle) = sim.run_traced();
        fingerprint_run(&out, &bundle)
    });
    assert!(out == base_out, "outcome drifted across thread change");
    assert!(trace == base_trace, "trace drifted across thread change");
}

/// A snapshot taken after the run already completed resumes to the same
/// final state (and `run_until` past the horizon is a clean no-op).
#[test]
fn snapshot_after_completion_resumes_to_identical_outcome() {
    let seed = 2u64;
    let (base_out, _) = uninterrupted(seed, 4);
    let mut policy = EasyBackfill;
    let mut sim = ClusterSim::new(
        chaos_system(),
        chaos_jobs(seed),
        &mut policy,
        chaos_config(seed, 4),
    );
    let snap = sim.run_until(SimTime::from_days(HORIZON_DAYS * 10.0));
    drop(sim);
    let mut policy = EasyBackfill;
    let sim = ClusterSim::resume(
        chaos_system(),
        chaos_jobs(seed),
        &mut policy,
        chaos_config(seed, 4),
        &snap,
    )
    .expect("resume a completed run");
    let (out, bundle) = sim.run_traced();
    let (out, _) = fingerprint_run(&out, &bundle);
    assert!(out == base_out, "completed-run snapshot drifted");
}

// ---------------------------------------------------------------------
// Typed rejection of damaged or mismatched snapshots. None of these may
// panic; each must surface the precise SnapshotError variant.
// ---------------------------------------------------------------------

/// A small, fast snapshot for the corruption tests.
fn small_snapshot(seed: u64) -> Snapshot {
    let mut policy = EasyBackfill;
    let mut sim = ClusterSim::new(
        chaos_system(),
        chaos_jobs(seed),
        &mut policy,
        chaos_config(seed, 4),
    );
    sim.run_until(SimTime::from_hours(6.0))
}

fn try_resume(snapshot: &Snapshot, seed: u64, shards: u32) -> Result<(), SnapshotError> {
    let mut policy = EasyBackfill;
    ClusterSim::resume(
        chaos_system(),
        chaos_jobs(seed),
        &mut policy,
        chaos_config(seed, shards),
        snapshot,
    )
    .map(|_| ())
}

#[test]
fn corrupt_snapshot_is_rejected_with_checksum_mismatch() {
    let snap = small_snapshot(3);
    let mut bytes = snap.into_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF; // flip a payload bit
    let err = try_resume(&Snapshot::from_bytes(bytes), 3, 4).unwrap_err();
    assert!(
        matches!(err, SnapshotError::ChecksumMismatch { .. }),
        "expected ChecksumMismatch, got {err:?}"
    );
}

#[test]
fn truncated_snapshot_is_rejected_with_truncated() {
    let snap = small_snapshot(3);
    let mut bytes = snap.into_bytes();
    bytes.truncate(bytes.len() - 16);
    let err = try_resume(&Snapshot::from_bytes(bytes), 3, 4).unwrap_err();
    assert!(
        matches!(err, SnapshotError::Truncated { .. }),
        "expected Truncated, got {err:?}"
    );
}

#[test]
fn garbage_magic_is_rejected_with_bad_magic() {
    let snap = small_snapshot(3);
    let mut bytes = snap.into_bytes();
    bytes[0] ^= 0xFF;
    let err = try_resume(&Snapshot::from_bytes(bytes), 3, 4).unwrap_err();
    assert!(
        matches!(err, SnapshotError::BadMagic),
        "expected BadMagic, got {err:?}"
    );
    // Arbitrary junk with no frame at all is equally typed, never a panic.
    let err = try_resume(&Snapshot::from_bytes(vec![0x42; 64]), 3, 4).unwrap_err();
    assert!(matches!(err, SnapshotError::BadMagic), "got {err:?}");
}

#[test]
fn version_skew_is_rejected_with_unsupported_version() {
    let snap = small_snapshot(3);
    let mut bytes = snap.into_bytes();
    // The u32 schema version sits right after the 8-byte magic.
    bytes[8] ^= 0xFF;
    let err = try_resume(&Snapshot::from_bytes(bytes), 3, 4).unwrap_err();
    assert!(
        matches!(err, SnapshotError::UnsupportedVersion { .. }),
        "expected UnsupportedVersion, got {err:?}"
    );
}

#[test]
fn mismatched_config_is_rejected_with_config_mismatch() {
    let snap = small_snapshot(3);
    // Same machine, different seed → different workload + fingerprint.
    let err = try_resume(&snap, 4, 4).unwrap_err();
    assert!(
        matches!(err, SnapshotError::ConfigMismatch { .. }),
        "expected ConfigMismatch, got {err:?}"
    );
}

#[test]
fn mismatched_shard_layout_is_rejected_with_topology_mismatch() {
    let snap = small_snapshot(3);
    // Same config fingerprint, different shard partition.
    let err = try_resume(&snap, 3, 1).unwrap_err();
    assert!(
        matches!(err, SnapshotError::TopologyMismatch { .. }),
        "expected TopologyMismatch, got {err:?}"
    );
}

#[test]
fn snapshot_survives_a_disk_roundtrip() {
    let snap = small_snapshot(5);
    let dir = std::env::temp_dir().join("epa-resume-determinism");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("crash.snap");
    snap.save(&path).unwrap();
    let loaded = Snapshot::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(loaded, snap);
    loaded.verify_frame().expect("frame intact after roundtrip");
    try_resume(&loaded, 5, 4).expect("resume from disk");
}
