//! Golden determinism test: a fixed-seed simulation serializes to a
//! byte-for-byte identical `SimOutcome` across runs and across refactors.
//!
//! The scenario deliberately crosses every engine subsystem whose order
//! of operations a hot-path change could disturb: backfilling, a power
//! budget with a demand-response resize, idle shutdown with demand boot,
//! emergency kills with requeue + checkpointing, and node failures.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test determinism_golden
//! ```

use epa_cluster::node::NodeSpec;
use epa_cluster::system::{System, SystemSpec};
use epa_cluster::topology::Topology;
use epa_sched::emergency::EmergencyPolicy;
use epa_sched::engine::{ClusterSim, EngineConfig, SimOutcome};
use epa_sched::policies::backfill::EasyBackfill;
use epa_sched::shutdown::ShutdownPolicy;
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::generator::{WorkloadGenerator, WorkloadParams};
use rayon::prelude::*;

const GOLDEN_PATH: &str = "tests/golden/sim_outcome.json";

fn golden_system() -> System {
    SystemSpec {
        name: "golden-32".into(),
        cabinets: 2,
        nodes_per_cabinet: 16,
        node: NodeSpec::typical_xeon(),
        topology: Topology::FatTree { arity: 16 },
        peak_tflops: 32.0,
    }
    .build()
}

fn golden_run() -> SimOutcome {
    let horizon = SimTime::from_days(2.0);
    let jobs = WorkloadGenerator::new(WorkloadParams::typical(32, 42)).generate(horizon, 0);
    let mut config = EngineConfig::new(horizon);
    config.power_budget_watts = Some(32.0 * 290.0 * 0.7);
    config.budget_schedule = vec![
        (SimTime::from_hours(20.0), 32.0 * 290.0 * 0.4),
        (SimTime::from_hours(26.0), 32.0 * 290.0 * 0.7),
    ];
    config.shutdown = Some(ShutdownPolicy::default());
    config.emergency = Some(EmergencyPolicy::new(32.0 * 290.0 * 0.65));
    config.requeue_killed = true;
    config.checkpoint_interval = Some(SimDuration::from_mins(30.0));
    config.node_mtbf = Some(SimDuration::from_hours(18.0));
    config.repair_time = SimDuration::from_hours(2.0);
    config.seed = 0xD5;
    let mut policy = EasyBackfill;
    ClusterSim::new(golden_system(), jobs, &mut policy, config).run()
}

fn serialize(outcome: &SimOutcome) -> String {
    serde_json::to_string_pretty(outcome).expect("SimOutcome serializes") + "\n"
}

#[test]
fn fixed_seed_outcome_matches_golden() {
    let got = serialize(&golden_run());
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all("tests/golden").expect("mkdir golden");
        std::fs::write(GOLDEN_PATH, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file exists (regenerate with UPDATE_GOLDEN=1)");
    assert!(
        got == want,
        "SimOutcome drifted from the committed golden ({} vs {} bytes). \
         If the change is intentional, regenerate with UPDATE_GOLDEN=1.",
        got.len(),
        want.len()
    );
}

#[test]
fn fixed_seed_outcome_is_run_to_run_deterministic() {
    assert_eq!(serialize(&golden_run()), serialize(&golden_run()));
}

/// The golden outcome is invariant under the thread pool: running the
/// simulation (and a 4-seed replication sweep around it) with 1 thread
/// and with 4 threads produces byte-identical serialized outcomes. CI
/// additionally runs this whole test binary under `EPA_JSRM_THREADS=1`
/// and `EPA_JSRM_THREADS=4` and diffs the results.
#[test]
fn golden_outcome_invariant_under_thread_count() {
    let serial = rayon::with_num_threads(1, || serialize(&golden_run()));
    let par = rayon::with_num_threads(4, || serialize(&golden_run()));
    assert!(
        serial == par,
        "golden outcome drifted between 1 and 4 threads"
    );

    // And through the campaign runner: independent seeds fanned across
    // the pool must merge to the same bytes as a serial sweep.
    let seeds = [1u64, 2, 3, 4];
    let sweep = |threads: usize| {
        rayon::with_num_threads(threads, || {
            seeds
                .par_iter()
                .map(|&seed| {
                    let horizon = SimTime::from_days(1.0);
                    let jobs = WorkloadGenerator::new(WorkloadParams::typical(32, seed))
                        .generate(horizon, 0);
                    let mut config = EngineConfig::new(horizon);
                    config.seed = seed;
                    let mut policy = EasyBackfill;
                    serialize(&ClusterSim::new(golden_system(), jobs, &mut policy, config).run())
                })
                .collect::<Vec<String>>()
        })
    };
    assert!(
        sweep(1) == sweep(4),
        "replication sweep drifted between 1 and 4 threads"
    );
}
