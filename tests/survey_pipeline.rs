//! Integration tests for the survey pipeline: the compiled report must
//! reproduce the paper's qualitative content.

use epa_jsrm::prelude::*;
use epa_jsrm::sites::taxonomy::{Mechanism, Stage};
use epa_jsrm::survey::analysis::{common_mechanisms, unique_mechanisms};
use epa_jsrm::survey::questionnaire::Question;

fn quick_survey() -> SurveyReport {
    let configs = epa_jsrm::sites::all_sites(8)
        .into_iter()
        .map(|mut s| {
            s.horizon = SimTime::from_hours(6.0);
            s
        })
        .collect();
    SurveyReport::compile(configs)
}

#[test]
fn table_rows_match_paper_site_split() {
    use epa_jsrm::survey::tables::{TABLE1_SITES, TABLE2_SITES};
    // Tables I and II carry 5 + 4 centers in the paper's order.
    assert_eq!(TABLE1_SITES.len() + TABLE2_SITES.len(), 9);
    assert_eq!(TABLE1_SITES[0], "riken");
    assert_eq!(TABLE2_SITES[3], "jcahpc");
}

#[test]
fn every_site_answers_every_question() {
    let survey = quick_survey();
    assert_eq!(survey.responses.len(), 9);
    for r in &survey.responses {
        for q in Question::ALL {
            assert!(!r.answer(q).is_empty(), "{} left {q:?} empty", r.site);
        }
    }
}

#[test]
fn paper_headline_findings_reproduce() {
    let survey = quick_survey();
    // 1. All nine sites have production EPA JSRM (survey §V).
    for key in survey.matrix.site_keys() {
        assert!(
            !survey
                .matrix
                .mechanisms_at(key, Stage::Production)
                .is_empty(),
            "{key} lacks production capability"
        );
    }
    // 2. Hardware power capping is the dominant production mechanism.
    let cap_sites = survey
        .matrix
        .coverage(Mechanism::PowerCapping, Stage::Production);
    assert!(cap_sites >= 3, "power capping sites: {cap_sites}");
    // 3. Common themes exist at the research stage (monitoring is near
    //    universal), and unique production approaches exist (MS3 etc.).
    assert!(!common_mechanisms(&survey.matrix, Stage::Research, 4).is_empty());
    assert!(!unique_mechanisms(&survey.matrix, Stage::Production).is_empty());
}

#[test]
fn figure1_interactions_cover_all_four_categories() {
    use epa_jsrm::rm::interactions::InteractionKind;
    let survey = quick_survey();
    let totals = survey.interactions.kind_totals();
    for kind in InteractionKind::ALL {
        assert!(
            totals.get(&kind).copied().unwrap_or(0) > 0,
            "no interactions of kind {kind:?} — Figure 1 incomplete"
        );
    }
}

#[test]
fn figure2_regions_match_paper() {
    use epa_jsrm::survey::geomap::{regional_totals, Region};
    let metas: Vec<_> = epa_jsrm::sites::all_sites(1)
        .into_iter()
        .map(|s| s.meta)
        .collect();
    let totals = regional_totals(&metas);
    // "These span the geographic regions of Asia, Europe and the United
    // States" — 4 Asia (3× Japan + Saudi Arabia), 4 Europe, 1 US.
    assert_eq!(totals[&Region::Asia], 4);
    assert_eq!(totals[&Region::Europe], 4);
    assert_eq!(totals[&Region::Americas], 1);
}

#[test]
fn selection_criteria_accept_all_nine() {
    use epa_jsrm::survey::selection::SelectionCriteria;
    let criteria = SelectionCriteria::default();
    for site in epa_jsrm::sites::all_sites(1) {
        assert!(criteria.apply(&site).selected(), "{}", site.meta.key);
    }
}

#[test]
fn full_report_renders_every_exhibit() {
    let survey = quick_survey();
    let doc = survey.render_full();
    for marker in [
        "TABLE I",
        "TABLE II",
        "Figure 1",
        "Figure 2",
        "Capability coverage",
        "Q1Motivation",
        "Q8NextSteps",
    ] {
        assert!(doc.contains(marker), "report missing {marker}");
    }
    // Every center's name appears.
    for name in ["RIKEN", "KAUST", "Trinity", "CINECA", "JCAHPC"] {
        assert!(doc.contains(name), "report missing {name}");
    }
}
