//! Columnar compressed storage for decision-trace records.
//!
//! The ring buffer in [`crate::trace::TraceBus`] bounds memory by
//! *dropping* the oldest records — fine for post-mortem inspection,
//! wrong for a million-job campaign that wants the *whole* decision
//! trace on disk. [`CompressedTraceLog`] is the lossless complement: it
//! accepts every record, stores them in columnar delta-compressed chunks
//! (times and sequence numbers as varint deltas, event payloads through
//! their compact snapshot encoding), and optionally spills sealed chunks
//! to a writer so resident memory stays bounded by the chunk size no
//! matter how long the run is.
//!
//! Decoding is transparent and exact: [`CompressedTraceLog::iter`] (and
//! [`TraceLogReader`] for spilled streams) yield the identical
//! [`TraceRecord`]s that went in, so a JSONL export of a compressed log
//! is byte-for-byte the export the live ring would have produced for the
//! same records — the replay-verification contract survives compression.

use crate::trace::{TraceEvent, TraceRecord};
use epa_simcore::chunk::{read_varint, write_varint};
use epa_simcore::snap::{SnapReader, SnapWriter};
use epa_simcore::time::SimTime;
use std::io::{self, Read, Write};

/// Magic bytes opening a spilled trace-log stream; the trailing digit is
/// the schema version.
pub const TRACE_LOG_MAGIC: [u8; 8] = *b"EPATRCL1";

/// Version stamped on each chunk's event blob (via the snapshot frame).
const TRACE_CHUNK_VERSION: u32 = 1;

/// Records per sealed chunk by default.
pub const DEFAULT_RECORDS_PER_CHUNK: usize = 4096;

/// Encodes one self-contained chunk: record count, then the time column
/// (XOR-of-previous bit patterns, byte-swapped so trailing-zero bytes
/// vanish in the varint), the sequence column (deltas — consecutive
/// records cost one byte), and the event payloads as one framed,
/// checksummed snapshot blob.
fn encode_records(records: &[TraceRecord]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(records.len() * 8);
    write_varint(&mut buf, records.len() as u64);
    let mut prev_t = 0u64;
    for r in records {
        let bits = r.t.as_secs().to_bits();
        write_varint(&mut buf, (bits ^ prev_t).swap_bytes());
        prev_t = bits;
    }
    let mut prev_seq = 0u64;
    for r in records {
        write_varint(&mut buf, r.seq.wrapping_sub(prev_seq));
        prev_seq = r.seq;
    }
    let mut w = SnapWriter::new();
    for r in records {
        r.event.snapshot_into(&mut w);
    }
    let blob = w.finish(TRACE_CHUNK_VERSION);
    write_varint(&mut buf, blob.len() as u64);
    buf.extend_from_slice(&blob);
    buf
}

/// Decodes a chunk written by `encode_records`.
fn decode_records(bytes: &[u8]) -> io::Result<Vec<TraceRecord>> {
    let corrupt = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
    let mut pos = 0usize;
    let n = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("truncated record count".into()))?;
    let n = usize::try_from(n).map_err(|_| corrupt("record count overflows usize".into()))?;
    let mut times = Vec::with_capacity(n);
    let mut prev_t = 0u64;
    for _ in 0..n {
        let raw =
            read_varint(bytes, &mut pos).ok_or_else(|| corrupt("truncated time column".into()))?;
        let bits = raw.swap_bytes() ^ prev_t;
        prev_t = bits;
        times.push(SimTime::from_secs(f64::from_bits(bits)));
    }
    let mut seqs = Vec::with_capacity(n);
    let mut prev_seq = 0u64;
    for _ in 0..n {
        let d =
            read_varint(bytes, &mut pos).ok_or_else(|| corrupt("truncated seq column".into()))?;
        prev_seq = prev_seq.wrapping_add(d);
        seqs.push(prev_seq);
    }
    let blob_len = read_varint(bytes, &mut pos)
        .ok_or_else(|| corrupt("truncated event-blob length".into()))?;
    let blob_len =
        usize::try_from(blob_len).map_err(|_| corrupt("event blob overflows usize".into()))?;
    let blob = bytes
        .get(pos..pos + blob_len)
        .ok_or_else(|| corrupt("truncated event blob".into()))?;
    if pos + blob_len != bytes.len() {
        return Err(corrupt("trailing bytes after event blob".into()));
    }
    let mut r = SnapReader::open(blob, TRACE_CHUNK_VERSION)
        .map_err(|e| corrupt(format!("event blob frame invalid: {e}")))?;
    let mut out = Vec::with_capacity(n);
    for (t, seq) in times.into_iter().zip(seqs) {
        let event = TraceEvent::restore_from(&mut r)
            .map_err(|e| corrupt(format!("event decode failed: {e}")))?;
        out.push(TraceRecord { t, seq, event });
    }
    Ok(out)
}

/// A lossless, append-only compressed decision-trace log.
///
/// Records accumulate in an open tail; every `cap` records the tail is
/// sealed into one compressed chunk. Sealed chunks stay resident by
/// default (iterate with [`CompressedTraceLog::iter`]); in spill mode
/// they are written to the sink as they seal and replayed later with
/// [`TraceLogReader`].
pub struct CompressedTraceLog {
    cap: usize,
    sealed: Vec<Vec<u8>>,
    tail: Vec<TraceRecord>,
    len: u64,
    spill: Option<Box<dyn Write + Send>>,
    spilled_chunks: u64,
}

impl std::fmt::Debug for CompressedTraceLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressedTraceLog")
            .field("cap", &self.cap)
            .field("sealed", &self.sealed.len())
            .field("tail", &self.tail.len())
            .field("len", &self.len)
            .field("spilling", &self.spill.is_some())
            .field("spilled_chunks", &self.spilled_chunks)
            .finish()
    }
}

impl Default for CompressedTraceLog {
    fn default() -> Self {
        Self::new()
    }
}

impl CompressedTraceLog {
    /// An in-memory compressed log with the default chunk size.
    #[must_use]
    pub fn new() -> Self {
        Self::with_cap(DEFAULT_RECORDS_PER_CHUNK)
    }

    /// An in-memory compressed log sealing every `cap` records.
    ///
    /// # Panics
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn with_cap(cap: usize) -> Self {
        assert!(cap > 0, "chunk capacity must be positive");
        CompressedTraceLog {
            cap,
            sealed: Vec::new(),
            tail: Vec::new(),
            len: 0,
            spill: None,
            spilled_chunks: 0,
        }
    }

    /// A spilling log: writes the stream header now and every sealed
    /// chunk (length-prefixed) to `sink` as it fills. Spilled chunks are
    /// no longer iterable from this object — replay the written bytes
    /// with [`TraceLogReader`].
    pub fn spilling(cap: usize, mut sink: Box<dyn Write + Send>) -> io::Result<Self> {
        assert!(cap > 0, "chunk capacity must be positive");
        sink.write_all(&TRACE_LOG_MAGIC)?;
        Ok(CompressedTraceLog {
            cap,
            sealed: Vec::new(),
            tail: Vec::new(),
            len: 0,
            spill: Some(sink),
            spilled_chunks: 0,
        })
    }

    /// Appends a record. Seals (and in spill mode writes out) a chunk
    /// when the tail reaches the chunk capacity.
    pub fn push(&mut self, record: TraceRecord) -> io::Result<()> {
        self.tail.push(record);
        self.len += 1;
        if self.tail.len() >= self.cap {
            self.seal()?;
        }
        Ok(())
    }

    fn seal(&mut self) -> io::Result<()> {
        if self.tail.is_empty() {
            return Ok(());
        }
        let chunk = encode_records(&self.tail);
        self.tail.clear();
        match self.spill.as_mut() {
            Some(sink) => {
                let mut frame = Vec::with_capacity(4);
                write_varint(&mut frame, chunk.len() as u64);
                sink.write_all(&frame)?;
                sink.write_all(&chunk)?;
                self.spilled_chunks += 1;
            }
            None => self.sealed.push(chunk),
        }
        Ok(())
    }

    /// Seals the open tail and flushes the sink. Call at end of run in
    /// spill mode so the written stream holds every record.
    pub fn finish(&mut self) -> io::Result<()> {
        self.seal()?;
        if let Some(sink) = self.spill.as_mut() {
            sink.flush()?;
        }
        Ok(())
    }

    /// Total records pushed (including spilled ones).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no records have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Chunks written to the spill sink so far.
    #[must_use]
    pub fn spilled_chunks(&self) -> u64 {
        self.spilled_chunks
    }

    /// Compressed bytes currently resident (sealed chunks; the open tail
    /// is counted at a nominal raw width).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.sealed.iter().map(Vec::len).sum::<usize>()
            + self.tail.len() * std::mem::size_of::<TraceRecord>()
    }

    /// Iterates every record still resident, oldest first — sealed
    /// chunks decode transparently, then the open tail. In spill mode
    /// this covers only the unsealed tail.
    pub fn iter(&self) -> impl Iterator<Item = TraceRecord> + '_ {
        self.sealed
            .iter()
            .flat_map(|c| decode_records(c).expect("sealed chunks are self-produced and valid"))
            .chain(self.tail.iter().cloned())
    }

    /// Renders the resident records as JSONL — one
    /// `serde_json::to_string` object per record, the identical line
    /// encoding [`crate::export::trace_to_jsonl`] uses, so compressed
    /// and ring-buffered exports of the same records are byte-equal.
    #[must_use]
    pub fn records_to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.iter() {
            out.push_str(&serde_json::to_string(&rec).expect("trace record serializes"));
            out.push('\n');
        }
        out
    }
}

/// Replays a spilled trace-log stream written by
/// [`CompressedTraceLog::spilling`]: validates the header, then yields
/// records chunk by chunk, holding one decoded chunk at a time.
pub struct TraceLogReader<R: Read> {
    src: R,
    current: std::vec::IntoIter<TraceRecord>,
    done: bool,
}

impl<R: Read> TraceLogReader<R> {
    /// Opens a stream, validating the magic/version header.
    pub fn open(mut src: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        src.read_exact(&mut magic)?;
        if magic != TRACE_LOG_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad trace-log magic {magic:02x?}"),
            ));
        }
        Ok(TraceLogReader {
            src,
            current: Vec::new().into_iter(),
            done: false,
        })
    }

    fn read_varint(&mut self) -> io::Result<Option<u64>> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let mut byte = [0u8; 1];
            match self.src.read_exact(&mut byte) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof && shift == 0 => {
                    return Ok(None);
                }
                Err(e) => return Err(e),
            }
            v |= u64::from(byte[0] & 0x7f) << shift;
            if byte[0] & 0x80 == 0 {
                return Ok(Some(v));
            }
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "varint exceeds u64",
        ))
    }

    fn load_next_chunk(&mut self) -> io::Result<bool> {
        let Some(frame_len) = self.read_varint()? else {
            self.done = true;
            return Ok(false);
        };
        let frame_len = usize::try_from(frame_len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "chunk frame too large"))?;
        let mut frame = vec![0u8; frame_len];
        self.src.read_exact(&mut frame)?;
        self.current = decode_records(&frame)?.into_iter();
        Ok(true)
    }
}

impl<R: Read> Iterator for TraceLogReader<R> {
    type Item = io::Result<TraceRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(rec) = self.current.next() {
                return Some(Ok(rec));
            }
            if self.done {
                return None;
            }
            match self.load_next_chunk() {
                Ok(true) => {}
                Ok(false) => return None,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CategoryMask, KillReason, TraceBus};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sample_records(n: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord {
                t: t(i as f64 * 30.0),
                seq: i,
                event: match i % 3 {
                    0 => TraceEvent::JobSubmitted {
                        job: i,
                        nodes: 4,
                        queue_depth: i + 1,
                    },
                    1 => TraceEvent::JobStarted {
                        job: i,
                        nodes: 4,
                        watts_per_node: 250.0,
                        wait_secs: 12.5,
                        backfilled: i % 6 == 1,
                        capped_to_fit: false,
                    },
                    _ => TraceEvent::JobKilled {
                        job: i,
                        reason: KillReason::Walltime,
                        run_secs: 3600.0,
                    },
                },
            })
            .collect()
    }

    /// A `'static` clonable byte sink for exercising spill mode.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn roundtrip_across_chunk_boundaries() {
        let records = sample_records(100);
        let mut log = CompressedTraceLog::with_cap(16);
        for rec in &records {
            log.push(rec.clone()).unwrap();
        }
        assert_eq!(log.len(), 100);
        let got: Vec<TraceRecord> = log.iter().collect();
        assert_eq!(got, records);
    }

    #[test]
    fn jsonl_lines_match_ring_export_bytes() {
        let records = sample_records(40);
        let mut ring = TraceBus::new(CategoryMask::ALL, 1024);
        let mut log = CompressedTraceLog::with_cap(7);
        for rec in &records {
            ring.record(rec.t, rec.event.clone());
            log.push(rec.clone()).unwrap();
        }
        let ring_lines: Vec<String> = crate::export::trace_to_jsonl(&ring)
            .lines()
            .skip(1) // header
            .map(String::from)
            .collect();
        let log_lines: Vec<String> = log.records_to_jsonl().lines().map(String::from).collect();
        assert_eq!(ring_lines, log_lines);
    }

    #[test]
    fn compression_beats_raw_and_jsonl_widths() {
        let records = sample_records(4096);
        let mut log = CompressedTraceLog::with_cap(1024);
        for rec in &records {
            log.push(rec.clone()).unwrap();
        }
        // Denser than the in-memory records...
        let raw = records.len() * std::mem::size_of::<TraceRecord>();
        assert!(
            log.resident_bytes() < raw,
            "compressed {} vs raw {raw}",
            log.resident_bytes()
        );
        // ...and several times denser than the JSONL artifact it stands
        // in for on disk.
        let jsonl = log.records_to_jsonl().len();
        assert!(
            log.resident_bytes() * 3 < jsonl,
            "compressed {} vs jsonl {jsonl}",
            log.resident_bytes()
        );
    }

    #[test]
    fn spill_stream_replays_identically() {
        let records = sample_records(75);
        let buf = SharedBuf::default();
        {
            let mut log = CompressedTraceLog::spilling(16, Box::new(buf.clone())).unwrap();
            for rec in &records {
                log.push(rec.clone()).unwrap();
            }
            assert_eq!(log.spilled_chunks(), 4); // 64 records sealed
            log.finish().unwrap();
        }
        let bytes = buf.0.lock().unwrap().clone();
        let reader = TraceLogReader::open(io::Cursor::new(&bytes)).unwrap();
        let got: Vec<TraceRecord> = reader.map(Result::unwrap).collect();
        assert_eq!(got, records);
    }

    #[test]
    fn reader_rejects_bad_magic() {
        let bytes = b"WRONGMAG...".to_vec();
        assert!(TraceLogReader::open(io::Cursor::new(&bytes)).is_err());
    }

    #[test]
    fn corrupt_chunk_surfaces_as_error() {
        let records = sample_records(20);
        let buf = SharedBuf::default();
        {
            let mut log = CompressedTraceLog::spilling(8, Box::new(buf.clone())).unwrap();
            for rec in &records {
                log.push(rec.clone()).unwrap();
            }
            log.finish().unwrap();
        }
        let mut bytes = buf.0.lock().unwrap().clone();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // flip a bit in the final chunk
        let reader = TraceLogReader::open(io::Cursor::new(&bytes)).unwrap();
        let results: Vec<io::Result<TraceRecord>> = reader.collect();
        assert!(results.iter().any(Result::is_err));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_event() -> impl Strategy<Value = TraceEvent> {
        prop_oneof![
            (any::<u64>(), any::<u32>(), any::<u64>()).prop_map(|(job, nodes, queue_depth)| {
                TraceEvent::JobSubmitted {
                    job,
                    nodes,
                    queue_depth,
                }
            }),
            (any::<u64>(), 0.0f64..1e9).prop_map(|(job, remaining_secs)| {
                TraceEvent::JobRequeued {
                    job,
                    remaining_secs,
                }
            }),
            (0.0f64..1e7, 0.0f64..1e7).prop_map(|(observed_watts, limit_watts)| {
                TraceEvent::EmergencyBreach {
                    observed_watts,
                    limit_watts,
                }
            }),
            Just(TraceEvent::SensorDropout),
            (0.0f64..1e7, 0.0f64..1e7, -64i64..64).prop_map(
                |(window_avg_watts, cap_watts, delta_nodes)| TraceEvent::Enforcement {
                    window_avg_watts,
                    cap_watts,
                    delta_nodes,
                }
            ),
        ]
    }

    proptest! {
        /// Arbitrary record streams roundtrip exactly at any chunk size.
        #[test]
        fn log_roundtrip_arbitrary(
            events in proptest::collection::vec((0.0f64..1e6, arb_event()), 1..120),
            cap in 1usize..32,
        ) {
            let mut clock = 0.0;
            let records: Vec<TraceRecord> = events
                .into_iter()
                .enumerate()
                .map(|(i, (dt, event))| {
                    clock += dt;
                    TraceRecord {
                        t: SimTime::from_secs(clock),
                        seq: i as u64,
                        event,
                    }
                })
                .collect();
            let mut log = CompressedTraceLog::with_cap(cap);
            for rec in &records {
                log.push(rec.clone()).unwrap();
            }
            let got: Vec<TraceRecord> = log.iter().collect();
            prop_assert_eq!(got, records);
        }
    }
}
