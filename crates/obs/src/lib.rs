//! # epa-obs — the observability subsystem
//!
//! The survey's Figure 1 puts monitoring at the center of every EPA JSRM
//! control loop, and the questionnaire (Q6/Q7) asks centers what they can
//! *measure and explain* about their own scheduling decisions. This crate
//! is the simulator observing *itself*: a first-class, replayable record
//! of why the scheduler started, delayed, capped, requeued, or killed
//! every job — the Operational Data Analytics (ODA) stream that turns the
//! simulator into an analysis platform.
//!
//! Four pieces, each with a strict determinism contract:
//!
//! - [`trace`] — a typed **trace bus**: [`trace::TraceEvent`] variants for
//!   job lifecycle, cap actuations and retries, budget and emergency
//!   transitions, fault injections, and telemetry-fallback flips, recorded
//!   into a bounded ring buffer. A per-category enable mask makes the
//!   disabled path a single branch on a bitset.
//! - [`registry`] — a **metrics registry** of counters, gauges, and
//!   fixed-bucket histograms with Prometheus-text and JSON exposition.
//!   Merging two registries is associative and order-independent, the
//!   same bit-identical parallel-merge guarantee the campaign runner
//!   gives outcome reductions.
//! - [`export`] — a **JSONL trace exporter** plus a replay verifier that
//!   re-runs a seed and byte-diffs the decision trace. Every payload is
//!   keyed on `SimTime`, never wall clock, so traces join the existing
//!   determinism contract across `EPA_JSRM_THREADS`.
//! - [`profile`] — **wall-clock profiling scopes** around engine dispatch,
//!   allocator, and meter phases. Profiles are *explicitly excluded* from
//!   golden comparisons: wall time is the one non-deterministic output.
//! - [`compress`] — a **lossless compressed trace log**: columnar
//!   delta-compressed chunks with optional spill-to-writer, for
//!   million-job campaigns that want the whole decision trace without
//!   the ring's drop-oldest bound. Decoding reproduces the records (and
//!   their JSONL export) byte-exactly.

pub mod compress;
pub mod export;
pub mod profile;
pub mod registry;
pub mod trace;

pub use compress::{CompressedTraceLog, TraceLogReader};
pub use export::{trace_to_jsonl, verify_replay, ReplayDivergence, ReplayReport};
pub use profile::{ProfileReport, Profiler, Scope};
pub use registry::{Histogram, ObsRegistry};
pub use trace::{
    CategoryMask, ControlKind, KillReason, RejectReason, TraceBus, TraceCategory, TraceConfig,
    TraceEvent, TraceRecord, ALL_CATEGORIES,
};

/// Schema version stamped on every JSON/JSONL export this crate emits
/// (trace exports, registry expositions) and on the `BENCH_*.json`
/// emitters, so downstream diff tooling can detect format drift.
pub const OBS_SCHEMA_VERSION: u32 = 1;

/// The observability side-channel a simulation run produces: the decision
/// trace, the metrics registry, and the wall-clock profile.
///
/// The trace and registry are deterministic (same seed, same bytes at any
/// thread count); the profile is wall clock and must never enter a golden
/// comparison.
#[derive(Debug)]
pub struct ObsBundle {
    /// The recorded decision trace.
    pub trace: TraceBus,
    /// Counters, gauges, and histograms recorded during the run.
    pub registry: ObsRegistry,
    /// Aggregated wall-clock profile (non-deterministic; excluded from
    /// golden comparisons).
    pub profile: ProfileReport,
}

/// Live observability state owned by an instrumented component (the
/// engine): the bus and registry it records into, and the profiler it
/// times with. [`Obs::into_bundle`] freezes it into an [`ObsBundle`].
#[derive(Debug)]
pub struct Obs {
    /// The trace bus (masked; recording is a bitset branch when off).
    pub bus: TraceBus,
    /// The always-on metrics registry.
    pub registry: ObsRegistry,
    /// Wall-clock scope profiler (off unless configured).
    pub profiler: Profiler,
}

impl Obs {
    /// Builds the observability state from a trace configuration.
    #[must_use]
    pub fn new(config: &TraceConfig) -> Self {
        Obs {
            bus: TraceBus::new(config.mask, config.capacity),
            registry: ObsRegistry::new(),
            profiler: Profiler::new(config.profile),
        }
    }

    /// Fully disabled observability: every trace category masked off,
    /// profiling off. The registry stays live (counters are part of the
    /// outcome contract).
    #[must_use]
    pub fn disabled() -> Self {
        Obs::new(&TraceConfig::default())
    }

    /// Encodes the deterministic halves (trace bus and registry). The
    /// profiler is wall clock and excluded from goldens, so it is not
    /// captured; restore starts a fresh one.
    pub fn snapshot_into(&self, w: &mut epa_simcore::snap::SnapWriter) {
        self.bus.snapshot_into(w);
        self.registry.snapshot_into(w);
    }

    /// Decodes observability state written by [`Obs::snapshot_into`],
    /// attaching a fresh profiler (enabled when `profile` is set).
    pub fn restore_from(
        r: &mut epa_simcore::snap::SnapReader<'_>,
        profile: bool,
    ) -> Result<Self, epa_simcore::snap::SnapshotError> {
        Ok(Obs {
            bus: TraceBus::restore_from(r)?,
            registry: ObsRegistry::restore_from(r)?,
            profiler: Profiler::new(profile),
        })
    }

    /// Freezes the live state into the bundle a finished run returns.
    #[must_use]
    pub fn into_bundle(self) -> ObsBundle {
        ObsBundle {
            trace: self.bus,
            registry: self.registry,
            profile: self.profiler.report(),
        }
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::disabled()
    }
}
