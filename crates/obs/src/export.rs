//! JSONL trace export and the replay verifier.
//!
//! The exported trace is the ODA artifact: line 1 is a schema-versioned
//! header, every following line is one [`TraceRecord`](crate::trace::TraceRecord)
//! as a JSON object. Because every payload is keyed on `SimTime` and the
//! bus assigns sequence numbers from the event stream alone, the export is
//! a pure function of (config, seed) — [`verify_replay`] makes that
//! contract executable by running a simulation twice and byte-diffing the
//! two exports.

use crate::trace::TraceBus;
use crate::OBS_SCHEMA_VERSION;
use serde::Serialize;
use serde_json::json;

/// A verified replay: both runs produced this many events and bytes,
/// byte-for-byte identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ReplayReport {
    /// Trace records per run (excluding the header line).
    pub events: usize,
    /// Export size in bytes.
    pub bytes: usize,
}

/// The first line where two replays of the same seed diverged.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ReplayDivergence {
    /// 1-based line number of the first differing line (0 when the
    /// exports differ only in length).
    pub line: usize,
    /// That line in the first run's export (empty if absent).
    pub first: String,
    /// That line in the second run's export (empty if absent).
    pub second: String,
}

/// Renders a trace bus as JSONL: a schema-versioned header line, then one
/// JSON object per record, oldest first, each on its own line.
#[must_use]
pub fn trace_to_jsonl(bus: &TraceBus) -> String {
    let header = json!({
        "schema_version": OBS_SCHEMA_VERSION,
        "kind": "epa-obs-trace",
        "events": bus.len(),
        "dropped": bus.dropped(),
        "sampled_out": bus.sampled_out(),
    });
    let mut out = serde_json::to_string(&header).expect("trace header serializes");
    out.push('\n');
    for rec in bus.iter() {
        out.push_str(&serde_json::to_string(rec).expect("trace record serializes"));
        out.push('\n');
    }
    out
}

/// Runs `export` twice and byte-diffs the results. `export` should run a
/// full simulation from a fixed seed and return [`trace_to_jsonl`] of its
/// bus; any divergence between the two runs (nondeterminism in the engine,
/// wall-clock leakage into a payload, thread-count sensitivity) is
/// reported with the first differing line.
pub fn verify_replay<F>(mut export: F) -> Result<ReplayReport, ReplayDivergence>
where
    F: FnMut() -> String,
{
    let first = export();
    let second = export();
    if first == second {
        return Ok(ReplayReport {
            events: first.lines().count().saturating_sub(1),
            bytes: first.len(),
        });
    }
    for (i, (a, b)) in first.lines().zip(second.lines()).enumerate() {
        if a != b {
            return Err(ReplayDivergence {
                line: i + 1,
                first: a.to_string(),
                second: b.to_string(),
            });
        }
    }
    // One export is a prefix of the other.
    let (longer, is_first) = if first.lines().count() > second.lines().count() {
        (&first, true)
    } else {
        (&second, false)
    };
    let line_no = first.lines().count().min(second.lines().count()) + 1;
    let extra = longer.lines().nth(line_no - 1).unwrap_or("").to_string();
    Err(ReplayDivergence {
        line: line_no,
        first: if is_first {
            extra.clone()
        } else {
            String::new()
        },
        second: if is_first { String::new() } else { extra },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CategoryMask, TraceBus, TraceEvent};
    use epa_simcore::time::SimTime;

    fn bus_with(n: u64) -> TraceBus {
        let mut bus = TraceBus::new(CategoryMask::ALL, 1024);
        for i in 0..n {
            bus.record(
                SimTime::from_secs(i as f64 * 10.0),
                TraceEvent::JobSubmitted {
                    job: i,
                    nodes: 4,
                    queue_depth: i + 1,
                },
            );
        }
        bus
    }

    #[test]
    fn jsonl_has_versioned_header_and_one_line_per_record() {
        let jsonl = trace_to_jsonl(&bus_with(3));
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"schema_version\":1,\"kind\":\"epa-obs-trace\""));
        assert!(lines[0].contains("\"events\":3"));
        assert!(lines[1].contains("\"JobSubmitted\""));
        assert!(lines[1].contains("\"seq\":0"));
        assert!(lines[3].contains("\"seq\":2"));
    }

    #[test]
    fn identical_runs_verify() {
        let report = verify_replay(|| trace_to_jsonl(&bus_with(5))).unwrap();
        assert_eq!(report.events, 5);
        assert!(report.bytes > 0);
    }

    #[test]
    fn divergence_pinpoints_first_differing_line() {
        let mut calls = 0;
        let err = verify_replay(|| {
            calls += 1;
            trace_to_jsonl(&bus_with(if calls == 1 { 5 } else { 3 }))
        })
        .unwrap_err();
        // Header differs first: event counts disagree.
        assert_eq!(err.line, 1);
        assert!(err.first.contains("\"events\":5"));
        assert!(err.second.contains("\"events\":3"));
    }

    #[test]
    fn length_only_divergence_reported() {
        let base = trace_to_jsonl(&bus_with(2));
        let longer = format!("{base}{}", "{\"extra\":true}\n");
        let mut calls = 0;
        let err = verify_replay(|| {
            calls += 1;
            if calls == 1 {
                base.clone()
            } else {
                longer.clone()
            }
        })
        .unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.first.is_empty());
        assert!(err.second.contains("extra"));
    }
}
