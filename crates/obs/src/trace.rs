//! The typed trace bus: structured decision events in a bounded ring
//! buffer behind a per-category enable mask.
//!
//! Design constraints, in priority order:
//!
//! 1. **Disabled is free.** With a category masked off, recording is one
//!    branch on a `u32` bitset — no event payload is built, nothing
//!    allocates. The engine's hot paths guard on [`TraceBus::enabled`]
//!    before even constructing the event.
//! 2. **Deterministic.** Every payload is keyed on [`SimTime`], never wall
//!    clock; the ring buffer, sampling strides, and sequence numbers are
//!    pure functions of the event stream. Identical seeds produce
//!    byte-identical exported traces at any `EPA_JSRM_THREADS`.
//! 3. **Bounded.** The ring drops the *oldest* records past capacity and
//!    counts the drops, so a week-long campaign cannot OOM on tracing.

use epa_simcore::time::SimTime;
use serde::Serialize;

/// Trace event categories — one bit each in a [`CategoryMask`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[repr(u8)]
pub enum TraceCategory {
    /// Job lifecycle: submit, start, finish, kill, requeue.
    Job = 0,
    /// Scheduler decisions that did *not* start a job (rejections).
    Sched = 1,
    /// Cap actuations, retries, and fence escalations.
    Actuation = 2,
    /// Power-budget grants, denials, releases, and resizes.
    Budget = 3,
    /// Emergency-response breaches and kills.
    Emergency = 4,
    /// Fault injections: node failures, repairs.
    Fault = 5,
    /// Telemetry sensor faults and staleness-fallback flips.
    Telemetry = 6,
    /// Windowed cap-enforcement evaluations.
    Enforcement = 7,
    /// Control-plane actions from external (learned) controllers and
    /// environment decision steps. Engineered adapter emissions are
    /// *not* recorded here — they must stay byte-invisible.
    Control = 8,
}

/// Number of trace categories (bitset width in use).
pub const N_CATEGORIES: usize = 9;

/// All categories, in bit order (for mask parsing and display).
pub const ALL_CATEGORIES: [TraceCategory; N_CATEGORIES] = [
    TraceCategory::Job,
    TraceCategory::Sched,
    TraceCategory::Actuation,
    TraceCategory::Budget,
    TraceCategory::Emergency,
    TraceCategory::Fault,
    TraceCategory::Telemetry,
    TraceCategory::Enforcement,
    TraceCategory::Control,
];

impl TraceCategory {
    /// The category's stable lowercase name (mask parsing, exports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceCategory::Job => "job",
            TraceCategory::Sched => "sched",
            TraceCategory::Actuation => "actuation",
            TraceCategory::Budget => "budget",
            TraceCategory::Emergency => "emergency",
            TraceCategory::Fault => "fault",
            TraceCategory::Telemetry => "telemetry",
            TraceCategory::Enforcement => "enforcement",
            TraceCategory::Control => "control",
        }
    }
}

/// What kind of control-plane action a [`TraceEvent::ControlAction`]
/// records. Mirrors `epa_sched`'s `ControlAction` variants (the kind
/// lives here because `epa-obs` sits below the scheduler in the crate
/// graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ControlKind {
    /// Start a specific queued job.
    Start,
    /// Set (or clear) the concurrent-job limit.
    JobLimit,
    /// Set (or clear) the default DVFS frequency for new starts.
    DefaultFrequency,
    /// Set (or clear) the backfill scan depth.
    BackfillDepth,
    /// Resize the power budget.
    BudgetResize,
    /// Override (or clear) the idle-shutdown policy.
    IdleShutdown,
    /// Power off idle nodes now.
    PowerOffIdle,
    /// Shed running jobs to an emergency target.
    EmergencyShed,
}

impl ControlKind {
    /// The kind's stable lowercase name (exports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ControlKind::Start => "start",
            ControlKind::JobLimit => "job_limit",
            ControlKind::DefaultFrequency => "default_frequency",
            ControlKind::BackfillDepth => "backfill_depth",
            ControlKind::BudgetResize => "budget_resize",
            ControlKind::IdleShutdown => "idle_shutdown",
            ControlKind::PowerOffIdle => "power_off_idle",
            ControlKind::EmergencyShed => "emergency_shed",
        }
    }
}

/// A bitset of enabled trace categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CategoryMask(pub u32);

impl CategoryMask {
    /// Nothing enabled — the zero-overhead default.
    pub const NONE: CategoryMask = CategoryMask(0);
    /// Every category enabled.
    pub const ALL: CategoryMask = CategoryMask((1 << N_CATEGORIES as u32) - 1);

    /// True when `cat`'s bit is set. This is the whole cost of a disabled
    /// trace site.
    #[inline]
    #[must_use]
    pub fn enabled(self, cat: TraceCategory) -> bool {
        self.0 & (1 << (cat as u32)) != 0
    }

    /// Returns the mask with `cat` enabled.
    #[must_use]
    pub fn with(self, cat: TraceCategory) -> CategoryMask {
        CategoryMask(self.0 | (1 << (cat as u32)))
    }

    /// Parses a mask spec: `"all"`, `"off"`/`""`, or a comma-separated
    /// list of category names (`"job,budget,fault"`). Unknown names are
    /// ignored rather than fatal — an operator typo must not change
    /// simulation results, only trace coverage.
    #[must_use]
    pub fn parse(spec: &str) -> CategoryMask {
        Self::parse_with_unknown(spec).0
    }

    /// [`CategoryMask::parse`], additionally reporting the names it did
    /// not recognize so callers (the env reader) can warn instead of
    /// silently narrowing trace coverage.
    #[must_use]
    pub fn parse_with_unknown(spec: &str) -> (CategoryMask, Vec<String>) {
        match spec.trim() {
            "" | "off" | "none" | "0" => (CategoryMask::NONE, Vec::new()),
            "all" | "1" | "on" => (CategoryMask::ALL, Vec::new()),
            list => {
                let mut mask = CategoryMask::NONE;
                let mut unknown = Vec::new();
                for part in list.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    match ALL_CATEGORIES.into_iter().find(|cat| part == cat.name()) {
                        Some(cat) => mask = mask.with(cat),
                        None => unknown.push(part.to_owned()),
                    }
                }
                (mask, unknown)
            }
        }
    }
}

/// Trace configuration: the enable mask, ring capacity, and whether
/// wall-clock profiling scopes are active.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Which categories to record.
    pub mask: CategoryMask,
    /// Ring-buffer capacity in records; oldest are dropped (and counted)
    /// past it.
    pub capacity: usize,
    /// Enable wall-clock profiling scopes (excluded from golden output).
    pub profile: bool,
}

impl Default for TraceConfig {
    /// Tracing off, profiling off — byte-identical behavior and hot-path
    /// cost of one bitset branch per instrumented site.
    fn default() -> Self {
        TraceConfig {
            mask: CategoryMask::NONE,
            capacity: 65_536,
            profile: false,
        }
    }
}

impl TraceConfig {
    /// Everything on: all categories, profiling active.
    #[must_use]
    pub fn all() -> Self {
        TraceConfig {
            mask: CategoryMask::ALL,
            capacity: 65_536,
            profile: true,
        }
    }

    /// Reads the `EPA_JSRM_TRACE` environment variable (`"all"`, `"off"`,
    /// or a comma list like `"job,budget,fault"`). Unset means disabled.
    /// Unknown category names are skipped, but *not* silently: a
    /// one-time stderr warning names the variable, the value, and the
    /// rejected names — the same contract as the `EPA_JSRM_SHARDS` /
    /// `EPA_JSRM_THREADS` parsers, so a typo'd `EPA_JSRM_TRACE=jobs`
    /// cannot masquerade as "job tracing on".
    #[must_use]
    pub fn from_env() -> Self {
        use std::sync::OnceLock;
        static WARNED: OnceLock<()> = OnceLock::new();
        let mask = std::env::var("EPA_JSRM_TRACE").map_or(CategoryMask::NONE, |spec| {
            let (mask, unknown) = CategoryMask::parse_with_unknown(&spec);
            if !unknown.is_empty() {
                WARNED.get_or_init(|| {
                    eprintln!(
                        "warning: EPA_JSRM_TRACE={spec:?} names unknown trace \
                         categories {unknown:?} (ignored; known names: {})",
                        ALL_CATEGORIES
                            .iter()
                            .map(|c| c.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                });
            }
            mask
        });
        TraceConfig {
            mask,
            ..TraceConfig::default()
        }
    }
}

/// Why a job was killed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum KillReason {
    /// Hit its walltime estimate.
    Walltime,
    /// Killed by the emergency power response.
    Emergency,
    /// Killed by a node failure.
    Failure,
}

/// Why a scheduler `Start` decision was rejected by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RejectReason {
    /// The decision named a job not in the queue.
    UnknownJob,
    /// Not enough free nodes at execution time.
    InsufficientNodes,
    /// The power-budget ledger denied the grant.
    PowerDenied,
    /// The allocator could not place the job.
    AllocFailed,
    /// The cap write failed after all retries.
    ActuationFailed,
}

/// A structured decision event. Every variant's payload is a pure
/// function of simulation state — no wall clock, no addresses, no
/// iteration-order artifacts — so the exported trace is replayable.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TraceEvent {
    /// A job entered the queue.
    JobSubmitted {
        /// Job id.
        job: u64,
        /// Requested node count.
        nodes: u32,
        /// Queue depth after the push.
        queue_depth: u64,
    },
    /// A job started executing.
    JobStarted {
        /// Job id.
        job: u64,
        /// Allocated node count.
        nodes: u32,
        /// Per-node draw at start, watts.
        watts_per_node: f64,
        /// Submit → start wait, seconds.
        wait_secs: f64,
        /// The job started ahead of an earlier-queued job (backfill).
        backfilled: bool,
        /// The engine programmed a per-node cap to fit the budget.
        capped_to_fit: bool,
    },
    /// A job ran to its natural end (or walltime limit — see
    /// [`TraceEvent::JobKilled`] with [`KillReason::Walltime`]).
    JobFinished {
        /// Job id.
        job: u64,
        /// Actual execution time, seconds.
        run_secs: f64,
        /// Energy consumed, joules.
        energy_joules: f64,
    },
    /// A job was killed.
    JobKilled {
        /// Job id.
        job: u64,
        /// Why.
        reason: KillReason,
        /// Seconds it had been running.
        run_secs: f64,
    },
    /// A killed job re-entered the queue as a continuation.
    JobRequeued {
        /// Job id.
        job: u64,
        /// Base runtime remaining in the continuation, seconds.
        remaining_secs: f64,
    },
    /// The engine rejected a policy `Start` decision.
    StartRejected {
        /// Job id.
        job: u64,
        /// Why.
        reason: RejectReason,
    },
    /// A cap write across a job's node set (through the possibly
    /// unreliable actuator).
    CapWrite {
        /// Node count written.
        nodes: u32,
        /// Cap value, watts.
        watts: f64,
        /// Total attempts across the node set (first tries + retries).
        attempts: u64,
        /// Whether every node's write eventually succeeded.
        succeeded: bool,
        /// Worst-case accumulated backoff latency, seconds.
        delay_secs: f64,
    },
    /// One node's command needed retries or failed outright.
    ActuationRetry {
        /// Node id.
        node: u32,
        /// Attempts made for this node's command.
        attempts: u32,
        /// Whether the command eventually succeeded.
        succeeded: bool,
    },
    /// A node crossed the consecutive-failure threshold and was fenced.
    NodeFenced {
        /// Node id.
        node: u32,
    },
    /// The budget ledger granted power to a job.
    BudgetGrant {
        /// Grant id (job id).
        grant: u64,
        /// Granted watts.
        watts: f64,
        /// Headroom remaining after the grant, watts.
        headroom_watts: f64,
    },
    /// The budget ledger denied a request.
    BudgetDenied {
        /// Grant id (job id).
        grant: u64,
        /// Requested watts.
        watts: f64,
        /// Headroom at denial time, watts.
        headroom_watts: f64,
    },
    /// A grant was released.
    BudgetRelease {
        /// Grant id (job id).
        grant: u64,
        /// Released watts.
        watts: f64,
    },
    /// The budget total was resized (demand response).
    BudgetResize {
        /// New total, watts.
        total_watts: f64,
        /// Whether the resize was accepted.
        ok: bool,
    },
    /// Observed power breached the emergency limit.
    EmergencyBreach {
        /// Observed system draw, watts.
        observed_watts: f64,
        /// The armed limit, watts.
        limit_watts: f64,
    },
    /// The emergency response killed a job.
    EmergencyKill {
        /// Job id.
        job: u64,
        /// Draw shed by the kill, watts.
        shed_watts: f64,
    },
    /// A node went down (independent failure, correlated domain event,
    /// or fence).
    NodeFailed {
        /// Node id.
        node: u32,
        /// Part of a correlated rack/PDU domain event.
        correlated: bool,
    },
    /// A node came back from repair.
    NodeRepaired {
        /// Node id.
        node: u32,
        /// Downtime, seconds.
        down_secs: f64,
    },
    /// A telemetry sample was lost (sensor dropout).
    SensorDropout,
    /// The sensor entered a stuck-at window.
    SensorStuck {
        /// The value it will keep re-reporting, watts.
        held_watts: f64,
    },
    /// Telemetry staleness crossed the bound (or recovered): the
    /// scheduler flipped to/from the conservative fallback estimate.
    TelemetryFallback {
        /// True when entering the fallback, false when recovering.
        engaged: bool,
        /// Age of the last accepted reading, seconds.
        age_secs: f64,
    },
    /// A windowed cap-enforcement evaluation.
    Enforcement {
        /// Windowed average draw, watts.
        window_avg_watts: f64,
        /// The enforced cap, watts.
        cap_watts: f64,
        /// Recommended node delta: positive allows boots, negative shuts
        /// down, zero holds.
        delta_nodes: i64,
    },
    /// An external (learned) controller submitted a control action
    /// through the engine's apply path. Engineered adapter emissions are
    /// never recorded — engineered runs must stay byte-identical with
    /// tracing on.
    ControlAction {
        /// What kind of action.
        kind: ControlKind,
        /// A kind-specific scalar summary of the action's payload
        /// (e.g. the new limit, target watts, or -1 for "clear").
        value: f64,
        /// Whether the engine accepted it (validation + execution).
        accepted: bool,
    },
    /// A `PolicyEnv` decision step completed.
    EnvStep {
        /// Zero-based step index within the episode.
        step: u64,
        /// Reward earned over the step's decision interval.
        reward: f64,
        /// Actions submitted this step (before validation).
        actions: u32,
    },
}

impl TraceEvent {
    /// Encodes the event as a tag byte plus its fields.
    pub fn snapshot_into(&self, w: &mut epa_simcore::snap::SnapWriter) {
        fn kill_tag(r: KillReason) -> u8 {
            match r {
                KillReason::Walltime => 0,
                KillReason::Emergency => 1,
                KillReason::Failure => 2,
            }
        }
        fn reject_tag(r: RejectReason) -> u8 {
            match r {
                RejectReason::UnknownJob => 0,
                RejectReason::InsufficientNodes => 1,
                RejectReason::PowerDenied => 2,
                RejectReason::AllocFailed => 3,
                RejectReason::ActuationFailed => 4,
            }
        }
        fn control_tag(k: ControlKind) -> u8 {
            match k {
                ControlKind::Start => 0,
                ControlKind::JobLimit => 1,
                ControlKind::DefaultFrequency => 2,
                ControlKind::BackfillDepth => 3,
                ControlKind::BudgetResize => 4,
                ControlKind::IdleShutdown => 5,
                ControlKind::PowerOffIdle => 6,
                ControlKind::EmergencyShed => 7,
            }
        }
        match self {
            TraceEvent::JobSubmitted {
                job,
                nodes,
                queue_depth,
            } => {
                w.u8(0);
                w.u64(*job);
                w.u32(*nodes);
                w.u64(*queue_depth);
            }
            TraceEvent::JobStarted {
                job,
                nodes,
                watts_per_node,
                wait_secs,
                backfilled,
                capped_to_fit,
            } => {
                w.u8(1);
                w.u64(*job);
                w.u32(*nodes);
                w.f64(*watts_per_node);
                w.f64(*wait_secs);
                w.bool(*backfilled);
                w.bool(*capped_to_fit);
            }
            TraceEvent::JobFinished {
                job,
                run_secs,
                energy_joules,
            } => {
                w.u8(2);
                w.u64(*job);
                w.f64(*run_secs);
                w.f64(*energy_joules);
            }
            TraceEvent::JobKilled {
                job,
                reason,
                run_secs,
            } => {
                w.u8(3);
                w.u64(*job);
                w.u8(kill_tag(*reason));
                w.f64(*run_secs);
            }
            TraceEvent::JobRequeued {
                job,
                remaining_secs,
            } => {
                w.u8(4);
                w.u64(*job);
                w.f64(*remaining_secs);
            }
            TraceEvent::StartRejected { job, reason } => {
                w.u8(5);
                w.u64(*job);
                w.u8(reject_tag(*reason));
            }
            TraceEvent::CapWrite {
                nodes,
                watts,
                attempts,
                succeeded,
                delay_secs,
            } => {
                w.u8(6);
                w.u32(*nodes);
                w.f64(*watts);
                w.u64(*attempts);
                w.bool(*succeeded);
                w.f64(*delay_secs);
            }
            TraceEvent::ActuationRetry {
                node,
                attempts,
                succeeded,
            } => {
                w.u8(7);
                w.u32(*node);
                w.u32(*attempts);
                w.bool(*succeeded);
            }
            TraceEvent::NodeFenced { node } => {
                w.u8(8);
                w.u32(*node);
            }
            TraceEvent::BudgetGrant {
                grant,
                watts,
                headroom_watts,
            } => {
                w.u8(9);
                w.u64(*grant);
                w.f64(*watts);
                w.f64(*headroom_watts);
            }
            TraceEvent::BudgetDenied {
                grant,
                watts,
                headroom_watts,
            } => {
                w.u8(10);
                w.u64(*grant);
                w.f64(*watts);
                w.f64(*headroom_watts);
            }
            TraceEvent::BudgetRelease { grant, watts } => {
                w.u8(11);
                w.u64(*grant);
                w.f64(*watts);
            }
            TraceEvent::BudgetResize { total_watts, ok } => {
                w.u8(12);
                w.f64(*total_watts);
                w.bool(*ok);
            }
            TraceEvent::EmergencyBreach {
                observed_watts,
                limit_watts,
            } => {
                w.u8(13);
                w.f64(*observed_watts);
                w.f64(*limit_watts);
            }
            TraceEvent::EmergencyKill { job, shed_watts } => {
                w.u8(14);
                w.u64(*job);
                w.f64(*shed_watts);
            }
            TraceEvent::NodeFailed { node, correlated } => {
                w.u8(15);
                w.u32(*node);
                w.bool(*correlated);
            }
            TraceEvent::NodeRepaired { node, down_secs } => {
                w.u8(16);
                w.u32(*node);
                w.f64(*down_secs);
            }
            TraceEvent::SensorDropout => w.u8(17),
            TraceEvent::SensorStuck { held_watts } => {
                w.u8(18);
                w.f64(*held_watts);
            }
            TraceEvent::TelemetryFallback { engaged, age_secs } => {
                w.u8(19);
                w.bool(*engaged);
                w.f64(*age_secs);
            }
            TraceEvent::Enforcement {
                window_avg_watts,
                cap_watts,
                delta_nodes,
            } => {
                w.u8(20);
                w.f64(*window_avg_watts);
                w.f64(*cap_watts);
                w.i64(*delta_nodes);
            }
            TraceEvent::ControlAction {
                kind,
                value,
                accepted,
            } => {
                w.u8(21);
                w.u8(control_tag(*kind));
                w.f64(*value);
                w.bool(*accepted);
            }
            TraceEvent::EnvStep {
                step,
                reward,
                actions,
            } => {
                w.u8(22);
                w.u64(*step);
                w.f64(*reward);
                w.u32(*actions);
            }
        }
    }

    /// Decodes an event written by [`TraceEvent::snapshot_into`].
    pub fn restore_from(
        r: &mut epa_simcore::snap::SnapReader<'_>,
    ) -> Result<Self, epa_simcore::snap::SnapshotError> {
        use epa_simcore::snap::SnapshotError;
        fn kill(tag: u8) -> Result<KillReason, SnapshotError> {
            Ok(match tag {
                0 => KillReason::Walltime,
                1 => KillReason::Emergency,
                2 => KillReason::Failure,
                _ => {
                    return Err(SnapshotError::Corrupt {
                        detail: format!("unknown kill-reason tag {tag}"),
                    })
                }
            })
        }
        fn reject(tag: u8) -> Result<RejectReason, SnapshotError> {
            Ok(match tag {
                0 => RejectReason::UnknownJob,
                1 => RejectReason::InsufficientNodes,
                2 => RejectReason::PowerDenied,
                3 => RejectReason::AllocFailed,
                4 => RejectReason::ActuationFailed,
                _ => {
                    return Err(SnapshotError::Corrupt {
                        detail: format!("unknown reject-reason tag {tag}"),
                    })
                }
            })
        }
        fn control(tag: u8) -> Result<ControlKind, SnapshotError> {
            Ok(match tag {
                0 => ControlKind::Start,
                1 => ControlKind::JobLimit,
                2 => ControlKind::DefaultFrequency,
                3 => ControlKind::BackfillDepth,
                4 => ControlKind::BudgetResize,
                5 => ControlKind::IdleShutdown,
                6 => ControlKind::PowerOffIdle,
                7 => ControlKind::EmergencyShed,
                _ => {
                    return Err(SnapshotError::Corrupt {
                        detail: format!("unknown control-kind tag {tag}"),
                    })
                }
            })
        }
        Ok(match r.u8()? {
            0 => TraceEvent::JobSubmitted {
                job: r.u64()?,
                nodes: r.u32()?,
                queue_depth: r.u64()?,
            },
            1 => TraceEvent::JobStarted {
                job: r.u64()?,
                nodes: r.u32()?,
                watts_per_node: r.f64()?,
                wait_secs: r.f64()?,
                backfilled: r.bool()?,
                capped_to_fit: r.bool()?,
            },
            2 => TraceEvent::JobFinished {
                job: r.u64()?,
                run_secs: r.f64()?,
                energy_joules: r.f64()?,
            },
            3 => TraceEvent::JobKilled {
                job: r.u64()?,
                reason: kill(r.u8()?)?,
                run_secs: r.f64()?,
            },
            4 => TraceEvent::JobRequeued {
                job: r.u64()?,
                remaining_secs: r.f64()?,
            },
            5 => TraceEvent::StartRejected {
                job: r.u64()?,
                reason: reject(r.u8()?)?,
            },
            6 => TraceEvent::CapWrite {
                nodes: r.u32()?,
                watts: r.f64()?,
                attempts: r.u64()?,
                succeeded: r.bool()?,
                delay_secs: r.f64()?,
            },
            7 => TraceEvent::ActuationRetry {
                node: r.u32()?,
                attempts: r.u32()?,
                succeeded: r.bool()?,
            },
            8 => TraceEvent::NodeFenced { node: r.u32()? },
            9 => TraceEvent::BudgetGrant {
                grant: r.u64()?,
                watts: r.f64()?,
                headroom_watts: r.f64()?,
            },
            10 => TraceEvent::BudgetDenied {
                grant: r.u64()?,
                watts: r.f64()?,
                headroom_watts: r.f64()?,
            },
            11 => TraceEvent::BudgetRelease {
                grant: r.u64()?,
                watts: r.f64()?,
            },
            12 => TraceEvent::BudgetResize {
                total_watts: r.f64()?,
                ok: r.bool()?,
            },
            13 => TraceEvent::EmergencyBreach {
                observed_watts: r.f64()?,
                limit_watts: r.f64()?,
            },
            14 => TraceEvent::EmergencyKill {
                job: r.u64()?,
                shed_watts: r.f64()?,
            },
            15 => TraceEvent::NodeFailed {
                node: r.u32()?,
                correlated: r.bool()?,
            },
            16 => TraceEvent::NodeRepaired {
                node: r.u32()?,
                down_secs: r.f64()?,
            },
            17 => TraceEvent::SensorDropout,
            18 => TraceEvent::SensorStuck {
                held_watts: r.f64()?,
            },
            19 => TraceEvent::TelemetryFallback {
                engaged: r.bool()?,
                age_secs: r.f64()?,
            },
            20 => TraceEvent::Enforcement {
                window_avg_watts: r.f64()?,
                cap_watts: r.f64()?,
                delta_nodes: r.i64()?,
            },
            21 => TraceEvent::ControlAction {
                kind: control(r.u8()?)?,
                value: r.f64()?,
                accepted: r.bool()?,
            },
            22 => TraceEvent::EnvStep {
                step: r.u64()?,
                reward: r.f64()?,
                actions: r.u32()?,
            },
            tag => {
                return Err(SnapshotError::Corrupt {
                    detail: format!("unknown trace-event tag {tag}"),
                })
            }
        })
    }

    /// The category this event records under.
    #[must_use]
    pub fn category(&self) -> TraceCategory {
        match self {
            TraceEvent::JobSubmitted { .. }
            | TraceEvent::JobStarted { .. }
            | TraceEvent::JobFinished { .. }
            | TraceEvent::JobKilled { .. }
            | TraceEvent::JobRequeued { .. } => TraceCategory::Job,
            TraceEvent::StartRejected { .. } => TraceCategory::Sched,
            TraceEvent::CapWrite { .. }
            | TraceEvent::ActuationRetry { .. }
            | TraceEvent::NodeFenced { .. } => TraceCategory::Actuation,
            TraceEvent::BudgetGrant { .. }
            | TraceEvent::BudgetDenied { .. }
            | TraceEvent::BudgetRelease { .. }
            | TraceEvent::BudgetResize { .. } => TraceCategory::Budget,
            TraceEvent::EmergencyBreach { .. } | TraceEvent::EmergencyKill { .. } => {
                TraceCategory::Emergency
            }
            TraceEvent::NodeFailed { .. } | TraceEvent::NodeRepaired { .. } => TraceCategory::Fault,
            TraceEvent::SensorDropout
            | TraceEvent::SensorStuck { .. }
            | TraceEvent::TelemetryFallback { .. } => TraceCategory::Telemetry,
            TraceEvent::Enforcement { .. } => TraceCategory::Enforcement,
            TraceEvent::ControlAction { .. } | TraceEvent::EnvStep { .. } => TraceCategory::Control,
        }
    }
}

/// One recorded trace entry: simulation time, a global sequence number
/// (order within equal timestamps), and the event.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceRecord {
    /// Simulation time of the event.
    pub t: SimTime,
    /// Global sequence number across all categories (pre-sampling events
    /// that were masked off do not consume numbers).
    pub seq: u64,
    /// The event.
    pub event: TraceEvent,
}

/// The bounded trace bus.
#[derive(Debug)]
pub struct TraceBus {
    mask: CategoryMask,
    capacity: usize,
    /// Ring storage; once full, `head` marks the logical start.
    records: Vec<TraceRecord>,
    head: usize,
    seq: u64,
    dropped: u64,
    /// Per-category sampling stride: record every `stride`-th enabled
    /// event of that category (1 = every event).
    stride: [u32; N_CATEGORIES],
    /// Enabled events seen per category (pre-sampling).
    seen: [u64; N_CATEGORIES],
    sampled_out: u64,
}

impl TraceBus {
    /// Creates a bus with the given mask and ring capacity.
    #[must_use]
    pub fn new(mask: CategoryMask, capacity: usize) -> Self {
        TraceBus {
            mask,
            capacity: capacity.max(1),
            records: Vec::new(),
            head: 0,
            seq: 0,
            dropped: 0,
            stride: [1; N_CATEGORIES],
            seen: [0; N_CATEGORIES],
            sampled_out: 0,
        }
    }

    /// A fully masked bus: recording is a no-op, nothing ever allocates.
    #[must_use]
    pub fn disabled() -> Self {
        TraceBus::new(CategoryMask::NONE, 1)
    }

    /// The enable mask.
    #[must_use]
    pub fn mask(&self) -> CategoryMask {
        self.mask
    }

    /// True when `cat` is being recorded. Hot paths guard on this before
    /// constructing an event payload.
    #[inline]
    #[must_use]
    pub fn enabled(&self, cat: TraceCategory) -> bool {
        self.mask.enabled(cat)
    }

    /// Sets the sampling stride for a category: every `stride`-th enabled
    /// event is recorded (0 is treated as 1).
    pub fn set_stride(&mut self, cat: TraceCategory, stride: u32) {
        self.stride[cat as usize] = stride.max(1);
    }

    /// Records an event at time `t`. A single bitset branch when the
    /// event's category is masked off.
    #[inline]
    pub fn record(&mut self, t: SimTime, event: TraceEvent) {
        let cat = event.category();
        if !self.mask.enabled(cat) {
            return;
        }
        self.record_enabled(t, cat, event);
    }

    /// Cold half of [`TraceBus::record`]: sampling, sequence numbering,
    /// and the ring push.
    fn record_enabled(&mut self, t: SimTime, cat: TraceCategory, event: TraceEvent) {
        let i = cat as usize;
        self.seen[i] += 1;
        let stride = u64::from(self.stride[i]);
        if stride > 1 && !(self.seen[i] - 1).is_multiple_of(stride) {
            self.sampled_out += 1;
            return;
        }
        let rec = TraceRecord {
            t,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            // Ring overwrite: drop the oldest record.
            self.records[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of records currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded (or everything was masked).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Oldest records dropped to the ring bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events skipped by sampling strides.
    #[must_use]
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// Enabled events seen for a category, before sampling.
    #[must_use]
    pub fn seen(&self, cat: TraceCategory) -> u64 {
        self.seen[cat as usize]
    }

    /// Iterates records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        let (tail, head) = self.records.split_at(self.head);
        head.iter().chain(tail.iter())
    }

    /// Encodes the full bus — mask, capacity, ring contents in raw slot
    /// order with the head position, sequence/drop/sampling counters — so
    /// a restored bus continues the ring exactly where it left off.
    pub fn snapshot_into(&self, w: &mut epa_simcore::snap::SnapWriter) {
        w.u32(self.mask.0);
        w.usize(self.capacity);
        w.seq(&self.records, |w, rec| {
            w.f64(rec.t.as_secs());
            w.u64(rec.seq);
            rec.event.snapshot_into(w);
        });
        w.usize(self.head);
        w.u64(self.seq);
        w.u64(self.dropped);
        for s in &self.stride {
            w.u32(*s);
        }
        for s in &self.seen {
            w.u64(*s);
        }
        w.u64(self.sampled_out);
    }

    /// Decodes a bus written by [`TraceBus::snapshot_into`].
    pub fn restore_from(
        r: &mut epa_simcore::snap::SnapReader<'_>,
    ) -> Result<Self, epa_simcore::snap::SnapshotError> {
        let mask = CategoryMask(r.u32()?);
        let capacity = r.usize()?;
        let records = r.seq(|r| {
            Ok(TraceRecord {
                t: SimTime::from_secs(r.f64()?),
                seq: r.u64()?,
                event: TraceEvent::restore_from(r)?,
            })
        })?;
        let head = r.usize()?;
        let seq = r.u64()?;
        let dropped = r.u64()?;
        let mut stride = [0u32; N_CATEGORIES];
        for s in &mut stride {
            *s = r.u32()?;
        }
        let mut seen = [0u64; N_CATEGORIES];
        for s in &mut seen {
            *s = r.u64()?;
        }
        let sampled_out = r.u64()?;
        if capacity == 0 || records.len() > capacity || (head != 0 && head >= records.len()) {
            return Err(epa_simcore::snap::SnapshotError::Corrupt {
                detail: format!(
                    "trace ring inconsistent: {} records, capacity {capacity}, head {head}",
                    records.len()
                ),
            });
        }
        Ok(TraceBus {
            mask,
            capacity,
            records,
            head,
            seq,
            dropped,
            stride,
            seen,
            sampled_out,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn ev(job: u64) -> TraceEvent {
        TraceEvent::JobSubmitted {
            job,
            nodes: 1,
            queue_depth: 1,
        }
    }

    #[test]
    fn mask_parsing() {
        assert_eq!(CategoryMask::parse("all"), CategoryMask::ALL);
        assert_eq!(CategoryMask::parse("off"), CategoryMask::NONE);
        assert_eq!(CategoryMask::parse(""), CategoryMask::NONE);
        let m = CategoryMask::parse("job, budget,fault");
        assert!(m.enabled(TraceCategory::Job));
        assert!(m.enabled(TraceCategory::Budget));
        assert!(m.enabled(TraceCategory::Fault));
        assert!(!m.enabled(TraceCategory::Emergency));
        // Typos change coverage, not behavior.
        assert_eq!(CategoryMask::parse("jbo,nope"), CategoryMask::NONE);
    }

    #[test]
    fn mask_parsing_reports_unknown_names() {
        // Keywords and valid lists report nothing unknown.
        assert_eq!(
            CategoryMask::parse_with_unknown("all").1,
            Vec::<String>::new()
        );
        assert_eq!(
            CategoryMask::parse_with_unknown("off").1,
            Vec::<String>::new()
        );
        assert_eq!(
            CategoryMask::parse_with_unknown("job,budget").1,
            Vec::<String>::new()
        );
        // Typos surface by name, while valid names in the same list
        // still take effect; empty segments are not "unknown".
        let (mask, unknown) = CategoryMask::parse_with_unknown("job, jbo, ,nope");
        assert!(mask.enabled(TraceCategory::Job));
        assert_eq!(unknown, vec!["jbo".to_owned(), "nope".to_owned()]);
        // The two parse entry points agree on the mask.
        assert_eq!(
            CategoryMask::parse("job,jbo"),
            CategoryMask::parse_with_unknown("job,jbo").0
        );
    }

    #[test]
    fn masked_categories_record_nothing() {
        let mut bus = TraceBus::new(CategoryMask::NONE.with(TraceCategory::Budget), 16);
        bus.record(t(1.0), ev(1)); // Job: masked off
        bus.record(
            t(2.0),
            TraceEvent::BudgetResize {
                total_watts: 100.0,
                ok: true,
            },
        );
        assert_eq!(bus.len(), 1);
        assert_eq!(bus.seen(TraceCategory::Job), 0);
        assert_eq!(bus.seen(TraceCategory::Budget), 1);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut bus = TraceBus::new(CategoryMask::ALL, 4);
        for i in 0..10u64 {
            bus.record(t(i as f64), ev(i));
        }
        assert_eq!(bus.len(), 4);
        assert_eq!(bus.dropped(), 6);
        let jobs: Vec<u64> = bus
            .iter()
            .map(|r| match r.event {
                TraceEvent::JobSubmitted { job, .. } => job,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(jobs, vec![6, 7, 8, 9]);
        // Sequence numbers stay global and monotone.
        let seqs: Vec<u64> = bus.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn sampling_stride_thins_deterministically() {
        let mut bus = TraceBus::new(CategoryMask::ALL, 128);
        bus.set_stride(TraceCategory::Job, 3);
        for i in 0..9u64 {
            bus.record(t(i as f64), ev(i));
        }
        // Every 3rd: events 0, 3, 6.
        assert_eq!(bus.len(), 3);
        assert_eq!(bus.sampled_out(), 6);
        assert_eq!(bus.seen(TraceCategory::Job), 9);
    }

    #[test]
    fn every_variant_maps_to_a_category() {
        // Spot checks across the taxonomy.
        assert_eq!(ev(1).category(), TraceCategory::Job);
        assert_eq!(
            TraceEvent::StartRejected {
                job: 1,
                reason: RejectReason::PowerDenied
            }
            .category(),
            TraceCategory::Sched
        );
        assert_eq!(
            TraceEvent::NodeFenced { node: 3 }.category(),
            TraceCategory::Actuation
        );
        assert_eq!(
            TraceEvent::SensorDropout.category(),
            TraceCategory::Telemetry
        );
        assert_eq!(
            TraceEvent::Enforcement {
                window_avg_watts: 1.0,
                cap_watts: 2.0,
                delta_nodes: 0
            }
            .category(),
            TraceCategory::Enforcement
        );
        assert_eq!(
            TraceEvent::ControlAction {
                kind: ControlKind::JobLimit,
                value: 4.0,
                accepted: true
            }
            .category(),
            TraceCategory::Control
        );
        assert_eq!(
            TraceEvent::EnvStep {
                step: 0,
                reward: -1.0,
                actions: 2
            }
            .category(),
            TraceCategory::Control
        );
    }

    #[test]
    fn disabled_bus_never_allocates() {
        let mut bus = TraceBus::disabled();
        for i in 0..1000u64 {
            bus.record(t(0.0), ev(i));
        }
        assert!(bus.is_empty());
        assert_eq!(bus.records.capacity(), 0);
    }
}
