//! Wall-clock profiling scopes.
//!
//! The one deliberately non-deterministic piece of the observability
//! stack: scopes time real engine phases (event dispatch, scheduling,
//! allocation, metering) with `std::time::Instant`. The report is for
//! humans tuning hot paths — it must **never** enter a golden comparison
//! or a trace export, and nothing here feeds back into simulation state.
//!
//! When disabled (the default) [`Profiler::start`] returns `None` and
//! [`Profiler::stop`] is a no-op, so the engine pays one branch per scope.

use serde::Serialize;
use std::time::Instant;

/// The fixed set of profiled engine phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[repr(usize)]
pub enum Scope {
    /// The event-loop dispatch (everything per popped event).
    Dispatch = 0,
    /// Scheduling rounds (`try_schedule`).
    Schedule = 1,
    /// Node allocation inside job starts.
    Allocator = 2,
    /// Power metering / telemetry ticks.
    Meter = 3,
    /// Shard-local event windows: resolving and applying the shard queues
    /// between two global (barrier) events.
    ShardDrain = 4,
}

/// Number of scopes.
pub const N_SCOPES: usize = 5;

/// All scopes, in index order.
pub const ALL_SCOPES: [Scope; N_SCOPES] = [
    Scope::Dispatch,
    Scope::Schedule,
    Scope::Allocator,
    Scope::Meter,
    Scope::ShardDrain,
];

impl Scope {
    /// Stable lowercase name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scope::Dispatch => "dispatch",
            Scope::Schedule => "schedule",
            Scope::Allocator => "allocator",
            Scope::Meter => "meter",
            Scope::ShardDrain => "shard_drain",
        }
    }
}

/// Aggregated timings for one scope.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ScopeStats {
    /// Completed start/stop pairs.
    pub calls: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
    /// Longest single call, nanoseconds.
    pub max_ns: u64,
}

impl ScopeStats {
    /// Mean call duration in nanoseconds (0 with no calls).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64
        }
    }
}

/// The frozen profile a finished run returns. Wall clock — excluded from
/// golden comparisons and trace exports by construction (nothing in the
/// deterministic export path touches it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ProfileReport {
    /// Whether profiling was enabled for the run.
    pub enabled: bool,
    /// Per-scope aggregates, indexed by [`Scope`].
    pub scopes: [ScopeStats; N_SCOPES],
}

impl ProfileReport {
    /// Stats for one scope.
    #[must_use]
    pub fn scope(&self, s: Scope) -> ScopeStats {
        self.scopes[s as usize]
    }

    /// Renders a small human-readable table (µs units).
    #[must_use]
    pub fn render(&self) -> String {
        if !self.enabled {
            return "profiling disabled\n".to_string();
        }
        let mut out = String::from("scope      calls      total_us    mean_us     max_us\n");
        for s in ALL_SCOPES {
            let st = self.scope(s);
            out.push_str(&format!(
                "{:<10} {:>9} {:>12.1} {:>10.3} {:>10.1}\n",
                s.name(),
                st.calls,
                st.total_ns as f64 / 1e3,
                st.mean_ns() / 1e3,
                st.max_ns as f64 / 1e3,
            ));
        }
        out
    }
}

/// The live scope timer.
#[derive(Debug)]
pub struct Profiler {
    enabled: bool,
    scopes: [ScopeStats; N_SCOPES],
}

impl Profiler {
    /// Creates a profiler; when `enabled` is false, start/stop are no-ops.
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        Profiler {
            enabled,
            scopes: [ScopeStats::default(); N_SCOPES],
        }
    }

    /// Whether timing is active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Begins a timed region. `None` when disabled — callers pass the
    /// token straight to [`Profiler::stop`] either way.
    #[inline]
    #[must_use]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a timed region started by [`Profiler::start`].
    #[inline]
    pub fn stop(&mut self, scope: Scope, token: Option<Instant>) {
        let Some(t0) = token else { return };
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let st = &mut self.scopes[scope as usize];
        st.calls += 1;
        st.total_ns += ns;
        st.max_ns = st.max_ns.max(ns);
    }

    /// Freezes the aggregates into a report.
    #[must_use]
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            enabled: self.enabled,
            scopes: self.scopes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::new(false);
        let t = p.start();
        assert!(t.is_none());
        p.stop(Scope::Dispatch, t);
        let r = p.report();
        assert!(!r.enabled);
        assert_eq!(r.scope(Scope::Dispatch).calls, 0);
        assert!(r.render().contains("disabled"));
    }

    #[test]
    fn enabled_profiler_aggregates() {
        let mut p = Profiler::new(true);
        for _ in 0..3 {
            let t = p.start();
            p.stop(Scope::Meter, t);
        }
        let r = p.report();
        assert_eq!(r.scope(Scope::Meter).calls, 3);
        assert!(r.scope(Scope::Meter).max_ns <= r.scope(Scope::Meter).total_ns);
        assert_eq!(r.scope(Scope::Dispatch).calls, 0);
        assert!(r.render().contains("meter"));
    }

    #[test]
    fn mean_is_total_over_calls() {
        let st = ScopeStats {
            calls: 4,
            total_ns: 1000,
            max_ns: 400,
        };
        assert!((st.mean_ns() - 250.0).abs() < 1e-9);
        assert_eq!(ScopeStats::default().mean_ns(), 0.0);
    }
}
