//! The observability metrics registry: counters, gauges, and fixed-bucket
//! histograms with Prometheus-text and JSON exposition.
//!
//! Two contracts distinguish this from the simcore `MetricsRegistry` (which
//! remains the engine's raw counter store):
//!
//! - **Mergeable.** [`ObsRegistry::merge`] is associative and
//!   order-independent — counters add, gauges take the max, histogram
//!   buckets add element-wise — mirroring the bit-identical parallel-merge
//!   guarantee the campaign runner gives outcome reductions (proptested).
//! - **Exposable.** [`ObsRegistry::to_prometheus_text`] renders the
//!   standard exposition format; [`ObsRegistry::to_json`] emits a
//!   schema-versioned document for diff tooling.
//!
//! All storage is `BTreeMap`-keyed, so exposition order is deterministic.

use crate::OBS_SCHEMA_VERSION;
use serde::{Serialize, Value};
use std::collections::BTreeMap;

/// A fixed-bucket histogram (Prometheus semantics: cumulative-free bucket
/// storage here, rendered cumulatively with `le` labels on exposition).
///
/// Buckets are defined by ascending finite upper bounds; an observation
/// lands in the first bucket whose bound is `>= value`, or in the implicit
/// overflow (`+Inf`) bucket past the last bound. Bucket counts therefore
/// always sum to `total` (proptested).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Histogram {
    /// Ascending finite bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1`, the last
    /// entry being the overflow (`+Inf`) bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub total: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl Histogram {
    /// Creates an empty histogram over the given ascending upper bounds.
    ///
    /// # Panics
    /// If `bounds` is empty, non-finite, or not strictly ascending.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "histogram bounds must be strictly ascending");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (overflow bucket is implicit)"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.total += 1;
        self.sum += value;
    }

    /// Adds another histogram's observations into this one.
    ///
    /// # Panics
    /// If the bucket bounds differ — merging histograms of different shape
    /// would silently corrupt quantiles.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// Mean observed value, or 0 with no observations.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Bucket-resolution quantile estimate: the upper bound of the first
    /// bucket whose cumulative count reaches `q * total`. Observations in
    /// the overflow bucket saturate to the last finite bound (histograms
    /// carry no information past it), and an empty histogram reports 0.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.total as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum as f64 >= target {
                return self.bounds.get(i).copied().unwrap_or_else(|| {
                    *self
                        .bounds
                        .last()
                        .expect("histogram has at least one bound")
                });
            }
        }
        *self
            .bounds
            .last()
            .expect("histogram has at least one bound")
    }
}

/// The registry: string-keyed counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl ObsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        ObsRegistry::default()
    }

    /// Increments counter `name` by `by` (creating it at 0).
    pub fn incr(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Reads counter `name` (0 if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Raises gauge `name` to `value` if higher (high-water-mark gauges
    /// keep [`ObsRegistry::merge`] order-independent).
    pub fn gauge_max(&mut self, name: &str, value: f64) {
        let g = self.gauges.entry(name.to_string()).or_insert(f64::MIN);
        if value > *g {
            *g = value;
        }
    }

    /// Reads gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Registers histogram `name` over the given bounds (no-op if it
    /// already exists with the same bounds).
    ///
    /// # Panics
    /// If `name` exists with different bounds.
    pub fn register_histogram(&mut self, name: &str, bounds: &[f64]) {
        match self.histograms.get(name) {
            Some(h) => assert_eq!(
                h.bounds, bounds,
                "histogram {name:?} re-registered with different bounds"
            ),
            None => {
                self.histograms
                    .insert(name.to_string(), Histogram::new(bounds));
            }
        }
    }

    /// Records one observation into histogram `name`.
    ///
    /// # Panics
    /// If the histogram was never registered — an unregistered observe is
    /// an instrumentation bug, not a runtime condition.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .get_mut(name)
            .unwrap_or_else(|| panic!("histogram {name:?} observed before registration"))
            .observe(value);
    }

    /// Reads histogram `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges `other` into `self`: counters add, gauges take the max,
    /// histograms add bucket-wise. Associative and order-independent
    /// (proptested), so parallel shards can be reduced in any tree shape.
    pub fn merge(&mut self, other: &ObsRegistry) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            let g = self.gauges.entry(k.clone()).or_insert(f64::MIN);
            if v > *g {
                *g = v;
            }
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Encodes the full registry (counters, gauges, histograms).
    pub fn snapshot_into(&self, w: &mut epa_simcore::snap::SnapWriter) {
        let counters: Vec<_> = self.counters.iter().collect();
        w.seq(&counters, |w, (k, v)| {
            w.str(k);
            w.u64(**v);
        });
        let gauges: Vec<_> = self.gauges.iter().collect();
        w.seq(&gauges, |w, (k, v)| {
            w.str(k);
            w.f64(**v);
        });
        let histograms: Vec<_> = self.histograms.iter().collect();
        w.seq(&histograms, |w, (k, h)| {
            w.str(k);
            w.seq(&h.bounds, |w, &b| w.f64(b));
            w.seq(&h.counts, |w, &c| w.u64(c));
            w.u64(h.total);
            w.f64(h.sum);
        });
    }

    /// Decodes a registry written by [`ObsRegistry::snapshot_into`].
    pub fn restore_from(
        r: &mut epa_simcore::snap::SnapReader<'_>,
    ) -> Result<Self, epa_simcore::snap::SnapshotError> {
        let counters = r.seq(|r| Ok((r.str()?, r.u64()?)))?.into_iter().collect();
        let gauges = r.seq(|r| Ok((r.str()?, r.f64()?)))?.into_iter().collect();
        let histograms: BTreeMap<String, Histogram> = r
            .seq(|r| {
                let name = r.str()?;
                let bounds = r.seq(epa_simcore::snap::SnapReader::f64)?;
                let counts = r.seq(epa_simcore::snap::SnapReader::u64)?;
                let total = r.u64()?;
                let sum = r.f64()?;
                if counts.len() != bounds.len() + 1 {
                    return Err(epa_simcore::snap::SnapshotError::Corrupt {
                        detail: format!(
                            "histogram {name:?}: {} counts for {} bounds",
                            counts.len(),
                            bounds.len()
                        ),
                    });
                }
                Ok((
                    name,
                    Histogram {
                        bounds,
                        counts,
                        total,
                        sum,
                    },
                ))
            })?
            .into_iter()
            .collect();
        Ok(ObsRegistry {
            counters,
            gauges,
            histograms,
        })
    }

    /// Renders the Prometheus text exposition format. Metric names are
    /// sanitized (`/`, `-`, etc. become `_`) and prefixed `epa_`.
    #[must_use]
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, &v) in &self.counters {
            let m = prom_name(name);
            out.push_str(&format!("# TYPE {m} counter\n{m} {v}\n"));
        }
        for (name, &v) in &self.gauges {
            let m = prom_name(name);
            out.push_str(&format!("# TYPE {m} gauge\n{m} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let m = prom_name(name);
            out.push_str(&format!("# TYPE {m} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &bound) in h.bounds.iter().enumerate() {
                cumulative += h.counts[i];
                out.push_str(&format!("{m}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{m}_bucket{{le=\"+Inf\"}} {}\n", h.total));
            out.push_str(&format!("{m}_sum {}\n", h.sum));
            out.push_str(&format!("{m}_count {}\n", h.total));
        }
        out
    }

    /// Emits the schema-versioned JSON exposition document.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            (
                "schema_version".to_string(),
                Value::UInt(u64::from(OBS_SCHEMA_VERSION)),
            ),
            ("kind".to_string(), Value::String("epa-obs-metrics".into())),
            ("counters".to_string(), self.counters.to_value()),
            ("gauges".to_string(), self.gauges.to_value()),
            ("histograms".to_string(), self.histograms.to_value()),
        ])
    }
}

impl Serialize for ObsRegistry {
    fn to_value(&self) -> Value {
        self.to_json()
    }
}

/// Sanitizes a slash-namespaced metric name into a Prometheus metric name:
/// `sched/wait_secs` → `epa_sched_wait_secs`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("epa_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut r = ObsRegistry::new();
        r.incr("jobs/started", 3);
        r.incr("jobs/started", 2);
        r.set_gauge("queue/depth", 7.0);
        r.gauge_max("queue/depth_peak", 4.0);
        r.gauge_max("queue/depth_peak", 9.0);
        r.gauge_max("queue/depth_peak", 2.0);
        assert_eq!(r.counter("jobs/started"), 5);
        assert_eq!(r.counter("jobs/never"), 0);
        assert_eq!(r.gauge("queue/depth"), Some(7.0));
        assert_eq!(r.gauge("queue/depth_peak"), Some(9.0));
    }

    #[test]
    fn histogram_bucket_placement() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.observe(0.5); // <= 1.0
        h.observe(1.0); // <= 1.0 (inclusive upper bound)
        h.observe(5.0); // <= 10.0
        h.observe(1000.0); // overflow
        assert_eq!(h.counts, vec![2, 1, 0, 1]);
        assert_eq!(h.total, 4);
        assert!((h.sum - 1006.5).abs() < 1e-9);
        assert!((h.mean() - 251.625).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unordered_bounds_rejected() {
        let _ = Histogram::new(&[10.0, 1.0]);
    }

    #[test]
    fn quantile_walks_cumulative_buckets() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        assert_eq!(h.quantile(0.5), 0.0); // empty
        for v in [0.5, 0.6, 5.0, 5.0, 50.0, 50.0, 50.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.25), 1.0);
        assert_eq!(h.quantile(0.5), 10.0);
        assert_eq!(h.quantile(0.9), 100.0);
        // Overflow observations saturate to the last finite bound.
        h.observe(1e6);
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn shape_mismatch_merge_rejected() {
        let mut a = Histogram::new(&[1.0]);
        let b = Histogram::new(&[2.0]);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "before registration")]
    fn unregistered_observe_panics() {
        let mut r = ObsRegistry::new();
        r.observe("nope", 1.0);
    }

    #[test]
    fn merge_adds_and_maxes() {
        let mut a = ObsRegistry::new();
        a.incr("c", 1);
        a.gauge_max("g", 5.0);
        a.register_histogram("h", &[1.0, 2.0]);
        a.observe("h", 0.5);

        let mut b = ObsRegistry::new();
        b.incr("c", 2);
        b.incr("only_b", 7);
        b.gauge_max("g", 3.0);
        b.register_histogram("h", &[1.0, 2.0]);
        b.observe("h", 1.5);
        b.observe("h", 9.0);

        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("only_b"), 7);
        assert_eq!(a.gauge("g"), Some(5.0));
        let h = a.histogram("h").unwrap();
        assert_eq!(h.counts, vec![1, 1, 1]);
        assert_eq!(h.total, 3);
    }

    #[test]
    fn prometheus_exposition_format() {
        let mut r = ObsRegistry::new();
        r.incr("jobs/started", 5);
        r.set_gauge("power/headroom_watts", 1200.5);
        r.register_histogram("sched/wait_secs", &[60.0, 300.0]);
        r.observe("sched/wait_secs", 10.0);
        r.observe("sched/wait_secs", 100.0);
        r.observe("sched/wait_secs", 999.0);
        let text = r.to_prometheus_text();
        assert!(text.contains("# TYPE epa_jobs_started counter\nepa_jobs_started 5\n"));
        assert!(text.contains("epa_power_headroom_watts 1200.5\n"));
        // Buckets are cumulative in the exposition.
        assert!(text.contains("epa_sched_wait_secs_bucket{le=\"60\"} 1\n"));
        assert!(text.contains("epa_sched_wait_secs_bucket{le=\"300\"} 2\n"));
        assert!(text.contains("epa_sched_wait_secs_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("epa_sched_wait_secs_count 3\n"));
    }

    #[test]
    fn json_exposition_is_schema_versioned() {
        let mut r = ObsRegistry::new();
        r.incr("c", 1);
        let text = serde_json::to_string(&r.to_json()).unwrap();
        assert!(text.starts_with("{\"schema_version\":1,\"kind\":\"epa-obs-metrics\""));
        assert!(text.contains("\"counters\":{\"c\":1}"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Observations on a dyadic lattice (multiples of 1/32), so f64 sums
    /// are exact and merge associativity holds bit-for-bit. Counters,
    /// bucket counts, totals, and max-gauges are associative for *all*
    /// inputs; histogram sums are exact whenever observations fit the
    /// mantissa, which seconds/watts-scale metrics always do.
    fn arb_observations() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec((-32_000i64..320_000).prop_map(|n| n as f64 / 32.0), 0..200)
    }

    fn registry_from(obs: &[f64], counter_bump: u64) -> ObsRegistry {
        let mut r = ObsRegistry::new();
        r.register_histogram("h", &[0.0, 10.0, 100.0, 1000.0]);
        for &v in obs {
            r.observe("h", v);
            r.incr("n", 1);
        }
        r.incr("bump", counter_bump);
        r.gauge_max("peak", obs.iter().copied().fold(f64::MIN, f64::max));
        r
    }

    proptest! {
        /// Bucket counts always sum to the total observation count.
        #[test]
        fn bucket_counts_sum_to_total(obs in arb_observations()) {
            let mut h = Histogram::new(&[0.0, 10.0, 100.0, 1000.0]);
            for &v in &obs {
                h.observe(v);
            }
            prop_assert_eq!(h.counts.iter().sum::<u64>(), h.total);
            prop_assert_eq!(h.total, obs.len() as u64);
        }

        /// Registry merge is associative and order-independent: merging
        /// (a+b)+c and a+(b+c) and c+(b+a) all expose identical JSON —
        /// the same guarantee the campaign runner's parallel outcome
        /// reduction relies on.
        #[test]
        fn merge_associative_and_commutative(
            xa in arb_observations(),
            xb in arb_observations(),
            xc in arb_observations(),
            (ka, kb, kc) in ((0u64..50), (0u64..50), (0u64..50)),
        ) {
            let a = registry_from(&xa, ka);
            let b = registry_from(&xb, kb);
            let c = registry_from(&xc, kc);

            // (a + b) + c
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);

            // a + (b + c)
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);

            // c + b + a (reversed order)
            let mut rev = c.clone();
            rev.merge(&b);
            rev.merge(&a);

            let render = |r: &ObsRegistry| serde_json::to_string(&r.to_json()).unwrap();
            prop_assert_eq!(render(&left), render(&right));
            prop_assert_eq!(render(&left), render(&rev));
        }
    }
}
