//! Criterion bench for the end-to-end survey pipeline: one full site run
//! (12 simulated hours) and the analysis layer on the nine-site matrix.
//! This is the cost of regenerating Tables I/II.

use criterion::{criterion_group, criterion_main, Criterion};
use epa_core::analysis::cluster_sites;
use epa_core::matrix::CapabilityMatrix;
use epa_simcore::time::SimTime;
use epa_sites::runner::run_site;
use epa_sites::taxonomy::Stage;
use std::hint::black_box;

fn bench_site_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("survey/site-run-12h");
    g.sample_size(10);
    g.bench_function("stfc", |b| {
        b.iter(|| {
            let mut site = epa_sites::centers::stfc::config(3);
            site.horizon = SimTime::from_hours(12.0);
            black_box(run_site(&site).outcome.completed)
        });
    });
    g.bench_function("tokyo-tech", |b| {
        b.iter(|| {
            let mut site = epa_sites::centers::tokyo_tech::config(3);
            site.horizon = SimTime::from_hours(12.0);
            black_box(run_site(&site).outcome.completed)
        });
    });
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut matrix = CapabilityMatrix::new();
    for site in epa_sites::all_sites(1) {
        matrix.add_site(&site.meta.key, &site.capabilities);
    }
    c.bench_function("survey/cluster-nine-sites", |b| {
        b.iter(|| black_box(cluster_sites(&matrix, Stage::Research, 0.4).len()));
    });
}

criterion_group!(benches, bench_site_run, bench_analysis);
criterion_main!(benches);
