//! Criterion benches for the power substrate: exact trace integration,
//! RAPL window accounting, cap distribution, and dynamic power sharing —
//! the inner loops of every power tick (DESIGN.md decision 1's
//! telemetry-interval trade-off is bounded by these costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epa_power::capmc::{CapDistribution, CapmcController};
use epa_power::rapl::RaplDomain;
use epa_sched::policies::power_sharing::{JobPowerNeed, PowerSharingManager};
use epa_simcore::series::TimeSeries;
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::job::JobId;
use std::collections::BTreeMap;
use std::hint::black_box;

fn trace_with(n: usize) -> TimeSeries {
    let mut ts = TimeSeries::new();
    for i in 0..n {
        ts.push(SimTime::from_secs(i as f64), 100.0 + (i % 7) as f64 * 37.0);
    }
    ts
}

fn bench_integration(c: &mut Criterion) {
    let mut g = c.benchmark_group("power/trace-integration");
    for n in [100usize, 10_000] {
        let ts = trace_with(n);
        let end = SimTime::from_secs(n as f64);
        g.bench_with_input(BenchmarkId::from_parameter(n), &ts, |b, ts| {
            b.iter(|| black_box(ts.integrate(SimTime::ZERO, end)));
        });
    }
    g.finish();
}

fn bench_rapl(c: &mut Criterion) {
    let mut domain = RaplDomain::new(250.0, SimDuration::from_secs(60.0)).unwrap();
    for i in 0..10_000 {
        domain.record(SimTime::from_secs(i as f64), 200.0 + (i % 5) as f64 * 30.0);
    }
    c.bench_function("power/rapl-windowed-average-10k-trace", |b| {
        b.iter(|| black_box(domain.windowed_average(SimTime::from_secs(10_000.0))));
    });
}

fn bench_capmc(c: &mut Criterion) {
    let mut ctrl = CapmcController::new(100.0, 500.0).unwrap();
    ctrl.set_system_cap(Some(100_000.0)).unwrap();
    let demands: BTreeMap<_, _> = (0..1024u32)
        .map(|i| (epa_cluster::node::NodeId(i), 300.0 + f64::from(i % 10)))
        .collect();
    c.bench_function("power/capmc-grant-1024-nodes", |b| {
        b.iter(|| black_box(ctrl.grant(&demands, CapDistribution::ProportionalToDemand)));
    });
}

fn bench_sharing(c: &mut Criterion) {
    let needs: BTreeMap<_, _> = (0..256u64)
        .map(|i| {
            (
                JobId(i),
                JobPowerNeed {
                    demand_watts: 200.0 + (i % 13) as f64 * 25.0,
                    floor_watts: 80.0,
                },
            )
        })
        .collect();
    let mgr = PowerSharingManager::new(40_000.0);
    let mut g = c.benchmark_group("power/sharing-256-jobs");
    g.bench_function("static", |b| {
        b.iter(|| black_box(mgr.allocate_static(&needs)));
    });
    g.bench_function("dynamic", |b| {
        b.iter(|| black_box(mgr.allocate_dynamic(&needs)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_integration,
    bench_rapl,
    bench_capmc,
    bench_sharing
);
criterion_main!(benches);
