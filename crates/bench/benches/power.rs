//! Criterion benches for the power substrate: exact trace integration,
//! RAPL window accounting, cap distribution, and dynamic power sharing —
//! the inner loops of every power tick (DESIGN.md decision 1's
//! telemetry-interval trade-off is bounded by these costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epa_power::capmc::{CapDistribution, CapmcController};
use epa_power::rapl::RaplDomain;
use epa_sched::policies::power_sharing::{JobPowerNeed, PowerSharingManager};
use epa_simcore::series::TimeSeries;
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::job::JobId;
use std::collections::BTreeMap;
use std::hint::black_box;

fn trace_with(n: usize) -> TimeSeries {
    let mut ts = TimeSeries::new();
    for i in 0..n {
        ts.push(SimTime::from_secs(i as f64), 100.0 + (i % 7) as f64 * 37.0);
    }
    ts
}

fn bench_integration(c: &mut Criterion) {
    let mut g = c.benchmark_group("power/trace-integration");
    for n in [100usize, 10_000] {
        let ts = trace_with(n);
        let end = SimTime::from_secs(n as f64);
        g.bench_with_input(BenchmarkId::from_parameter(n), &ts, |b, ts| {
            b.iter(|| black_box(ts.integrate(SimTime::ZERO, end)));
        });
    }
    g.finish();

    // Prefix-sum lookup vs the retired full scan, on a narrow window in
    // the middle of a long trace — the allocation-energy access pattern
    // (job window ≪ trace span) where the O(log n) path pays off.
    let ts = trace_with(100_000);
    let (a, b_end) = (SimTime::from_secs(50_000.0), SimTime::from_secs(50_600.0));
    let mut g = c.benchmark_group("power/windowed-integrate-100k-trace");
    g.bench_function("prefix-sum", |b| {
        b.iter(|| black_box(ts.integrate(a, b_end)));
    });
    g.bench_function("naive-scan", |b| {
        b.iter(|| black_box(ts.integrate_naive(a, b_end)));
    });
    g.finish();
}

fn bench_meter_updates(c: &mut Criterion) {
    use epa_cluster::node::NodeId;
    use epa_power::meter::EnergyMeter;

    let nodes: Vec<NodeId> = (0..256u32).map(NodeId).collect();
    let mut g = c.benchmark_group("power/meter-update-256-nodes");
    g.bench_function("per-node", |b| {
        b.iter(|| {
            let mut m = EnergyMeter::new();
            for step in 0..16u32 {
                let t = SimTime::from_secs(f64::from(step) * 60.0);
                for &n in &nodes {
                    m.set_node_watts(n, t, 90.0 + f64::from(step));
                }
            }
            black_box(m.system_watts())
        });
    });
    g.bench_function("batched", |b| {
        b.iter(|| {
            let mut m = EnergyMeter::new();
            for step in 0..16u32 {
                let t = SimTime::from_secs(f64::from(step) * 60.0);
                m.set_alloc_watts(&nodes, t, 90.0 + f64::from(step));
            }
            black_box(m.system_watts())
        });
    });
    g.finish();
}

fn bench_rapl(c: &mut Criterion) {
    let mut domain = RaplDomain::new(250.0, SimDuration::from_secs(60.0)).unwrap();
    for i in 0..10_000 {
        domain.record(SimTime::from_secs(i as f64), 200.0 + (i % 5) as f64 * 30.0);
    }
    c.bench_function("power/rapl-windowed-average-10k-trace", |b| {
        b.iter(|| black_box(domain.windowed_average(SimTime::from_secs(10_000.0))));
    });
}

fn bench_capmc(c: &mut Criterion) {
    let mut ctrl = CapmcController::new(100.0, 500.0).unwrap();
    ctrl.set_system_cap(Some(100_000.0)).unwrap();
    let demands: BTreeMap<_, _> = (0..1024u32)
        .map(|i| (epa_cluster::node::NodeId(i), 300.0 + f64::from(i % 10)))
        .collect();
    c.bench_function("power/capmc-grant-1024-nodes", |b| {
        b.iter(|| black_box(ctrl.grant(&demands, CapDistribution::ProportionalToDemand)));
    });
}

fn bench_sharing(c: &mut Criterion) {
    let needs: BTreeMap<_, _> = (0..256u64)
        .map(|i| {
            (
                JobId(i),
                JobPowerNeed {
                    demand_watts: 200.0 + (i % 13) as f64 * 25.0,
                    floor_watts: 80.0,
                },
            )
        })
        .collect();
    let mgr = PowerSharingManager::new(40_000.0);
    let mut g = c.benchmark_group("power/sharing-256-jobs");
    g.bench_function("static", |b| {
        b.iter(|| black_box(mgr.allocate_static(&needs)));
    });
    g.bench_function("dynamic", |b| {
        b.iter(|| black_box(mgr.allocate_dynamic(&needs)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_integration,
    bench_meter_updates,
    bench_rapl,
    bench_capmc,
    bench_sharing
);
criterion_main!(benches);
