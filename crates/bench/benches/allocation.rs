//! Criterion benches for the allocators (DESIGN.md decision 4): how much
//! does topology-aware placement cost relative to first-fit, and what
//! does it buy in communication locality (reported as a bench-time
//! side-print once per run)?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epa_cluster::alloc::{AllocStrategy, Allocator};
use epa_cluster::topology::Topology;
use std::hint::black_box;

fn topo() -> Topology {
    Topology::Dragonfly {
        nodes_per_router: 4,
        routers_per_group: 16,
    }
}

/// Allocate/release churn: repeatedly allocate 32 nodes and release the
/// oldest allocation, fragmenting the free set realistically.
fn churn(strategy: AllocStrategy, rounds: usize) -> usize {
    let mut alloc = Allocator::new(1024, strategy, topo());
    let mut live: Vec<Vec<epa_cluster::node::NodeId>> = Vec::new();
    let mut done = 0;
    for i in 0..rounds {
        if let Ok(nodes) = alloc.allocate(32) {
            live.push(nodes);
            done += 1;
        }
        if live.len() > 16 || (i % 3 == 0 && !live.is_empty()) {
            let nodes = live.remove(0);
            alloc.release(&nodes);
        }
    }
    done
}

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc/churn-1024-nodes-32-node-jobs");
    for (name, strategy) in [
        ("first-fit", AllocStrategy::FirstFit),
        ("contiguous", AllocStrategy::Contiguous),
        ("topology-aware", AllocStrategy::TopologyAware),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, &s| {
            b.iter(|| black_box(churn(s, 100)));
        });
    }
    g.finish();
}

fn bench_pairwise_distance(c: &mut Criterion) {
    let t = topo();
    let nodes: Vec<epa_cluster::node::NodeId> = (0..128).map(epa_cluster::node::NodeId).collect();
    c.bench_function("alloc/avg-pairwise-distance-128", |b| {
        b.iter(|| black_box(t.avg_pairwise_distance(&nodes)));
    });
}

criterion_group!(benches, bench_strategies, bench_pairwise_distance);
criterion_main!(benches);
