//! Criterion benches for the scheduling engine: how fast does a simulated
//! day run under each policy? Engine speed bounds every experiment in
//! this harness, and policy overhead (backfill profile construction,
//! DVFS search) shows up here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epa_bench::experiment_system;
use epa_sched::engine::{ClusterSim, EngineConfig};
use epa_sched::policies::backfill::{ConservativeBackfill, EasyBackfill};
use epa_sched::policies::energy_aware::EnergyAwareScheduler;
use epa_sched::policies::fcfs::Fcfs;
use epa_sched::policies::power_aware::PowerAwareBackfill;
use epa_sched::view::Policy;
use epa_simcore::time::SimTime;
use epa_workload::generator::{WorkloadGenerator, WorkloadParams};
use epa_workload::job::Job;
use std::hint::black_box;

fn jobs_for(nodes: u32, seed: u64) -> Vec<Job> {
    WorkloadGenerator::new(WorkloadParams::typical(nodes, seed))
        .generate(SimTime::from_days(1.0), 0)
}

fn run_with(policy: &mut dyn Policy, nodes: u32, budget: Option<f64>) -> u64 {
    let jobs = jobs_for(nodes, 9);
    let mut config = EngineConfig::new(SimTime::from_days(1.0));
    config.power_budget_watts = budget;
    ClusterSim::new(experiment_system(nodes), jobs, policy, config)
        .run()
        .completed
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/simulated-day-128-nodes");
    g.sample_size(10);
    g.bench_function("fcfs", |b| {
        b.iter(|| black_box(run_with(&mut Fcfs, 128, None)));
    });
    g.bench_function("easy-backfill", |b| {
        b.iter(|| black_box(run_with(&mut EasyBackfill, 128, None)));
    });
    g.bench_function("conservative-backfill", |b| {
        b.iter(|| black_box(run_with(&mut ConservativeBackfill, 128, None)));
    });
    g.bench_function("power-aware+dvfs", |b| {
        let budget = Some(experiment_system(128).spec().nominal_watts() * 0.8);
        b.iter(|| black_box(run_with(&mut PowerAwareBackfill::default(), 128, budget)));
    });
    g.bench_function("energy-aware", |b| {
        b.iter(|| black_box(run_with(&mut EnergyAwareScheduler::default(), 128, None)));
    });
    // Failure injection exercises the node→job reverse index (victim
    // lookup on every failure) on top of the baseline schedule loop.
    g.bench_function("fcfs+failures", |b| {
        b.iter(|| {
            let jobs = jobs_for(128, 9);
            let mut config = EngineConfig::new(SimTime::from_days(1.0));
            config.node_mtbf = Some(epa_simcore::time::SimDuration::from_hours(2.0));
            let mut policy = Fcfs;
            black_box(
                ClusterSim::new(experiment_system(128), jobs, &mut policy, config)
                    .run()
                    .completed,
            )
        });
    });
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/machine-size-scaling");
    g.sample_size(10);
    for nodes in [64u32, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| black_box(run_with(&mut EasyBackfill, n, None)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_policies, bench_scaling);
criterion_main!(benches);
