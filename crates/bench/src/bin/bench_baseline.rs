//! Engine throughput baseline: simulates one day of a typical workload at
//! 256, 1,024, and 4,096 nodes under EASY backfilling and writes
//! `BENCH_engine.json` with wall-time and events/sec per size. Run after
//! engine changes to track the hot-path budget (see DESIGN.md,
//! "Performance notes"):
//!
//! ```text
//! cargo run --release -p epa-bench --bin bench_baseline [out.json]
//! ```

use epa_bench::experiment_system;
use epa_sched::engine::{ClusterSim, EngineConfig};
use epa_sched::policies::backfill::EasyBackfill;
use epa_simcore::time::SimTime;
use epa_workload::generator::{WorkloadGenerator, WorkloadParams};
use serde_json::json;
use std::time::Instant;

const SIM_DAYS: f64 = 1.0;
const REPS: usize = 3;

struct SizeResult {
    nodes: u32,
    wall_secs: f64,
    events: u64,
    completed: u64,
}

fn run_once(nodes: u32) -> (f64, u64, u64) {
    let jobs = WorkloadGenerator::new(WorkloadParams::typical(nodes, 9))
        .generate(SimTime::from_days(SIM_DAYS), 0);
    let mut policy = EasyBackfill;
    let config = EngineConfig::new(SimTime::from_days(SIM_DAYS));
    let sim = ClusterSim::new(experiment_system(nodes), jobs, &mut policy, config);
    let t0 = Instant::now();
    let out = sim.run();
    let wall = t0.elapsed().as_secs_f64();
    let events = out
        .counters
        .get("sim/events_processed")
        .copied()
        .unwrap_or(0);
    (wall, events, out.completed)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_owned());
    let mut results = Vec::new();
    for nodes in [256u32, 1024, 4096] {
        // Best-of-N wall time: the minimum is the least-noise estimate of
        // the engine's intrinsic cost.
        let mut best: Option<(f64, u64, u64)> = None;
        for _ in 0..REPS {
            let r = run_once(nodes);
            if best.is_none_or(|b| r.0 < b.0) {
                best = Some(r);
            }
        }
        let (wall_secs, events, completed) = best.expect("REPS > 0");
        eprintln!(
            "{nodes:>5} nodes: {wall_secs:.3} s/simulated-day, {events} events \
             ({:.0} events/s), {completed} jobs completed",
            events as f64 / wall_secs.max(1e-12)
        );
        results.push(SizeResult {
            nodes,
            wall_secs,
            events,
            completed,
        });
    }
    let rows: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            json!({
                "nodes": r.nodes,
                "wall_secs_per_sim_day": r.wall_secs,
                "events": r.events,
                "events_per_sec": r.events as f64 / r.wall_secs.max(1e-12),
                "completed_jobs": r.completed,
            })
        })
        .collect();
    let doc = json!({
        "bench": "engine-simulated-day",
        "policy": "easy-backfill",
        "sim_days": SIM_DAYS,
        "reps": REPS,
        "results": rows,
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&doc).expect("serializable") + "\n",
    )
    .expect("write bench output");
    eprintln!("wrote {out_path}");
}
