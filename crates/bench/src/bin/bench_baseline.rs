//! Engine throughput baseline: simulates one day of a typical workload at
//! 256, 1,024, 4,096, 16,384, and 65,536 nodes under EASY backfilling and
//! writes `BENCH_engine.json` with wall-time and events/sec per size, plus
//! a `threads` section measuring the campaign runner's parallel
//! replication sweep (12 seeds, serial vs 4 threads) and a `shards`
//! section measuring the partitioned engine (1/4/16 shards × 1/4 threads
//! at 16,384 nodes), both recording byte-identity of their outputs, and a
//! `snapshot` section (crash-safe snapshot size and save/restore latency
//! at 4,096 and 16,384 nodes, mid-day), and a `streaming` section
//! (materialized vs lazy-source runs at 10k/100k/1M jobs, each measured
//! in a fresh child process so per-run peak RSS is attributable). Run
//! after engine changes to track the hot-path budget (see DESIGN.md,
//! "Performance notes"):
//!
//! ```text
//! cargo run --release -p epa-bench --bin bench_baseline [out.json]
//! ```
//!
//! With `--check-scaling` the binary instead runs the 256- and 4,096-node
//! rows and exits nonzero unless events/sec at 4,096 nodes is within 4×
//! of 256 nodes — the CI guard for the O(active)-per-event invariant —
//! then the 65,536-node row on the 16-shard engine, which must stay
//! within `SHARDED_SCALING_BOUND`× of the 256-node rate, and finally the
//! replication-sweep speedup — a cell that is skipped (not failed) when
//! the pool is oversubscribed, because a speedup measured on fewer cores
//! than pool threads is luck, not signal.
//!
//! `--stream-probe <materialized|streaming> <jobs>` is the internal
//! child-process mode of the `streaming` section: one run, one JSON line
//! on stdout carrying wall time, peak RSS, and an outcome fingerprint.

use epa_bench::campaign::run_campaign;
use epa_bench::{
    experiment_system, peak_rss_bytes, streaming_workload_params, BENCH_SCHEMA_VERSION,
};
use epa_obs::{CategoryMask, TraceConfig};
use epa_sched::engine::{ClusterSim, EngineConfig, SimOutcome};
use epa_sched::policies::backfill::EasyBackfill;
use epa_simcore::snap::Fingerprint;
use epa_simcore::time::SimTime;
use epa_workload::generator::{WorkloadGenerator, WorkloadParams};
use epa_workload::source::LazyGeneratorSource;
use serde_json::json;
use std::time::Instant;

const SIM_DAYS: f64 = 1.0;
const REPS: usize = 3;
const SIZES: [u32; 5] = [256, 1024, 4096, 16384, 65536];

/// Replication sweep measured in the `threads` section.
const SWEEP_NODES: u32 = 1024;
const SWEEP_SEEDS: [u64; 12] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];
const SWEEP_THREADS: usize = 4;

/// The CI scaling bound: events/sec at 4,096 nodes must be within this
/// factor of the 256-node rate.
const SCALING_BOUND: f64 = 4.0;

/// The sharded CI scaling bound: events/sec at 65,536 nodes on the
/// 16-shard engine must be within this factor of the 256-node rate. A
/// 256× machine runs 256×-larger jobs, so per-event node-state work
/// (start/finish loops over the allocation) grows inherently; the bound
/// bounds the measured ~35× curve with noise headroom (the 256-node
/// row completes in under a millisecond, so its rate swings ~2×) — the pre-group
/// meter walked every phase change too and sat far beyond it.
const SHARDED_SCALING_BOUND: f64 = 48.0;

/// The `shards` section's machine size and sweep axes.
const SHARD_NODES: u32 = 16384;
const SHARD_COUNTS: [u32; 3] = [1, 4, 16];
const SHARD_THREADS: [usize; 2] = [1, 4];

/// The `--check-scaling` sweep cell: with real cores behind every pool
/// thread, the parallel replication sweep must beat serial by at least
/// this factor (deliberately lax — the cell guards "parallelism still
/// works", not a tuning target).
const SWEEP_SPEEDUP_BOUND: f64 = 1.2;

/// The `streaming` section's job-count axis; the smallest count is the
/// peak-RSS baseline the 1M-job ratio is taken against.
const STREAM_JOBS: [u64; 3] = [10_000, 100_000, 1_000_000];
/// Machine size and Poisson arrival rate of the streaming workload —
/// sized so the machine keeps up and queue depth (engine memory) stays
/// flat in the job count.
const STREAM_NODES: u32 = 256;
const STREAM_RATE_PER_HOUR: f64 = 1000.0;
const STREAM_SEED: u64 = 2088;
/// Bounded-memory acceptance: the 1M-job streaming probe's peak RSS
/// must stay within this factor of the 10k-job probe.
const STREAM_RSS_BOUND: f64 = 2.0;

struct SizeResult {
    nodes: u32,
    wall_secs: f64,
    events: u64,
    completed: u64,
    /// Process peak RSS observed once this row's reps finished. The
    /// high-water mark is monotone across rows (sizes run ascending),
    /// so each value bounds everything up to and including its row.
    peak_rss: u64,
}

fn simulate(nodes: u32, seed: u64) -> SimOutcome {
    let jobs = WorkloadGenerator::new(WorkloadParams::typical(nodes, seed))
        .generate(SimTime::from_days(SIM_DAYS), 0);
    let mut policy = EasyBackfill;
    let mut config = EngineConfig::new(SimTime::from_days(SIM_DAYS));
    config.seed = seed;
    ClusterSim::new(experiment_system(nodes), jobs, &mut policy, config).run()
}

fn run_once(nodes: u32) -> (f64, u64, u64) {
    let jobs = WorkloadGenerator::new(WorkloadParams::typical(nodes, 9))
        .generate(SimTime::from_days(SIM_DAYS), 0);
    let mut policy = EasyBackfill;
    let config = EngineConfig::new(SimTime::from_days(SIM_DAYS));
    let sim = ClusterSim::new(experiment_system(nodes), jobs, &mut policy, config);
    // Time only the event loop — setup (workload generation, dense-state
    // init) is O(nodes) by construction and not what this row tracks.
    let t0 = Instant::now();
    let out = sim.run();
    let wall = t0.elapsed().as_secs_f64();
    let events = out
        .counters
        .get("sim/events_processed")
        .copied()
        .unwrap_or(0);
    (wall, events, out.completed)
}

fn best_of_reps(nodes: u32, reps: usize) -> (f64, u64, u64) {
    // Best-of-N wall time: the minimum is the least-noise estimate of
    // the engine's intrinsic cost.
    let mut best: Option<(f64, u64, u64)> = None;
    for _ in 0..reps {
        let r = run_once(nodes);
        if best.is_none_or(|b| r.0 < b.0) {
            best = Some(r);
        }
    }
    best.expect("reps > 0")
}

/// One timed run of the partitioned engine, returning wall seconds,
/// events processed, and the serialized outcome (for byte-equality
/// across the shard/thread grid). Workload and seed match `run_once`.
fn run_sharded_once(nodes: u32, shards: u32) -> (f64, u64, String) {
    let jobs = WorkloadGenerator::new(WorkloadParams::typical(nodes, 9))
        .generate(SimTime::from_days(SIM_DAYS), 0);
    let mut policy = EasyBackfill;
    let mut config = EngineConfig::new(SimTime::from_days(SIM_DAYS));
    config.shards = Some(shards);
    let sim = ClusterSim::new(experiment_system(nodes), jobs, &mut policy, config);
    let t0 = Instant::now();
    let out = sim.run();
    let wall = t0.elapsed().as_secs_f64();
    let events = out
        .counters
        .get("sim/events_processed")
        .copied()
        .unwrap_or(0);
    let bytes = serde_json::to_string(&out).expect("outcome serializes");
    (wall, events, bytes)
}

/// The `shards` section: the partitioned engine across the shard × thread
/// grid at 16,384 nodes. Every cell's outcome must be byte-identical to
/// the 1-shard/1-thread cell — the determinism claim is asserted here, in
/// the committed artifact, not just in tests.
fn shards_section() -> serde_json::Value {
    let mut cells = Vec::new();
    let mut baseline: Option<String> = None;
    for &shards in &SHARD_COUNTS {
        for &threads in &SHARD_THREADS {
            let (wall, events, bytes) =
                rayon::with_num_threads(threads, || run_sharded_once(SHARD_NODES, shards));
            let rate = events as f64 / wall.max(1e-12);
            let identical = match &baseline {
                None => {
                    baseline = Some(bytes);
                    true
                }
                Some(base) => *base == bytes,
            };
            eprintln!(
                "shards: {SHARD_NODES} nodes, {shards:>2} shards x {threads} threads: \
                 {wall:.3} s ({rate:.0} events/s), identical: {identical}"
            );
            assert!(
                identical,
                "{shards}-shard/{threads}-thread outcome drifted from 1-shard/1-thread"
            );
            cells.push(json!({
                "shards": shards,
                "threads": threads,
                "wall_secs_per_sim_day": wall,
                "events": events,
                "events_per_sec": rate,
                "identical_to_baseline": identical,
            }));
        }
    }
    json!({
        "nodes": SHARD_NODES,
        "grid": cells,
    })
}

/// Horizon that yields about `jobs` arrivals at the streaming rate.
fn stream_horizon(jobs: u64) -> SimTime {
    SimTime::from_hours(jobs as f64 / STREAM_RATE_PER_HOUR)
}

/// One streaming-probe measurement, exchanged between the parent bench
/// process and its `--stream-probe` children as a single tab-separated
/// stdout line (the vendored `serde_json` shim emits JSON but does not
/// parse it).
struct ProbeReport {
    mode: String,
    target_jobs: u64,
    jobs_completed: u64,
    events: u64,
    wall_secs: f64,
    peak_rss_bytes: u64,
    outcome_fingerprint: String,
}

impl ProbeReport {
    fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.mode,
            self.target_jobs,
            self.jobs_completed,
            self.events,
            self.wall_secs,
            self.peak_rss_bytes,
            self.outcome_fingerprint
        )
    }

    fn parse(line: &str) -> Option<Self> {
        let mut f = line.trim_end().split('\t');
        let report = ProbeReport {
            mode: f.next()?.to_owned(),
            target_jobs: f.next()?.parse().ok()?,
            jobs_completed: f.next()?.parse().ok()?,
            events: f.next()?.parse().ok()?,
            wall_secs: f.next()?.parse().ok()?,
            peak_rss_bytes: f.next()?.parse().ok()?,
            outcome_fingerprint: f.next()?.to_owned(),
        };
        f.next().is_none().then_some(report)
    }

    fn to_json(&self) -> serde_json::Value {
        json!({
            "mode": self.mode,
            "target_jobs": self.target_jobs,
            "jobs_completed": self.jobs_completed,
            "events": self.events,
            "wall_secs": self.wall_secs,
            "peak_rss_bytes": self.peak_rss_bytes,
            "outcome_fingerprint": self.outcome_fingerprint,
        })
    }
}

/// Child-process mode: one streaming-workload run (lazy source or
/// materialized list, same horizon, same engine config either way),
/// reported as a single [`ProbeReport`] line on stdout. Runs in its own
/// process so `VmHWM` attributes the peak RSS to this run alone.
fn stream_probe(mode: &str, jobs: u64) {
    let horizon = stream_horizon(jobs);
    let params = streaming_workload_params(STREAM_RATE_PER_HOUR, STREAM_SEED);
    let mut policy = EasyBackfill;
    let mut config = EngineConfig::new(horizon);
    config.seed = STREAM_SEED;
    // The streaming engine configuration on BOTH sides of the
    // comparison: per-job records fold into aggregates, the power trace
    // is bounded, no prediction history. The two runs then differ only
    // in where jobs come from, so their outcomes must be byte-identical.
    config.record_history = false;
    config.retain_completed = false;
    config.bounded_power_trace = true;
    // Wall time covers construction too: the materialized path pays its
    // full up-front generation there, the lazy path amortizes it into
    // the run — end-to-end is the honest comparison.
    let t0 = Instant::now();
    let sim = match mode {
        "streaming" => ClusterSim::try_new_with_source(
            experiment_system(STREAM_NODES),
            Box::new(LazyGeneratorSource::new(params, horizon, 0)),
            &mut policy,
            config,
        )
        .expect("valid streaming config"),
        "materialized" => {
            let jobs = WorkloadGenerator::new(params).generate(horizon, 0);
            ClusterSim::new(experiment_system(STREAM_NODES), jobs, &mut policy, config)
        }
        other => panic!("unknown stream-probe mode {other:?}"),
    };
    let out = sim.run();
    let wall = t0.elapsed().as_secs_f64();
    let events = out
        .counters
        .get("sim/events_processed")
        .copied()
        .unwrap_or(0);
    let mut fp = Fingerprint::new();
    fp.str(&serde_json::to_string(&out).expect("outcome serializes"));
    let report = ProbeReport {
        mode: mode.to_owned(),
        target_jobs: jobs,
        jobs_completed: out.completed,
        events,
        wall_secs: wall,
        peak_rss_bytes: peak_rss_bytes(),
        outcome_fingerprint: format!("{:016x}", fp.finish()),
    };
    println!("{}", report.to_line());
}

/// Re-executes this binary as a `--stream-probe` child and parses its
/// one-line report.
fn stream_probe_cell(mode: &str, jobs: u64) -> ProbeReport {
    let exe = std::env::current_exe().expect("own executable path");
    let out = std::process::Command::new(exe)
        .args(["--stream-probe", mode, &jobs.to_string()])
        .output()
        .expect("spawn stream probe");
    assert!(
        out.status.success(),
        "stream probe {mode}/{jobs} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    ProbeReport::parse(&stdout).unwrap_or_else(|| {
        panic!("stream probe {mode}/{jobs} emitted an unparseable report: {stdout:?}")
    })
}

/// The `streaming` section: lazy-source vs materialized runs of the same
/// high-rate workload at 10k, 100k, and 1M jobs, each in a fresh child
/// process. Asserts (a) every pair of runs produced byte-identical
/// outcomes and (b) the 1M-job streaming peak RSS stays within
/// `STREAM_RSS_BOUND`× of the 10k-job streaming peak — the
/// bounded-memory claim, recorded in the committed artifact.
fn streaming_section() -> serde_json::Value {
    let mut rows = Vec::new();
    let mut stream_rss: Vec<(u64, u64)> = Vec::new();
    for &jobs in &STREAM_JOBS {
        let streaming = stream_probe_cell("streaming", jobs);
        let materialized = stream_probe_cell("materialized", jobs);
        let identical = streaming.outcome_fingerprint == materialized.outcome_fingerprint;
        eprintln!(
            "streaming: {jobs:>7} jobs: lazy {:.2} s / {:.1} MiB, \
             materialized {:.2} s / {:.1} MiB, outcomes identical: {identical}",
            streaming.wall_secs,
            streaming.peak_rss_bytes as f64 / (1024.0 * 1024.0),
            materialized.wall_secs,
            materialized.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        );
        assert!(
            identical,
            "streaming outcome drifted from materialized at {jobs} jobs"
        );
        stream_rss.push((jobs, streaming.peak_rss_bytes));
        rows.push(json!({
            "jobs_target": jobs,
            "streaming": streaming.to_json(),
            "materialized": materialized.to_json(),
            "outcomes_identical": identical,
        }));
    }
    let base = stream_rss.first().expect("at least one size").1;
    let top = stream_rss.last().expect("at least one size").1;
    let rss_ratio = top as f64 / (base as f64).max(1.0);
    eprintln!(
        "streaming: peak RSS {}k-job {:.1} MiB vs {}k-job {:.1} MiB -> {rss_ratio:.2}x \
         (bound {STREAM_RSS_BOUND}x)",
        STREAM_JOBS[0] / 1000,
        base as f64 / (1024.0 * 1024.0),
        STREAM_JOBS[STREAM_JOBS.len() - 1] / 1000,
        top as f64 / (1024.0 * 1024.0),
    );
    assert!(
        base == 0 || rss_ratio <= STREAM_RSS_BOUND,
        "streaming run memory is not bounded: {rss_ratio:.2}x peak-RSS growth \
         from {} to {} jobs (bound {STREAM_RSS_BOUND}x)",
        STREAM_JOBS[0],
        STREAM_JOBS[STREAM_JOBS.len() - 1],
    );
    json!({
        "nodes": STREAM_NODES,
        "arrival_rate_per_hour": STREAM_RATE_PER_HOUR,
        "seed": STREAM_SEED,
        "rows": rows,
        "streaming_peak_rss_ratio_max_vs_min_jobs": rss_ratio,
        "streaming_peak_rss_bound": STREAM_RSS_BOUND,
    })
}

/// Runs the 12-seed replication sweep at a fixed thread count, returning
/// wall seconds and the serialized outcome of every cell (in cell order).
fn sweep(threads: usize) -> (f64, Vec<String>) {
    rayon::with_num_threads(threads, || {
        let t0 = Instant::now();
        let cells = run_campaign(&[SWEEP_NODES], &SWEEP_SEEDS, |&nodes, seed| {
            serde_json::to_string(&simulate(nodes, seed)).expect("outcome serializes")
        });
        let wall = t0.elapsed().as_secs_f64();
        (wall, cells.into_iter().map(|c| c.result).collect())
    })
}

/// The `threads` section: serial-vs-parallel wall time for the sweep and
/// byte-equality of the aggregate outputs, recorded in the bench output
/// itself so every committed BENCH_engine.json carries the determinism
/// evidence alongside the speedup claim.
fn threads_section() -> serde_json::Value {
    let available = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    eprintln!(
        "sweep: {} seeds x {} nodes, serial vs {} threads ({} cores available)",
        SWEEP_SEEDS.len(),
        SWEEP_NODES,
        SWEEP_THREADS,
        available
    );
    // Record the pool size actually in effect alongside the request and
    // the machine's core count: a 4-thread request on a 1-core box still
    // runs 4 pool threads, but the reader needs all three numbers to
    // interpret the speedup.
    let threads_used = rayon::with_num_threads(SWEEP_THREADS, rayon::current_num_threads);
    let (serial_wall, serial_out) = sweep(1);
    let (par_wall, par_out) = sweep(SWEEP_THREADS);
    let identical = serial_out == par_out;
    let speedup = serial_wall / par_wall.max(1e-12);
    eprintln!(
        "sweep: serial {serial_wall:.3} s, {SWEEP_THREADS} threads {par_wall:.3} s \
         ({speedup:.2}x), outcomes identical: {identical}"
    );
    assert!(
        identical,
        "parallel sweep outcomes must be byte-identical to serial"
    );
    let mut section = json!({
        "sweep_nodes": SWEEP_NODES,
        "replications": SWEEP_SEEDS.len(),
        "threads_requested": SWEEP_THREADS,
        "threads_used": threads_used,
        "available_cores": available,
        "serial_wall_secs": serial_wall,
        "parallel_wall_secs": par_wall,
        "speedup": speedup,
        "serial_parallel_outcomes_identical": identical,
    });
    // More pool threads than cores: the speedup number is a property of
    // the host, not the code — flag it so readers (and the scaling
    // check, which skips this cell) don't treat it as a regression.
    if threads_used > available {
        if let serde_json::Value::Object(entries) = &mut section {
            entries.push(("speedup_note".to_owned(), json!("oversubscribed")));
        }
    }
    section
}

/// Nodes and reps for the observability-overhead row.
const OBS_NODES: u32 = 4096;
const OBS_REPS: usize = 2;

/// One timed run at `OBS_NODES` under the given trace mask, returning
/// (wall seconds, events). The workload and seed match `run_once`.
fn run_obs_once(mask: CategoryMask) -> (f64, u64) {
    let jobs = WorkloadGenerator::new(WorkloadParams::typical(OBS_NODES, 9))
        .generate(SimTime::from_days(SIM_DAYS), 0);
    let mut policy = EasyBackfill;
    let mut config = EngineConfig::new(SimTime::from_days(SIM_DAYS));
    config.trace = TraceConfig {
        mask,
        ..TraceConfig::default()
    };
    let sim = ClusterSim::new(experiment_system(OBS_NODES), jobs, &mut policy, config);
    let t0 = Instant::now();
    let (out, _bundle) = sim.run_traced();
    let wall = t0.elapsed().as_secs_f64();
    let events = out
        .counters
        .get("sim/events_processed")
        .copied()
        .unwrap_or(0);
    (wall, events)
}

/// The `observability` section: events/sec at 4,096 nodes with the trace
/// mask fully off (the default — the hot path is one branch on a bitset)
/// versus every category enabled, quantifying the overhead budget from
/// DESIGN.md §9 (tracing off must stay within 2% of the untraced rate;
/// the off-mask rate here *is* the untraced path).
fn observability_section() -> serde_json::Value {
    let best = |mask: CategoryMask| -> (f64, u64) {
        let mut best: Option<(f64, u64)> = None;
        for _ in 0..OBS_REPS {
            let r = run_obs_once(mask);
            if best.is_none_or(|b| r.0 < b.0) {
                best = Some(r);
            }
        }
        best.expect("reps > 0")
    };
    let (off_wall, off_events) = best(CategoryMask::NONE);
    let (on_wall, on_events) = best(CategoryMask::ALL);
    let off_rate = off_events as f64 / off_wall.max(1e-12);
    let on_rate = on_events as f64 / on_wall.max(1e-12);
    let on_overhead = (off_rate - on_rate) / off_rate.max(1e-12);
    eprintln!(
        "observability: {OBS_NODES} nodes, tracing off {off_rate:.0} events/s, \
         all categories {on_rate:.0} events/s ({:.1}% overhead)",
        on_overhead * 100.0
    );
    json!({
        "nodes": OBS_NODES,
        "reps": OBS_REPS,
        "tracing_off_events_per_sec": off_rate,
        "tracing_all_events_per_sec": on_rate,
        "tracing_all_overhead_frac": on_overhead,
    })
}

/// Machine sizes for the `snapshot` section.
const SNAP_NODES: [u32; 2] = [4096, 16384];
const SNAP_REPS: usize = 2;

/// The `snapshot` section: crash-safe snapshot cost at mid-day on the
/// standard workload — frame size in bytes, save latency (freezing a
/// live engine into a `Snapshot`), and restore latency (rebuilding a
/// resumable engine from the bytes). Best-of-`SNAP_REPS` like the other
/// latency rows.
fn snapshot_section() -> serde_json::Value {
    let mut rows = Vec::new();
    for &nodes in &SNAP_NODES {
        let mut best: Option<(usize, f64, f64)> = None;
        for _ in 0..SNAP_REPS {
            let jobs = WorkloadGenerator::new(WorkloadParams::typical(nodes, 9))
                .generate(SimTime::from_days(SIM_DAYS), 0);
            let mut policy = EasyBackfill;
            let config = EngineConfig::new(SimTime::from_days(SIM_DAYS));
            let mut sim =
                ClusterSim::new(experiment_system(nodes), jobs.clone(), &mut policy, config);
            // Advance to a mid-campaign barrier so the snapshot carries a
            // loaded machine, then time the capture alone.
            let _ = sim.run_until(SimTime::from_hours(12.0));
            let t0 = Instant::now();
            let snap = sim.snapshot();
            let save_secs = t0.elapsed().as_secs_f64();
            let size = snap.len();
            drop(sim);
            let mut policy = EasyBackfill;
            let config = EngineConfig::new(SimTime::from_days(SIM_DAYS));
            let t0 = Instant::now();
            let resumed =
                ClusterSim::resume(experiment_system(nodes), jobs, &mut policy, config, &snap)
                    .expect("bench snapshot resumes");
            let restore_secs = t0.elapsed().as_secs_f64();
            drop(resumed);
            if best.is_none_or(|b| save_secs + restore_secs < b.1 + b.2) {
                best = Some((size, save_secs, restore_secs));
            }
        }
        let (size, save_secs, restore_secs) = best.expect("reps > 0");
        eprintln!(
            "snapshot: {nodes:>5} nodes at mid-day: {:.1} KiB, save {:.3} ms, restore {:.3} ms",
            size as f64 / 1024.0,
            save_secs * 1e3,
            restore_secs * 1e3
        );
        rows.push(json!({
            "nodes": nodes,
            "size_bytes": size,
            "save_secs": save_secs,
            "restore_secs": restore_secs,
        }));
    }
    json!({
        "at_sim_hours": 12.0,
        "reps": SNAP_REPS,
        "results": rows,
    })
}

/// CI guard: events/sec at 4,096 nodes within `SCALING_BOUND`× of 256,
/// and the 16-shard engine at 65,536 nodes within
/// `SHARDED_SCALING_BOUND`× of 256.
fn check_scaling() -> bool {
    let (wall_small, ev_small, _) = best_of_reps(256, 2);
    let (wall_big, ev_big, _) = best_of_reps(4096, 2);
    let rate_small = ev_small as f64 / wall_small.max(1e-12);
    let rate_big = ev_big as f64 / wall_big.max(1e-12);
    let degradation = rate_small / rate_big.max(1e-12);
    eprintln!(
        "scaling check: 256 nodes {rate_small:.0} events/s, 4096 nodes {rate_big:.0} events/s \
         -> {degradation:.2}x degradation (bound {SCALING_BOUND}x)"
    );
    // Best-of like the serial rows: wall times are milliseconds, so a
    // single cold run is noise-dominated.
    let mut best_huge: Option<(f64, u64)> = None;
    for _ in 0..2 {
        let (w, e, _) = run_sharded_once(65536, 16);
        if best_huge.is_none_or(|b| w < b.0) {
            best_huge = Some((w, e));
        }
    }
    let (wall_huge, ev_huge) = best_huge.expect("reps > 0");
    let rate_huge = ev_huge as f64 / wall_huge.max(1e-12);
    let sharded_degradation = rate_small / rate_huge.max(1e-12);
    eprintln!(
        "sharded scaling check: 65536 nodes / 16 shards {rate_huge:.0} events/s \
         -> {sharded_degradation:.2}x degradation vs 256 nodes \
         (bound {SHARDED_SCALING_BOUND}x)"
    );
    // Replication-sweep speedup cell — excluded when oversubscribed: a
    // pool wider than the machine can't be expected to beat serial, and
    // whatever number it produces says nothing about the code.
    let available = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let threads_used = rayon::with_num_threads(SWEEP_THREADS, rayon::current_num_threads);
    let sweep_ok = if threads_used > available {
        eprintln!(
            "sweep speedup check: skipped (oversubscribed: {threads_used} pool threads \
             on {available} cores)"
        );
        true
    } else {
        let (serial_wall, _) = sweep(1);
        let (par_wall, _) = sweep(SWEEP_THREADS);
        let speedup = serial_wall / par_wall.max(1e-12);
        eprintln!(
            "sweep speedup check: serial {serial_wall:.3} s, {SWEEP_THREADS} threads \
             {par_wall:.3} s -> {speedup:.2}x (bound {SWEEP_SPEEDUP_BOUND}x)"
        );
        speedup >= SWEEP_SPEEDUP_BOUND
    };
    degradation <= SCALING_BOUND && sharded_degradation <= SHARDED_SCALING_BOUND && sweep_ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--stream-probe") {
        let mode = args.get(1).expect("--stream-probe <mode> <jobs>");
        let jobs: u64 = args
            .get(2)
            .expect("--stream-probe <mode> <jobs>")
            .parse()
            .expect("job count");
        stream_probe(mode, jobs);
        return;
    }
    if args.iter().any(|a| a == "--check-scaling") {
        if check_scaling() {
            eprintln!("scaling check passed");
        } else {
            eprintln!("scaling check FAILED");
            std::process::exit(1);
        }
        return;
    }
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_owned());
    let mut results = Vec::new();
    for nodes in SIZES {
        let (wall_secs, events, completed) = best_of_reps(nodes, REPS);
        let peak_rss = peak_rss_bytes();
        eprintln!(
            "{nodes:>5} nodes: {wall_secs:.3} s/simulated-day, {events} events \
             ({:.0} events/s), {completed} jobs completed, peak RSS {:.1} MiB",
            events as f64 / wall_secs.max(1e-12),
            peak_rss as f64 / (1024.0 * 1024.0)
        );
        results.push(SizeResult {
            nodes,
            wall_secs,
            events,
            completed,
            peak_rss,
        });
    }
    let threads = threads_section();
    let shards = shards_section();
    let observability = observability_section();
    let snapshot = snapshot_section();
    let streaming = streaming_section();
    let rows: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            json!({
                "nodes": r.nodes,
                "wall_secs_per_sim_day": r.wall_secs,
                "events": r.events,
                "events_per_sec": r.events as f64 / r.wall_secs.max(1e-12),
                "jobs_completed": r.completed,
                "peak_rss_bytes": r.peak_rss,
            })
        })
        .collect();
    let doc = json!({
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": "engine-simulated-day",
        "policy": "easy-backfill",
        "sim_days": SIM_DAYS,
        "reps": REPS,
        "results": rows,
        "threads": threads,
        "shards": shards,
        "observability": observability,
        "snapshot": snapshot,
        "streaming": streaming,
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&doc).expect("serializable") + "\n",
    )
    .expect("write bench output");
    eprintln!("wrote {out_path}");
}
