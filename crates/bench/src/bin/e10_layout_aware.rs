//! **E10 — layout-aware maintenance scheduling** (CEA, Table I: SLURM
//! "layout logic" — know which PDUs/chillers a node depends on and avoid
//! scheduling jobs onto them before maintenance).
//!
//! The CEA site model schedules a half-day PDU maintenance window
//! mid-week. With layout logic ON the engine keeps new jobs off the
//! dependent nodes for the window; with it OFF jobs land there and would
//! have been interrupted (we count jobs whose execution overlapped the
//! window on affected nodes).
//!
//! Expected shape: layout-aware scheduling drives interrupted-job count
//! to zero at a small utilization cost during the window.

use epa_bench::ResultsTable;
use epa_simcore::time::SimTime;
use epa_sites::runner::run_site;

/// Nodes fed by PDU 0 in the runner's regular layout (4 cabinets/PDU ×
/// 16 nodes/cabinet).
fn affected_nodes() -> std::ops::Range<u32> {
    0..64
}

/// The maintenance window the runner schedules (days 3.0–3.5).
fn window() -> (f64, f64) {
    (3.0 * 86_400.0, 3.5 * 86_400.0)
}

fn main() {
    println!("E10: layout-aware scheduling around PDU maintenance at CEA\n");
    let mut aware = epa_sites::centers::cea::config(2026);
    aware.horizon = SimTime::from_days(5.0);
    let mut blind = aware.clone();
    blind.layout_aware = false;

    let mut table = ResultsTable::new(&[
        "config",
        "completed",
        "util %",
        "interrupted jobs",
        "mean wait h",
    ]);
    for (label, site) in [("layout-aware", &aware), ("layout-blind", &blind)] {
        let report = run_site(site);
        let (w_start, w_end) = window();
        let affected = affected_nodes();
        let interrupted = report
            .outcome
            .jobs
            .iter()
            .filter(|j| {
                let job_start = j.start_secs;
                let job_end = j.start_secs + j.run_secs;
                job_start < w_end
                    && job_end > w_start
                    && j.node_ids.iter().any(|n| affected.contains(n))
            })
            .count();
        table.row(vec![
            label.into(),
            report.outcome.completed.to_string(),
            format!("{:.1}", 100.0 * report.outcome.utilization),
            interrupted.to_string(),
            format!("{:.2}", report.outcome.mean_wait_secs / 3600.0),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape: layout-aware has 0 interrupted jobs; layout-blind has many.");
    println!(
        "(Note: layout-aware counts only jobs *started before* the window was known, which the"
    );
    println!(" CEA model avoids by checking the full estimated runtime at start time.)");
}
