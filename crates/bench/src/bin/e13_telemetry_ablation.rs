//! **E13 — telemetry fidelity ablation** (DESIGN.md decision 1).
//!
//! The survey's Figure 1 control loop stands on telemetry: "the control
//! of energy/power is heavily dependent on telemetry sensors". Real
//! sensors sample at finite rates with noise and quantization — this
//! ablation quantifies what the monitoring layer *sees* versus ground
//! truth as the sampling interval grows, on a real site power trace.
//!
//! Expected shape: mean-power error grows with the interval (fewer
//! samples → larger sampling error), while the observed peak sits within
//! the sensor noise/quantization band on a 5-minute-resolution truth
//! trace. Coarse sampling degrades gracefully for *averages* — which is
//! why cap enforcement works on windowed averages (Tokyo Tech's ~30 min
//! window) rather than on instantaneous readings.

use epa_bench::ResultsTable;
use epa_power::telemetry::{Telemetry, TelemetryConfig};
use epa_simcore::series::TimeSeries;
use epa_simcore::time::{SimDuration, SimTime};

fn main() {
    println!("E13: telemetry sampling-interval ablation on a Tokyo Tech day\n");
    // Ground truth: a site power trace from the simulator.
    let mut site = epa_sites::centers::tokyo_tech::config(2026);
    site.horizon = SimTime::from_days(1.0);
    let report = epa_sites::run_site(&site);
    let mut truth = TimeSeries::new();
    for &(t, w) in &report.outcome.power_trace {
        truth.push(SimTime::from_secs(t), w);
    }
    let end = SimTime::from_days(1.0);
    let true_mean = truth.time_weighted_mean(SimTime::ZERO, end);
    let true_peak = truth.max_on(SimTime::ZERO, end).unwrap_or(0.0);
    println!(
        "ground truth: mean {:.1} kW, peak {:.1} kW\n",
        true_mean / 1e3,
        true_peak / 1e3
    );

    let mut table = ResultsTable::new(&["interval s", "samples", "mean err %", "peak err %"]);
    for interval_s in [5.0, 30.0, 120.0, 600.0, 1800.0] {
        let config = TelemetryConfig {
            interval: SimDuration::from_secs(interval_s),
            noise_fraction: 0.01,
            quantization_watts: 10.0,
            seed: 99,
        };
        let mut tel = Telemetry::new(config).unwrap();
        let n = tel.sample_trace(&truth, SimTime::ZERO, end);
        let observed_mean = tel.observed_mean(SimTime::ZERO, end).unwrap_or(0.0);
        let observed_peak = tel.readings().iter().map(|r| r.watts).fold(0.0, f64::max);
        table.row(vec![
            format!("{interval_s:.0}"),
            n.to_string(),
            format!(
                "{:.2}",
                100.0 * (observed_mean - true_mean).abs() / true_mean
            ),
            format!(
                "{:.2}",
                100.0 * (observed_peak - true_peak).abs() / true_peak
            ),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape: mean error grows with the interval; peak error stays in the noise band."
    );
}
