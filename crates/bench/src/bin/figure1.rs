//! Regenerates **Figure 1** of the survey: the interactions among the
//! components of a typical EPA JSRM solution.
//!
//! The paper's figure is a box diagram; our reproduction is quantitative:
//! we run a full-stack site (Tokyo Tech — it exercises scheduler, RM,
//! telemetry, hardware boots/shutdowns, and user reporting), record every
//! cross-component message, and print the adjacency matrix plus the four
//! functional-category totals the figure's caption names (monitoring and
//! control of energy/power and of resource availability).

use epa_rm::interactions::InteractionKind;
use epa_simcore::time::SimTime;
use epa_sites::runner::run_site;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let mut site = epa_sites::centers::tokyo_tech::config(2026);
    if fast {
        site.horizon = SimTime::from_hours(12.0);
    }
    let report = run_site(&site);

    println!("Figure 1: interactions among EPA JSRM components");
    println!(
        "(messages recorded during a simulated {} at {})\n",
        if fast { "12 h" } else { "week" },
        report.name
    );
    println!("{}", report.interactions.render_matrix());

    println!("Functional categories (the four Figure 1 task classes):");
    let totals = report.interactions.kind_totals();
    for kind in InteractionKind::ALL {
        println!(
            "  {:<18} {:>8}",
            kind.label(),
            totals.get(&kind).copied().unwrap_or(0)
        );
    }
    println!("\ntotal messages: {}", report.interactions.total());
}
