//! **E3 — idle-node shutdown** (Mämmelä et al.; Tokyo Tech's production
//! capability, Table I).
//!
//! A diurnal workload (quiet nights, weekends) runs on a 128-node machine
//! with the shutdown policy off and on at several idle thresholds.
//! Reported: total energy, boots, mean wait.
//!
//! Expected shape (paper): shutdown saves energy on diurnal workloads,
//! with an optimum: too-lazy thresholds miss idle windows, too-eager ones
//! pay boot/shutdown energy and churn. Mämmelä reported savings without
//! significant slowdown.

use epa_bench::{experiment_system, ResultsTable};
use epa_sched::engine::{ClusterSim, EngineConfig};
use epa_sched::policies::EasyBackfill;
use epa_sched::shutdown::ShutdownPolicy;
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::arrival::ArrivalProcess;
use epa_workload::generator::{WorkloadGenerator, WorkloadParams};

fn run(threshold_mins: Option<f64>, seed: u64) -> (f64, u64, f64) {
    let nodes = 128u32;
    let system = experiment_system(nodes);
    let mut params = WorkloadParams::typical(nodes, seed);
    params.arrivals = ArrivalProcess::DiurnalPoisson {
        peak_rate_per_hour: 4.0,
        night_fraction: 0.1,
        weekend_fraction: 0.3,
    };
    let horizon = SimTime::from_days(7.0);
    let jobs = WorkloadGenerator::new(params).generate(horizon, 0);
    let mut config = EngineConfig::new(horizon);
    config.shutdown = threshold_mins.map(|m| ShutdownPolicy {
        idle_threshold: SimDuration::from_mins(m),
        shutdown_time: SimDuration::from_mins(2.0),
        boot_time: SimDuration::from_mins(5.0),
        min_idle_reserve: 2,
        season: None,
    });
    let mut policy = EasyBackfill;
    let out = ClusterSim::new(system, jobs, &mut policy, config).run();
    let boots = out.counters.get("rm/boots").copied().unwrap_or(0);
    (out.energy_joules / 3.6e9, boots, out.mean_wait_secs / 60.0)
}

fn main() {
    println!("E3: idle-node shutdown on a diurnal workload");
    println!(
        "128 nodes, 7 simulated days, nights at 10% and weekends at 30% of a moderate peak load\n"
    );
    let mut table =
        ResultsTable::new(&["policy", "energy MWh", "boots", "mean wait min", "saving %"]);
    let (base_e, _, base_w) = run(None, 7);
    table.row(vec![
        "always-on".into(),
        format!("{base_e:.2}"),
        "0".into(),
        format!("{base_w:.1}"),
        "0.0".into(),
    ]);
    for mins in [60.0, 30.0, 15.0, 5.0] {
        let (e, boots, w) = run(Some(mins), 7);
        table.row(vec![
            format!("shutdown@{mins:.0}min"),
            format!("{e:.2}"),
            boots.to_string(),
            format!("{w:.1}"),
            format!("{:.1}", 100.0 * (base_e - e) / base_e),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape: energy savings grow as the idle threshold shrinks; waits rise modestly."
    );
}
