//! SWF trace utilities: generate synthetic traces from the site workload
//! presets and summarize existing SWF files (the Q3 report for any
//! trace, including ones from the Parallel Workloads Archive).
//!
//! ```sh
//! # Generate 7 days of the KAUST preset as SWF on stdout:
//! cargo run -p epa-bench --bin trace_tools -- gen kaust 7 > kaust.swf
//! # Summarize any SWF file (Q3 percentile report):
//! cargo run -p epa-bench --bin trace_tools -- summarize kaust.swf
//! ```

use epa_simcore::time::SimTime;
use epa_workload::generator::{WorkloadGenerator, WorkloadSummary};
use epa_workload::trace::{read_swf, write_swf};

fn usage() -> ! {
    eprintln!("usage: trace_tools gen <site-key> <days>  |  trace_tools summarize <file.swf>");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => {
            let (Some(site_key), Some(days)) = (args.get(1), args.get(2)) else {
                usage()
            };
            let days: f64 = days.parse().unwrap_or_else(|_| usage());
            let site = epa_sites::all_sites(2026)
                .into_iter()
                .find(|s| s.meta.key == *site_key)
                .unwrap_or_else(|| {
                    eprintln!("unknown site '{site_key}'; keys: riken tokyo-tech cea kaust lrz stfc trinity cineca jcahpc");
                    std::process::exit(2)
                });
            let jobs =
                WorkloadGenerator::new(site.workload.clone()).generate(SimTime::from_days(days), 0);
            print!("{}", write_swf(&jobs));
            eprintln!(
                "generated {} jobs for {site_key} over {days} days",
                jobs.len()
            );
        }
        Some("summarize") => {
            let Some(path) = args.get(1) else { usage() };
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1)
            });
            let jobs = read_swf(&text).unwrap_or_else(|e| {
                eprintln!("parse error: {e}");
                std::process::exit(1)
            });
            let max_nodes = jobs.iter().map(|j| j.nodes).max().unwrap_or(1);
            let span = jobs
                .iter()
                .map(|j| j.submit + j.base_runtime)
                .max()
                .unwrap_or(SimTime::ZERO);
            match WorkloadSummary::compute(&jobs, max_nodes, span) {
                Some(s) => {
                    println!("jobs: {}", s.jobs);
                    println!("jobs/month: {:.0}", s.jobs_per_month);
                    println!("capability share: {:.1}%", 100.0 * s.capability_share);
                    println!(
                        "size nodes   min/p10/p25/median/p75/p90/max: {:.0}/{:.0}/{:.0}/{:.0}/{:.0}/{:.0}/{:.0}",
                        s.size.min, s.size.p10, s.size.p25, s.size.median, s.size.p75, s.size.p90, s.size.max
                    );
                    println!(
                        "runtime hours min/p10/p25/median/p75/p90/max: {:.2}/{:.2}/{:.2}/{:.2}/{:.2}/{:.2}/{:.2}",
                        s.runtime_secs.min / 3600.0,
                        s.runtime_secs.p10 / 3600.0,
                        s.runtime_secs.p25 / 3600.0,
                        s.runtime_secs.median / 3600.0,
                        s.runtime_secs.p75 / 3600.0,
                        s.runtime_secs.p90 / 3600.0,
                        s.runtime_secs.max / 3600.0
                    );
                }
                None => println!("trace contains no runnable jobs"),
            }
        }
        _ => usage(),
    }
}
