//! **E2 — the DVFS energy/time trade-off** (Freeh et al. TPDS'07,
//! Etinski et al., Auweter et al. — survey §VI).
//!
//! For three application profiles (compute-bound, balanced,
//! memory-bound) we sweep the DVFS ladder and report runtime inflation
//! and energy-to-solution relative to base frequency.
//!
//! Expected shape (paper): memory-bound codes save energy monotonically
//! as frequency drops (runtime barely inflates); compute-bound codes
//! have their energy minimum near base frequency because the runtime
//! inflation pays back the power saving.

use epa_bench::ResultsTable;
use epa_cluster::node::NodeSpec;
use epa_power::dvfs::DvfsModel;
use epa_workload::job::AppProfile;

fn main() {
    let model = DvfsModel::new(NodeSpec::typical_xeon());
    let base = model.cpu().base_freq_ghz;
    println!("E2: DVFS energy/time trade-off (relative to base {base:.2} GHz)\n");
    for app in [
        AppProfile::compute_bound("compute-bound"),
        AppProfile::balanced("balanced"),
        AppProfile::memory_bound("memory-bound"),
    ] {
        println!(
            "profile: {} (mean cpu-boundness {:.2})",
            app.tag,
            app.mean_cpu_boundness()
        );
        let mut table = ResultsTable::new(&["freq GHz", "runtime ×", "power ×", "energy ×"]);
        let base_energy: f64 = app
            .phases
            .iter()
            .map(|p| p.weight * model.phase_energy(1.0, base, p.cpu_boundness))
            .sum();
        for f in model.cpu().frequency_ladder() {
            let slow: f64 = app
                .phases
                .iter()
                .map(|p| p.weight * model.slowdown(f, p.cpu_boundness))
                .sum::<f64>()
                / app.phases.iter().map(|p| p.weight).sum::<f64>();
            let energy: f64 = app
                .phases
                .iter()
                .map(|p| p.weight * model.phase_energy(1.0, f, p.cpu_boundness))
                .sum();
            table.row(vec![
                format!("{f:.2}"),
                format!("{slow:.3}"),
                format!("{:.3}", model.busy_watts(f) / model.busy_watts(base)),
                format!("{:.3}", energy / base_energy),
            ]);
        }
        println!("{}", table.render());
        let opt = model.energy_optimal_frequency(app.mean_cpu_boundness());
        println!("energy-optimal frequency: {opt:.2} GHz\n");
    }
    println!("Expected shape: memory-bound optimum at the ladder minimum; compute-bound optimum near base.");
}
