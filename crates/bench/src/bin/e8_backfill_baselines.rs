//! **E8 — backfilling baselines** (Mu'alem & Feitelson TPDS'01, survey
//! §VI, ref. 35): FCFS vs EASY vs conservative backfilling, plus the
//! reservation-depth ablation under a power budget (DESIGN.md
//! decision 5).
//!
//! Expected shape (paper): EASY and conservative backfilling deliver far
//! better utilization and wait times than FCFS; EASY edges conservative
//! on slowdown for typical (over-estimated) walltimes.

use epa_bench::{experiment_system, OutcomeRow, ResultsTable};
use epa_sched::engine::{ClusterSim, EngineConfig};
use epa_sched::policies::registry::make_policy;
use epa_simcore::time::SimTime;
use epa_workload::generator::{WorkloadGenerator, WorkloadParams};

fn run(which: &str, budget: Option<f64>, seed: u64) -> OutcomeRow {
    let nodes = 128u32;
    let system = experiment_system(nodes);
    let mut params = WorkloadParams::typical(nodes, seed);
    // Load the machine heavily so scheduling quality matters.
    params.arrivals = epa_workload::arrival::ArrivalProcess::Poisson {
        rate_per_hour: 14.0,
    };
    let horizon = SimTime::from_days(4.0);
    let jobs = WorkloadGenerator::new(params).generate(horizon, 0);
    let mut config = EngineConfig::new(horizon);
    config.power_budget_watts = budget;
    let mut policy = make_policy(which).expect("registered policy");
    let out = ClusterSim::new(system, jobs, policy.as_mut(), config).run();
    OutcomeRow::from(&out)
}

fn main() {
    println!("E8: scheduling baselines on 128 nodes, 4 simulated days, heavy load\n");
    let mut table =
        ResultsTable::new(&["policy", "completed", "util %", "mean wait h", "slowdown"]);
    for which in ["fcfs", "easy-backfill", "conservative-backfill"] {
        let r = run(which, None, 5);
        table.row(vec![
            which.into(),
            r.completed.to_string(),
            format!("{:.1}", r.utilization_pct),
            format!("{:.2}", r.mean_wait_h),
            format!("{:.2}", r.slowdown),
        ]);
    }
    println!("{}", table.render());

    println!(
        "Ablation: the same three under a 75% power budget (reservation depth × power admission)\n"
    );
    let mut table2 =
        ResultsTable::new(&["policy", "completed", "util %", "mean wait h", "slowdown"]);
    let budget = Some(experiment_system(128).spec().nominal_watts() * 0.75);
    for which in ["fcfs", "easy-backfill", "conservative-backfill"] {
        let r = run(which, budget, 5);
        table2.row(vec![
            which.into(),
            r.completed.to_string(),
            format!("{:.1}", r.utilization_pct),
            format!("{:.2}", r.mean_wait_h),
            format!("{:.2}", r.slowdown),
        ]);
    }
    println!("{}", table2.render());
    println!("Expected shape: EASY/conservative ≫ FCFS on utilization and wait; the budget compresses all three.");
}
