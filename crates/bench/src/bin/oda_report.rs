//! ODA (observe–decide–act) observability report: runs a subset of the
//! surveyed sites over a shortened horizon with full decision tracing
//! enabled and renders a per-site dashboard — robustness counters from
//! the metrics registry, the latency/staleness histograms, and the trace
//! event mix per category. This is the paper's Figure 1 control loop made
//! inspectable: every observe (telemetry), decide (scheduler/budget), and
//! act (actuator) edge shows up as counted, traced evidence.
//!
//! ```text
//! cargo run --release -p epa-bench --bin oda_report
//! ```

use epa_bench::ResultsTable;
use epa_obs::ALL_CATEGORIES;
use epa_simcore::time::SimTime;

/// Sites rendered in the report (one per distinct policy family).
const REPORT_SITES: [&str; 3] = ["lrz", "cea", "riken"];

/// Shortened horizon: two simulated days keeps the report fast while
/// still exercising emergencies, shutdown seasons, and requeues.
const HORIZON_DAYS: f64 = 2.0;

fn main() {
    // The runner reads the trace mask from the environment; the report
    // wants the full decision trace unless the caller narrowed it.
    if std::env::var("EPA_JSRM_TRACE").is_err() {
        std::env::set_var("EPA_JSRM_TRACE", "all");
    }
    let sites: Vec<_> = epa_sites::all_sites(2026)
        .into_iter()
        .filter(|s| REPORT_SITES.contains(&s.meta.key.as_str()))
        .map(|mut s| {
            s.horizon = SimTime::from_days(HORIZON_DAYS);
            s
        })
        .collect();

    let mut summary = ResultsTable::new(&[
        "site",
        "trace events",
        "dropped",
        "requeues",
        "telemetry fallbacks",
        "fenced nodes",
        "mean wait (h)",
        "queue depth (mean)",
    ]);

    for site in &sites {
        let report = epa_sites::run_site(site);
        let obs = &report.obs;

        println!("== {} ({HORIZON_DAYS:.0}-day horizon) ==", report.name);
        // Trace event mix: how many decisions each control-loop edge
        // produced (after the per-category enable mask and sampling).
        let mut mix = ResultsTable::new(&["category", "events seen", "recorded share"]);
        let total_seen: u64 = ALL_CATEGORIES.iter().map(|&c| obs.trace.seen(c)).sum();
        for cat in ALL_CATEGORIES {
            let n = obs.trace.seen(cat);
            if n > 0 {
                mix.row(vec![
                    cat.name().to_owned(),
                    n.to_string(),
                    format!("{:.1}%", 100.0 * n as f64 / total_seen.max(1) as f64),
                ]);
            }
        }
        println!("{}", mix.render());

        // Registry dashboard: histograms summarized as mean/total.
        let mut hists = ResultsTable::new(&["histogram", "samples", "mean"]);
        for (name, h) in obs.registry.histograms() {
            hists.row(vec![
                name.to_owned(),
                h.total.to_string(),
                format!("{:.2}", h.mean()),
            ]);
        }
        println!("{}", hists.render());

        let wait_mean_h = obs
            .registry
            .histogram("sched/wait_secs")
            .map_or(0.0, |h| h.mean() / 3600.0);
        let depth_mean = obs
            .registry
            .histogram("sched/queue_depth")
            .map_or(0.0, epa_obs::Histogram::mean);
        summary.row(vec![
            report.key.clone(),
            obs.trace.len().to_string(),
            obs.trace.dropped().to_string(),
            report.outcome.requeues.to_string(),
            report.outcome.telemetry_fallbacks.to_string(),
            report.outcome.fenced_nodes.to_string(),
            format!("{wait_mean_h:.2}"),
            format!("{depth_mean:.1}"),
        ]);
        // Sanity link: the outcome's robustness counters come *from* the
        // obs registry (one source of truth), so the two must agree.
        assert_eq!(
            report.outcome.requeues,
            obs.registry.counter("jobs/requeued")
        );
    }

    println!("== per-site summary ==");
    println!("{}", summary.render());
}
