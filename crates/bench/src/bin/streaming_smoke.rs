//! Million-job streaming smoke: bounded memory plus prefix equivalence.
//!
//! CI runs this under `ulimit -v` (the `streaming-memory` job), so an
//! unbounded buffer anywhere on the streaming path OOMs here instead of
//! landing on main. Two phases:
//!
//! 1. **10k-job prefix equivalence** — the lazy-generator engine versus
//!    the materialized engine over the same horizon, across shards
//!    {1, 4} × threads {1, 4}, plus a mid-run snapshot/resume of the
//!    streaming engine in every cell. The serialized [`SimOutcome`] and
//!    the exported JSONL decision trace of every run must be
//!    byte-identical to the 1-shard/1-thread materialized baseline.
//! 2. **1M-job streaming run** — must complete inside the CI
//!    address-space cap, and its peak RSS must stay within
//!    [`RSS_BOUND`]× of the process high-water mark after phase 1 (a
//!    10k-job workload), the bounded-memory acceptance bound.
//!
//! ```text
//! cargo run --release -p epa-bench --bin streaming_smoke
//! ```

use epa_bench::{experiment_system, peak_rss_bytes, streaming_workload_params};
use epa_obs::{trace_to_jsonl, CategoryMask, TraceConfig};
use epa_sched::engine::{ClusterSim, EngineConfig};
use epa_sched::policies::backfill::EasyBackfill;
use epa_simcore::time::SimTime;
use epa_workload::generator::WorkloadGenerator;
use epa_workload::source::LazyGeneratorSource;
use std::time::Instant;

const NODES: u32 = 256;
const RATE_PER_HOUR: f64 = 1000.0;
const SEED: u64 = 2088;
const PREFIX_JOBS: u64 = 10_000;
const FULL_JOBS: u64 = 1_000_000;
const SHARD_GRID: [u32; 2] = [1, 4];
const THREAD_GRID: [usize; 2] = [1, 4];

/// Peak RSS of the 1M-job run, relative to the high-water mark the
/// 10k-job phase left behind.
const RSS_BOUND: f64 = 2.0;

fn horizon_for(jobs: u64) -> SimTime {
    SimTime::from_hours(jobs as f64 / RATE_PER_HOUR)
}

/// The streaming engine configuration: aggregate-only completions,
/// bounded power trace, no prediction history, full decision tracing
/// (so the trace comparison exercises the ring across the crash
/// boundary too).
fn config(horizon: SimTime, shards: u32) -> EngineConfig {
    let mut config = EngineConfig::new(horizon);
    config.seed = SEED;
    config.shards = Some(shards);
    config.record_history = false;
    config.retain_completed = false;
    config.bounded_power_trace = true;
    config.trace = TraceConfig {
        mask: CategoryMask::ALL,
        ..TraceConfig::default()
    };
    config
}

/// Serialized outcome + exported JSONL trace of a finished run.
fn fingerprint(sim: ClusterSim<'_>) -> (String, String) {
    let (out, bundle) = sim.run_traced();
    let outcome = serde_json::to_string(&out).expect("outcome serializes");
    (outcome, trace_to_jsonl(&bundle.trace))
}

fn materialized_run(horizon: SimTime, shards: u32) -> (String, String) {
    let params = streaming_workload_params(RATE_PER_HOUR, SEED);
    let jobs = WorkloadGenerator::new(params).generate(horizon, 0);
    let mut policy = EasyBackfill;
    fingerprint(ClusterSim::new(
        experiment_system(NODES),
        jobs,
        &mut policy,
        config(horizon, shards),
    ))
}

fn source(horizon: SimTime) -> Box<LazyGeneratorSource> {
    Box::new(LazyGeneratorSource::new(
        streaming_workload_params(RATE_PER_HOUR, SEED),
        horizon,
        0,
    ))
}

fn streaming_run(horizon: SimTime, shards: u32) -> (String, String) {
    let mut policy = EasyBackfill;
    fingerprint(
        ClusterSim::try_new_with_source(
            experiment_system(NODES),
            source(horizon),
            &mut policy,
            config(horizon, shards),
        )
        .expect("valid streaming config"),
    )
}

/// Streaming run killed at mid-horizon and resumed from the snapshot
/// with a fresh source (the snapshot carries the source cursor).
fn streaming_resumed_run(horizon: SimTime, shards: u32) -> (String, String) {
    let mut policy = EasyBackfill;
    let mut sim = ClusterSim::try_new_with_source(
        experiment_system(NODES),
        source(horizon),
        &mut policy,
        config(horizon, shards),
    )
    .expect("valid streaming config");
    let snap = sim.run_until(SimTime::from_secs(horizon.as_secs() / 2.0));
    drop(sim); // the crash
    let mut policy = EasyBackfill;
    fingerprint(
        ClusterSim::resume_with_source(
            experiment_system(NODES),
            source(horizon),
            &mut policy,
            config(horizon, shards),
            &snap,
        )
        .expect("streaming snapshot resumes"),
    )
}

fn main() {
    // Phase 1: 10k-job prefix, materialized vs streaming vs
    // streaming-with-crash across the shard × thread grid.
    let horizon = horizon_for(PREFIX_JOBS);
    let (base_outcome, base_trace) =
        rayon::with_num_threads(1, || materialized_run(horizon, SHARD_GRID[0]));
    let mut cells = 0;
    for &shards in &SHARD_GRID {
        for &threads in &THREAD_GRID {
            let (m_out, m_trace) =
                rayon::with_num_threads(threads, || materialized_run(horizon, shards));
            let (s_out, s_trace) =
                rayon::with_num_threads(threads, || streaming_run(horizon, shards));
            let (r_out, r_trace) =
                rayon::with_num_threads(threads, || streaming_resumed_run(horizon, shards));
            for (label, out, trace) in [
                ("materialized", &m_out, &m_trace),
                ("streaming", &s_out, &s_trace),
                ("streaming+resume", &r_out, &r_trace),
            ] {
                assert_eq!(
                    out, &base_outcome,
                    "{label} outcome diverged at {shards} shards x {threads} threads"
                );
                assert_eq!(
                    trace, &base_trace,
                    "{label} trace diverged at {shards} shards x {threads} threads"
                );
            }
            cells += 1;
            eprintln!(
                "prefix: {shards} shards x {threads} threads: materialized, streaming, \
                 and crash/resume runs all byte-identical"
            );
        }
    }
    eprintln!(
        "prefix: {PREFIX_JOBS}-job outcome+trace identical across {cells} grid cells \
         x 3 engine paths"
    );

    // Phase 2: the million-job run, in bounded memory.
    let rss_after_prefix = peak_rss_bytes();
    let t0 = Instant::now();
    let horizon = horizon_for(FULL_JOBS);
    let mut policy = EasyBackfill;
    let out = ClusterSim::try_new_with_source(
        experiment_system(NODES),
        source(horizon),
        &mut policy,
        // Tracing off for the long run: the ring would just rotate.
        {
            let mut c = config(horizon, 1);
            c.trace = TraceConfig::default();
            c
        },
    )
    .expect("valid streaming config")
    .run();
    let wall = t0.elapsed().as_secs_f64();
    let rss_after_full = peak_rss_bytes();
    let ratio = rss_after_full as f64 / (rss_after_prefix as f64).max(1.0);
    eprintln!(
        "full: {} jobs completed in {wall:.1} s wall; peak RSS {:.1} MiB \
         vs {:.1} MiB after the {PREFIX_JOBS}-job phase -> {ratio:.2}x (bound {RSS_BOUND}x)",
        out.completed,
        rss_after_full as f64 / (1024.0 * 1024.0),
        rss_after_prefix as f64 / (1024.0 * 1024.0),
    );
    assert!(
        out.completed > FULL_JOBS / 2,
        "million-job run completed implausibly few jobs: {}",
        out.completed
    );
    assert!(
        rss_after_prefix == 0 || ratio <= RSS_BOUND,
        "streaming memory is not bounded: {ratio:.2}x peak-RSS growth from \
         {PREFIX_JOBS} to {FULL_JOBS} jobs (bound {RSS_BOUND}x)"
    );
    println!("streaming smoke passed");
}
