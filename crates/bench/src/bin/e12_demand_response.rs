//! **E12 — demand response: the ESP–SC interaction** (Bates et al. and
//! Patki et al., the survey's §I/§II motivating works: electricity
//! service providers asking supercomputing centers to shed load).
//!
//! A 128-node machine receives a demand-response request: shed to 50% of
//! its budget for a 4-hour afternoon window. Three site postures:
//! 1. ignore the request (baseline; violation seconds show the exposure),
//! 2. admission-only: stop starting jobs that don't fit the shed budget,
//! 3. admission + emergency killing: actively drive the draw down.
//!
//! Expected shape: ignoring leaves hours of violation; admission-only
//! converges slowly (running jobs drain); emergency compliance is fast
//! but kills work.

use epa_bench::{experiment_system, ResultsTable};
use epa_sched::emergency::EmergencyPolicy;
use epa_sched::engine::{ClusterSim, EngineConfig};
use epa_sched::policies::EasyBackfill;
use epa_simcore::time::SimTime;
use epa_workload::generator::{WorkloadGenerator, WorkloadParams};

fn main() {
    println!("E12: demand-response window (50% shed, hours 24–28 of a 3-day run)\n");
    let nodes = 128u32;
    let system = experiment_system(nodes);
    let nominal = system.spec().nominal_watts();
    let horizon = SimTime::from_days(3.0);
    let jobs = WorkloadGenerator::new(WorkloadParams::typical(nodes, 17)).generate(horizon, 0);
    let shed_start = SimTime::from_hours(24.0);
    let shed_end = SimTime::from_hours(28.0);

    let mut table = ResultsTable::new(&[
        "posture",
        "violation s",
        "excess kWh",
        "kills",
        "finished ok",
        "energy MWh",
    ]);
    for (label, comply, emergency) in [
        ("ignore request", false, false),
        ("admission only", true, false),
        ("admission + emergency", true, true),
    ] {
        let mut config = EngineConfig::new(horizon);
        config.power_budget_watts = Some(nominal);
        if comply {
            config.budget_schedule = vec![(shed_start, nominal * 0.5), (shed_end, nominal)];
        }
        if emergency {
            // The emergency response arms only inside the compliance
            // window (a demand-response event, not a standing limit).
            config.emergency = Some(EmergencyPolicy::windowed(
                nominal * 0.5,
                shed_start,
                shed_end,
            ));
        }
        let mut policy = EasyBackfill;
        let out = ClusterSim::new(system.clone(), jobs.clone(), &mut policy, config).run();
        // Violation during the window: seconds above the shed level, and
        // the integral of the excess draw (what the utility actually sees).
        let mut violation_secs = 0.0;
        let mut excess_joules = 0.0;
        for w in out.power_trace.windows(2) {
            let (t, watts) = w[0];
            let dt = w[1].0 - t;
            if t >= shed_start.as_secs() && t < shed_end.as_secs() && watts > nominal * 0.5 {
                violation_secs += dt;
                excess_joules += (watts - nominal * 0.5) * dt;
            }
        }
        let finished_ok = out
            .jobs
            .iter()
            .filter(|j| !j.killed_by_emergency && !j.killed_at_walltime)
            .count();
        table.row(vec![
            label.into(),
            format!("{violation_secs:.0}"),
            format!("{:.1}", excess_joules / 3.6e6),
            out.emergency_kills.to_string(),
            finished_ok.to_string(),
            format!("{:.2}", out.energy_joules / 3.6e9),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape: ignore = full-window violation at high excess; admission-only same duration");
    println!("but lower excess (the machine drains); emergency ≈ zero excess at the cost of killed jobs.");
}
