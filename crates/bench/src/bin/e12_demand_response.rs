//! **E12 — demand response: the ESP–SC interaction** (Bates et al. and
//! Patki et al., the survey's §I/§II motivating works: electricity
//! service providers asking supercomputing centers to shed load).
//!
//! A 128-node machine receives a demand-response request: shed to 50% of
//! its budget for a 4-hour afternoon window. Three site postures:
//! 1. ignore the request (baseline; violation seconds show the exposure),
//! 2. admission-only: stop starting jobs that don't fit the shed budget,
//! 3. admission + emergency killing: actively drive the draw down.
//!
//! The DR event is defined once, as an `epa-grid` [`DrContract`]; the
//! engine consumes it through the contract's budget-schedule adapter,
//! which is asserted byte-identical to the legacy inline schedule this
//! bin used to build by hand, and the settlement comes from the
//! contract's penalty accounting (asserted equal to the legacy loop).
//!
//! Expected shape: ignoring leaves hours of violation; admission-only
//! converges slowly (running jobs drain); emergency compliance is fast
//! but kills work.

use epa_bench::{experiment_system, ResultsTable};
use epa_grid::{DrContract, DrEvent};
use epa_sched::emergency::EmergencyPolicy;
use epa_sched::engine::{ClusterSim, EngineConfig};
use epa_sched::policies::EasyBackfill;
use epa_simcore::time::SimTime;
use epa_workload::generator::{WorkloadGenerator, WorkloadParams};

fn main() {
    println!("E12: demand-response window (50% shed, hours 24–28 of a 3-day run)\n");
    let nodes = 128u32;
    let system = experiment_system(nodes);
    let nominal = system.spec().nominal_watts();
    let horizon = SimTime::from_days(3.0);
    let jobs = WorkloadGenerator::new(WorkloadParams::typical(nodes, 17)).generate(horizon, 0);

    // The DR request, as a grid contract: one enforced-by-posture event,
    // 1 kWh of tolerance, a stiff per-kWh penalty.
    let event = DrEvent {
        start: SimTime::from_hours(24.0),
        end: SimTime::from_hours(28.0),
        target_frac: 0.5,
        enforce: false,
    };
    let contract = DrContract {
        events: vec![event],
        penalty_per_excess_kwh: 10.0,
        tolerance_kwh: 1.0,
    };
    contract.validate().expect("well-formed contract");

    // The contract's budget-schedule adapter reproduces the legacy
    // inline schedule exactly — same times, same watts, byte-identical
    // engine behaviour.
    let schedule = contract.budget_schedule(nominal);
    assert_eq!(
        schedule,
        vec![(event.start, nominal * 0.5), (event.end, nominal)],
        "DR adapter must match the legacy inline schedule"
    );

    let mut table = ResultsTable::new(&[
        "posture",
        "violation s",
        "excess kWh",
        "penalty",
        "kills",
        "finished ok",
        "energy MWh",
    ]);
    for (label, comply, emergency) in [
        ("ignore request", false, false),
        ("admission only", true, false),
        ("admission + emergency", true, true),
    ] {
        let mut config = EngineConfig::new(horizon);
        config.power_budget_watts = Some(nominal);
        if comply {
            config.budget_schedule = schedule.clone();
        }
        if emergency {
            // The emergency response arms only inside the compliance
            // window (a demand-response event, not a standing limit).
            config.emergency = Some(EmergencyPolicy::windowed(
                event.target_watts(nominal),
                event.start,
                event.end,
            ));
        }
        let mut policy = EasyBackfill;
        let out = ClusterSim::new(system.clone(), jobs.clone(), &mut policy, config).run();
        // Settle the window through the contract; the legacy inline loop
        // is kept as the cross-check the accounting must reproduce.
        let acc = contract.account(nominal, &out.power_trace);
        let (mut legacy_violation, mut legacy_excess) = (0.0, 0.0);
        for w in out.power_trace.windows(2) {
            let (t, watts) = w[0];
            let dt = w[1].0 - t;
            if t >= event.start.as_secs() && t < event.end.as_secs() && watts > nominal * 0.5 {
                legacy_violation += dt;
                legacy_excess += (watts - nominal * 0.5) * dt;
            }
        }
        let settled = &acc.events[0];
        assert!(
            (settled.violation_secs - legacy_violation).abs() < 1e-6
                && (settled.excess_kwh - legacy_excess / 3.6e6).abs() < 1e-9,
            "contract settlement must match the legacy accounting loop"
        );
        let finished_ok = out
            .jobs
            .iter()
            .filter(|j| !j.killed_by_emergency && !j.killed_at_walltime)
            .count();
        table.row(vec![
            label.into(),
            format!("{:.0}", settled.violation_secs),
            format!("{:.1}", settled.excess_kwh),
            format!("{:.1}", settled.penalty),
            out.emergency_kills.to_string(),
            finished_ok.to_string(),
            format!("{:.2}", out.energy_joules / 3.6e9),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape: ignore = full-window violation at high excess; admission-only same duration");
    println!("but lower excess (the machine drains); emergency ≈ zero excess at the cost of killed jobs.");
}
