//! **E6 — automated emergency power response** (RIKEN's production row,
//! Table I: "automated emergency job killing if power limit exceeded").
//!
//! The RIKEN site model runs with its emergency limit progressively
//! lowered, forcing breaches. Reported: breaches detected, jobs killed,
//! time spent above the limit, and throughput — demonstrating that the
//! response holds the limit at the cost of killed work.
//!
//! Expected shape: lower limits → more kills, but the violation time
//! stays near zero (the response works); with the response disabled the
//! violation time grows instead.

use epa_bench::ResultsTable;
use epa_sched::emergency::EmergencyPolicy;
use epa_simcore::time::SimTime;
use epa_sites::runner::run_site;

fn main() {
    println!("E6: emergency job killing at RIKEN (limit sweep)\n");
    let base = {
        let mut s = epa_sites::centers::riken::config(2026);
        s.horizon = SimTime::from_days(3.0);
        s
    };
    let nominal = base.system.nominal_watts();
    let mut table = ResultsTable::new(&[
        "limit % nominal",
        "breaches",
        "kills",
        "violation s",
        "finished ok",
        "wasted node-h",
    ]);
    for frac in [1.05, 0.95, 0.85, 0.75] {
        let mut site = base.clone();
        let limit = nominal * frac;
        site.emergency = Some(EmergencyPolicy::new(limit));
        // The power budget must allow breaches to occur at all: admission
        // alone would otherwise prevent them. Leave admission above the
        // emergency limit so transients breach it.
        site.power_budget_watts = Some(nominal * 1.05);
        let report = run_site(&site);
        let c = &report.outcome.counters;
        // "finished ok" excludes jobs killed by the response or at their
        // walltime — killed work is *wasted*, which is the policy's cost.
        let finished_ok = report
            .outcome
            .jobs
            .iter()
            .filter(|j| !j.killed_by_emergency && !j.killed_at_walltime)
            .count();
        let wasted_node_h: f64 = report
            .outcome
            .jobs
            .iter()
            .filter(|j| j.killed_by_emergency)
            .map(|j| f64::from(j.nodes) * j.run_secs / 3600.0)
            .sum();
        table.row(vec![
            format!("{:.0}", frac * 100.0),
            c.get("emergency/breaches")
                .copied()
                .unwrap_or(0)
                .to_string(),
            report.outcome.emergency_kills.to_string(),
            format!("{:.0}", report.outcome.budget_violation_secs),
            finished_ok.to_string(),
            format!("{:.0}", wasted_node_h.max(0.0)),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape: lower limits produce more breaches and kills; completions fall.");
}
