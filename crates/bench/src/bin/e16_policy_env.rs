//! E16: learned controllers through the unified control plane.
//!
//! For each of the nine surveyed centers, trains two dependency-free
//! offline learners — tabular Q-learning over a tile-coded observation
//! and an epsilon-greedy contextual bandit — inside the SPARS-style
//! [`PolicyEnv`], driving the standard macro-action catalog on top of an
//! EASY-backfill engine. Each learner's greedy policy is then evaluated
//! for one episode and scored with the same blended reward
//! (energy + slowdown + budget violation) as four engineered baselines:
//! fcfs, easy-backfill, power-aware-backfill+dvfs, energy-aware(energy).
//!
//! Determinism: training is a pure function of the seeds; CI runs this
//! bin twice and byte-diffs both the JSON and the trajectory dump.
//!
//! Env vars:
//! - `EPA_E16_SITES` — comma-separated site keys to run (default: all nine).
//! - `EPA_E16_TRAJECTORY` — path to write the full training trajectory
//!   (one line per decision step) for byte-level reproducibility checks.
//!
//! Usage: `e16_policy_env [out.json]` (default `BENCH_policy_env.json`).

use epa_bench::ResultsTable;
use epa_sched::engine::{ClusterSim, EngineConfig, SimOutcome};
use epa_sched::env::{EnvConfig, PolicyEnv, RewardConfig};
use epa_sched::learn::{
    context_bucket, observation_features, standard_tiling, ActionCatalog, BanditConfig,
    ContextualBandit, QConfig, QLearner, N_CONTEXTS,
};
use epa_sched::policies::registry::make_policy;
use epa_simcore::time::{SimDuration, SimTime};
use epa_sites::config::SiteConfig;
use epa_workload::generator::WorkloadGenerator;
use serde_json::json;

/// Two simulated days per episode — long enough for diurnal load and the
/// sites' windowed mechanisms, short enough for nine training loops.
const EPISODE_DAYS: f64 = 2.0;
/// Decision cadence: 24 decision points per episode.
const DECISION_HOURS: f64 = 2.0;
/// Engine seed shared by every run (workloads differ per site).
const ENGINE_SEED: u64 = 0xE16;
/// Site-config seed (workload + weather substreams derive from it).
const SITE_SEED: u64 = 11;
/// "Matching" tolerance: a learned reward within 0.1% of the engineered
/// power-aware baseline counts as matching it.
const MATCH_TOLERANCE: f64 = 1e-3;

const SITE_KEYS: [&str; 9] = [
    "cea",
    "cineca",
    "jcahpc",
    "kaust",
    "lrz",
    "riken",
    "stfc",
    "tokyo_tech",
    "trinity",
];

const BASELINES: [&str; 4] = [
    "fcfs",
    "easy-backfill",
    "power-aware-backfill+dvfs",
    "energy-aware(energy)",
];

fn site_config(key: &str) -> SiteConfig {
    use epa_sites::centers as c;
    let mut site = match key {
        "cea" => c::cea::config(SITE_SEED),
        "cineca" => c::cineca::config(SITE_SEED),
        "jcahpc" => c::jcahpc::config(SITE_SEED),
        "kaust" => c::kaust::config(SITE_SEED),
        "lrz" => c::lrz::config(SITE_SEED),
        "riken" => c::riken::config(SITE_SEED),
        "stfc" => c::stfc::config(SITE_SEED),
        "tokyo_tech" => c::tokyo_tech::config(SITE_SEED),
        "trinity" => c::trinity::config(SITE_SEED),
        other => panic!("unknown site key {other}"),
    };
    site.horizon = SimTime::from_days(EPISODE_DAYS);
    site
}

/// The shared engine config: the site's production mechanisms, so the
/// engineered baselines run exactly as configured and the learners start
/// from the same machine (their actions may override the knobs).
fn engine_config(site: &SiteConfig) -> EngineConfig {
    let mut config = EngineConfig::new(site.horizon);
    config.power_budget_watts = site.power_budget_watts;
    config.shutdown = site.shutdown.clone();
    config.emergency = site.emergency.clone();
    config.limit_gate = site.limit_gate.clone();
    config.seed = ENGINE_SEED;
    config
}

fn baseline_outcome(site: &SiteConfig, policy_name: &str) -> SimOutcome {
    let system = site.system.clone().build();
    let jobs = WorkloadGenerator::new(site.workload.clone()).generate(site.horizon, 0);
    let mut policy = make_policy(policy_name).expect("registered baseline");
    ClusterSim::new(system, jobs, policy.as_mut(), engine_config(site)).run()
}

fn make_env(site: &SiteConfig, env_config: EnvConfig) -> PolicyEnv {
    let system = site.system.clone().build();
    let jobs = WorkloadGenerator::new(site.workload.clone()).generate(site.horizon, 0);
    PolicyEnv::new(
        system,
        jobs,
        "easy-backfill",
        engine_config(site),
        env_config,
    )
    .expect("easy-backfill is registered")
}

/// Trains a Q-learner and returns (greedy-evaluation reward, outcome).
/// Appends one trajectory line per training step.
fn train_q(
    site: &SiteConfig,
    env_config: EnvConfig,
    catalog: &ActionCatalog,
    config: QConfig,
    trajectory: &mut Vec<String>,
) -> (f64, SimOutcome) {
    let key = &site.meta.key;
    let mut learner = QLearner::new(standard_tiling(), catalog.len(), config);
    let mut env = make_env(site, env_config);
    for ep in 0..config.episodes {
        let mut obs = env.reset();
        loop {
            let x = observation_features(&obs);
            let a = learner.act(&x);
            let r = env.step(&catalog.entries[a].actions);
            let x_next = observation_features(&r.observation);
            learner.update(&x, a, r.reward, &x_next, r.done);
            trajectory.push(format!(
                "{key} q {ep} {} {} {:016x}",
                obs.t.as_secs(),
                catalog.entries[a].name,
                r.reward.to_bits()
            ));
            obs = r.observation;
            if r.done {
                break;
            }
        }
        learner.end_episode();
        env.finish();
    }
    // Greedy evaluation episode: exploit only, no updates.
    let mut obs = env.reset();
    loop {
        let a = learner.greedy(&observation_features(&obs));
        let r = env.step(&catalog.entries[a].actions);
        trajectory.push(format!(
            "{key} q eval {} {} {:016x}",
            obs.t.as_secs(),
            catalog.entries[a].name,
            r.reward.to_bits()
        ));
        obs = r.observation;
        if r.done {
            break;
        }
    }
    let outcome = env.finish();
    (env_config.reward.reward_of_outcome(&outcome), outcome)
}

/// Trains a contextual bandit and returns (greedy reward, outcome).
fn train_bandit(
    site: &SiteConfig,
    env_config: EnvConfig,
    catalog: &ActionCatalog,
    config: BanditConfig,
    trajectory: &mut Vec<String>,
) -> (f64, SimOutcome) {
    let key = &site.meta.key;
    let mut bandit = ContextualBandit::new(N_CONTEXTS, catalog.len(), config);
    let mut env = make_env(site, env_config);
    for ep in 0..config.episodes {
        let mut obs = env.reset();
        loop {
            let c = context_bucket(&obs);
            let a = bandit.act(c);
            let r = env.step(&catalog.entries[a].actions);
            bandit.update(c, a, r.reward);
            trajectory.push(format!(
                "{key} bandit {ep} {} {} {:016x}",
                obs.t.as_secs(),
                catalog.entries[a].name,
                r.reward.to_bits()
            ));
            obs = r.observation;
            if r.done {
                break;
            }
        }
        env.finish();
    }
    let mut obs = env.reset();
    loop {
        let a = bandit.greedy(context_bucket(&obs));
        let r = env.step(&catalog.entries[a].actions);
        trajectory.push(format!(
            "{key} bandit eval {} {} {:016x}",
            obs.t.as_secs(),
            catalog.entries[a].name,
            r.reward.to_bits()
        ));
        obs = r.observation;
        if r.done {
            break;
        }
    }
    let outcome = env.finish();
    (env_config.reward.reward_of_outcome(&outcome), outcome)
}

fn outcome_json(reward: f64, o: &SimOutcome) -> serde_json::Value {
    json!({
        "reward": reward,
        "completed": o.completed,
        "energy_joules": o.energy_joules,
        "mean_bounded_slowdown": o.mean_bounded_slowdown,
        "budget_violation_secs": o.budget_violation_secs,
    })
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_policy_env.json".to_owned());
    let site_filter: Option<Vec<String>> = std::env::var("EPA_E16_SITES")
        .ok()
        .map(|s| s.split(',').map(|k| k.trim().to_owned()).collect());
    let keys: Vec<&str> = SITE_KEYS
        .iter()
        .copied()
        .filter(|k| {
            site_filter
                .as_ref()
                .is_none_or(|f| f.iter().any(|s| s == k))
        })
        .collect();
    assert!(!keys.is_empty(), "EPA_E16_SITES matched no known site");

    let env_config = EnvConfig {
        decision_interval: SimDuration::from_hours(DECISION_HOURS),
        reward: RewardConfig::default(),
    };
    let catalog = ActionCatalog::standard();
    let q_config = QConfig::default();
    let bandit_config = BanditConfig::default();

    println!(
        "E16: PolicyEnv learners vs engineered baselines, {} sites, {EPISODE_DAYS} days, \
         decision every {DECISION_HOURS} h\n",
        keys.len()
    );
    let mut table = ResultsTable::new(&[
        "site",
        "fcfs",
        "easy",
        "power-aware",
        "energy-aware",
        "q-learn",
        "bandit",
        "winner",
    ]);

    let mut trajectory = Vec::new();
    let mut site_rows = Vec::new();
    let mut matched_sites = 0u32;
    for key in &keys {
        let site = site_config(key);
        let baseline: Vec<(String, f64, SimOutcome)> = BASELINES
            .iter()
            .map(|name| {
                let o = baseline_outcome(&site, name);
                (
                    (*name).to_owned(),
                    env_config.reward.reward_of_outcome(&o),
                    o,
                )
            })
            .collect();
        let (q_reward, q_outcome) = train_q(&site, env_config, &catalog, q_config, &mut trajectory);
        let (b_reward, b_outcome) =
            train_bandit(&site, env_config, &catalog, bandit_config, &mut trajectory);

        let power_aware = baseline
            .iter()
            .find(|(n, _, _)| n == "power-aware-backfill+dvfs")
            .map(|(_, r, _)| *r)
            .expect("baseline present");
        let best_learned = q_reward.max(b_reward);
        // Rewards are negative costs: "matches" means within the
        // tolerance band of the engineered baseline, "beats" means above.
        let matches = best_learned >= power_aware - power_aware.abs() * MATCH_TOLERANCE;
        matched_sites += u32::from(matches);

        let fmt = |r: f64| format!("{:.0}", r);
        table.row(vec![
            (*key).to_owned(),
            fmt(baseline[0].1),
            fmt(baseline[1].1),
            fmt(power_aware),
            fmt(baseline[3].1),
            fmt(q_reward),
            fmt(b_reward),
            if matches { "learned" } else { "engineered" }.to_owned(),
        ]);
        site_rows.push(json!({
            "site": key,
            "baselines": serde_json::Value::Object(
                baseline
                    .iter()
                    .map(|(n, r, o)| (n.clone(), outcome_json(*r, o)))
                    .collect(),
            ),
            "q_learning": outcome_json(q_reward, &q_outcome),
            "bandit": outcome_json(b_reward, &b_outcome),
            "best_learned_reward": best_learned,
            "power_aware_reward": power_aware,
            "learned_matches_power_aware": matches,
        }));
    }

    println!("{}", table.render());
    println!(
        "learned controller matches/beats the engineered power-aware baseline on \
         {matched_sites}/{} sites (blended reward, {MATCH_TOLERANCE:.1e} tolerance)",
        keys.len()
    );

    if let Ok(path) = std::env::var("EPA_E16_TRAJECTORY") {
        std::fs::write(&path, trajectory.join("\n") + "\n").expect("write trajectory");
        eprintln!("wrote trajectory ({} steps) to {path}", trajectory.len());
    }

    let doc = json!({
        "schema_version": epa_bench::BENCH_SCHEMA_VERSION,
        "bench": "policy-env",
        "episode_days": EPISODE_DAYS,
        "decision_interval_secs": env_config.decision_interval.as_secs(),
        "engine_seed": ENGINE_SEED,
        "site_seed": SITE_SEED,
        "reward_config": env_config.reward,
        "q_config": q_config,
        "bandit_config": bandit_config,
        "action_catalog": catalog.entries.iter().map(|e| e.name).collect::<Vec<_>>(),
        "match_tolerance": MATCH_TOLERANCE,
        "sites_where_learned_matches_power_aware": matched_sites,
        "sites_total": keys.len(),
        "results": site_rows,
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&doc).expect("serializable") + "\n",
    )
    .expect("write bench output");
    eprintln!("wrote {out_path}");
}
