//! **E7 — job power prediction quality** (RIKEN's temperature-based
//! pre-run estimates; LRZ's first-run characterization; Borghesi's and
//! Sîrbu's ML models — survey §VI).
//!
//! A synthetic run history is generated from the workload and power
//! models: each application tag has a characteristic power level with
//! per-run noise and a temperature coefficient. Every predictor is then
//! evaluated by chronological replay (predict from the past, reveal,
//! archive). Reported: MAPE, RMSE, bias, and coverage.
//!
//! Expected shape (literature): tag-history predictors beat the global
//! mean by a wide margin; temperature scaling helps when power is
//! temperature-sensitive; the conservative quantile over-predicts by
//! design (positive bias).

use epa_bench::ResultsTable;
use epa_predict::eval::evaluate;
use epa_predict::history::RunRecord;
use epa_predict::knn::KnnPredictor;
use epa_predict::predictors::{
    GlobalMeanPredictor, QuantilePredictor, TagMeanPredictor, TemperatureScaledPredictor,
};
use epa_predict::regression::RegressionPredictor;
use epa_simcore::rng::SimRng;

fn synthetic_history(n: usize, seed: u64) -> Vec<RunRecord> {
    let mut rng = SimRng::new(seed);
    let tags = ["cfd", "qcd", "md", "climate", "hpl"];
    let base_watts = [180.0, 260.0, 220.0, 200.0, 320.0];
    // Each application also has a characteristic runtime (a production
    // code runs the same problem sizes over and over), with ±25% spread.
    let base_runtime = [3_600.0, 14_400.0, 1_800.0, 28_800.0, 7_200.0];
    (0..n)
        .map(|_| {
            let k = rng.uniform_usize(0, tags.len());
            let ambient = rng.uniform_range(10.0, 35.0);
            // 0.4%/°C temperature sensitivity + 5% run-to-run noise.
            let watts =
                base_watts[k] * (1.0 + 0.004 * (ambient - 20.0)) * (1.0 + rng.normal(0.0, 0.05));
            let runtime = base_runtime[k] * (1.0 + rng.normal(0.0, 0.25)).clamp(0.3, 2.0);
            RunRecord {
                user: rng.uniform_usize(0, 16) as u32,
                tag: tags[k].to_owned(),
                nodes: 1 << rng.uniform_usize(0, 8),
                runtime_secs: runtime,
                watts_per_node: watts.max(50.0),
                ambient_c: ambient,
            }
        })
        .collect()
}

fn main() {
    println!("E7: power-prediction quality over a 2,000-run synthetic history\n");
    let history = synthetic_history(2000, 2026);
    let mut table = ResultsTable::new(&[
        "predictor",
        "MAPE %",
        "RMSE W",
        "bias W",
        "scored",
        "skipped",
    ]);
    let rows: Vec<epa_predict::eval::PredictionErrors> = vec![
        evaluate(&GlobalMeanPredictor, &history),
        evaluate(&TagMeanPredictor, &history),
        evaluate(&TemperatureScaledPredictor::new(TagMeanPredictor), &history),
        evaluate(&QuantilePredictor::default(), &history),
        evaluate(&KnnPredictor::default(), &history),
        evaluate(&RegressionPredictor, &history),
    ];
    for e in rows {
        table.row(vec![
            e.predictor.clone(),
            format!("{:.2}", e.mape * 100.0),
            format!("{:.1}", e.rmse),
            format!("{:+.1}", e.bias),
            e.scored.to_string(),
            e.skipped.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape: tag-mean ≪ global-mean error; temperature scaling improves on tag-mean;"
    );
    println!("the 90th-percentile predictor has positive bias by design.");

    // Part 2: runtime (wallclock) prediction, the other half of EPA-
    // informed decisions (predicted energy = predicted power × runtime).
    use epa_predict::runtime::{evaluate_runtime, TagMeanRuntime, UserEstimateRuntime};
    println!("\nRuntime prediction over the same history (user estimates are ~2x inflated):\n");
    let mut rt = ResultsTable::new(&["predictor", "MAPE %", "mean factor"]);
    for e in [
        evaluate_runtime(&UserEstimateRuntime, &history),
        evaluate_runtime(&TagMeanRuntime::default(), &history),
    ] {
        rt.row(vec![
            e.predictor.clone(),
            format!("{:.1}", e.mape * 100.0),
            format!("{:.2}", e.mean_factor),
        ]);
    }
    println!("{}", rt.render());
    println!(
        "Expected shape: tag-history runtime prediction cuts the user-estimate error several-fold."
    );
}
