//! **E1 — over-provisioning with moldable jobs under a power budget**
//! (Sarood et al. SC'14, Patki et al. HPDC'15, cited in survey §VI).
//!
//! A 256-node machine is fed moldable jobs under an IT power budget swept
//! from 55% to 100% of nominal. Two schedulers compete:
//! - the rigid baseline (EASY + engine budget admission), and
//! - the over-provisioning scheduler that reshapes moldable jobs and caps
//!   nodes to pack the budget.
//!
//! Expected shape (paper): under tight budgets the moldable/capped
//! scheduler completes more work; at 100% the difference vanishes.

use epa_bench::{experiment_system, replicate_mean, ResultsTable};
use epa_sched::engine::{ClusterSim, EngineConfig};
use epa_sched::policies::overprovision::OverprovisionScheduler;
use epa_sched::policies::power_aware::PowerAwareBackfill;
use epa_sched::view::Policy;
use epa_simcore::time::SimTime;
use epa_workload::generator::{WorkloadGenerator, WorkloadParams};

/// Completed node-hours for one run.
fn node_hours(budget_frac: f64, overprovision: bool, seed: u64) -> f64 {
    let nodes = 256u32;
    let system = experiment_system(nodes);
    let nominal = system.spec().nominal_watts();
    let mut params = WorkloadParams::typical(nodes, seed);
    params.moldable_fraction = 0.8; // the paper's setting: most jobs moldable
    let horizon = SimTime::from_days(3.0);
    let jobs = WorkloadGenerator::new(params).generate(horizon, 0);
    let mut config = EngineConfig::new(horizon);
    config.power_budget_watts = Some(nominal * budget_frac);
    // The rigid baseline is itself power-aware (skips jobs that don't fit
    // the headroom) — the fair comparison from the Sarood/Patki papers;
    // it just cannot reshape jobs.
    let mut rigid = PowerAwareBackfill {
        dvfs_fitting: false,
        margin_watts: 0.0,
    };
    let mut over = OverprovisionScheduler::default();
    let policy: &mut dyn Policy = if overprovision { &mut over } else { &mut rigid };
    let out = ClusterSim::new(system, jobs, policy, config).run();
    out.jobs
        .iter()
        .map(|j| f64::from(j.nodes) * j.run_secs)
        .sum::<f64>()
        / 3600.0
}

fn main() {
    println!("E1: over-provisioning + moldable jobs vs rigid power-aware scheduling");
    println!("256-node machine, 3 simulated days, 80% of jobs moldable, mean of 8 seeds\n");
    let seeds = [42u64, 43, 44, 45, 46, 47, 48, 49];
    let mut table = ResultsTable::new(&["budget %", "rigid node-h", "moldable node-h", "gain %"]);
    for budget in [0.55, 0.65, 0.75, 0.85, 1.0] {
        let rigid = replicate_mean(&seeds, |s| node_hours(budget, false, s));
        let moldable = replicate_mean(&seeds, |s| node_hours(budget, true, s));
        let gain = 100.0 * (moldable - rigid) / rigid.max(1e-9);
        table.row(vec![
            format!("{:.0}", budget * 100.0),
            format!("{rigid:.0}"),
            format!("{moldable:.0}"),
            format!("{gain:+.1}"),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape: gain is largest at the tightest budget and shrinks toward 100%.");
}
