//! **E11 — per-phase (GEOPM-style) vs per-job frequency control** (LRZ
//! and STFC research rows: "investigating merging SLURM and GEOPM").
//!
//! For a range of application mixes and slowdown bounds, compare three
//! frequency-control granularities on energy-to-solution:
//! 1. none (base frequency),
//! 2. one frequency per job (the LoadLeveler production capability),
//! 3. one frequency per *phase* (the GEOPM research direction).
//!
//! Expected shape: per-phase ≤ per-job ≤ base energy at every bound, with
//! the per-phase advantage largest on mixed workloads — the argument for
//! the research investment the survey records.

use epa_bench::ResultsTable;
use epa_cluster::node::NodeSpec;
use epa_power::dvfs::DvfsModel;
use epa_sched::governor::{GovernorObjective, PhaseGovernor};
use epa_workload::job::AppProfile;

/// Energy ratio of the best single frequency meeting the bound.
fn per_job_ratio(dvfs: &DvfsModel, app: &AppProfile, bound: f64) -> f64 {
    let total_w: f64 = app.phases.iter().map(|p| p.weight).sum();
    let base = dvfs.cpu().base_freq_ghz;
    let base_e: f64 = app
        .phases
        .iter()
        .map(|p| p.weight / total_w * dvfs.phase_energy(1.0, base, p.cpu_boundness))
        .sum();
    let mut best = 1.0_f64; // base frequency always meets the bound
    for f in dvfs.cpu().frequency_ladder() {
        let slow: f64 = app
            .phases
            .iter()
            .map(|p| p.weight / total_w * dvfs.slowdown(f, p.cpu_boundness))
            .sum();
        if slow > bound {
            continue;
        }
        let e: f64 = app
            .phases
            .iter()
            .map(|p| p.weight / total_w * dvfs.phase_energy(1.0, f, p.cpu_boundness))
            .sum();
        best = best.min(e / base_e);
    }
    best
}

fn main() {
    println!("E11: frequency-control granularity — none vs per-job vs per-phase (GEOPM)\n");
    let dvfs = DvfsModel::new(NodeSpec::typical_xeon());
    for bound in [1.02, 1.05, 1.10, 1.20] {
        println!("slowdown bound: {:.0}%", (bound - 1.0) * 100.0);
        let mut table = ResultsTable::new(&[
            "profile",
            "base energy",
            "per-job energy",
            "per-phase energy",
        ]);
        for app in [
            AppProfile::compute_bound("compute-bound"),
            AppProfile::balanced("balanced"),
            AppProfile::memory_bound("memory-bound"),
        ] {
            let per_job = per_job_ratio(&dvfs, &app, bound);
            let governor = PhaseGovernor::new(
                dvfs.clone(),
                GovernorObjective::EnergyWithinSlowdown {
                    max_slowdown: bound,
                },
            );
            let plan = governor.plan(&app.phases);
            table.row(vec![
                app.tag.clone(),
                "1.000".into(),
                format!("{per_job:.3}"),
                format!("{:.3}", plan.energy_ratio),
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "Expected shape: per-phase ≤ per-job ≤ 1.0 everywhere; the gap peaks on the balanced mix."
    );
}
