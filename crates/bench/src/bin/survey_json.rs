//! Machine-readable survey export: the structured Q1–Q8 responses,
//! capability matrix, selection outcomes, and per-site measured metrics
//! as one JSON document — the raw material for the EE HPC WG-style
//! "in-depth analysis" follow-up the paper promises.
//!
//! ```sh
//! cargo run --release -p epa-bench --bin survey_json -- --fast > survey.json
//! ```

use epa_core::questionnaire::SiteResponse;
use epa_core::report::SurveyReport;
use epa_core::selection::SelectionCriteria;
use epa_simcore::time::SimTime;
use serde_json::json;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let configs: Vec<_> = epa_sites::all_sites(2026)
        .into_iter()
        .map(|mut s| {
            if fast {
                s.horizon = SimTime::from_hours(8.0);
            }
            s
        })
        .collect();
    let criteria = SelectionCriteria::default();
    let selection: Vec<_> = configs.iter().map(|c| criteria.apply(c)).collect();
    let survey = SurveyReport::compile(configs);

    let responses: Vec<&SiteResponse> = survey.responses.iter().collect();
    let doc = json!({
        "survey": "EPA JSRM global survey reproduction",
        "source_paper": "Maiterth et al., IPDPSW 2018, DOI 10.1109/IPDPSW.2018.00111",
        "selection": selection,
        "responses": responses,
        "capability_matrix": survey.matrix,
        "measured": survey.reports.iter().map(|r| json!({
            "site": r.key,
            "completed": r.outcome.completed,
            "utilization": r.outcome.utilization,
            "mean_wait_secs": r.outcome.mean_wait_secs,
            "energy_joules": r.outcome.energy_joules,
            "peak_watts": r.outcome.peak_watts,
            "avg_watts": r.outcome.avg_watts,
            "emergency_kills": r.outcome.emergency_kills,
            "mean_pue": r.mean_pue,
            "cost_per_hour": r.mean_cost_per_hour,
            "mark_distribution": r.mark_distribution,
        })).collect::<Vec<_>>(),
    });
    println!(
        "{}",
        serde_json::to_string_pretty(&doc).expect("serializable")
    );
}
