//! **E14 — requeue and checkpointing under emergency pressure** (Tokyo
//! Tech's Table I note that the RM "interacts with the job scheduler to
//! avoid killing jobs"; RIKEN's automated killing makes the cost
//! concrete).
//!
//! A machine under a tight emergency limit kills jobs regularly. Three
//! postures: lose killed work, requeue from scratch, requeue from
//! checkpoints (interval sweep). Reported: clean completions, total
//! node-hours spent (including redone work), and wasted node-hours.
//!
//! Expected shape: requeue recovers completions at the cost of redone
//! work; checkpointing shrinks the redone work monotonically as the
//! interval tightens.

use epa_bench::{experiment_system, ResultsTable};
use epa_sched::emergency::{EmergencyPolicy, VictimOrder};
use epa_sched::engine::{ClusterSim, EngineConfig};
use epa_sched::policies::EasyBackfill;
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::generator::{WorkloadGenerator, WorkloadParams};

struct Row {
    label: String,
    finished_ok: usize,
    total_node_h: f64,
    wasted_node_h: f64,
    kills: u64,
}

fn run(requeue: bool, ckpt_mins: Option<f64>) -> Row {
    let nodes = 64u32;
    let system = experiment_system(nodes);
    let nominal = system.spec().nominal_watts();
    let horizon = SimTime::from_days(4.0);
    let mut params = WorkloadParams::typical(nodes, 23);
    params.runtimes.median = SimDuration::from_hours(2.0); // long jobs hurt more
    let jobs = WorkloadGenerator::new(params).generate(horizon, 0);
    let mut config = EngineConfig::new(horizon);
    // A limit low enough that normal operation breaches it regularly,
    // with a 15-minute post-response cooldown (no thrash loop).
    // Most-powerful-first victims: kills hit long-running high-draw jobs,
    // exactly the jobs whose checkpoints carry real progress.
    config.emergency = Some(
        EmergencyPolicy::new(nominal * 0.7)
            .with_cooldown(SimDuration::from_mins(15.0))
            .with_victim_order(VictimOrder::MostPowerful),
    );
    config.requeue_killed = requeue;
    config.checkpoint_interval = ckpt_mins.map(SimDuration::from_mins);
    let mut policy = EasyBackfill;
    let out = ClusterSim::new(system, jobs, &mut policy, config).run();
    let finished_ok = out
        .jobs
        .iter()
        .filter(|j| !j.killed_by_emergency && !j.killed_at_walltime)
        .count();
    let total: f64 = out
        .jobs
        .iter()
        .map(|j| f64::from(j.nodes) * j.run_secs)
        .sum::<f64>()
        / 3600.0;
    let wasted: f64 = out
        .jobs
        .iter()
        .filter(|j| j.killed_by_emergency)
        .map(|j| f64::from(j.nodes) * j.run_secs)
        .sum::<f64>()
        / 3600.0;
    let label = match (requeue, ckpt_mins) {
        (false, _) => "lose killed work".into(),
        (true, None) => "requeue from scratch".into(),
        (true, Some(m)) => format!("requeue + ckpt@{m:.0}min"),
    };
    Row {
        label,
        finished_ok,
        total_node_h: total,
        wasted_node_h: wasted,
        kills: out.emergency_kills,
    }
}

fn main() {
    println!("E14: requeue and checkpointing under a tight emergency limit");
    println!("64 nodes, 4 simulated days, limit at 70% of nominal, 2 h median jobs\n");
    let mut table = ResultsTable::new(&[
        "posture",
        "finished ok",
        "kills",
        "total node-h",
        "wasted node-h",
    ]);
    let mut rows = vec![run(false, None), run(true, None)];
    for mins in [60.0, 30.0, 10.0] {
        rows.push(run(true, Some(mins)));
    }
    for r in rows {
        table.row(vec![
            r.label,
            r.finished_ok.to_string(),
            r.kills.to_string(),
            format!("{:.0}", r.total_node_h),
            format!("{:.0}", r.wasted_node_h),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape: requeue recovers completions; tighter checkpoints shrink redone work."
    );
}
