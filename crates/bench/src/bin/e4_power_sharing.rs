//! **E4 — dynamic power sharing vs. static uniform caps** (Ellsworth et
//! al. SC'15, survey §VI) and the RAPL-vs-CAPMC enforcement ablation
//! (DESIGN.md decision 2).
//!
//! Part 1: job mixes with heterogeneous power demands share a fixed
//! budget; we compare the aggregate progress (Σ granted/demand) of the
//! static uniform allocator against Ellsworth-style dynamic sharing,
//! sweeping the budget.
//!
//! Part 2: for one over-budget burst workload we contrast RAPL-style
//! windowed accounting (tolerates the burst) with CAPMC-style hard caps
//! (clips it immediately).
//!
//! Expected shape (paper): dynamic sharing dominates static whenever
//! demands are heterogeneous — Ellsworth reported higher job throughput
//! at equal budget.

use epa_bench::ResultsTable;
use epa_power::rapl::RaplDomain;
use epa_sched::policies::power_sharing::{JobPowerNeed, PowerSharingManager};
use epa_simcore::rng::SimRng;
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::job::JobId;
use std::collections::BTreeMap;

fn job_mix(n: usize, seed: u64) -> BTreeMap<JobId, JobPowerNeed> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|i| {
            // Heterogeneous demands: log-normal-ish spread 100..600 W.
            let demand = 100.0 + 500.0 * rng.uniform().powi(2);
            (
                JobId(i as u64),
                JobPowerNeed {
                    demand_watts: demand,
                    floor_watts: demand * 0.4,
                },
            )
        })
        .collect()
}

fn main() {
    println!("E4 part 1: dynamic power sharing vs static uniform caps (32 jobs, heterogeneous demands)\n");
    let needs = job_mix(32, 11);
    let total_demand: f64 = needs.values().map(|n| n.demand_watts).sum();
    let mut table = ResultsTable::new(&[
        "budget % of demand",
        "static progress",
        "dynamic progress",
        "gain %",
    ]);
    for frac in [0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let m = PowerSharingManager::new(total_demand * frac);
        let ps = PowerSharingManager::progress_score(&needs, &m.allocate_static(&needs));
        let pd = PowerSharingManager::progress_score(&needs, &m.allocate_dynamic(&needs));
        table.row(vec![
            format!("{:.0}", frac * 100.0),
            format!("{ps:.2}"),
            format!("{pd:.2}"),
            format!("{:+.1}", 100.0 * (pd - ps) / ps),
        ]);
    }
    println!("{}", table.render());

    println!("\nE4 part 2: RAPL windowed accounting vs CAPMC hard caps on a bursty draw");
    let limit = 300.0;
    let mut rapl = RaplDomain::new(limit, SimDuration::from_secs(60.0)).unwrap();
    // 20 s burst at 500 W inside an otherwise 200 W minute.
    let mut capmc_violations = 0u32;
    let mut t = 0.0;
    for (dur, w) in [(30.0, 200.0), (20.0, 500.0), (40.0, 200.0)] {
        rapl.record(SimTime::from_secs(t), w);
        if w > limit {
            capmc_violations += 1; // a hard cap would clip this instantly
        }
        t += dur;
    }
    let rapl_violated = rapl.check(SimTime::from_secs(t));
    println!(
        "  window average at t={t:.0}s: {:.1} W (limit {limit} W)",
        rapl.windowed_average(SimTime::from_secs(t))
    );
    println!("  RAPL window violated: {rapl_violated} | CAPMC would have clipped {capmc_violations} burst(s)");
    println!("\nExpected shape: dynamic sharing gains most at mid budgets; RAPL absorbs the burst that CAPMC clips.");
}
