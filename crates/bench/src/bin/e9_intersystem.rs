//! **E9 — inter-system power-budget sharing** (Tokyo Tech, Table I:
//! "TSUBAME2 and TSUBAME3 will need to share the facility power
//! budget").
//!
//! Two systems — a big new machine and a smaller old one with different
//! load phases — share one facility IT budget. Each enforcement episode
//! (half a day) the coordinator re-splits the budget, either with fixed
//! fractions or proportionally to each system's *queued demand*, and
//! each system simulates the episode under its share.
//!
//! Expected shape: demand-proportional splitting completes more total
//! work because budget follows the busy system across the phase shift.

use epa_bench::{experiment_system, ResultsTable};
use epa_sched::engine::{ClusterSim, EngineConfig};
use epa_sched::intersystem::{InterSystemCoordinator, SplitRule};
use epa_sched::policies::EasyBackfill;
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::generator::{WorkloadGenerator, WorkloadParams};
use epa_workload::job::Job;

struct SystemLoad {
    nodes: u32,
    jobs: Vec<Job>,
}

/// Episode simulation: run `jobs` due in the episode window under the
/// given budget, return (completed, node-hours, demand for next episode).
fn run_episode(
    load: &SystemLoad,
    budget: f64,
    episode: usize,
    episode_len: SimDuration,
) -> (u64, f64, f64) {
    let start = SimTime::ZERO + episode_len * episode as f64;
    let end = start + episode_len;
    // Jobs submitted within this episode, re-based to episode time.
    let jobs: Vec<Job> = load
        .jobs
        .iter()
        .filter(|j| j.submit >= start && j.submit < end)
        .map(|j| {
            let mut j = j.clone();
            j.submit = SimTime::from_secs(j.submit.as_secs() - start.as_secs());
            j
        })
        .collect();
    let demand_proxy: f64 = jobs
        .iter()
        .map(|j| f64::from(j.nodes) * 290.0)
        .sum::<f64>()
        .min(f64::from(load.nodes) * 290.0);
    let mut policy = EasyBackfill;
    let mut config = EngineConfig::new(SimTime::ZERO + episode_len);
    config.power_budget_watts = Some(budget.max(1.0));
    let out = ClusterSim::new(experiment_system(load.nodes), jobs, &mut policy, config).run();
    let node_h: f64 = out
        .jobs
        .iter()
        .map(|j| f64::from(j.nodes) * j.run_secs)
        .sum::<f64>()
        / 3600.0;
    (out.completed, node_h, demand_proxy.max(290.0))
}

fn main() {
    println!("E9: two systems sharing one facility budget (fixed vs demand-proportional splits)\n");
    let horizon = SimTime::from_days(4.0);
    // Big system busy in the first half, small one in the second half:
    // a phase shift the fixed split cannot follow.
    let mut big_params = WorkloadParams::typical(192, 21);
    big_params.arrivals = epa_workload::arrival::ArrivalProcess::Poisson {
        rate_per_hour: 16.0,
    };
    let big_jobs: Vec<Job> = WorkloadGenerator::new(big_params)
        .generate(horizon, 0)
        .into_iter()
        .filter(|j| j.submit < SimTime::from_days(2.0))
        .collect();
    let mut small_params = WorkloadParams::typical(96, 22);
    small_params.arrivals = epa_workload::arrival::ArrivalProcess::Poisson {
        rate_per_hour: 16.0,
    };
    let small_jobs: Vec<Job> = WorkloadGenerator::new(small_params)
        .generate(horizon, 100_000)
        .into_iter()
        .filter(|j| j.submit >= SimTime::from_days(2.0))
        .collect();
    let systems = [
        SystemLoad {
            nodes: 192,
            jobs: big_jobs,
        },
        SystemLoad {
            nodes: 96,
            jobs: small_jobs,
        },
    ];
    let facility_budget = (192.0 + 96.0) * 290.0 * 0.6; // scarce on purpose

    let episode_len = SimDuration::from_hours(12.0);
    let episodes = (horizon.as_secs() / episode_len.as_secs()) as usize;

    let mut table = ResultsTable::new(&[
        "split rule",
        "sys-A node-h",
        "sys-B node-h",
        "total node-h",
        "completed",
    ]);
    for rule in [SplitRule::Fixed, SplitRule::DemandProportional] {
        let coord =
            InterSystemCoordinator::new(facility_budget, vec![2.0 / 3.0, 1.0 / 3.0], rule).unwrap();
        let mut demands = vec![
            f64::from(systems[0].nodes) * 290.0,
            f64::from(systems[1].nodes) * 290.0,
        ];
        let mut totals = [0.0f64; 2];
        let mut completed = 0u64;
        for ep in 0..episodes {
            let shares = coord.split(&demands);
            for (i, load) in systems.iter().enumerate() {
                let (c, nh, demand) = run_episode(load, shares[i], ep, episode_len);
                totals[i] += nh;
                completed += c;
                demands[i] = demand;
            }
        }
        table.row(vec![
            format!("{rule:?}"),
            format!("{:.0}", totals[0]),
            format!("{:.0}", totals[1]),
            format!("{:.0}", totals[0] + totals[1]),
            completed.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape: demand-proportional total ≥ fixed total — budget follows the busy system."
    );
}
