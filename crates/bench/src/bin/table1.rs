//! Regenerates **Table I** of the survey: the capability summary for
//! RIKEN, Tokyo Tech, CEA, KAUST, and LRZ, plus the measured evidence the
//! simulation adds. Run with `--fast` for a shortened horizon.

use epa_core::report::SurveyReport;
use epa_core::tables;
use epa_simcore::time::SimTime;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let configs = epa_sites::all_sites(2026)
        .into_iter()
        .filter(|s| tables::TABLE1_SITES.contains(&s.meta.key.as_str()))
        .map(|mut s| {
            if fast {
                s.horizon = SimTime::from_hours(12.0);
            }
            s
        })
        .collect();
    let survey = SurveyReport::compile(configs);
    println!("{}", tables::render_table1(&survey.reports));
    println!(
        "Measured evidence (simulated {}):",
        if fast { "12 h" } else { "week" }
    );
    println!("{}", tables::render_evidence(&survey.reports));
}
