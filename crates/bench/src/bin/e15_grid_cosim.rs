//! E15: facility digital twin — grid/cooling/carbon co-simulation and
//! follow-the-renewables federation.
//!
//! Two exhibits in one bin:
//!
//! 1. **Per-site Pareto fronts.** Each of the nine surveyed centers runs
//!    its production workload under an `epa-grid` twin (diurnal price and
//!    carbon traces in the site's local time, cooling feedback) while the
//!    follow-the-renewables weights `(price_follow, carbon_follow)` sweep
//!    a small grid. Every sweep point settles into (electricity cost,
//!    carbon, mean bounded slowdown); points are flagged Pareto-optimal
//!    under 3-way dominance. The shape to expect: following the price
//!    trades slowdown for cost, following the carbon trades slowdown for
//!    emissions, and a handful of mixed points sit on the front.
//!
//! 2. **Nine-site federation.** The same sites' traces feed the
//!    [`FollowRenewablesPlanner`]: each hour the federation places a
//!    deferrable-load pool into spare site capacity, cheapest/cleanest
//!    first, with unplaced load carried as backlog (the SLA metric is its
//!    mean deferral). The objective sweeps from pure-cost to pure-carbon;
//!    the resulting (cost, carbon, deferral) triples form the federation
//!    front.
//!
//! Determinism: everything is a pure function of the seeds; CI runs this
//! bin twice — and across `EPA_JSRM_SHARDS`/`EPA_JSRM_THREADS` settings —
//! and byte-diffs the JSON.
//!
//! Env vars:
//! - `EPA_E15_SITES` — comma-separated site keys (default: all nine).
//! - `EPA_E15_SMOKE` — any value: 1-day episodes and a reduced sweep,
//!   for CI determinism checks.
//!
//! Usage: `e15_grid_cosim [out.json]` (default `BENCH_grid_cosim.json`).

use epa_bench::ResultsTable;
use epa_grid::GridConfig;
use epa_sched::engine::{ClusterSim, EngineConfig};
use epa_sched::intersystem::{FollowRenewablesPlanner, GridObjective, SiteWindowState};
use epa_sched::policies::EasyBackfill;
use epa_simcore::time::SimTime;
use epa_sites::config::SiteConfig;
use epa_workload::generator::WorkloadGenerator;
use serde_json::json;

/// Two simulated days per sweep point (one for smoke runs).
const EPISODE_DAYS: f64 = 2.0;
/// Engine seed shared by every run.
const ENGINE_SEED: u64 = 0xE15;
/// Site-config seed (workload + weather substreams derive from it).
const SITE_SEED: u64 = 11;
/// Grid-trace seed base (per-site traces offset from it).
const GRID_SEED: u64 = 0x9157;

const SITE_KEYS: [&str; 9] = [
    "cea",
    "cineca",
    "jcahpc",
    "kaust",
    "lrz",
    "riken",
    "stfc",
    "tokyo_tech",
    "trinity",
];

/// The follow-the-renewables sweep: (price_follow, carbon_follow).
const FOLLOW_SWEEP: [(f64, f64); 6] = [
    (0.0, 0.0),
    (0.3, 0.0),
    (0.6, 0.0),
    (0.0, 0.3),
    (0.0, 0.6),
    (0.3, 0.3),
];
const FOLLOW_SWEEP_SMOKE: [(f64, f64); 2] = [(0.0, 0.0), (0.3, 0.3)];

/// The federation objective sweep, pure cost → pure carbon.
const OBJECTIVE_SWEEP: [(f64, f64); 5] = [
    (1.0, 0.0),
    (0.75, 0.25),
    (0.5, 0.5),
    (0.25, 0.75),
    (0.0, 1.0),
];

fn site_config(key: &str, days: f64) -> SiteConfig {
    use epa_sites::centers as c;
    let mut site = match key {
        "cea" => c::cea::config(SITE_SEED),
        "cineca" => c::cineca::config(SITE_SEED),
        "jcahpc" => c::jcahpc::config(SITE_SEED),
        "kaust" => c::kaust::config(SITE_SEED),
        "lrz" => c::lrz::config(SITE_SEED),
        "riken" => c::riken::config(SITE_SEED),
        "stfc" => c::stfc::config(SITE_SEED),
        "tokyo_tech" => c::tokyo_tech::config(SITE_SEED),
        "trinity" => c::trinity::config(SITE_SEED),
        other => panic!("unknown site key {other}"),
    };
    site.horizon = SimTime::from_days(days);
    site
}

/// The per-site grid economics: a deterministic spread of base price and
/// carbon intensity across the federation (index into [`SITE_KEYS`]), so
/// the planner has real cost/carbon diversity to arbitrage. Traces run in
/// the site's local solar time (longitude / 15°).
fn grid_economics(site: &SiteConfig, idx: usize) -> (f64, f64, f64) {
    let base_price = 45.0 + 12.0 * ((idx * 4) % 9) as f64;
    let base_carbon = 180.0 + 55.0 * ((idx * 7) % 9) as f64;
    let tz_offset_hours = site.meta.lon / 15.0;
    (base_price, base_carbon, tz_offset_hours)
}

/// The site's grid twin at one follow-the-renewables sweep point.
fn grid_config(site: &SiteConfig, idx: usize, days: u32, follow: (f64, f64)) -> GridConfig {
    let nominal = site.system.clone().build().spec().nominal_watts();
    let it_budget = site.power_budget_watts.unwrap_or(nominal);
    let (base_price, base_carbon, tz) = grid_economics(site, idx);
    let mut cfg = GridConfig::synthetic(
        it_budget,
        it_budget * 1.35, // facility feed: headroom above IT + cooling
        base_price,
        base_carbon,
        days,
        tz,
        GRID_SEED.wrapping_add(idx as u64),
    );
    cfg.price_follow = follow.0;
    cfg.carbon_follow = follow.1;
    cfg.validate().expect("synthetic grid config validates");
    cfg
}

/// The shared engine config: the site's production mechanisms plus the
/// grid twin. Sites without a production budget get their nominal draw as
/// the budget (the grid twin steers through `ResizeBudget`, so a budget
/// mechanism must exist).
fn engine_config(site: &SiteConfig, grid: GridConfig) -> EngineConfig {
    let mut config = EngineConfig::new(site.horizon);
    config.power_budget_watts = Some(site.power_budget_watts.unwrap_or(grid.nominal_it_watts));
    config.shutdown = site.shutdown.clone();
    config.emergency = site.emergency.clone();
    config.limit_gate = site.limit_gate.clone();
    config.seed = ENGINE_SEED;
    config.grid = Some(grid);
    config
}

/// One settled sweep point.
#[derive(Debug, Clone, Copy)]
struct FrontPoint {
    cost: f64,
    carbon_kg: f64,
    slowdown: f64,
}

/// 3-way Pareto flags over (cost, carbon, slowdown) — all minimized.
/// `a` dominates `b` when it is no worse on every axis and strictly
/// better on at least one.
fn pareto_flags(points: &[FrontPoint]) -> Vec<bool> {
    points
        .iter()
        .map(|b| {
            !points.iter().any(|a| {
                a.cost <= b.cost
                    && a.carbon_kg <= b.carbon_kg
                    && a.slowdown <= b.slowdown
                    && (a.cost < b.cost || a.carbon_kg < b.carbon_kg || a.slowdown < b.slowdown)
            })
        })
        .collect()
}

/// Hourly diurnal local demand at a site: a deterministic day/night swing
/// around 55% of capacity (20% overnight, 90% mid-afternoon local
/// time), so federation spare capacity breathes with the sun.
fn local_demand_watts(capacity: f64, hour: f64, tz_offset_hours: f64) -> f64 {
    let local = (hour + tz_offset_hours).rem_euclid(24.0);
    let swing = (std::f64::consts::TAU * (local - 15.0) / 24.0).cos();
    capacity * (0.55 + 0.35 * swing)
}

/// The federation exhibit: place a deferrable pool into nine sites' spare
/// capacity each hour under one objective; returns settled
/// (cost, carbon, mean deferral hours, placed fraction).
fn run_federation(
    sites: &[(GridConfig, f64)], // (twin, tz offset)
    objective: GridObjective,
    hours: u32,
    deferrable_watts: f64,
) -> (f64, f64, f64, f64) {
    let planner = FollowRenewablesPlanner::new(objective).expect("valid objective");
    let mut backlog = 0.0f64;
    let (mut cost, mut carbon_kg) = (0.0, 0.0);
    let (mut offered_wh, mut placed_wh, mut deferred_wh) = (0.0, 0.0, 0.0);
    for h in 0..hours {
        let t = SimTime::from_hours(f64::from(h));
        let window: Vec<SiteWindowState> = sites
            .iter()
            .map(|(g, tz)| {
                let capacity = g.nominal_it_watts;
                SiteWindowState {
                    price_per_mwh: g.price.value_at(t),
                    carbon_g_per_kwh: g.carbon.value_at(t),
                    capacity_watts: capacity,
                    local_demand_watts: local_demand_watts(capacity, f64::from(h), *tz),
                }
            })
            .collect();
        offered_wh += deferrable_watts;
        let pool = backlog + deferrable_watts;
        let placed = planner.place(&window, pool);
        for (i, &w) in placed.iter().enumerate() {
            // One hour of facility draw at the site's current PUE.
            let pue = sites[i]
                .0
                .cooling
                .as_ref()
                .map_or(1.0, |c| c.pue(18.0, w, window[i].capacity_watts));
            let kwh = w * pue / 1000.0;
            cost += kwh / 1000.0 * window[i].price_per_mwh;
            carbon_kg += kwh * window[i].carbon_g_per_kwh / 1000.0;
            placed_wh += w;
        }
        backlog = (pool - placed.iter().sum::<f64>()).max(0.0);
        deferred_wh += backlog; // every backlogged watt waits one hour
    }
    let mean_deferral_h = if offered_wh > 0.0 {
        deferred_wh / offered_wh
    } else {
        0.0
    };
    (cost, carbon_kg, mean_deferral_h, placed_wh / offered_wh)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_grid_cosim.json".to_owned());
    let smoke = std::env::var("EPA_E15_SMOKE").is_ok();
    let days = if smoke { 1.0 } else { EPISODE_DAYS };
    let sweep: &[(f64, f64)] = if smoke {
        &FOLLOW_SWEEP_SMOKE
    } else {
        &FOLLOW_SWEEP
    };
    let site_filter: Option<Vec<String>> = std::env::var("EPA_E15_SITES")
        .ok()
        .map(|s| s.split(',').map(|k| k.trim().to_owned()).collect());
    let keys: Vec<(usize, &str)> = SITE_KEYS
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, k)| {
            site_filter
                .as_ref()
                .is_none_or(|f| f.iter().any(|s| s == k))
        })
        .collect();
    assert!(!keys.is_empty(), "EPA_E15_SITES matched no known site");

    println!(
        "E15: grid co-simulation, {} sites × {} follow sweep points, {days} days\n",
        keys.len(),
        sweep.len()
    );
    let mut table = ResultsTable::new(&[
        "site",
        "follow (p,c)",
        "cost",
        "carbon kg",
        "slowdown",
        "mean PUE",
        "pareto",
    ]);

    let mut site_rows = Vec::new();
    for &(idx, key) in &keys {
        let site = site_config(key, days);
        let system = site.system.clone().build();
        let jobs = WorkloadGenerator::new(site.workload.clone()).generate(site.horizon, 0);
        let mut points = Vec::new();
        let mut summaries = Vec::new();
        for &follow in sweep {
            let grid = grid_config(&site, idx, days.ceil() as u32, follow);
            let mut policy = EasyBackfill;
            let (out, summary) = ClusterSim::new(
                system.clone(),
                jobs.clone(),
                &mut policy,
                engine_config(&site, grid),
            )
            .run_with_grid();
            let summary = summary.expect("grid twin was configured");
            points.push(FrontPoint {
                cost: summary.cost_with_penalty,
                carbon_kg: summary.carbon_kg,
                slowdown: out.mean_bounded_slowdown,
            });
            summaries.push((follow, summary, out));
        }
        let flags = pareto_flags(&points);
        for ((follow, summary, out), (&point, &on_front)) in
            summaries.iter().zip(points.iter().zip(&flags))
        {
            table.row(vec![
                key.to_owned(),
                format!("({:.1},{:.1})", follow.0, follow.1),
                format!("{:.0}", point.cost),
                format!("{:.0}", point.carbon_kg),
                format!("{:.2}", point.slowdown),
                format!("{:.3}", summary.mean_pue),
                if on_front { "*" } else { "" }.to_owned(),
            ]);
            let _ = out;
        }
        site_rows.push(json!({
            "site": key,
            "front": summaries
                .iter()
                .zip(points.iter().zip(&flags))
                .map(|((follow, summary, out), (point, &on_front))| json!({
                    "price_follow": follow.0,
                    "carbon_follow": follow.1,
                    "cost": point.cost,
                    "carbon_kg": point.carbon_kg,
                    "mean_bounded_slowdown": point.slowdown,
                    "completed": out.completed,
                    "energy_it_mwh": summary.energy_it_mwh,
                    "energy_facility_mwh": summary.energy_facility_mwh,
                    "mean_pue": summary.mean_pue,
                    "penalty": summary.penalty,
                    "pareto_optimal": on_front,
                }))
                .collect::<Vec<_>>(),
        }));
    }
    println!("{}", table.render());

    // Federation: the planner arbitrages the same sites' traces hourly.
    let fed_hours = (days * 24.0) as u32;
    let fed_sites: Vec<(GridConfig, f64)> = keys
        .iter()
        .map(|&(idx, key)| {
            let site = site_config(key, days);
            let tz = grid_economics(&site, idx).2;
            (grid_config(&site, idx, days.ceil() as u32, (0.0, 0.0)), tz)
        })
        .collect();
    // 42% of federation nominal capacity arrives as deferrable load each
    // hour — enough that placement choices matter and the occasional
    // peak-demand window backlogs, little enough that the backlog drains.
    let deferrable: f64 = 0.42
        * fed_sites
            .iter()
            .map(|(g, _)| g.nominal_it_watts)
            .sum::<f64>();
    let mut fed_table = ResultsTable::new(&[
        "objective (cost,carbon)",
        "cost",
        "carbon kg",
        "mean deferral h",
        "placed %",
        "pareto",
    ]);
    let mut fed_points = Vec::new();
    let mut fed_rows_raw = Vec::new();
    for &(cw, gw) in &OBJECTIVE_SWEEP {
        let objective = GridObjective {
            cost_weight: cw,
            carbon_weight: gw,
        };
        let (cost, carbon_kg, deferral_h, placed_frac) =
            run_federation(&fed_sites, objective, fed_hours, deferrable);
        fed_points.push(FrontPoint {
            cost,
            carbon_kg,
            slowdown: deferral_h,
        });
        fed_rows_raw.push((objective, cost, carbon_kg, deferral_h, placed_frac));
    }
    let fed_flags = pareto_flags(&fed_points);
    let mut fed_rows = Vec::new();
    for ((objective, cost, carbon_kg, deferral_h, placed_frac), &on_front) in
        fed_rows_raw.iter().zip(&fed_flags)
    {
        fed_table.row(vec![
            format!(
                "({:.2},{:.2})",
                objective.cost_weight, objective.carbon_weight
            ),
            format!("{:.0}", cost),
            format!("{:.0}", carbon_kg),
            format!("{:.2}", deferral_h),
            format!("{:.1}", placed_frac * 100.0),
            if on_front { "*" } else { "" }.to_owned(),
        ]);
        fed_rows.push(json!({
            "cost_weight": objective.cost_weight,
            "carbon_weight": objective.carbon_weight,
            "cost": cost,
            "carbon_kg": carbon_kg,
            "mean_deferral_hours": deferral_h,
            "placed_fraction": placed_frac,
            "pareto_optimal": on_front,
        }));
    }
    println!(
        "Federation: {} sites, {fed_hours} hourly windows, {:.1} MW deferrable pool",
        fed_sites.len(),
        deferrable / 1e6
    );
    println!("{}", fed_table.render());
    println!("Expected shape: stronger following cuts cost/carbon at a slowdown price (per-site),");
    println!("and the federation's cost→carbon objective sweep traces the same trade-off.");

    let federation = json!({
        "hours": fed_hours,
        "deferrable_watts": deferrable,
        "results": fed_rows,
    });
    let doc = json!({
        "schema_version": epa_bench::BENCH_SCHEMA_VERSION,
        "bench": "grid-cosim",
        "episode_days": days,
        "smoke": smoke,
        "engine_seed": ENGINE_SEED,
        "site_seed": SITE_SEED,
        "grid_seed": GRID_SEED,
        "follow_sweep": sweep,
        "objective_sweep": OBJECTIVE_SWEEP,
        "sites": site_rows,
        "federation": federation,
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&doc).expect("serializable") + "\n",
    )
    .expect("write bench output");
    eprintln!("wrote {out_path}");
}
