//! **E14b — fault-injection ablation**: throughput and energy vs. MTBF.
//!
//! Sweeps the node MTBF from "perfect hardware" down to a failure every
//! two hours, with and without correlated rack/PDU events, on a 64-node
//! system over three simulated days with requeue + checkpointing on.
//! Writes `BENCH_fault_ablation.json` so resilience regressions show up
//! in the BENCH_ files next to the engine-throughput baseline:
//!
//! ```text
//! cargo run --release -p epa-bench --bin e14_fault_ablation [out.json]
//! ```
//!
//! Expected shape: wasted node-hours (work burned by killed attempts)
//! and energy per *clean* completion grow as the MTBF shrinks, and
//! correlated domain events cost more than the same failure mass spread
//! over independent nodes.

use epa_bench::{experiment_system, ResultsTable};
use epa_faults::{DomainFaultConfig, FaultConfig};
use epa_sched::engine::{ClusterSim, EngineConfig, SimOutcome};
use epa_sched::policies::backfill::EasyBackfill;
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::generator::{WorkloadGenerator, WorkloadParams};
use serde_json::json;

const NODES: u32 = 64;
const SIM_DAYS: f64 = 3.0;

fn run_case(mtbf_h: Option<f64>, domains: bool) -> SimOutcome {
    let horizon = SimTime::from_days(SIM_DAYS);
    // Size the workload below capacity (48-node load on 64 nodes): with
    // headroom every job finishes in the fault-free case, so the sweep
    // isolates the *fault* cost instead of backlog-packing effects
    // (killing backlogged jobs can accidentally improve backfilling).
    let jobs = WorkloadGenerator::new(WorkloadParams::typical(48, 11)).generate(horizon, 0);
    let mut config = EngineConfig::new(horizon);
    config.requeue_killed = true;
    config.checkpoint_interval = Some(SimDuration::from_mins(30.0));
    config.repair_time = SimDuration::from_hours(1.0);
    config.node_mtbf = mtbf_h.map(SimDuration::from_hours);
    if domains {
        config.faults = Some(FaultConfig {
            domain: Some(DomainFaultConfig {
                // One rack event per node-MTBF interval (or 12 h when the
                // independent stream is off) — comparable failure mass.
                mtbf: SimDuration::from_hours(mtbf_h.unwrap_or(12.0)),
                repair_time: SimDuration::from_hours(1.0),
            }),
            seed: 17,
            ..FaultConfig::default()
        });
    }
    let mut policy = EasyBackfill;
    ClusterSim::new(experiment_system(NODES), jobs, &mut policy, config).run()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fault_ablation.json".to_owned());
    println!("E14b: throughput/energy vs. MTBF, {NODES} nodes, {SIM_DAYS} days\n");
    let mut table = ResultsTable::new(&[
        "mtbf h",
        "domains",
        "failures",
        "downtime h",
        "requeues",
        "jobs/day",
        "MJ/job",
        "wasted nh",
    ]);
    let mut rows = Vec::new();
    for &(mtbf_h, domains) in &[
        (None, false),
        (Some(24.0), false),
        (Some(6.0), false),
        (Some(2.0), false),
        (Some(24.0), true),
        (Some(6.0), true),
        (Some(2.0), true),
    ] {
        let out = run_case(mtbf_h, domains);
        // `completed` counts every departure record, including killed
        // attempts that were requeued — the resilience metric is *clean*
        // completions (a logical job finishing for good).
        let clean = out
            .jobs
            .iter()
            .filter(|j| !j.killed_by_emergency && !j.killed_by_failure)
            .count() as u64;
        let clean_per_day = clean as f64 / SIM_DAYS;
        let energy_per_clean = if clean > 0 {
            out.energy_joules / clean as f64
        } else {
            0.0
        };
        // Node-hours burned by attempts that were later killed — the
        // direct work cost of failures (checkpointing shrinks the redo,
        // not the loss itself).
        let wasted_node_hours: f64 = out
            .jobs
            .iter()
            .filter(|j| j.killed_by_emergency || j.killed_by_failure)
            .map(|j| f64::from(j.nodes) * j.run_secs / 3600.0)
            .sum::<f64>()
            .max(0.0);
        let mtbf_label = mtbf_h.map_or("inf".to_owned(), |h| format!("{h:.0}"));
        table.row(vec![
            mtbf_label.clone(),
            domains.to_string(),
            out.node_failures.to_string(),
            format!("{:.1}", out.node_downtime_secs / 3600.0),
            out.requeues.to_string(),
            format!("{:.1}", clean_per_day),
            format!("{:.1}", energy_per_clean / 1e6),
            format!("{:.1}", wasted_node_hours),
        ]);
        rows.push(json!({
            "mtbf_hours": mtbf_h,
            "correlated_domains": domains,
            "node_failures": out.node_failures,
            "node_downtime_secs": out.node_downtime_secs,
            "mttr_secs": out.mttr_secs,
            "requeues": out.requeues,
            "clean_completions": clean,
            "clean_throughput_per_day": clean_per_day,
            "energy_joules": out.energy_joules,
            "energy_per_clean_job_joules": energy_per_clean,
            "wasted_node_hours": wasted_node_hours,
            "utilization": out.utilization,
        }));
    }
    println!("{}", table.render());
    println!(
        "Expected shape: wasted node-hours and energy/clean-job grow as MTBF \
         shrinks; correlated domain events amplify the cost."
    );
    let doc = json!({
        "schema_version": epa_bench::BENCH_SCHEMA_VERSION,
        "bench": "fault-ablation",
        "policy": "easy-backfill",
        "nodes": NODES,
        "sim_days": SIM_DAYS,
        "results": rows,
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&doc).expect("serializable") + "\n",
    )
    .expect("write bench output");
    eprintln!("wrote {out_path}");
}
