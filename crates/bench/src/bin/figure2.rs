//! Regenerates **Figure 2** of the survey: the map of the geographic
//! locations of the nine participating centers, with the regional totals
//! the paper's §III reports (Asia, Europe, and the United States).

use epa_core::geomap;

fn main() {
    let metas: Vec<_> = epa_sites::all_sites(2026)
        .into_iter()
        .map(|s| s.meta)
        .collect();
    println!("{}", geomap::render_map(&metas, 110, 30));
    println!("Regional totals:");
    for (region, n) in geomap::regional_totals(&metas) {
        println!("  {region:?}: {n}");
    }
}
