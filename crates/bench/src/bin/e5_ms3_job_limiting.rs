//! **E5 — MS3 job limiting: "do less when it's too hot"** (Borghesi et
//! al. HPCS'15; CINECA's production row in Table II).
//!
//! The CINECA site model runs a simulated summer week with the
//! temperature-conditioned concurrency gate on and off. Reported: peak
//! power during hot hours (>28 °C), total completions, mean wait.
//!
//! Expected shape (paper): the gate cuts hot-hour peak power at a modest
//! throughput cost — MS3's selling point was bounding thermal stress
//! without touching CPU frequencies.

use epa_bench::ResultsTable;
use epa_sched::limiting::JobLimitGate;
use epa_simcore::time::SimTime;
use epa_sites::runner::run_site;

/// Peak power restricted to hot afternoon hours (12:00–18:00), read from
/// the 5-minute system power trace.
fn peak_hot_power(report: &epa_sites::runner::SiteReport) -> f64 {
    report
        .outcome
        .power_trace
        .iter()
        .filter(|(t, _)| {
            let hour = (t % 86_400.0) / 3600.0;
            (12.0..18.0).contains(&hour)
        })
        .map(|(_, w)| *w)
        .fold(0.0, f64::max)
}

fn main() {
    println!("E5: MS3 job limiting at CINECA (summer week, gate on vs off)\n");
    let mut with_gate = epa_sites::centers::cineca::config(2026);
    with_gate.horizon = SimTime::from_days(3.0);
    let mut without_gate = with_gate.clone();
    without_gate.limit_gate = None;
    let mut tight_gate = with_gate.clone();
    tight_gate.limit_gate = Some(JobLimitGate {
        normal_limit: 64,
        hot_limit: 10,
        hot_threshold_c: 26.0,
    });

    let mut table = ResultsTable::new(&[
        "config",
        "completed",
        "hot-hour peak kW",
        "mean wait h",
        "util %",
    ]);
    for (label, site) in [
        ("no gate", &without_gate),
        ("MS3 gate (24@28C)", &with_gate),
        ("MS3 tight (10@26C)", &tight_gate),
    ] {
        let report = run_site(site);
        table.row(vec![
            label.into(),
            report.outcome.completed.to_string(),
            format!("{:.1}", peak_hot_power(&report) / 1e3),
            format!("{:.2}", report.outcome.mean_wait_secs / 3600.0),
            format!("{:.1}", 100.0 * report.outcome.utilization),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape: tighter gates lower the hot-hour peak and utilization; completions drop modestly.");
}
