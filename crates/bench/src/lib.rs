//! # epa-bench — the experiment harness
//!
//! One binary per paper exhibit and per quantitative ablation (see
//! DESIGN.md's per-experiment index):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1`, `table2` | Tables I and II |
//! | `figure1` | Figure 1 (component-interaction matrix) |
//! | `figure2` | Figure 2 (geographic map) |
//! | `e1_overprovisioning` … `e10_layout_aware` | ablations E1–E10 |
//!
//! The library half holds the shared experiment plumbing: a small
//! experiment-table formatter, multi-seed replication (parallelized with
//! rayon), and the reduced-scale system builders every experiment uses.

use epa_cluster::node::NodeSpec;
use epa_cluster::system::{System, SystemSpec};
use epa_cluster::topology::Topology;
use epa_sched::engine::SimOutcome;
use serde::Serialize;

/// Schema version stamped into every `BENCH_*.json` document. Bump when
/// a bench output's key set or semantics change, so downstream tooling
/// that diffs committed bench files can detect format drift.
///
/// v4: `bench_baseline` size rows renamed `completed_jobs` to
/// `jobs_completed` and gained `peak_rss_bytes`; added the `streaming`
/// section (materialized vs lazy-source runs at 10k/100k/1M jobs with
/// per-process peak-RSS probes).
///
/// v5: added `BENCH_policy_env.json` (the `policy-env` bench): learner
/// hyperparameters (`q_config`, `bandit_config`), the reward blend
/// (`reward_config`), the macro-action catalog, and per-site learned vs
/// engineered blended rewards.
///
/// v6: added `BENCH_grid_cosim.json` (the `grid-cosim` bench): per-site
/// follow-the-renewables Pareto fronts (cost / carbon / bounded
/// slowdown with `pareto_optimal` flags) and the nine-site federation
/// objective sweep (cost / carbon / mean deferral).
pub const BENCH_SCHEMA_VERSION: u32 = 6;

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where that interface is unavailable. The
/// high-water mark is monotone over the process lifetime, so
/// attributing a peak to one run requires a fresh process (the
/// `bench_baseline` streaming section spawns itself as a probe per
/// cell for exactly this reason).
#[must_use]
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// The million-job streaming workload: small short jobs at a high
/// Poisson rate, sized so the standard 256-node experiment machine
/// keeps up with arrivals (the queue — and therefore engine memory —
/// stays bounded at any job count). At `rate_per_hour` jobs per hour,
/// a horizon of `n / rate_per_hour` hours yields about `n` jobs; the
/// exact count is whatever the thinning process draws, which is why
/// streaming rows record the emitted count rather than the target.
#[must_use]
pub fn streaming_workload_params(
    rate_per_hour: f64,
    seed: u64,
) -> epa_workload::generator::WorkloadParams {
    use epa_simcore::time::SimDuration;
    use epa_workload::arrival::ArrivalProcess;
    use epa_workload::distributions::{RuntimeDistribution, SizeDistribution};
    use epa_workload::job::AppProfile;
    epa_workload::generator::WorkloadParams {
        arrivals: ArrivalProcess::Poisson { rate_per_hour },
        sizes: SizeDistribution {
            min_nodes: 1,
            max_nodes: 4,
            pow2_bias: 0.5,
            capability_fraction: 0.0,
        },
        runtimes: RuntimeDistribution {
            median: SimDuration::from_mins(4.0),
            sigma: 0.6,
            min: SimDuration::from_mins(1.0),
            max: SimDuration::from_mins(30.0),
        },
        users: 32,
        accurate_estimate_fraction: 0.5,
        overestimate_mean: 1.2,
        app_mix: vec![(AppProfile::balanced("stream"), 1.0)],
        moldable_fraction: 0.0,
        campaign_probability: 0.02,
        campaign_size: (2, 4),
        seed,
    }
}

/// Builds the standard experiment machine: `nodes` Xeon nodes, fat-tree.
#[must_use]
pub fn experiment_system(nodes: u32) -> System {
    SystemSpec {
        name: format!("exp-{nodes}"),
        cabinets: nodes.div_ceil(16),
        nodes_per_cabinet: 16.min(nodes),
        node: NodeSpec::typical_xeon(),
        topology: Topology::FatTree { arity: 16 },
        peak_tflops: f64::from(nodes),
    }
    .build()
}

/// A labeled results table printed by experiment binaries.
#[derive(Debug, Default, Serialize)]
pub struct ResultsTable {
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl ResultsTable {
    /// Creates a table with the given columns.
    #[must_use]
    pub fn new(columns: &[&str]) -> Self {
        ResultsTable {
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:>w$}  ", cell, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Parallel campaign execution: fan (sweep-point × seed) cells across the
/// thread pool, merging results in deterministic cell order.
pub mod campaign {
    use rayon::prelude::*;

    /// One executed campaign cell.
    #[derive(Debug, Clone)]
    pub struct CellResult<R> {
        /// Index of the sweep point in the campaign's `points` slice.
        pub point_idx: usize,
        /// The replication seed the cell ran with.
        pub seed: u64,
        /// Whatever the cell's run function produced.
        pub result: R,
    }

    /// Runs every (point, seed) cell of a campaign across the thread pool
    /// and returns results in row-major cell order (point-major,
    /// seed-minor) — the exact order a serial double loop would produce.
    ///
    /// Each cell owns an independent RNG substream (the seed), so cells
    /// are embarrassingly parallel; because results are merged by cell
    /// index and any downstream reduction runs over that ordered list,
    /// aggregate outputs are byte-identical to a serial run at any thread
    /// count (enforced by proptest below and the golden thread-invariance
    /// test).
    pub fn run_campaign<P, R, F>(points: &[P], seeds: &[u64], run: F) -> Vec<CellResult<R>>
    where
        P: Sync,
        R: Send,
        F: Fn(&P, u64) -> R + Sync,
    {
        let cells: Vec<(usize, u64)> = points
            .iter()
            .enumerate()
            .flat_map(|(pi, _)| seeds.iter().map(move |&s| (pi, s)))
            .collect();
        cells
            .par_iter()
            .map(|&(pi, seed)| CellResult {
                point_idx: pi,
                seed,
                result: run(&points[pi], seed),
            })
            .collect()
    }

    /// Per-point means of an f64 campaign: cell results grouped by sweep
    /// point, each group averaged in seed order (deterministic reduction).
    #[must_use]
    pub fn mean_by_point(n_points: usize, n_seeds: usize, cells: &[CellResult<f64>]) -> Vec<f64> {
        debug_assert_eq!(cells.len(), n_points * n_seeds);
        (0..n_points)
            .map(|pi| {
                let sum: f64 = cells[pi * n_seeds..(pi + 1) * n_seeds]
                    .iter()
                    .map(|c| c.result)
                    .sum();
                if n_seeds == 0 {
                    0.0
                } else {
                    sum / n_seeds as f64
                }
            })
            .collect()
    }
}

/// Mean over replicated runs: executes `run(seed)` for `seeds` in
/// parallel and averages the extracted metric. A one-point campaign —
/// the reduction order is seed order, so the mean is bit-identical to a
/// serial loop regardless of thread count.
pub fn replicate_mean<F>(seeds: &[u64], run: F) -> f64
where
    F: Fn(u64) -> f64 + Sync,
{
    if seeds.is_empty() {
        return 0.0;
    }
    let cells = campaign::run_campaign(&[()], seeds, |(), s| run(s));
    let total: f64 = cells.iter().map(|c| c.result).sum();
    total / seeds.len() as f64
}

/// Summary metrics extracted from a [`SimOutcome`] for experiment tables.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct OutcomeRow {
    /// Completed jobs.
    pub completed: u64,
    /// Utilization in percent.
    pub utilization_pct: f64,
    /// Mean wait, hours.
    pub mean_wait_h: f64,
    /// Mean bounded slowdown.
    pub slowdown: f64,
    /// Energy, MWh.
    pub energy_mwh: f64,
    /// Peak power, kW.
    pub peak_kw: f64,
}

impl From<&SimOutcome> for OutcomeRow {
    fn from(o: &SimOutcome) -> Self {
        OutcomeRow {
            completed: o.completed,
            utilization_pct: 100.0 * o.utilization,
            mean_wait_h: o.mean_wait_secs / 3600.0,
            slowdown: o.mean_bounded_slowdown,
            energy_mwh: o.energy_joules / 3.6e9,
            peak_kw: o.peak_watts / 1e3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_system_sizes() {
        let s = experiment_system(64);
        assert_eq!(s.num_nodes(), 64);
        let s2 = experiment_system(100);
        assert!(s2.num_nodes() >= 100);
    }

    #[test]
    fn results_table_renders_aligned() {
        let mut t = ResultsTable::new(&["a", "budget"]);
        t.row(vec!["1".into(), "50%".into()]);
        t.row(vec!["200".into(), "100%".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("budget"));
        assert!(lines[3].contains("200"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_rejected() {
        let mut t = ResultsTable::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_bytes() > 0);
        } else {
            assert_eq!(peak_rss_bytes(), 0);
        }
    }

    #[test]
    fn streaming_workload_keeps_the_machine_ahead_of_arrivals() {
        // Mean demand in node-hours per hour must sit under the
        // 256-node supply, or the queue (and engine memory) grows
        // without bound and the streaming-RSS claim is void.
        let p = streaming_workload_params(1000.0, 7);
        let mut rng = epa_simcore::rng::SimRng::new(3);
        let n = 20_000;
        let mut node_hours = 0.0;
        for _ in 0..n {
            let nodes = f64::from(p.sizes.sample(&mut rng));
            let rt = p.runtimes.sample(&mut rng).as_secs() / 3600.0;
            node_hours += nodes * rt;
        }
        let demand_per_hour = 1000.0 * 1.04 * (node_hours / f64::from(n));
        assert!(
            demand_per_hour < 0.9 * 256.0,
            "streaming workload oversubscribes the machine: \
             {demand_per_hour:.0} node-hours/hour of demand vs 256 supply"
        );
    }

    #[test]
    fn replicate_mean_averages() {
        let seeds = [1u64, 2, 3, 4];
        let m = replicate_mean(&seeds, |s| s as f64);
        assert!((m - 2.5).abs() < 1e-12);
        assert_eq!(replicate_mean(&[], |_| 1.0), 0.0);
    }

    #[test]
    fn campaign_cells_are_row_major() {
        let points = ["a", "b"];
        let seeds = [10u64, 20, 30];
        let cells = campaign::run_campaign(&points, &seeds, |p, s| format!("{p}{s}"));
        let order: Vec<(usize, u64)> = cells.iter().map(|c| (c.point_idx, c.seed)).collect();
        assert_eq!(
            order,
            vec![(0, 10), (0, 20), (0, 30), (1, 10), (1, 20), (1, 30)]
        );
        assert_eq!(cells[4].result, "b20");
        let means = campaign::mean_by_point(
            2,
            3,
            &campaign::run_campaign(&points, &seeds, |_, s| s as f64),
        );
        assert_eq!(means, vec![20.0, 20.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A deliberately reassociation-sensitive per-cell metric: naive f64
    /// averaging over a seeded pseudo-random stream. If parallel merge
    /// order ever differed from serial, sums over these values would
    /// drift in the last bits.
    fn cell_metric(point: u64, seed: u64) -> f64 {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ point;
        let mut acc = 0.0f64;
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += (x as f64 / u64::MAX as f64) * 1e6 - 0.5e6;
        }
        acc
    }

    proptest! {
        /// Satellite requirement: campaign results at any thread count
        /// 1–8 are bit-identical to serial execution for the same seed
        /// set — cell order, per-cell values, and the reduced means.
        #[test]
        fn parallel_campaign_identical_to_serial(
            points in proptest::collection::vec(0u64..1000, 1..5),
            seeds in proptest::collection::vec(0u64..10_000, 1..9),
            threads in 1usize..9,
        ) {
            let serial = rayon::with_num_threads(1, || {
                campaign::run_campaign(&points, &seeds, |&p, s| cell_metric(p, s))
            });
            let par = rayon::with_num_threads(threads, || {
                campaign::run_campaign(&points, &seeds, |&p, s| cell_metric(p, s))
            });
            prop_assert_eq!(serial.len(), par.len());
            for (a, b) in serial.iter().zip(&par) {
                prop_assert_eq!(a.point_idx, b.point_idx);
                prop_assert_eq!(a.seed, b.seed);
                prop_assert_eq!(a.result.to_bits(), b.result.to_bits(),
                    "cell ({}, {}) drifted at {} threads", a.point_idx, a.seed, threads);
            }
            let ms = campaign::mean_by_point(points.len(), seeds.len(), &serial);
            let mp = campaign::mean_by_point(points.len(), seeds.len(), &par);
            for (a, b) in ms.iter().zip(&mp) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            // And the one-point wrapper.
            let rs = rayon::with_num_threads(1,
                || replicate_mean(&seeds, |s| cell_metric(7, s)));
            let rp = rayon::with_num_threads(threads,
                || replicate_mean(&seeds, |s| cell_metric(7, s)));
            prop_assert_eq!(rs.to_bits(), rp.to_bits());
        }
    }
}
