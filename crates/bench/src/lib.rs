//! # epa-bench — the experiment harness
//!
//! One binary per paper exhibit and per quantitative ablation (see
//! DESIGN.md's per-experiment index):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1`, `table2` | Tables I and II |
//! | `figure1` | Figure 1 (component-interaction matrix) |
//! | `figure2` | Figure 2 (geographic map) |
//! | `e1_overprovisioning` … `e10_layout_aware` | ablations E1–E10 |
//!
//! The library half holds the shared experiment plumbing: a small
//! experiment-table formatter, multi-seed replication (parallelized with
//! rayon), and the reduced-scale system builders every experiment uses.

use epa_cluster::node::NodeSpec;
use epa_cluster::system::{System, SystemSpec};
use epa_cluster::topology::Topology;
use epa_sched::engine::SimOutcome;
use rayon::prelude::*;
use serde::Serialize;

/// Builds the standard experiment machine: `nodes` Xeon nodes, fat-tree.
#[must_use]
pub fn experiment_system(nodes: u32) -> System {
    SystemSpec {
        name: format!("exp-{nodes}"),
        cabinets: nodes.div_ceil(16),
        nodes_per_cabinet: 16.min(nodes),
        node: NodeSpec::typical_xeon(),
        topology: Topology::FatTree { arity: 16 },
        peak_tflops: f64::from(nodes),
    }
    .build()
}

/// A labeled results table printed by experiment binaries.
#[derive(Debug, Default, Serialize)]
pub struct ResultsTable {
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl ResultsTable {
    /// Creates a table with the given columns.
    #[must_use]
    pub fn new(columns: &[&str]) -> Self {
        ResultsTable {
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:>w$}  ", cell, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Mean over replicated runs: executes `run(seed)` for `seeds` in
/// parallel and averages the extracted metric.
pub fn replicate_mean<F>(seeds: &[u64], run: F) -> f64
where
    F: Fn(u64) -> f64 + Sync,
{
    if seeds.is_empty() {
        return 0.0;
    }
    let total: f64 = seeds.par_iter().map(|&s| run(s)).sum();
    total / seeds.len() as f64
}

/// Summary metrics extracted from a [`SimOutcome`] for experiment tables.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct OutcomeRow {
    /// Completed jobs.
    pub completed: u64,
    /// Utilization in percent.
    pub utilization_pct: f64,
    /// Mean wait, hours.
    pub mean_wait_h: f64,
    /// Mean bounded slowdown.
    pub slowdown: f64,
    /// Energy, MWh.
    pub energy_mwh: f64,
    /// Peak power, kW.
    pub peak_kw: f64,
}

impl From<&SimOutcome> for OutcomeRow {
    fn from(o: &SimOutcome) -> Self {
        OutcomeRow {
            completed: o.completed,
            utilization_pct: 100.0 * o.utilization,
            mean_wait_h: o.mean_wait_secs / 3600.0,
            slowdown: o.mean_bounded_slowdown,
            energy_mwh: o.energy_joules / 3.6e9,
            peak_kw: o.peak_watts / 1e3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_system_sizes() {
        let s = experiment_system(64);
        assert_eq!(s.num_nodes(), 64);
        let s2 = experiment_system(100);
        assert!(s2.num_nodes() >= 100);
    }

    #[test]
    fn results_table_renders_aligned() {
        let mut t = ResultsTable::new(&["a", "budget"]);
        t.row(vec!["1".into(), "50%".into()]);
        t.row(vec!["200".into(), "100%".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("budget"));
        assert!(lines[3].contains("200"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_rejected() {
        let mut t = ResultsTable::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn replicate_mean_averages() {
        let seeds = [1u64, 2, 3, 4];
        let m = replicate_mean(&seeds, |s| s as f64);
        assert!((m - 2.5).abs() < 1e-12);
        assert_eq!(replicate_mean(&[], |_| 1.0), 0.0);
    }
}
