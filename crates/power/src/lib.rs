//! # epa-power — power and energy substrate
//!
//! Implements every power mechanism the surveyed centers report using:
//!
//! - [`dvfs`] — dynamic voltage/frequency scaling: the cubic power law and
//!   the phase-sensitive performance model (CEA, LRZ, STFC experiments).
//! - [`node_power`] — the per-node power envelope: state- and
//!   utilization-dependent draw, cap-induced throttling.
//! - [`rapl`] — Intel RAPL-style windowed average power limiting
//!   (Ellsworth-style dynamic sharing builds on this).
//! - [`capmc`] — Cray CAPMC-style out-of-band node and system power caps
//!   (KAUST static capping, Trinity admin caps).
//! - [`facility`] — the data-center envelope: site power budget, cooling
//!   capacity, weather-driven PUE, dual supply sources (RIKEN grid vs. gas
//!   turbine), and demand-response events.
//! - [`meter`] — exact piecewise energy metering per node and system-wide.
//! - [`telemetry`] — sampled sensor readings with noise/quantization, the
//!   "monitoring" half of the survey's Figure 1 loop.
//! - [`budget`] — a hierarchical power-budget ledger for schedulers that
//!   grant and reclaim power allocations.

pub mod budget;
pub mod capmc;
pub mod dvfs;
pub mod error;
pub mod facility;
pub mod meter;
pub mod node_power;
pub mod rapl;
pub mod telemetry;

pub use budget::PowerBudget;
pub use capmc::CapmcController;
pub use dvfs::DvfsModel;
pub use error::PowerError;
pub use facility::{Facility, FacilityConfig, SupplySource, WeatherModel};
pub use meter::EnergyMeter;
pub use node_power::{NodePowerModel, NodePowerState};
pub use rapl::RaplDomain;
pub use telemetry::{Telemetry, TelemetryConfig};
