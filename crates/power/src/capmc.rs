//! CAPMC-style out-of-band power capping.
//!
//! Cray's CAPMC (Cray Advanced Platform Monitoring and Control) gives
//! administrators out-of-band, hard node-level and system-wide power caps —
//! the mechanism Trinity (LANL+Sandia) reports in production and KAUST uses
//! for its static 270 W cap on 70% of Shaheen's nodes, with SLURM's
//! Dynamic Power Management layered on top.
//!
//! Unlike RAPL's windowed averaging, a CAPMC cap is an instantaneous
//! ceiling: the node's firmware keeps draw at or below the cap at all
//! times. The controller here tracks per-node caps, an optional
//! system-wide cap, and distributes the system cap over nodes
//! (uniformly or proportionally to demand).

use crate::error::PowerError;
use epa_cluster::node::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a system-wide cap is divided among nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CapDistribution {
    /// Equal share per node.
    #[default]
    Uniform,
    /// Proportional to each node's demanded power.
    ProportionalToDemand,
}

/// Out-of-band power-cap controller for one system.
#[derive(Debug, Clone)]
pub struct CapmcController {
    node_caps: BTreeMap<NodeId, f64>,
    system_cap: Option<f64>,
    min_node_cap: f64,
    max_node_cap: f64,
    actuations: u64,
}

impl CapmcController {
    /// Creates a controller. `min/max_node_cap` bound admissible per-node
    /// caps (hardware limits of the cap registers).
    pub fn new(min_node_cap: f64, max_node_cap: f64) -> Result<Self, PowerError> {
        if !(min_node_cap > 0.0 && min_node_cap <= max_node_cap) {
            return Err(PowerError::InvalidConfig(format!(
                "node cap range must satisfy 0 < min <= max, got {min_node_cap}..{max_node_cap}"
            )));
        }
        Ok(CapmcController {
            node_caps: BTreeMap::new(),
            system_cap: None,
            min_node_cap,
            max_node_cap,
            actuations: 0,
        })
    }

    /// Sets a node-level cap, clamped into the admissible register range.
    /// Returns the cap actually programmed.
    pub fn set_node_cap(&mut self, node: NodeId, watts: f64) -> Result<f64, PowerError> {
        if !watts.is_finite() || watts <= 0.0 {
            return Err(PowerError::InvalidConfig(format!(
                "node cap must be positive and finite, got {watts}"
            )));
        }
        let programmed = watts.clamp(self.min_node_cap, self.max_node_cap);
        self.node_caps.insert(node, programmed);
        self.actuations += 1;
        Ok(programmed)
    }

    /// Removes a node-level cap (node runs uncapped).
    pub fn clear_node_cap(&mut self, node: NodeId) {
        if self.node_caps.remove(&node).is_some() {
            self.actuations += 1;
        }
    }

    /// The cap programmed on a node, if any.
    #[must_use]
    pub fn node_cap(&self, node: NodeId) -> Option<f64> {
        self.node_caps.get(&node).copied()
    }

    /// Number of nodes with an active cap.
    #[must_use]
    pub fn capped_nodes(&self) -> usize {
        self.node_caps.len()
    }

    /// Sets or clears the system-wide cap.
    pub fn set_system_cap(&mut self, watts: Option<f64>) -> Result<(), PowerError> {
        if let Some(w) = watts {
            if !w.is_finite() || w <= 0.0 {
                return Err(PowerError::InvalidConfig(format!(
                    "system cap must be positive and finite, got {w}"
                )));
            }
        }
        self.system_cap = watts;
        self.actuations += 1;
        Ok(())
    }

    /// The system-wide cap, if any.
    #[must_use]
    pub fn system_cap(&self) -> Option<f64> {
        self.system_cap
    }

    /// Total cap-register writes performed (an out-of-band traffic proxy).
    #[must_use]
    pub fn actuations(&self) -> u64 {
        self.actuations
    }

    /// Effective ceiling for a node: the node cap if set, further reduced
    /// by its share of the system cap when one is active.
    ///
    /// `demands` maps every powered node to its uncapped demand; it is used
    /// both for proportional distribution and to know the node population.
    #[must_use]
    pub fn effective_cap(
        &self,
        node: NodeId,
        demands: &BTreeMap<NodeId, f64>,
        distribution: CapDistribution,
    ) -> Option<f64> {
        let node_cap = self.node_caps.get(&node).copied();
        let system_share = self.system_cap.map(|total| {
            let n = demands.len().max(1) as f64;
            match distribution {
                CapDistribution::Uniform => total / n,
                CapDistribution::ProportionalToDemand => {
                    let total_demand: f64 = demands.values().sum();
                    if total_demand <= 0.0 {
                        total / n
                    } else {
                        total * demands.get(&node).copied().unwrap_or(0.0) / total_demand
                    }
                }
            }
        });
        match (node_cap, system_share) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Applies caps to a demand map, returning each node's granted power
    /// and the total. Granted power is `min(demand, effective cap)`.
    #[must_use]
    pub fn grant(
        &self,
        demands: &BTreeMap<NodeId, f64>,
        distribution: CapDistribution,
    ) -> (BTreeMap<NodeId, f64>, f64) {
        let mut granted = BTreeMap::new();
        let mut total = 0.0;
        for (&node, &demand) in demands {
            let g = match self.effective_cap(node, demands, distribution) {
                Some(cap) => demand.min(cap),
                None => demand,
            };
            granted.insert(node, g);
            total += g;
        }
        (granted, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn demands(pairs: &[(u32, f64)]) -> BTreeMap<NodeId, f64> {
        pairs.iter().map(|&(i, w)| (n(i), w)).collect()
    }

    #[test]
    fn node_caps_clamp_to_register_range() {
        let mut c = CapmcController::new(100.0, 400.0).unwrap();
        assert_eq!(c.set_node_cap(n(0), 50.0).unwrap(), 100.0);
        assert_eq!(c.set_node_cap(n(1), 270.0).unwrap(), 270.0);
        assert_eq!(c.set_node_cap(n(2), 9999.0).unwrap(), 400.0);
        assert_eq!(c.capped_nodes(), 3);
        assert_eq!(c.actuations(), 3);
    }

    #[test]
    fn clear_cap() {
        let mut c = CapmcController::new(100.0, 400.0).unwrap();
        c.set_node_cap(n(0), 270.0).unwrap();
        c.clear_node_cap(n(0));
        assert_eq!(c.node_cap(n(0)), None);
        // Clearing an uncapped node is a no-op and not an actuation.
        let before = c.actuations();
        c.clear_node_cap(n(5));
        assert_eq!(c.actuations(), before);
    }

    #[test]
    fn uniform_system_cap_shares_equally() {
        let mut c = CapmcController::new(50.0, 500.0).unwrap();
        c.set_system_cap(Some(600.0)).unwrap();
        let d = demands(&[(0, 400.0), (1, 400.0), (2, 400.0)]);
        let (granted, total) = c.grant(&d, CapDistribution::Uniform);
        for g in granted.values() {
            assert!((g - 200.0).abs() < 1e-9);
        }
        assert!((total - 600.0).abs() < 1e-9);
    }

    #[test]
    fn proportional_distribution_follows_demand() {
        let mut c = CapmcController::new(50.0, 500.0).unwrap();
        c.set_system_cap(Some(300.0)).unwrap();
        let d = demands(&[(0, 100.0), (1, 300.0)]);
        let (granted, total) = c.grant(&d, CapDistribution::ProportionalToDemand);
        assert!((granted[&n(0)] - 75.0).abs() < 1e-9);
        assert!((granted[&n(1)] - 225.0).abs() < 1e-9);
        assert!((total - 300.0).abs() < 1e-9);
    }

    #[test]
    fn node_cap_and_system_cap_take_minimum() {
        let mut c = CapmcController::new(50.0, 500.0).unwrap();
        c.set_node_cap(n(0), 150.0).unwrap();
        c.set_system_cap(Some(800.0)).unwrap(); // share = 400 for 2 nodes
        let d = demands(&[(0, 350.0), (1, 350.0)]);
        let (granted, _) = c.grant(&d, CapDistribution::Uniform);
        assert!((granted[&n(0)] - 150.0).abs() < 1e-9); // node cap binds
        assert!((granted[&n(1)] - 350.0).abs() < 1e-9); // demand binds
    }

    #[test]
    fn grant_never_exceeds_demand() {
        let mut c = CapmcController::new(50.0, 500.0).unwrap();
        c.set_system_cap(Some(1e6)).unwrap();
        let d = demands(&[(0, 123.0)]);
        let (granted, _) = c.grant(&d, CapDistribution::Uniform);
        assert_eq!(granted[&n(0)], 123.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(CapmcController::new(0.0, 100.0).is_err());
        assert!(CapmcController::new(200.0, 100.0).is_err());
        let mut c = CapmcController::new(50.0, 500.0).unwrap();
        assert!(c.set_node_cap(n(0), f64::NAN).is_err());
        assert!(c.set_node_cap(n(0), -5.0).is_err());
        assert!(c.set_system_cap(Some(0.0)).is_err());
        assert!(c.set_system_cap(None).is_ok());
    }

    #[test]
    fn kaust_static_policy_shape() {
        // KAUST: 70% of nodes capped at 270 W, 30% uncapped.
        let mut c = CapmcController::new(100.0, 425.0).unwrap();
        let total_nodes = 100u32;
        for i in 0..70 {
            c.set_node_cap(n(i), 270.0).unwrap();
        }
        let d: BTreeMap<NodeId, f64> = (0..total_nodes).map(|i| (n(i), 400.0)).collect();
        let (granted, total) = c.grant(&d, CapDistribution::Uniform);
        assert_eq!(
            granted
                .values()
                .filter(|&&g| (g - 270.0).abs() < 1e-9)
                .count(),
            70
        );
        assert_eq!(
            granted
                .values()
                .filter(|&&g| (g - 400.0).abs() < 1e-9)
                .count(),
            30
        );
        assert!((total - (70.0 * 270.0 + 30.0 * 400.0)).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Under a uniform system cap, total granted power never exceeds
        /// the cap (within fp tolerance), and per-node grants never exceed
        /// demands.
        #[test]
        fn system_cap_respected(
            demands_w in proptest::collection::vec(10.0f64..500.0, 1..40),
            cap in 100.0f64..5000.0,
        ) {
            let mut c = CapmcController::new(1.0, 1e4).unwrap();
            c.set_system_cap(Some(cap)).unwrap();
            let d: BTreeMap<NodeId, f64> = demands_w
                .iter()
                .enumerate()
                .map(|(i, &w)| (NodeId(i as u32), w))
                .collect();
            for dist in [CapDistribution::Uniform, CapDistribution::ProportionalToDemand] {
                let (granted, total) = c.grant(&d, dist);
                prop_assert!(total <= cap + 1e-6, "total {} > cap {}", total, cap);
                for (node, g) in &granted {
                    prop_assert!(*g <= d[node] + 1e-9);
                }
            }
        }
    }
}
