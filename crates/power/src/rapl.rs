//! RAPL-style windowed average power limiting.
//!
//! Intel's Running Average Power Limit (David et al., cited by the survey)
//! enforces an *average* power over a sliding time window rather than an
//! instantaneous ceiling: short bursts above the limit are allowed as long
//! as the windowed mean stays under it. We model the accounting exactly
//! (piecewise integration over the trailing window) — this is the
//! mechanism behind SLURM's and Ellsworth's per-node budget allocation.

use crate::error::PowerError;
use epa_simcore::series::TimeSeries;
use epa_simcore::time::{SimDuration, SimTime};

/// One RAPL domain (a node or socket) with a windowed power limit.
#[derive(Debug, Clone)]
pub struct RaplDomain {
    limit_watts: f64,
    window: SimDuration,
    trace: TimeSeries,
    violations: u64,
}

impl RaplDomain {
    /// Creates a domain with a power limit and an averaging window.
    pub fn new(limit_watts: f64, window: SimDuration) -> Result<Self, PowerError> {
        if limit_watts <= 0.0 {
            return Err(PowerError::InvalidConfig(format!(
                "RAPL limit must be positive, got {limit_watts}"
            )));
        }
        if window.is_zero() {
            return Err(PowerError::InvalidConfig(
                "RAPL window must be positive".into(),
            ));
        }
        Ok(RaplDomain {
            limit_watts,
            window,
            trace: TimeSeries::new(),
            violations: 0,
        })
    }

    /// The configured limit in watts.
    #[must_use]
    pub fn limit_watts(&self) -> f64 {
        self.limit_watts
    }

    /// Updates the limit (software-configurable, as on real hardware).
    pub fn set_limit(&mut self, limit_watts: f64) -> Result<(), PowerError> {
        if limit_watts <= 0.0 {
            return Err(PowerError::InvalidConfig(format!(
                "RAPL limit must be positive, got {limit_watts}"
            )));
        }
        self.limit_watts = limit_watts;
        Ok(())
    }

    /// The averaging window.
    #[must_use]
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Records that the domain draws `watts` starting at time `t`.
    pub fn record(&mut self, t: SimTime, watts: f64) {
        self.trace.push(t, watts);
    }

    /// Windowed average power over `[now - window, now]`.
    ///
    /// Matches hardware accounting: the divisor is always the full window
    /// length, and time before the trace (or before t = 0) counts as zero
    /// draw — at startup the window is "filled with zeros".
    #[must_use]
    pub fn windowed_average(&self, now: SimTime) -> f64 {
        let start = if now.as_secs() > self.window.as_secs() {
            now - self.window
        } else {
            SimTime::ZERO
        };
        self.trace.integrate(start, now) / self.window.as_secs()
    }

    /// True when the windowed average exceeds the limit at `now`.
    /// Counts the violation when it does.
    pub fn check(&mut self, now: SimTime) -> bool {
        let violated = self.windowed_average(now) > self.limit_watts + 1e-9;
        if violated {
            self.violations += 1;
        }
        violated
    }

    /// How many watts of *instantaneous* draw are admissible right now so
    /// that the windowed average stays at or under the limit, assuming the
    /// new draw holds for `dt`.
    ///
    /// Solves `(E_past + w·dt) / (window) <= limit` for `w`, where `E_past`
    /// is the energy already accumulated over the trailing
    /// `window − dt`. This is the headroom RAPL-aware schedulers query
    /// before raising a node's operating point.
    #[must_use]
    pub fn admissible_watts(&self, now: SimTime, dt: SimDuration) -> f64 {
        let dt = dt.min(self.window);
        if dt.is_zero() {
            return self.limit_watts;
        }
        let hist_span = self.window - dt;
        let hist_start = if now.as_secs() > hist_span.as_secs() {
            now - hist_span
        } else {
            SimTime::ZERO
        };
        let e_past = self.trace.integrate(hist_start, now);
        let budget = self.limit_watts * self.window.as_secs() - e_past;
        (budget / dt.as_secs()).max(0.0)
    }

    /// Number of window violations observed by [`check`](Self::check).
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn constant_draw_average() {
        let mut r = RaplDomain::new(200.0, d(10.0)).unwrap();
        r.record(t(0.0), 150.0);
        assert!((r.windowed_average(t(20.0)) - 150.0).abs() < 1e-9);
        assert!(!r.check(t(20.0)));
    }

    #[test]
    fn burst_above_limit_tolerated_within_window() {
        let mut r = RaplDomain::new(200.0, d(10.0)).unwrap();
        r.record(t(0.0), 100.0);
        r.record(t(9.0), 400.0); // 1 s burst inside a 10 s window
                                 // Window [0,10]: (9*100 + 1*400)/10 = 130 <= 200.
        assert!(!r.check(t(10.0)));
        // Sustained burst eventually violates.
        assert!(r.check(t(15.0))); // (4*100+6*400)/10 = 280 > 200
        assert_eq!(r.violations(), 1);
    }

    #[test]
    fn early_time_window_fills_with_zeros() {
        let mut r = RaplDomain::new(200.0, d(100.0)).unwrap();
        r.record(t(0.0), 300.0);
        // At t=10 only 10 s of the 100 s window carry draw: 300*10/100.
        assert!((r.windowed_average(t(10.0)) - 30.0).abs() < 1e-9);
        // Once the window is full the average converges to the draw.
        assert!((r.windowed_average(t(200.0)) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn admissible_watts_reflects_history() {
        let r0 = RaplDomain::new(200.0, d(10.0)).unwrap();
        // No history: full budget spread over dt.
        assert!((r0.admissible_watts(t(0.0), d(10.0)) - 200.0).abs() < 1e-9);

        let mut r = RaplDomain::new(200.0, d(10.0)).unwrap();
        r.record(t(0.0), 200.0);
        // After 5 s at the limit, the next 5 s must average 200 too.
        let adm = r.admissible_watts(t(5.0), d(5.0));
        assert!((adm - 200.0).abs() < 1e-9);

        let mut r2 = RaplDomain::new(200.0, d(10.0)).unwrap();
        r2.record(t(0.0), 400.0);
        // 5 s at 400 W consumed the whole 2000 J window budget.
        let adm2 = r2.admissible_watts(t(5.0), d(5.0));
        assert!(adm2 < 1e-9);
    }

    #[test]
    fn admissible_watts_zero_dt_is_limit() {
        let r = RaplDomain::new(150.0, d(10.0)).unwrap();
        assert_eq!(r.admissible_watts(t(5.0), d(0.0)), 150.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(RaplDomain::new(0.0, d(1.0)).is_err());
        assert!(RaplDomain::new(-5.0, d(1.0)).is_err());
        assert!(RaplDomain::new(100.0, d(0.0)).is_err());
        let mut r = RaplDomain::new(100.0, d(1.0)).unwrap();
        assert!(r.set_limit(-1.0).is_err());
        assert!(r.set_limit(120.0).is_ok());
        assert_eq!(r.limit_watts(), 120.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// If every recorded draw is at or below the limit, the windowed
        /// average can never violate it.
        #[test]
        fn under_limit_draws_never_violate(
            steps in proptest::collection::vec((0.1f64..50.0, 0.0f64..200.0), 1..40),
        ) {
            let mut r = RaplDomain::new(200.0, SimDuration::from_secs(30.0)).unwrap();
            let mut clock = 0.0;
            for (dt, w) in &steps {
                r.record(SimTime::from_secs(clock), *w);
                clock += dt;
            }
            prop_assert!(!r.check(SimTime::from_secs(clock)));
        }

        /// Drawing exactly the admissible wattage for dt brings the window
        /// average to at most the limit.
        #[test]
        fn admissible_is_safe(
            steps in proptest::collection::vec((0.5f64..10.0, 0.0f64..400.0), 1..20),
            dt in 0.5f64..10.0,
        ) {
            let mut r = RaplDomain::new(200.0, SimDuration::from_secs(30.0)).unwrap();
            let mut clock = 0.0;
            for (step_dt, w) in &steps {
                r.record(SimTime::from_secs(clock), *w);
                clock += step_dt;
            }
            let now = SimTime::from_secs(clock);
            let adm = r.admissible_watts(now, SimDuration::from_secs(dt));
            let before = r.windowed_average(now);
            r.record(now, adm);
            let after = now + SimDuration::from_secs(dt);
            let avg = r.windowed_average(after);
            if adm > 0.0 {
                // Positive headroom: drawing exactly the admissible wattage
                // keeps the window at or under the limit.
                prop_assert!(avg <= 200.0 + 1e-6, "avg {} with adm {}", avg, adm);
            } else {
                // History already blew the window budget; drawing zero must
                // at least not worsen the average.
                prop_assert!(avg <= before + 1e-6);
            }
        }
    }
}
