//! Per-node power model: state, utilization, frequency, and caps.
//!
//! Combines the node's static envelope with the DVFS model into a single
//! "what is this node drawing right now" function, including the
//! throttling feedback a hardware cap induces: when the cap is below the
//! demanded power, the effective frequency drops to the highest ladder
//! step that fits, and the job slows down accordingly (the Patki/Sarood
//! over-provisioning trade-off that experiment E1 sweeps).

use crate::dvfs::DvfsModel;
use epa_cluster::node::NodeSpec;
use serde::{Deserialize, Serialize};

/// Operational state of a node, matching the resource-manager lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum NodePowerState {
    /// Powered off (BMC only).
    Off,
    /// Booting: full idle draw plus boot overhead, not usable yet.
    Booting,
    /// On and idle.
    #[default]
    Idle,
    /// Running a job.
    Busy,
}

/// Computes a node's instantaneous power draw.
#[derive(Debug, Clone)]
pub struct NodePowerModel {
    spec: NodeSpec,
    dvfs: DvfsModel,
}

/// Result of applying a hardware cap to a busy node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CappedOperatingPoint {
    /// Effective frequency after throttling, GHz.
    pub freq_ghz: f64,
    /// Power drawn at that frequency, watts.
    pub watts: f64,
    /// Runtime inflation for a phase with the given cpu-boundness
    /// relative to running uncapped at base frequency.
    pub slowdown: f64,
}

impl NodePowerModel {
    /// Creates the model for one node type.
    #[must_use]
    pub fn new(spec: NodeSpec) -> Self {
        let dvfs = DvfsModel::new(spec.clone());
        NodePowerModel { spec, dvfs }
    }

    /// The underlying DVFS model.
    #[must_use]
    pub fn dvfs(&self) -> &DvfsModel {
        &self.dvfs
    }

    /// The node spec.
    #[must_use]
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Instantaneous draw for a node in `state` at utilization `util`
    /// (fraction of cores busy, `[0,1]`) and frequency `freq_ghz`.
    ///
    /// Busy draw interpolates linearly between idle and the DVFS busy power
    /// with utilization; boot draws nominal power (fans + POST load).
    #[must_use]
    pub fn watts(&self, state: NodePowerState, util: f64, freq_ghz: f64) -> f64 {
        match state {
            NodePowerState::Off => self.spec.off_watts,
            NodePowerState::Booting => self.spec.nominal_watts,
            NodePowerState::Idle => self.spec.idle_watts,
            NodePowerState::Busy => {
                let u = util.clamp(0.0, 1.0);
                let busy = self.dvfs.busy_watts(freq_ghz);
                self.spec.idle_watts + u * (busy - self.spec.idle_watts)
            }
        }
    }

    /// Applies a hardware cap to a fully-utilized node running a phase of
    /// the given cpu-boundness. Returns the throttled operating point.
    ///
    /// If the cap is above the demanded power no throttling happens. If it
    /// is below even the lowest-frequency draw, the node pins to the lowest
    /// frequency (hardware can't do better; the residual violation is what
    /// RAPL's window accounting absorbs).
    #[must_use]
    pub fn apply_cap(
        &self,
        cap_watts: f64,
        demand_freq_ghz: f64,
        cpu_boundness: f64,
    ) -> CappedOperatingPoint {
        let demand_watts = self.dvfs.busy_watts(demand_freq_ghz);
        let (freq, watts) = if demand_watts <= cap_watts {
            (demand_freq_ghz, demand_watts)
        } else {
            match self.dvfs.max_frequency_under_cap(cap_watts) {
                Some(f) => (f, self.dvfs.busy_watts(f)),
                None => {
                    let fmin = self.spec.cpu.min_freq_ghz;
                    (fmin, self.dvfs.busy_watts(fmin))
                }
            }
        };
        CappedOperatingPoint {
            freq_ghz: freq,
            watts,
            slowdown: self.dvfs.slowdown(freq, cpu_boundness),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> NodePowerModel {
        NodePowerModel::new(NodeSpec::typical_xeon())
    }

    #[test]
    fn state_powers() {
        let m = model();
        let base = m.spec().cpu.base_freq_ghz;
        assert_eq!(m.watts(NodePowerState::Off, 0.0, base), 8.0);
        assert_eq!(m.watts(NodePowerState::Booting, 0.0, base), 290.0);
        assert_eq!(m.watts(NodePowerState::Idle, 0.0, base), 90.0);
        assert_eq!(m.watts(NodePowerState::Busy, 1.0, base), 290.0);
    }

    #[test]
    fn utilization_interpolates() {
        let m = model();
        let base = m.spec().cpu.base_freq_ghz;
        let half = m.watts(NodePowerState::Busy, 0.5, base);
        assert!((half - 190.0).abs() < 1e-9);
        // Utilization clamps.
        assert_eq!(m.watts(NodePowerState::Busy, 2.0, base), 290.0);
        assert_eq!(m.watts(NodePowerState::Busy, -1.0, base), 90.0);
    }

    #[test]
    fn generous_cap_is_noop() {
        let m = model();
        let base = m.spec().cpu.base_freq_ghz;
        let op = m.apply_cap(1000.0, base, 1.0);
        assert_eq!(op.freq_ghz, base);
        assert!((op.watts - 290.0).abs() < 1e-9);
        assert!((op.slowdown - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tight_cap_throttles_and_slows() {
        let m = model();
        let base = m.spec().cpu.base_freq_ghz;
        let op = m.apply_cap(200.0, base, 1.0);
        assert!(op.watts <= 200.0);
        assert!(op.freq_ghz < base);
        assert!(op.slowdown > 1.0);
    }

    #[test]
    fn impossible_cap_pins_to_min_frequency() {
        let m = model();
        let op = m.apply_cap(50.0, m.spec().cpu.base_freq_ghz, 1.0);
        assert_eq!(op.freq_ghz, m.spec().cpu.min_freq_ghz);
        assert!(op.watts > 50.0, "residual violation is expected");
    }

    #[test]
    fn memory_bound_job_barely_slows_under_cap() {
        let m = model();
        let base = m.spec().cpu.base_freq_ghz;
        let op = m.apply_cap(200.0, base, 0.0);
        assert!((op.slowdown - 1.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// A feasible cap is always respected, and throttling never
        /// *increases* frequency.
        #[test]
        fn caps_respected(cap in 120.0f64..500.0, beta in 0.0f64..1.0) {
            let m = NodePowerModel::new(NodeSpec::typical_xeon());
            let base = m.spec().cpu.base_freq_ghz;
            let min_w = m.dvfs().busy_watts(m.spec().cpu.min_freq_ghz);
            let op = m.apply_cap(cap, base, beta);
            prop_assert!(op.freq_ghz <= base + 1e-12);
            if cap >= min_w {
                prop_assert!(op.watts <= cap + 1e-9, "cap {} violated: {}", cap, op.watts);
            }
            prop_assert!(op.slowdown >= 1.0 - 1e-12);
        }
    }
}
