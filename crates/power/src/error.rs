//! Error types for the power substrate.

use thiserror::Error;

/// Errors from power models, caps, budgets, and the facility.
#[derive(Debug, Error, PartialEq)]
pub enum PowerError {
    /// A configuration value was out of range.
    #[error("invalid power configuration: {0}")]
    InvalidConfig(String),

    /// A grant request exceeded the available budget headroom.
    #[error("power budget exceeded: requested {requested:.1} W, headroom {headroom:.1} W")]
    BudgetExceeded {
        /// Watts requested.
        requested: f64,
        /// Watts available when the request arrived.
        headroom: f64,
    },

    /// A grant id already holds power.
    #[error("grant {0} already exists")]
    DuplicateGrant(u64),

    /// A grant id holds no power.
    #[error("grant {0} does not exist")]
    UnknownGrant(u64),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = PowerError::BudgetExceeded {
            requested: 250.0,
            headroom: 100.0,
        };
        assert_eq!(
            e.to_string(),
            "power budget exceeded: requested 250.0 W, headroom 100.0 W"
        );
    }
}
