//! Dynamic voltage and frequency scaling.
//!
//! The standard first-order model used throughout the power-aware HPC
//! literature the survey cites (Freeh et al., Etinski et al., Auweter et
//! al.):
//!
//! - **Power**: dynamic power scales as `P_dyn ∝ V²·f`, and voltage scales
//!   roughly linearly with frequency inside the DVFS range, giving the
//!   cubic rule `P_dyn ∝ f³`. Static/leakage power does not scale.
//! - **Performance**: compute-bound phases slow down proportionally to
//!   `f_base / f`; memory/communication-bound phases are largely frequency
//!   insensitive. A phase's *cpu-boundness* `β ∈ [0,1]` interpolates:
//!   `slowdown(f) = β·(f_base/f) + (1-β)`.
//!
//! This is exactly the structure that makes mid-range frequencies
//! energy-optimal for memory-bound codes (reproduced by experiment E2).

use crate::error::PowerError;
use epa_cluster::node::{CpuSpec, NodeSpec};
use serde::{Deserialize, Serialize};

/// DVFS power/performance model for one node type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DvfsModel {
    /// Fraction of the *active* (nominal − idle) power that is dynamic and
    /// scales with f³; the rest is static. Typical values 0.6–0.8.
    pub dynamic_fraction: f64,
    node: NodeSpec,
}

impl DvfsModel {
    /// Creates the model with a typical 70% dynamic-power fraction.
    #[must_use]
    pub fn new(node: NodeSpec) -> Self {
        DvfsModel {
            dynamic_fraction: 0.7,
            node,
        }
    }

    /// Creates the model with an explicit dynamic-power fraction.
    pub fn with_dynamic_fraction(node: NodeSpec, fraction: f64) -> Result<Self, PowerError> {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(PowerError::InvalidConfig(format!(
                "dynamic fraction must be in [0,1], got {fraction}"
            )));
        }
        Ok(DvfsModel {
            dynamic_fraction: fraction,
            node,
        })
    }

    /// The CPU spec this model describes.
    #[must_use]
    pub fn cpu(&self) -> &CpuSpec {
        &self.node.cpu
    }

    /// Active power at full utilization and frequency `f` (GHz), in watts.
    ///
    /// At base frequency this returns exactly `nominal_watts`. The dynamic
    /// share scales with `(f / f_base)³`, the static share is constant.
    #[must_use]
    pub fn busy_watts(&self, freq_ghz: f64) -> f64 {
        let f = self.clamp_freq(freq_ghz);
        let active = self.node.nominal_watts - self.node.idle_watts;
        let ratio = f / self.node.cpu.base_freq_ghz;
        let dynamic = active * self.dynamic_fraction * ratio.powi(3);
        let static_part = active * (1.0 - self.dynamic_fraction);
        self.node.idle_watts + dynamic + static_part
    }

    /// Runtime slowdown factor (≥ ~1 for f < base) for a phase with
    /// cpu-boundness `beta` run at frequency `f`.
    ///
    /// `slowdown = β·(f_base/f) + (1−β)`; running *above* base frequency
    /// yields a speedup (< 1) on compute-bound phases.
    #[must_use]
    pub fn slowdown(&self, freq_ghz: f64, cpu_boundness: f64) -> f64 {
        let f = self.clamp_freq(freq_ghz);
        let beta = cpu_boundness.clamp(0.0, 1.0);
        beta * (self.node.cpu.base_freq_ghz / f) + (1.0 - beta)
    }

    /// Energy (J) to execute a phase that takes `base_secs` at base
    /// frequency, when run at `freq_ghz`, for a phase of the given
    /// cpu-boundness. This is the objective energy-aware scheduling
    /// minimizes (LRZ "energy-to-solution" goal).
    #[must_use]
    pub fn phase_energy(&self, base_secs: f64, freq_ghz: f64, cpu_boundness: f64) -> f64 {
        let t = base_secs * self.slowdown(freq_ghz, cpu_boundness);
        self.busy_watts(freq_ghz) * t
    }

    /// The ladder frequency minimizing energy-to-solution for a phase.
    #[must_use]
    pub fn energy_optimal_frequency(&self, cpu_boundness: f64) -> f64 {
        let ladder = self.node.cpu.frequency_ladder();
        *ladder
            .iter()
            .min_by(|a, b| {
                self.phase_energy(1.0, **a, cpu_boundness)
                    .partial_cmp(&self.phase_energy(1.0, **b, cpu_boundness))
                    .expect("finite energies")
            })
            .expect("ladder nonempty")
    }

    /// The highest ladder frequency whose busy power fits under `cap_watts`
    /// (the mechanism RAPL-style capping uses to enforce a limit).
    /// Returns `None` when even the lowest frequency exceeds the cap.
    #[must_use]
    pub fn max_frequency_under_cap(&self, cap_watts: f64) -> Option<f64> {
        self.node
            .cpu
            .frequency_ladder()
            .into_iter()
            .rev()
            .find(|&f| self.busy_watts(f) <= cap_watts)
    }

    fn clamp_freq(&self, f: f64) -> f64 {
        f.clamp(self.node.cpu.min_freq_ghz, self.node.cpu.max_freq_ghz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DvfsModel {
        DvfsModel::new(NodeSpec::typical_xeon())
    }

    #[test]
    fn base_frequency_gives_nominal_power() {
        let m = model();
        let base = m.cpu().base_freq_ghz;
        assert!((m.busy_watts(base) - 290.0).abs() < 1e-9);
    }

    #[test]
    fn power_is_monotone_in_frequency() {
        let m = model();
        let ladder = m.cpu().frequency_ladder();
        for w in ladder.windows(2) {
            assert!(m.busy_watts(w[1]) > m.busy_watts(w[0]));
        }
    }

    #[test]
    fn frequency_clamped_to_range() {
        let m = model();
        assert_eq!(m.busy_watts(0.1), m.busy_watts(m.cpu().min_freq_ghz));
        assert_eq!(m.busy_watts(99.0), m.busy_watts(m.cpu().max_freq_ghz));
    }

    #[test]
    fn compute_bound_slowdown_is_inverse_frequency() {
        let m = model();
        let base = m.cpu().base_freq_ghz;
        let f = m.cpu().min_freq_ghz; // in range, below base
        let s = m.slowdown(f, 1.0);
        assert!((s - base / f).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_is_frequency_insensitive() {
        let m = model();
        assert!((m.slowdown(m.cpu().min_freq_ghz, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn above_base_speeds_up_compute_bound() {
        let m = model();
        let s = m.slowdown(m.cpu().max_freq_ghz, 1.0);
        assert!(s < 1.0);
    }

    #[test]
    fn energy_optimum_below_max_for_memory_bound() {
        let m = model();
        // For a fully memory-bound phase, lower frequency always saves
        // energy: the optimum is the minimum frequency.
        let f = m.energy_optimal_frequency(0.0);
        assert!((f - m.cpu().min_freq_ghz).abs() < 1e-9);
    }

    #[test]
    fn energy_optimum_for_compute_bound_is_above_min() {
        let m = model();
        // For a fully compute-bound phase the t ∝ 1/f inflation fights the
        // P ∝ f³ saving; with a static share the optimum sits strictly
        // above the ladder minimum.
        let f = m.energy_optimal_frequency(1.0);
        assert!(f > m.cpu().min_freq_ghz);
    }

    #[test]
    fn cap_lookup_finds_highest_fitting() {
        let m = model();
        let cap = m.busy_watts(2.0) + 0.1;
        let f = m.max_frequency_under_cap(cap).unwrap();
        assert!(m.busy_watts(f) <= cap);
        // The next ladder step up must violate the cap.
        let ladder = m.cpu().frequency_ladder();
        if let Some(next) = ladder.iter().find(|&&x| x > f) {
            assert!(m.busy_watts(*next) > cap);
        }
    }

    #[test]
    fn impossible_cap_returns_none() {
        let m = model();
        assert!(m.max_frequency_under_cap(10.0).is_none());
    }

    #[test]
    fn invalid_dynamic_fraction_rejected() {
        assert!(DvfsModel::with_dynamic_fraction(NodeSpec::typical_xeon(), 1.5).is_err());
        assert!(DvfsModel::with_dynamic_fraction(NodeSpec::typical_xeon(), -0.1).is_err());
    }

    #[test]
    fn phase_energy_consistency() {
        let m = model();
        let base = m.cpu().base_freq_ghz;
        let e = m.phase_energy(100.0, base, 0.5);
        assert!((e - 290.0 * 100.0).abs() < 1e-6);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Busy power stays within the node's physical envelope
        /// [idle, ~peak-ish] for any in-range frequency and dynamic share.
        #[test]
        fn power_bounded(f in 0.5f64..4.0, dyn_frac in 0.0f64..1.0) {
            let m = DvfsModel::with_dynamic_fraction(NodeSpec::typical_xeon(), dyn_frac).unwrap();
            let w = m.busy_watts(f);
            prop_assert!(w >= m.cpu().min_freq_ghz * 0.0 + 90.0 - 1e-9);
            // At max frequency the cubic blowup is bounded by
            // idle + active * (dyn*(max/base)^3 + (1-dyn)).
            let bound = 90.0 + 200.0 * (dyn_frac * (2.9f64/2.3).powi(3) + (1.0 - dyn_frac)) + 1e-9;
            prop_assert!(w <= bound);
        }

        /// Slowdown is monotone non-increasing in frequency for any phase mix.
        #[test]
        fn slowdown_monotone(beta in 0.0f64..1.0) {
            let m = DvfsModel::new(NodeSpec::typical_xeon());
            let ladder = m.cpu().frequency_ladder();
            for w in ladder.windows(2) {
                prop_assert!(m.slowdown(w[1], beta) <= m.slowdown(w[0], beta) + 1e-12);
            }
        }
    }
}
