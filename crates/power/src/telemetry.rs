//! Telemetry: sampled sensor readings.
//!
//! The survey's Figure 1 puts telemetry sensors at the center of the
//! control loop: "the control of energy/power is heavily dependent on
//! telemetry sensors that are responsible for constantly monitoring the
//! activity of the system resources." Real sensors sample at a finite
//! rate, quantize, and carry noise — policies built on them act on a
//! *degraded* view of the true power. This module models that degradation,
//! and the sampling-interval ablation bench quantifies its effect.
//!
//! Beyond noise, sensors *fail*: samples drop out (the consumer's last
//! reading ages) and sensors stick at an old value while still reporting
//! fresh timestamps. [`Telemetry::with_faults`] wires an
//! [`epa_faults::SensorFaultConfig`] into the sampling pipeline, and the
//! staleness accessors ([`Telemetry::age_at`], [`Telemetry::stale_at`])
//! give every consumer the reading age it needs to decide when to stop
//! trusting telemetry and degrade to static estimates.

use crate::error::PowerError;
use epa_faults::SensorFaultConfig;
use epa_simcore::rng::SimRng;
use epa_simcore::series::TimeSeries;
use epa_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Sensor characteristics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Sampling interval.
    pub interval: SimDuration,
    /// Multiplicative gaussian noise std (0.01 = 1% of reading).
    pub noise_fraction: f64,
    /// Quantization step in watts (0 = no quantization).
    pub quantization_watts: f64,
    /// RNG seed for the noise stream.
    pub seed: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            interval: SimDuration::from_secs(1.0),
            noise_fraction: 0.01,
            quantization_watts: 1.0,
            seed: 0x7e1e,
        }
    }
}

impl TelemetryConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), PowerError> {
        if self.interval.is_zero() {
            return Err(PowerError::InvalidConfig(
                "sampling interval must be positive".into(),
            ));
        }
        if self.noise_fraction < 0.0 {
            return Err(PowerError::InvalidConfig(
                "noise fraction cannot be negative".into(),
            ));
        }
        if self.quantization_watts < 0.0 {
            return Err(PowerError::InvalidConfig(
                "quantization cannot be negative".into(),
            ));
        }
        Ok(())
    }
}

/// One sampled reading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reading {
    /// Sample timestamp.
    pub t: SimTime,
    /// Observed (noisy, quantized) watts.
    pub watts: f64,
}

/// A telemetry pipeline sampling a true power trace.
#[derive(Debug, Clone)]
pub struct Telemetry {
    config: TelemetryConfig,
    faults: Option<SensorFaultConfig>,
    readings: Vec<Reading>,
    samples_taken: u64,
    dropouts: u64,
    stuck_windows: u64,
    /// End of the current stuck-at window and the held value, if any.
    stuck_until: Option<(SimTime, f64)>,
}

impl Telemetry {
    /// Creates a pipeline from a validated config.
    pub fn new(config: TelemetryConfig) -> Result<Self, PowerError> {
        config.validate()?;
        Ok(Telemetry {
            config,
            faults: None,
            readings: Vec::new(),
            samples_taken: 0,
            dropouts: 0,
            stuck_windows: 0,
            stuck_until: None,
        })
    }

    /// Creates a pipeline whose sensor is subject to dropout and stuck-at
    /// faults.
    pub fn with_faults(
        config: TelemetryConfig,
        faults: SensorFaultConfig,
    ) -> Result<Self, PowerError> {
        faults
            .validate()
            .map_err(|e| PowerError::InvalidConfig(e.to_string()))?;
        let mut t = Telemetry::new(config)?;
        t.faults = Some(faults);
        Ok(t)
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// Samples the true trace over `[from, to]` at the configured interval,
    /// appending degraded readings. Returns the number of samples taken
    /// (dropped samples are not taken — the reading age grows across the
    /// gap).
    pub fn sample_trace(&mut self, trace: &TimeSeries, from: SimTime, to: SimTime) -> usize {
        let mut rng = SimRng::new(self.config.seed).stream_indexed(
            "telemetry",
            // Distinct noise per sampling campaign, deterministic per start.
            from.as_secs().to_bits(),
        );
        // Fault draws come from their own substream so enabling faults
        // does not perturb the noise sequence.
        let mut fault_rng = SimRng::new(self.config.seed)
            .stream_indexed("telemetry-faults", from.as_secs().to_bits());
        let mut t = from;
        let mut taken = 0;
        while t <= to {
            let truth = trace.value_at(t).unwrap_or(0.0);
            let noisy = truth * (1.0 + rng.normal(0.0, self.config.noise_fraction));
            let q = self.config.quantization_watts;
            let mut watts = if q > 0.0 {
                (noisy / q).round() * q
            } else {
                noisy
            };
            if let Some(f) = &self.faults {
                if fault_rng.bernoulli(f.dropout_prob) {
                    // Lost sample: no reading, the last one ages.
                    self.dropouts += 1;
                    t += self.config.interval;
                    continue;
                }
                match self.stuck_until {
                    Some((until, held)) if t < until => {
                        // Stuck-at: fresh timestamp, old value.
                        watts = held;
                    }
                    _ => {
                        self.stuck_until = None;
                        if fault_rng.bernoulli(f.stuck_prob) {
                            let held = self.latest().map_or(watts, |r| r.watts);
                            self.stuck_until = Some((t + f.stuck_duration, held));
                            self.stuck_windows += 1;
                            watts = held;
                        }
                    }
                }
            }
            self.readings.push(Reading {
                t,
                watts: watts.max(0.0),
            });
            taken += 1;
            t += self.config.interval;
        }
        self.samples_taken += taken as u64;
        taken
    }

    /// All readings so far.
    #[must_use]
    pub fn readings(&self) -> &[Reading] {
        &self.readings
    }

    /// The most recent reading, if any.
    #[must_use]
    pub fn latest(&self) -> Option<Reading> {
        self.readings.last().copied()
    }

    /// Total samples taken (a telemetry-traffic proxy for Fig. 1 analysis).
    #[must_use]
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Samples lost to sensor dropout.
    #[must_use]
    pub fn dropouts(&self) -> u64 {
        self.dropouts
    }

    /// Stuck-at windows entered.
    #[must_use]
    pub fn stuck_windows(&self) -> u64 {
        self.stuck_windows
    }

    /// Age of the most recent reading at `now` — the staleness every
    /// consumer must check before trusting telemetry. `None` when no
    /// reading has ever arrived (infinitely stale).
    #[must_use]
    pub fn age_at(&self, now: SimTime) -> Option<SimDuration> {
        self.latest().map(|r| now.saturating_since(r.t))
    }

    /// True when the last reading is older than `bound` at `now` (or no
    /// reading exists). Consumers seeing `true` must degrade to static
    /// estimates instead of acting on stale data.
    #[must_use]
    pub fn stale_at(&self, now: SimTime, bound: SimDuration) -> bool {
        self.age_at(now)
            .is_none_or(|age| age.as_secs() > bound.as_secs())
    }

    /// Mean of readings in `[from, to]` — what a monitoring dashboard or a
    /// windowed control loop would report.
    #[must_use]
    pub fn observed_mean(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let xs: Vec<f64> = self
            .readings
            .iter()
            .filter(|r| r.t >= from && r.t <= to)
            .map(|r| r.watts)
            .collect();
        if xs.is_empty() {
            None
        } else {
            Some(xs.iter().sum::<f64>() / xs.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn noiseless() -> TelemetryConfig {
        TelemetryConfig {
            interval: SimDuration::from_secs(1.0),
            noise_fraction: 0.0,
            quantization_watts: 0.0,
            seed: 1,
        }
    }

    #[test]
    fn noiseless_sampling_reads_truth() {
        let mut trace = TimeSeries::new();
        trace.push(t(0.0), 100.0);
        trace.push(t(5.0), 250.0);
        let mut tel = Telemetry::new(noiseless()).unwrap();
        let n = tel.sample_trace(&trace, t(0.0), t(9.0));
        assert_eq!(n, 10);
        assert_eq!(tel.readings()[0].watts, 100.0);
        assert_eq!(tel.readings()[4].watts, 100.0);
        assert_eq!(tel.readings()[5].watts, 250.0);
        assert_eq!(tel.latest().unwrap().watts, 250.0);
    }

    #[test]
    fn quantization_rounds() {
        let mut cfg = noiseless();
        cfg.quantization_watts = 10.0;
        let mut trace = TimeSeries::new();
        trace.push(t(0.0), 104.9);
        let mut tel = Telemetry::new(cfg).unwrap();
        tel.sample_trace(&trace, t(0.0), t(0.0));
        assert_eq!(tel.readings()[0].watts, 100.0);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let mut trace = TimeSeries::new();
        trace.push(t(0.0), 200.0);
        let cfg = TelemetryConfig::default();
        let mut a = Telemetry::new(cfg.clone()).unwrap();
        let mut b = Telemetry::new(cfg).unwrap();
        a.sample_trace(&trace, t(0.0), t(10.0));
        b.sample_trace(&trace, t(0.0), t(10.0));
        assert_eq!(a.readings(), b.readings());
    }

    #[test]
    fn observed_mean_windows() {
        let mut trace = TimeSeries::new();
        trace.push(t(0.0), 100.0);
        let mut tel = Telemetry::new(noiseless()).unwrap();
        tel.sample_trace(&trace, t(0.0), t(9.0));
        assert_eq!(tel.observed_mean(t(0.0), t(9.0)), Some(100.0));
        assert_eq!(tel.observed_mean(t(100.0), t(200.0)), None);
    }

    #[test]
    fn coarse_interval_takes_fewer_samples() {
        let mut trace = TimeSeries::new();
        trace.push(t(0.0), 100.0);
        let mut cfg = noiseless();
        cfg.interval = SimDuration::from_secs(5.0);
        let mut tel = Telemetry::new(cfg).unwrap();
        let n = tel.sample_trace(&trace, t(0.0), t(60.0));
        assert_eq!(n, 13);
        assert_eq!(tel.samples_taken(), 13);
    }

    #[test]
    fn invalid_configs_rejected() {
        let cfg = TelemetryConfig {
            interval: SimDuration::ZERO,
            ..TelemetryConfig::default()
        };
        assert!(Telemetry::new(cfg).is_err());
        let cfg2 = TelemetryConfig {
            noise_fraction: -0.1,
            ..TelemetryConfig::default()
        };
        assert!(Telemetry::new(cfg2).is_err());
    }

    #[test]
    fn dropouts_skip_samples_and_age_grows() {
        let mut trace = TimeSeries::new();
        trace.push(t(0.0), 100.0);
        let faults = epa_faults::SensorFaultConfig {
            dropout_prob: 1.0,
            stuck_prob: 0.0,
            ..epa_faults::SensorFaultConfig::default()
        };
        let mut tel = Telemetry::with_faults(noiseless(), faults).unwrap();
        let n = tel.sample_trace(&trace, t(0.0), t(9.0));
        assert_eq!(n, 0, "every sample dropped");
        assert_eq!(tel.dropouts(), 10);
        assert_eq!(tel.age_at(t(9.0)), None);
        assert!(tel.stale_at(t(9.0), SimDuration::from_secs(5.0)));
    }

    #[test]
    fn stuck_sensor_reports_old_value_with_fresh_timestamps() {
        let mut trace = TimeSeries::new();
        trace.push(t(0.0), 100.0);
        trace.push(t(1.0), 500.0);
        let faults = epa_faults::SensorFaultConfig {
            dropout_prob: 0.0,
            stuck_prob: 1.0,
            stuck_duration: SimDuration::from_secs(100.0),
            ..epa_faults::SensorFaultConfig::default()
        };
        let mut tel = Telemetry::with_faults(noiseless(), faults).unwrap();
        tel.sample_trace(&trace, t(0.0), t(9.0));
        // The first sample starts a stuck window holding the first value;
        // later samples keep the stuck value despite the 500 W truth.
        assert_eq!(tel.stuck_windows(), 1);
        assert!(tel.readings().iter().all(|r| r.watts == 100.0));
        // Timestamps are fresh, so the reading is NOT stale — stuck-at is
        // the failure staleness bounds cannot catch.
        assert!(!tel.stale_at(t(9.0), SimDuration::from_secs(5.0)));
    }

    #[test]
    fn partial_dropout_is_deterministic_and_stale_detectable() {
        let mut trace = TimeSeries::new();
        trace.push(t(0.0), 100.0);
        let faults = epa_faults::SensorFaultConfig {
            dropout_prob: 0.5,
            stuck_prob: 0.0,
            ..epa_faults::SensorFaultConfig::default()
        };
        let run = || {
            let mut tel = Telemetry::with_faults(noiseless(), faults.clone()).unwrap();
            tel.sample_trace(&trace, t(0.0), t(99.0));
            (tel.readings().to_vec(), tel.dropouts())
        };
        let (a, da) = run();
        let (b, db) = run();
        assert_eq!(a, b);
        assert_eq!(da, db);
        assert!(da > 10 && da < 90, "≈50% dropout, got {da}");
        // Age right after a taken sample is small.
        let last = a.last().unwrap().t;
        assert_eq!(tel_age(&a, last), Some(SimDuration::ZERO));
    }

    fn tel_age(readings: &[Reading], now: SimTime) -> Option<SimDuration> {
        readings.last().map(|r| now.saturating_since(r.t))
    }

    #[test]
    fn faultless_pipeline_unchanged_by_fault_plumbing() {
        let mut trace = TimeSeries::new();
        trace.push(t(0.0), 200.0);
        let cfg = TelemetryConfig::default();
        let mut plain = Telemetry::new(cfg.clone()).unwrap();
        let faults = epa_faults::SensorFaultConfig {
            dropout_prob: 0.0,
            stuck_prob: 0.0,
            ..epa_faults::SensorFaultConfig::default()
        };
        let mut faulty = Telemetry::with_faults(cfg, faults).unwrap();
        plain.sample_trace(&trace, t(0.0), t(50.0));
        faulty.sample_trace(&trace, t(0.0), t(50.0));
        assert_eq!(plain.readings(), faulty.readings());
    }

    #[test]
    fn readings_never_negative() {
        let mut trace = TimeSeries::new();
        trace.push(t(0.0), 0.5);
        let cfg = TelemetryConfig {
            noise_fraction: 5.0, // extreme noise
            ..TelemetryConfig::default()
        };
        let mut tel = Telemetry::new(cfg).unwrap();
        tel.sample_trace(&trace, t(0.0), t(50.0));
        assert!(tel.readings().iter().all(|r| r.watts >= 0.0));
    }
}
