//! Data-center facility model: site budget, cooling, weather, supply.
//!
//! Survey question Q2(a)/(b) asks for total site power budget and cooling
//! capacity; several Table I/II capabilities live at this level:
//!
//! - RIKEN integrates job-scheduler information with the decision to draw
//!   from the **grid vs. its gas co-generation turbines** — modeled as two
//!   [`SupplySource`]s with capacities and per-MWh costs.
//! - LRZ links the scheduler to **IT infrastructure + cooling** and may
//!   delay jobs when the infrastructure is inefficient — modeled by a
//!   weather-driven PUE curve: facility draw = IT draw × PUE(T_outside).
//! - Tokyo Tech's **summer-only enforcement** and CINECA's MS3 ("do less
//!   when it's too hot") key off the same weather model.

use crate::error::PowerError;
use epa_simcore::rng::SimRng;
use epa_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// An electricity supply source with a capacity and a cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupplySource {
    /// Human-readable name ("grid", "gas turbine").
    pub name: String,
    /// Maximum deliverable power in watts.
    pub capacity_watts: f64,
    /// Cost per megawatt-hour in currency units.
    pub cost_per_mwh: f64,
}

/// Sinusoidal diurnal + seasonal outdoor temperature with deterministic
/// per-day jitter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeatherModel {
    /// Annual mean temperature, °C.
    pub mean_c: f64,
    /// Half the summer-to-winter swing, °C.
    pub seasonal_amplitude_c: f64,
    /// Half the day-to-night swing, °C.
    pub diurnal_amplitude_c: f64,
    /// Standard deviation of daily jitter, °C.
    pub noise_std_c: f64,
    /// Day-of-year (0-based) at which the simulation starts; lets a run
    /// start mid-summer (Tokyo Tech's enforcement season).
    pub start_day_of_year: u32,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for WeatherModel {
    fn default() -> Self {
        WeatherModel {
            mean_c: 15.0,
            seasonal_amplitude_c: 10.0,
            diurnal_amplitude_c: 5.0,
            noise_std_c: 1.5,
            start_day_of_year: 0,
            seed: 0x5eed,
        }
    }
}

impl WeatherModel {
    /// Outdoor temperature at simulation time `t`, °C.
    ///
    /// Deterministic in (model, t): the jitter is drawn from a per-day
    /// substream, so queries at any order reproduce the same trace.
    #[must_use]
    pub fn temperature_c(&self, t: SimTime) -> f64 {
        let day = f64::from(self.start_day_of_year) + t.as_days();
        // Seasonal: peak at day 172 (late June, northern hemisphere).
        let seasonal = self.seasonal_amplitude_c
            * (2.0 * std::f64::consts::PI * (day - 172.0 + 91.25) / 365.0).sin();
        // Diurnal: peak at 15:00.
        let hour = t.hour_of_day();
        let diurnal =
            self.diurnal_amplitude_c * (2.0 * std::f64::consts::PI * (hour - 9.0) / 24.0).sin();
        let mut jitter_rng = SimRng::new(self.seed).stream_indexed("weather-day", day as u64);
        let jitter = jitter_rng.normal(0.0, self.noise_std_c);
        self.mean_c + seasonal + diurnal + jitter
    }
}

/// Facility configuration: budget, cooling, supply, PUE curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FacilityConfig {
    /// Q2(a): total site power budget in watts (facility side).
    pub site_budget_watts: f64,
    /// Q2(b): total cooling capacity in watts of heat removal.
    pub cooling_capacity_watts: f64,
    /// PUE at the reference outdoor temperature.
    pub base_pue: f64,
    /// PUE increase per °C above the reference temperature (chillers work
    /// harder when it is hot; free cooling stops helping).
    pub pue_per_degree: f64,
    /// Reference temperature for `base_pue`, °C.
    pub reference_temp_c: f64,
    /// Electricity supply sources, ordered by preference (cheapest first).
    pub supplies: Vec<SupplySource>,
    /// Weather at the site.
    pub weather: WeatherModel,
}

impl FacilityConfig {
    /// A generic single-grid facility with a given budget.
    #[must_use]
    pub fn simple(site_budget_watts: f64) -> Self {
        FacilityConfig {
            site_budget_watts,
            cooling_capacity_watts: site_budget_watts,
            base_pue: 1.25,
            pue_per_degree: 0.008,
            reference_temp_c: 15.0,
            supplies: vec![SupplySource {
                name: "grid".into(),
                capacity_watts: site_budget_watts,
                cost_per_mwh: 80.0,
            }],
            weather: WeatherModel::default(),
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), PowerError> {
        if self.site_budget_watts <= 0.0 {
            return Err(PowerError::InvalidConfig(
                "site budget must be positive".into(),
            ));
        }
        if self.base_pue < 1.0 {
            return Err(PowerError::InvalidConfig(format!(
                "PUE cannot be below 1.0, got {}",
                self.base_pue
            )));
        }
        if self.supplies.is_empty() {
            return Err(PowerError::InvalidConfig(
                "at least one supply source required".into(),
            ));
        }
        for s in &self.supplies {
            if s.capacity_watts <= 0.0 {
                return Err(PowerError::InvalidConfig(format!(
                    "supply '{}' capacity must be positive",
                    s.name
                )));
            }
        }
        Ok(())
    }
}

/// A dispatch of facility load onto supply sources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupplyDispatch {
    /// Watts drawn from each source, same order as the config.
    pub draws_watts: Vec<f64>,
    /// Cost rate in currency units per hour.
    pub cost_per_hour: f64,
    /// Watts of demand that no source could cover (0 when feasible).
    pub shortfall_watts: f64,
}

/// The facility: answers "what does this IT load mean at the meter?".
#[derive(Debug, Clone)]
pub struct Facility {
    config: FacilityConfig,
}

impl Facility {
    /// Creates a facility from a validated config.
    pub fn new(config: FacilityConfig) -> Result<Self, PowerError> {
        config.validate()?;
        Ok(Facility { config })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &FacilityConfig {
        &self.config
    }

    /// Outdoor temperature at `t`.
    #[must_use]
    pub fn temperature_c(&self, t: SimTime) -> f64 {
        self.config.weather.temperature_c(t)
    }

    /// PUE at time `t` (weather dependent, floored at 1.0).
    #[must_use]
    pub fn pue(&self, t: SimTime) -> f64 {
        let temp = self.temperature_c(t);
        (self.config.base_pue + self.config.pue_per_degree * (temp - self.config.reference_temp_c))
            .max(1.0)
    }

    /// Facility-side draw (watts at the meter) for a given IT draw at `t`.
    #[must_use]
    pub fn facility_watts(&self, it_watts: f64, t: SimTime) -> f64 {
        it_watts * self.pue(t)
    }

    /// Headroom between the site budget and the facility draw implied by
    /// `it_watts` at time `t`. Negative when over budget.
    #[must_use]
    pub fn budget_headroom_watts(&self, it_watts: f64, t: SimTime) -> f64 {
        self.config.site_budget_watts - self.facility_watts(it_watts, t)
    }

    /// Maximum IT draw that keeps the facility inside its site budget and
    /// cooling capacity at time `t` — the number a power-aware scheduler
    /// treats as its system cap.
    #[must_use]
    pub fn max_it_watts(&self, t: SimTime) -> f64 {
        let by_budget = self.config.site_budget_watts / self.pue(t);
        // Cooling must remove all IT heat: cooling capacity bounds IT draw.
        by_budget.min(self.config.cooling_capacity_watts)
    }

    /// Dispatches a facility-side demand onto the supply sources in config
    /// order (cheapest-first by convention), reporting cost and shortfall.
    ///
    /// This is RIKEN's grid-vs-gas-turbine decision: the scheduler can ask
    /// "what would this load cost" and shift work accordingly.
    #[must_use]
    pub fn dispatch(&self, facility_watts: f64) -> SupplyDispatch {
        let mut remaining = facility_watts.max(0.0);
        let mut draws = Vec::with_capacity(self.config.supplies.len());
        let mut cost = 0.0;
        for s in &self.config.supplies {
            let take = remaining.min(s.capacity_watts);
            draws.push(take);
            // W → MW, × cost/MWh = cost/hour.
            cost += take / 1e6 * s.cost_per_mwh;
            remaining -= take;
        }
        SupplyDispatch {
            draws_watts: draws,
            cost_per_hour: cost,
            shortfall_watts: remaining,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_simcore::time::SimDuration;

    #[test]
    fn simple_config_validates() {
        Facility::new(FacilityConfig::simple(1e6)).unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = FacilityConfig::simple(1e6);
        c.base_pue = 0.9;
        assert!(Facility::new(c).is_err());
        let mut c2 = FacilityConfig::simple(1e6);
        c2.supplies.clear();
        assert!(Facility::new(c2).is_err());
        assert!(Facility::new(FacilityConfig::simple(-5.0)).is_err());
    }

    #[test]
    fn weather_is_deterministic() {
        let w = WeatherModel::default();
        let t = SimTime::from_hours(30.0);
        assert_eq!(w.temperature_c(t), w.temperature_c(t));
    }

    #[test]
    fn weather_summer_hotter_than_winter() {
        let w = WeatherModel {
            noise_std_c: 0.0,
            ..WeatherModel::default()
        };
        let summer = WeatherModel {
            start_day_of_year: 172,
            ..w.clone()
        };
        let winter = WeatherModel {
            start_day_of_year: 355,
            ..w
        };
        let noon = SimTime::from_hours(12.0);
        assert!(summer.temperature_c(noon) > winter.temperature_c(noon) + 5.0);
    }

    #[test]
    fn weather_afternoon_hotter_than_night() {
        let w = WeatherModel {
            noise_std_c: 0.0,
            ..WeatherModel::default()
        };
        let afternoon = SimTime::from_hours(15.0);
        let night = SimTime::from_hours(3.0);
        assert!(w.temperature_c(afternoon) > w.temperature_c(night));
    }

    #[test]
    fn pue_rises_with_heat_and_floors_at_one() {
        let mut config = FacilityConfig::simple(1e6);
        config.weather.noise_std_c = 0.0;
        config.weather.start_day_of_year = 172; // summer
        let f = Facility::new(config.clone()).unwrap();
        let hot = f.pue(SimTime::from_hours(15.0));
        config.weather.start_day_of_year = 355; // winter
        let f2 = Facility::new(config).unwrap();
        let cold = f2.pue(SimTime::from_hours(15.0));
        assert!(hot > cold);
        assert!(cold >= 1.0);
    }

    #[test]
    fn headroom_and_max_it_are_consistent() {
        let mut config = FacilityConfig::simple(1e6);
        config.weather.noise_std_c = 0.0;
        let f = Facility::new(config).unwrap();
        let t = SimTime::from_hours(12.0);
        let max_it = f.max_it_watts(t);
        assert!(f.budget_headroom_watts(max_it, t) >= -1e-6);
        assert!(f.budget_headroom_watts(max_it * 1.1, t) < 0.0);
    }

    #[test]
    fn cooling_capacity_binds_when_small() {
        let mut config = FacilityConfig::simple(1e6);
        config.cooling_capacity_watts = 100e3;
        let f = Facility::new(config).unwrap();
        assert!(f.max_it_watts(SimTime::ZERO) <= 100e3);
    }

    #[test]
    fn dispatch_prefers_first_source() {
        let mut config = FacilityConfig::simple(1e6);
        config.supplies = vec![
            SupplySource {
                name: "grid".into(),
                capacity_watts: 500e3,
                cost_per_mwh: 60.0,
            },
            SupplySource {
                name: "gas-turbine".into(),
                capacity_watts: 800e3,
                cost_per_mwh: 110.0,
            },
        ];
        let f = Facility::new(config).unwrap();
        let d = f.dispatch(700e3);
        assert!((d.draws_watts[0] - 500e3).abs() < 1e-6);
        assert!((d.draws_watts[1] - 200e3).abs() < 1e-6);
        assert_eq!(d.shortfall_watts, 0.0);
        let expected_cost = 0.5 * 60.0 + 0.2 * 110.0;
        assert!((d.cost_per_hour - expected_cost).abs() < 1e-9);
    }

    #[test]
    fn dispatch_reports_shortfall() {
        let f = Facility::new(FacilityConfig::simple(1e6)).unwrap();
        let d = f.dispatch(2e6);
        assert!((d.shortfall_watts - 1e6).abs() < 1e-6);
    }

    #[test]
    fn dispatch_negative_demand_is_zero() {
        let f = Facility::new(FacilityConfig::simple(1e6)).unwrap();
        let d = f.dispatch(-100.0);
        assert_eq!(d.draws_watts[0], 0.0);
        assert_eq!(d.cost_per_hour, 0.0);
    }

    #[test]
    fn temperature_continuity_across_days() {
        // No giant jumps from the jitter stream across day boundaries.
        let w = WeatherModel {
            noise_std_c: 0.5,
            ..WeatherModel::default()
        };
        let mut t = SimTime::ZERO;
        let mut prev = w.temperature_c(t);
        for _ in 0..48 {
            t += SimDuration::from_hours(1.0);
            let cur = w.temperature_c(t);
            assert!((cur - prev).abs() < 8.0, "jump {} -> {}", prev, cur);
            prev = cur;
        }
    }
}
