//! Hierarchical power-budget ledger.
//!
//! Power-aware schedulers reason about power the way ordinary schedulers
//! reason about nodes: a fixed system budget is granted to jobs and
//! reclaimed when they finish (Bodas et al., Ellsworth et al., Borghesi's
//! power-capping CP model — all cited by the survey). The ledger enforces
//! the single invariant everything else relies on: **granted power never
//! exceeds the budget** (property-tested).
//!
//! Budgets can be re-sized at runtime (Tokyo Tech's seasonal caps, RIKEN's
//! emergency reductions); shrinking below the currently-granted amount
//! leaves the ledger temporarily over-committed, which callers detect via
//! [`PowerBudget::overcommitted_watts`] and resolve by killing or
//! throttling jobs.

use crate::error::PowerError;
use epa_obs::{TraceBus, TraceCategory, TraceEvent};
use epa_simcore::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier for a power grant (usually a job id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct GrantId(pub u64);

/// A fixed-size power budget with named grants.
#[derive(Debug, Clone)]
pub struct PowerBudget {
    total_watts: f64,
    grants: BTreeMap<GrantId, f64>,
    granted_watts: f64,
    peak_granted_watts: f64,
    rejections: u64,
}

impl PowerBudget {
    /// Creates a budget of `total_watts`.
    pub fn new(total_watts: f64) -> Result<Self, PowerError> {
        if !total_watts.is_finite() || total_watts <= 0.0 {
            return Err(PowerError::InvalidConfig(format!(
                "budget must be positive and finite, got {total_watts}"
            )));
        }
        Ok(PowerBudget {
            total_watts,
            grants: BTreeMap::new(),
            granted_watts: 0.0,
            peak_granted_watts: 0.0,
            rejections: 0,
        })
    }

    /// The budget size in watts.
    #[must_use]
    pub fn total_watts(&self) -> f64 {
        self.total_watts
    }

    /// Currently granted watts.
    #[must_use]
    pub fn granted_watts(&self) -> f64 {
        self.granted_watts
    }

    /// Remaining headroom in watts (0 when over-committed).
    #[must_use]
    pub fn headroom_watts(&self) -> f64 {
        (self.total_watts - self.granted_watts).max(0.0)
    }

    /// Watts granted beyond the budget (only after a shrink), else 0.
    #[must_use]
    pub fn overcommitted_watts(&self) -> f64 {
        (self.granted_watts - self.total_watts).max(0.0)
    }

    /// Highest granted total ever observed.
    #[must_use]
    pub fn peak_granted_watts(&self) -> f64 {
        self.peak_granted_watts
    }

    /// Number of grant requests refused for lack of headroom.
    #[must_use]
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Number of live grants.
    #[must_use]
    pub fn active_grants(&self) -> usize {
        self.grants.len()
    }

    /// The wattage of one grant, if live.
    #[must_use]
    pub fn grant_watts(&self, id: GrantId) -> Option<f64> {
        self.grants.get(&id).copied()
    }

    /// Iterates over live grants (ascending id).
    pub fn grants(&self) -> impl Iterator<Item = (GrantId, f64)> + '_ {
        self.grants.iter().map(|(&id, &w)| (id, w))
    }

    /// Requests `watts` for `id`. Fails without mutation if the headroom is
    /// insufficient or the id already holds a grant.
    pub fn request(&mut self, id: GrantId, watts: f64) -> Result<(), PowerError> {
        if !watts.is_finite() || watts < 0.0 {
            return Err(PowerError::InvalidConfig(format!(
                "grant must be non-negative and finite, got {watts}"
            )));
        }
        if self.grants.contains_key(&id) {
            return Err(PowerError::DuplicateGrant(id.0));
        }
        if self.granted_watts + watts > self.total_watts + 1e-9 {
            self.rejections += 1;
            return Err(PowerError::BudgetExceeded {
                requested: watts,
                headroom: self.headroom_watts(),
            });
        }
        self.grants.insert(id, watts);
        self.granted_watts += watts;
        self.peak_granted_watts = self.peak_granted_watts.max(self.granted_watts);
        Ok(())
    }

    /// Releases the grant held by `id`, returning its watts.
    pub fn release(&mut self, id: GrantId) -> Result<f64, PowerError> {
        match self.grants.remove(&id) {
            Some(w) => {
                self.granted_watts -= w;
                if self.granted_watts < 0.0 {
                    self.granted_watts = 0.0;
                }
                Ok(w)
            }
            None => Err(PowerError::UnknownGrant(id.0)),
        }
    }

    /// Adjusts a live grant to a new wattage (dynamic power sharing —
    /// Ellsworth). Fails if growing beyond the headroom.
    pub fn adjust(&mut self, id: GrantId, new_watts: f64) -> Result<(), PowerError> {
        if !new_watts.is_finite() || new_watts < 0.0 {
            return Err(PowerError::InvalidConfig(format!(
                "grant must be non-negative and finite, got {new_watts}"
            )));
        }
        let Some(&old) = self.grants.get(&id) else {
            return Err(PowerError::UnknownGrant(id.0));
        };
        let delta = new_watts - old;
        if delta > 0.0 && self.granted_watts + delta > self.total_watts + 1e-9 {
            self.rejections += 1;
            return Err(PowerError::BudgetExceeded {
                requested: delta,
                headroom: self.headroom_watts(),
            });
        }
        self.grants.insert(id, new_watts);
        self.granted_watts += delta;
        self.peak_granted_watts = self.peak_granted_watts.max(self.granted_watts);
        Ok(())
    }

    /// Resizes the budget. Shrinking below the granted total is allowed and
    /// leaves the ledger over-committed (see module docs).
    pub fn resize(&mut self, new_total_watts: f64) -> Result<(), PowerError> {
        if !new_total_watts.is_finite() || new_total_watts <= 0.0 {
            return Err(PowerError::InvalidConfig(format!(
                "budget must be positive and finite, got {new_total_watts}"
            )));
        }
        self.total_watts = new_total_watts;
        Ok(())
    }

    /// Encodes the full ledger — grants, running totals, high-water mark,
    /// rejection count — bit-exactly.
    pub fn snapshot_into(&self, w: &mut epa_simcore::snap::SnapWriter) {
        w.f64(self.total_watts);
        let grants: Vec<(u64, f64)> = self.grants.iter().map(|(&id, &g)| (id.0, g)).collect();
        w.seq(&grants, |w, &(id, g)| {
            w.u64(id);
            w.f64(g);
        });
        w.f64(self.granted_watts);
        w.f64(self.peak_granted_watts);
        w.u64(self.rejections);
    }

    /// Decodes a ledger written by [`PowerBudget::snapshot_into`].
    pub fn restore_from(
        r: &mut epa_simcore::snap::SnapReader<'_>,
    ) -> Result<Self, epa_simcore::snap::SnapshotError> {
        let total_watts = r.f64()?;
        let grants: BTreeMap<GrantId, f64> = r
            .seq(|r| Ok((GrantId(r.u64()?), r.f64()?)))?
            .into_iter()
            .collect();
        let granted_watts = r.f64()?;
        let peak_granted_watts = r.f64()?;
        let rejections = r.u64()?;
        Ok(PowerBudget {
            total_watts,
            grants,
            granted_watts,
            peak_granted_watts,
            rejections,
        })
    }

    /// [`PowerBudget::request`] with decision tracing: the grant or denial
    /// is recorded on `bus` (one bitset branch when the `Budget` category
    /// is masked off). Semantics are identical to the untraced call.
    pub fn request_traced(
        &mut self,
        id: GrantId,
        watts: f64,
        t: SimTime,
        bus: &mut TraceBus,
    ) -> Result<(), PowerError> {
        let result = self.request(id, watts);
        if bus.enabled(TraceCategory::Budget) {
            let headroom_watts = self.headroom_watts();
            bus.record(
                t,
                match result {
                    Ok(()) => TraceEvent::BudgetGrant {
                        grant: id.0,
                        watts,
                        headroom_watts,
                    },
                    Err(_) => TraceEvent::BudgetDenied {
                        grant: id.0,
                        watts,
                        headroom_watts,
                    },
                },
            );
        }
        result
    }

    /// [`PowerBudget::release`] with decision tracing (successful releases
    /// only; releasing an unknown grant is an error, not a decision).
    pub fn release_traced(
        &mut self,
        id: GrantId,
        t: SimTime,
        bus: &mut TraceBus,
    ) -> Result<f64, PowerError> {
        let result = self.release(id);
        if let Ok(watts) = result {
            if bus.enabled(TraceCategory::Budget) {
                bus.record(t, TraceEvent::BudgetRelease { grant: id.0, watts });
            }
        }
        result
    }

    /// [`PowerBudget::resize`] with decision tracing: every attempt is
    /// recorded with whether it was accepted (demand-response audit).
    pub fn resize_traced(
        &mut self,
        new_total_watts: f64,
        t: SimTime,
        bus: &mut TraceBus,
    ) -> Result<(), PowerError> {
        let result = self.resize(new_total_watts);
        if bus.enabled(TraceCategory::Budget) {
            bus.record(
                t,
                TraceEvent::BudgetResize {
                    total_watts: new_total_watts,
                    ok: result.is_ok(),
                },
            );
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u64) -> GrantId {
        GrantId(i)
    }

    #[test]
    fn grants_and_releases_balance() {
        let mut b = PowerBudget::new(1000.0).unwrap();
        b.request(g(1), 400.0).unwrap();
        b.request(g(2), 500.0).unwrap();
        assert_eq!(b.granted_watts(), 900.0);
        assert!((b.headroom_watts() - 100.0).abs() < 1e-9);
        assert_eq!(b.release(g(1)).unwrap(), 400.0);
        assert_eq!(b.granted_watts(), 500.0);
        assert_eq!(b.active_grants(), 1);
    }

    #[test]
    fn over_budget_request_rejected() {
        let mut b = PowerBudget::new(1000.0).unwrap();
        b.request(g(1), 900.0).unwrap();
        let err = b.request(g(2), 200.0).unwrap_err();
        assert!(matches!(err, PowerError::BudgetExceeded { .. }));
        assert_eq!(b.rejections(), 1);
        assert_eq!(b.granted_watts(), 900.0);
    }

    #[test]
    fn duplicate_grant_rejected() {
        let mut b = PowerBudget::new(1000.0).unwrap();
        b.request(g(1), 100.0).unwrap();
        assert!(matches!(
            b.request(g(1), 100.0),
            Err(PowerError::DuplicateGrant(1))
        ));
    }

    #[test]
    fn unknown_release_rejected() {
        let mut b = PowerBudget::new(1000.0).unwrap();
        assert!(matches!(b.release(g(9)), Err(PowerError::UnknownGrant(9))));
    }

    #[test]
    fn adjust_grows_and_shrinks() {
        let mut b = PowerBudget::new(1000.0).unwrap();
        b.request(g(1), 400.0).unwrap();
        b.adjust(g(1), 800.0).unwrap();
        assert_eq!(b.granted_watts(), 800.0);
        b.adjust(g(1), 100.0).unwrap();
        assert_eq!(b.granted_watts(), 100.0);
        assert!(b.adjust(g(1), 1100.0).is_err());
        assert_eq!(b.grant_watts(g(1)), Some(100.0));
    }

    #[test]
    fn shrink_creates_overcommit() {
        let mut b = PowerBudget::new(1000.0).unwrap();
        b.request(g(1), 900.0).unwrap();
        b.resize(600.0).unwrap();
        assert!((b.overcommitted_watts() - 300.0).abs() < 1e-9);
        assert_eq!(b.headroom_watts(), 0.0);
        // Releasing resolves the overcommit.
        b.release(g(1)).unwrap();
        assert_eq!(b.overcommitted_watts(), 0.0);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut b = PowerBudget::new(1000.0).unwrap();
        b.request(g(1), 700.0).unwrap();
        b.release(g(1)).unwrap();
        b.request(g(2), 300.0).unwrap();
        assert_eq!(b.peak_granted_watts(), 700.0);
    }

    #[test]
    fn zero_watt_grant_allowed() {
        let mut b = PowerBudget::new(100.0).unwrap();
        b.request(g(1), 0.0).unwrap();
        assert_eq!(b.granted_watts(), 0.0);
    }

    #[test]
    fn traced_ops_record_grant_denial_release_resize() {
        use epa_obs::{CategoryMask, TraceBus, TraceEvent};
        let t0 = epa_simcore::time::SimTime::from_secs(5.0);
        let mut bus = TraceBus::new(CategoryMask::ALL, 64);
        let mut b = PowerBudget::new(1000.0).unwrap();
        b.request_traced(g(1), 900.0, t0, &mut bus).unwrap();
        assert!(b.request_traced(g(2), 200.0, t0, &mut bus).is_err());
        b.release_traced(g(1), t0, &mut bus).unwrap();
        assert!(b.release_traced(g(9), t0, &mut bus).is_err());
        b.resize_traced(500.0, t0, &mut bus).unwrap();
        let events: Vec<&TraceEvent> = bus.iter().map(|r| &r.event).collect();
        assert!(matches!(
            events[0],
            TraceEvent::BudgetGrant { grant: 1, .. }
        ));
        assert!(matches!(
            events[1],
            TraceEvent::BudgetDenied { grant: 2, .. }
        ));
        assert!(
            matches!(events[2], TraceEvent::BudgetRelease { grant: 1, watts } if *watts == 900.0)
        );
        // The failed release recorded nothing; the resize comes next.
        assert!(matches!(
            events[3],
            TraceEvent::BudgetResize { ok: true, .. }
        ));
        assert_eq!(events.len(), 4);

        // A masked bus records nothing and changes no semantics.
        let mut off = TraceBus::disabled();
        let mut b2 = PowerBudget::new(1000.0).unwrap();
        b2.request_traced(g(1), 900.0, t0, &mut off).unwrap();
        assert!(off.is_empty());
        assert_eq!(b2.granted_watts(), 900.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(PowerBudget::new(0.0).is_err());
        assert!(PowerBudget::new(f64::INFINITY).is_err());
        let mut b = PowerBudget::new(100.0).unwrap();
        assert!(b.request(g(1), f64::NAN).is_err());
        assert!(b.request(g(1), -5.0).is_err());
        assert!(b.resize(-1.0).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Request(u64, f64),
        Release(u64),
        Adjust(u64, f64),
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec(
            prop_oneof![
                ((0u64..16), (0.0f64..600.0)).prop_map(|(i, w)| Op::Request(i, w)),
                (0u64..16).prop_map(Op::Release),
                ((0u64..16), (0.0f64..600.0)).prop_map(|(i, w)| Op::Adjust(i, w)),
            ],
            1..120,
        )
    }

    proptest! {
        /// Without resizes, granted power never exceeds the budget, and the
        /// ledger total always equals the sum of live grants.
        #[test]
        fn never_over_budget(ops in arb_ops()) {
            let mut b = PowerBudget::new(1000.0).unwrap();
            for op in ops {
                match op {
                    Op::Request(i, w) => { let _ = b.request(GrantId(i), w); }
                    Op::Release(i) => { let _ = b.release(GrantId(i)); }
                    Op::Adjust(i, w) => { let _ = b.adjust(GrantId(i), w); }
                }
                prop_assert!(b.granted_watts() <= b.total_watts() + 1e-6);
                let sum: f64 = b.grants().map(|(_, w)| w).sum();
                prop_assert!((sum - b.granted_watts()).abs() < 1e-6);
            }
        }
    }
}
