//! Exact energy metering.
//!
//! Every node's power draw is a step function of time; the meter stores
//! those steps and integrates them exactly. The core invariant — metered
//! energy equals the analytic integral of the recorded power trace — is
//! property-tested here and is the foundation of every energy number the
//! framework reports (Q7 results, post-job user energy reports, E1–E10).

use epa_cluster::node::NodeId;
use epa_simcore::series::TimeSeries;
use epa_simcore::time::SimTime;

/// How many incremental updates may accumulate before `system_watts` is
/// recomputed from the per-node values. Long runs make millions of
/// `+= new - old` updates whose float cancellation slowly drifts the
/// running sum; a periodic O(nodes) resync bounds that drift without
/// measurable cost (it amortizes to one add per update).
const RESYNC_INTERVAL: u32 = 4096;

/// Per-node and system-wide energy meter.
///
/// Node traces live in a dense `Vec` indexed by [`NodeId`] — node ids in
/// a cluster are contiguous, so this replaces every `BTreeMap` lookup on
/// the metering hot path with direct indexing.
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    /// Indexed by `NodeId.0`; grown on first write to a node.
    node_traces: Vec<TimeSeries>,
    system_watts: f64,
    system_trace: TimeSeries,
    updates_since_resync: u32,
}

impl EnergyMeter {
    /// Creates an empty meter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn trace_mut(&mut self, node: NodeId) -> &mut TimeSeries {
        let idx = node.0 as usize;
        if idx >= self.node_traces.len() {
            self.node_traces.resize_with(idx + 1, TimeSeries::new);
        }
        &mut self.node_traces[idx]
    }

    /// Applies one node update, returning the change in system draw.
    fn apply_node(&mut self, node: NodeId, t: SimTime, watts: f64) -> f64 {
        debug_assert!(watts >= 0.0, "negative power draw");
        let trace = self.trace_mut(node);
        let prev = trace.last().map_or(0.0, |(_, w)| w);
        trace.push(t, watts);
        watts - prev
    }

    /// Folds a system-draw delta into the running sum, resyncing from the
    /// per-node values periodically to cancel accumulated float drift.
    fn commit_delta(&mut self, delta: f64, batch: u32) {
        self.system_watts += delta;
        self.updates_since_resync += batch;
        if self.updates_since_resync >= RESYNC_INTERVAL {
            self.updates_since_resync = 0;
            self.system_watts = self
                .node_traces
                .iter()
                .filter_map(TimeSeries::last)
                .map(|(_, w)| w)
                .sum();
        }
        // Guard tiny negative residue from float cancellation.
        if self.system_watts < 0.0 && self.system_watts > -1e-6 {
            self.system_watts = 0.0;
        }
    }

    /// Records that `node` draws `watts` from time `t` onward.
    ///
    /// Maintains the system-level trace incrementally: the system draw is
    /// the sum of all node draws, updated at each change point.
    pub fn set_node_watts(&mut self, node: NodeId, t: SimTime, watts: f64) {
        let delta = self.apply_node(node, t, watts);
        self.commit_delta(delta, 1);
        self.system_trace.push(t, self.system_watts);
    }

    /// Records that every node in `nodes` draws `watts` from time `t`
    /// onward — one allocation-wide power step (job start, phase change,
    /// batch idle/off transition).
    ///
    /// Equivalent to calling [`set_node_watts`](Self::set_node_watts) per
    /// node (equal-time pushes to the system trace collapse to its final
    /// value), but folds the whole batch into one system-trace update.
    pub fn set_alloc_watts(&mut self, nodes: &[NodeId], t: SimTime, watts: f64) {
        if nodes.is_empty() {
            return;
        }
        let mut delta = 0.0;
        for &n in nodes {
            delta += self.apply_node(n, t, watts);
        }
        self.commit_delta(delta, nodes.len() as u32);
        self.system_trace.push(t, self.system_watts);
    }

    /// Current draw of one node in watts (0 if never recorded).
    #[must_use]
    pub fn node_watts(&self, node: NodeId) -> f64 {
        self.node_traces
            .get(node.0 as usize)
            .and_then(TimeSeries::last)
            .map_or(0.0, |(_, w)| w)
    }

    /// Current system draw in watts.
    #[must_use]
    pub fn system_watts(&self) -> f64 {
        self.system_watts
    }

    /// Energy consumed by one node over `[a, b]`, joules.
    #[must_use]
    pub fn node_energy_joules(&self, node: NodeId, a: SimTime, b: SimTime) -> f64 {
        self.node_traces
            .get(node.0 as usize)
            .map_or(0.0, |tr| tr.integrate(a, b))
    }

    /// System energy over `[a, b]`, joules.
    #[must_use]
    pub fn system_energy_joules(&self, a: SimTime, b: SimTime) -> f64 {
        self.system_trace.integrate(a, b)
    }

    /// Energy of a *job*: the sum over its nodes of each node's energy
    /// during the job's execution window. This is the number Tokyo Tech
    /// and JCAHPC hand users at the end of every job.
    #[must_use]
    pub fn allocation_energy_joules(&self, nodes: &[NodeId], start: SimTime, end: SimTime) -> f64 {
        nodes
            .iter()
            .map(|&n| self.node_energy_joules(n, start, end))
            .sum()
    }

    /// The system power trace (for telemetry, peak analysis, reports).
    #[must_use]
    pub fn system_trace(&self) -> &TimeSeries {
        &self.system_trace
    }

    /// The trace of one node, if recorded.
    #[must_use]
    pub fn node_trace(&self, node: NodeId) -> Option<&TimeSeries> {
        self.node_traces
            .get(node.0 as usize)
            .filter(|tr| !tr.is_empty())
    }

    /// Peak system draw on `[a, b]`, watts.
    #[must_use]
    pub fn peak_system_watts(&self, a: SimTime, b: SimTime) -> f64 {
        self.system_trace.max_on(a, b).unwrap_or(0.0)
    }

    /// Average system draw on `[a, b]`, watts.
    #[must_use]
    pub fn avg_system_watts(&self, a: SimTime, b: SimTime) -> f64 {
        self.system_trace.time_weighted_mean(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn single_node_energy() {
        let mut m = EnergyMeter::new();
        m.set_node_watts(n(0), t(0.0), 100.0);
        m.set_node_watts(n(0), t(10.0), 200.0);
        assert!((m.node_energy_joules(n(0), t(0.0), t(20.0)) - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn system_tracks_sum_of_nodes() {
        let mut m = EnergyMeter::new();
        m.set_node_watts(n(0), t(0.0), 100.0);
        m.set_node_watts(n(1), t(0.0), 50.0);
        assert_eq!(m.system_watts(), 150.0);
        m.set_node_watts(n(0), t(5.0), 20.0);
        assert_eq!(m.system_watts(), 70.0);
        // System energy: [0,5) at 150 + [5,10) at 70.
        assert!((m.system_energy_joules(t(0.0), t(10.0)) - (750.0 + 350.0)).abs() < 1e-9);
    }

    #[test]
    fn allocation_energy_sums_member_nodes() {
        let mut m = EnergyMeter::new();
        m.set_node_watts(n(0), t(0.0), 100.0);
        m.set_node_watts(n(1), t(0.0), 100.0);
        m.set_node_watts(n(2), t(0.0), 999.0); // not in the job
        let e = m.allocation_energy_joules(&[n(0), n(1)], t(0.0), t(10.0));
        assert!((e - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn peak_and_average() {
        let mut m = EnergyMeter::new();
        m.set_node_watts(n(0), t(0.0), 100.0);
        m.set_node_watts(n(0), t(10.0), 300.0);
        m.set_node_watts(n(0), t(20.0), 100.0);
        assert_eq!(m.peak_system_watts(t(0.0), t(30.0)), 300.0);
        let avg = m.avg_system_watts(t(0.0), t(30.0));
        assert!((avg - (100.0 * 10.0 + 300.0 * 10.0 + 100.0 * 10.0) / 30.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_node_reads_zero() {
        let m = EnergyMeter::new();
        assert_eq!(m.node_watts(n(9)), 0.0);
        assert_eq!(m.node_energy_joules(n(9), t(0.0), t(10.0)), 0.0);
        assert!(m.node_trace(n(9)).is_none());
    }

    #[test]
    fn batched_update_equals_sequential() {
        let nodes = [n(0), n(1), n(2), n(3)];
        let mut batched = EnergyMeter::new();
        let mut sequential = EnergyMeter::new();
        batched.set_alloc_watts(&nodes, t(0.0), 100.0);
        batched.set_alloc_watts(&nodes[..2], t(10.0), 250.0);
        for &nd in &nodes {
            sequential.set_node_watts(nd, t(0.0), 100.0);
        }
        for &nd in &nodes[..2] {
            sequential.set_node_watts(nd, t(10.0), 250.0);
        }
        assert_eq!(batched.system_watts(), sequential.system_watts());
        let (a, b) = (t(0.0), t(20.0));
        assert!(
            (batched.system_energy_joules(a, b) - sequential.system_energy_joules(a, b)).abs()
                < 1e-9
        );
        for &nd in &nodes {
            assert_eq!(
                batched.node_energy_joules(nd, a, b),
                sequential.node_energy_joules(nd, a, b)
            );
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut m = EnergyMeter::new();
        m.set_alloc_watts(&[], t(0.0), 100.0);
        assert_eq!(m.system_watts(), 0.0);
        assert!(m.system_trace().is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Energy conservation: the system energy over the full horizon
        /// equals the sum of per-node energies, for arbitrary update
        /// sequences.
        #[test]
        fn system_energy_equals_node_sum(
            updates in proptest::collection::vec(
                (0u32..6, 0.1f64..50.0, 0.0f64..400.0), 1..80),
        ) {
            let mut m = EnergyMeter::new();
            let mut clock = 0.0;
            for (node, dt, w) in &updates {
                m.set_node_watts(NodeId(*node), SimTime::from_secs(clock), *w);
                clock += dt;
            }
            let end = SimTime::from_secs(clock + 10.0);
            let sys = m.system_energy_joules(SimTime::ZERO, end);
            let node_sum: f64 = (0..6)
                .map(|i| m.node_energy_joules(NodeId(i), SimTime::ZERO, end))
                .sum();
            prop_assert!((sys - node_sum).abs() < 1e-6 * (1.0 + sys.abs()),
                "system {} != node sum {}", sys, node_sum);
        }

        /// The incrementally-maintained system wattage equals the sum of
        /// the latest per-node values.
        #[test]
        fn incremental_sum_correct(
            updates in proptest::collection::vec((0u32..8, 0.0f64..500.0), 1..100),
        ) {
            let mut m = EnergyMeter::new();
            let mut latest = [0.0f64; 8];
            for (i, (node, w)) in updates.iter().enumerate() {
                m.set_node_watts(NodeId(*node), SimTime::from_secs(i as f64), *w);
                latest[*node as usize] = *w;
            }
            let expect: f64 = latest.iter().sum();
            prop_assert!((m.system_watts() - expect).abs() < 1e-6);
        }

        /// Long-horizon drift: after 10k updates the running system sum
        /// must still match the per-node values exactly (the periodic
        /// resync crosses RESYNC_INTERVAL twice in this sequence, so this
        /// exercises the resync path, not just incremental accumulation).
        #[test]
        fn incremental_sum_correct_long_horizon(
            seed_updates in proptest::collection::vec((0u32..16, 0.0f64..500.0), 32),
        ) {
            let mut m = EnergyMeter::new();
            let mut latest = [0.0f64; 16];
            let mut k = 0usize;
            // Tile the 32 generated updates into a 10_000-step sequence
            // with per-step perturbed wattages.
            for rep in 0..10_000usize / seed_updates.len() + 1 {
                for (node, w) in &seed_updates {
                    if k >= 10_000 { break; }
                    let w = w + (rep as f64) * 1e-3;
                    m.set_node_watts(NodeId(*node), SimTime::from_secs(k as f64), w);
                    latest[*node as usize] = w;
                    k += 1;
                }
            }
            let expect: f64 = latest.iter().sum();
            prop_assert!(
                (m.system_watts() - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                "drift after {} updates: {} vs {}", k, m.system_watts(), expect
            );
        }

        /// Batched `set_alloc_watts` is observationally identical to the
        /// per-node loop: same system wattage, same energies.
        #[test]
        fn batched_matches_per_node_loop(
            batches in proptest::collection::vec(
                // (node-subset bitmask, watts) per batch step
                (1u32..256, 0.0f64..400.0), 1..60),
        ) {
            let mut batched = EnergyMeter::new();
            let mut sequential = EnergyMeter::new();
            for (i, (mask, w)) in batches.iter().enumerate() {
                let t = SimTime::from_secs(i as f64 * 3.0);
                let nodes: Vec<NodeId> =
                    (0..8).filter(|b| mask & (1 << b) != 0).map(NodeId).collect();
                batched.set_alloc_watts(&nodes, t, *w);
                for &nd in &nodes {
                    sequential.set_node_watts(nd, t, *w);
                }
            }
            prop_assert!((batched.system_watts() - sequential.system_watts()).abs() < 1e-9);
            let end = SimTime::from_secs(batches.len() as f64 * 3.0 + 5.0);
            let (eb, es) = (
                batched.system_energy_joules(SimTime::ZERO, end),
                sequential.system_energy_joules(SimTime::ZERO, end),
            );
            prop_assert!((eb - es).abs() < 1e-6 * (1.0 + es.abs()), "{} vs {}", eb, es);
            for nd in (0..8).map(NodeId) {
                let (nb, ns) = (
                    batched.node_energy_joules(nd, SimTime::ZERO, end),
                    sequential.node_energy_joules(nd, SimTime::ZERO, end),
                );
                prop_assert!((nb - ns).abs() < 1e-9 * (1.0 + ns.abs()));
            }
        }
    }
}
