//! Exact energy metering.
//!
//! Every node's power draw is a step function of time; the meter
//! integrates those steps exactly — but instead of storing a full
//! `TimeSeries` per node (a push per change point, a binary search per
//! query), each node carries just three words: its current draw, the time
//! that draw started, and the energy accumulated before that moment.
//! Updates and point-in-time energy queries are O(1), so metering cost per
//! scheduler event depends only on nodes *touched*, not cluster size.
//! The core invariant — metered energy equals the analytic integral of
//! the recorded power steps — is property-tested here and is the
//! foundation of every energy number the framework reports (Q7 results,
//! post-job user energy reports, E1–E10).
//!
//! Job energy is measured by *marking*: record `alloc_energy_to(nodes,
//! start)` when the job starts and subtract it from `alloc_energy_to(
//! nodes, end)` when it completes. Queries must be at-or-after the last
//! update of each node involved (simulation time is monotone, so this
//! holds by construction); historical window queries remain available at
//! the system level through the retained system trace.

use epa_cluster::node::NodeId;
use epa_simcore::series::{BoundedSeries, TimeSeries};
use epa_simcore::time::{SimDuration, SimTime};

/// How many incremental updates may accumulate before `system_watts` is
/// recomputed from the per-node values. Long runs make millions of
/// `+= new - old` updates whose float cancellation slowly drifts the
/// running sum; a periodic O(nodes) resync bounds that drift without
/// measurable cost (it amortizes to one add per update).
const RESYNC_INTERVAL: u32 = 4096;

/// Sentinel for "this node is not in any allocation group".
const NO_GROUP: u32 = u32::MAX;

/// Per-node metering state: current draw, when it started, and energy
/// accumulated before that moment. One struct per node keeps all fields
/// on the same cache line — updates and queries touch exactly one line
/// per node. While `group != NO_GROUP` the node's live draw and recent
/// energy are carried by the group instead: `watts` holds the draw at
/// group-open time and `acc`/`since` are frozen at that instant.
#[derive(Debug, Clone, Copy)]
struct NodeAccum {
    watts: f64,
    since: SimTime,
    acc: f64,
    group: u32,
}

impl Default for NodeAccum {
    fn default() -> Self {
        NodeAccum {
            watts: 0.0,
            since: SimTime::ZERO,
            acc: 0.0,
            group: NO_GROUP,
        }
    }
}

/// Handle to an open allocation group (a running job's node set drawing
/// one uniform wattage). Returned by [`EnergyMeter::open_group`] and
/// consumed by [`EnergyMeter::close_group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupId(u32);

impl GroupId {
    /// The raw slot index, for snapshot encoding.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a handle from a snapshot-encoded raw slot index. Only
    /// valid for indices previously obtained from [`GroupId::raw`] against
    /// the same (restored) meter.
    #[must_use]
    pub fn from_raw(raw: u32) -> Self {
        GroupId(raw)
    }
}

/// Shared metering state for one allocation drawing a uniform per-node
/// wattage: a job's whole node set steps power together at every phase
/// change, so one `(watts, since, acc)` triple serves the entire group
/// and a phase change is O(1) instead of O(allocation size).
#[derive(Debug, Clone, Copy)]
struct AllocGroup {
    /// Current uniform per-node draw.
    watts: f64,
    /// When that draw started.
    since: SimTime,
    /// Energy accrued *per member node* since the group opened, through
    /// `since` (identical for every member — the draw is uniform).
    acc_per_node: f64,
    /// Member count (for the system-draw delta and resync).
    members: u32,
    in_use: bool,
}

/// Storage backing the system-level power trace: either the full
/// change-point [`TimeSeries`] (every historical window query available)
/// or a [`BoundedSeries`] whose memory is O(horizon / grid interval)
/// regardless of how many power steps the run makes — the million-job
/// streaming mode. Bounded mode answers the whole-run queries the engine
/// actually issues (`[0, end]` energy, peak, average, and the fixed-grid
/// resample) bit-identically to the full series.
#[derive(Debug, Clone)]
enum TraceStore {
    Full(TimeSeries),
    Bounded(BoundedSeries),
}

impl TraceStore {
    fn push(&mut self, t: SimTime, v: f64) {
        match self {
            TraceStore::Full(s) => s.push(t, v),
            TraceStore::Bounded(s) => s.push(t, v),
        }
    }
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::Full(TimeSeries::new())
    }
}

/// Per-node and system-wide energy meter.
///
/// Node state lives in dense `Vec`s indexed by [`NodeId`] — node ids in a
/// cluster are contiguous, so every operation on the metering hot path is
/// direct indexing.
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    /// Per-node accumulators indexed by `NodeId.0`, grown on first write.
    nodes: Vec<NodeAccum>,
    /// Allocation groups, indexed by `GroupId`; closed slots are recycled
    /// through `free_groups` so long runs do not grow this vector.
    groups: Vec<AllocGroup>,
    free_groups: Vec<u32>,
    system_watts: f64,
    system_trace: TraceStore,
    updates_since_resync: u32,
}

impl EnergyMeter {
    /// Creates an empty meter with a full system trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a meter whose system trace is a bounded accumulator on a
    /// `grid_dt` sample grid: memory stays O(horizon / `grid_dt`) no
    /// matter how many power steps the run makes. Whole-run queries
    /// (energy, peak, average over `[0, end]`, and
    /// [`power_trace_rows`](Self::power_trace_rows) at exactly `grid_dt`)
    /// are bit-identical to full mode; [`system_trace`](Self::system_trace)
    /// and arbitrary-window queries panic.
    #[must_use]
    pub fn with_bounded_trace(grid_dt: SimDuration) -> Self {
        EnergyMeter {
            system_trace: TraceStore::Bounded(BoundedSeries::new(grid_dt)),
            ..Self::default()
        }
    }

    fn ensure(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if idx >= self.nodes.len() {
            self.nodes.resize(idx + 1, NodeAccum::default());
        }
    }

    /// Applies one node update, returning the change in system draw. O(1).
    fn apply_node(&mut self, node: NodeId, t: SimTime, watts: f64) -> f64 {
        debug_assert!(watts >= 0.0, "negative power draw");
        self.ensure(node);
        let slot = &mut self.nodes[node.0 as usize];
        debug_assert!(
            slot.group == NO_GROUP,
            "grouped node updated individually; close its group first \
             (node {}, t {t}, group {:?})",
            node.0,
            slot.group
        );
        debug_assert!(
            t >= slot.since,
            "meter updates must be time-monotone per node"
        );
        let prev = slot.watts;
        slot.acc += prev * t.saturating_since(slot.since).as_secs();
        slot.since = t;
        slot.watts = watts;
        watts - prev
    }

    /// Folds a system-draw delta into the running sum, resyncing from the
    /// per-node values periodically to cancel accumulated float drift.
    fn commit_delta(&mut self, delta: f64, batch: u32) {
        self.system_watts += delta;
        self.updates_since_resync += batch;
        if self.updates_since_resync >= RESYNC_INTERVAL {
            self.updates_since_resync = 0;
            // Grouped nodes carry their live draw in the group record;
            // their slot wattage is stale and must not be double-counted.
            self.system_watts = self
                .nodes
                .iter()
                .filter(|n| n.group == NO_GROUP)
                .map(|n| n.watts)
                .sum::<f64>()
                + self
                    .groups
                    .iter()
                    .filter(|g| g.in_use)
                    .map(|g| g.watts * f64::from(g.members))
                    .sum::<f64>();
        }
        // Guard tiny negative residue from float cancellation.
        if self.system_watts < 0.0 && self.system_watts > -1e-6 {
            self.system_watts = 0.0;
        }
    }

    /// Records that `node` draws `watts` from time `t` onward.
    ///
    /// Maintains the system-level trace incrementally: the system draw is
    /// the sum of all node draws, updated at each change point.
    pub fn set_node_watts(&mut self, node: NodeId, t: SimTime, watts: f64) {
        let delta = self.apply_node(node, t, watts);
        self.commit_delta(delta, 1);
        self.system_trace.push(t, self.system_watts);
    }

    /// Records that every node in `nodes` draws `watts` from time `t`
    /// onward — one allocation-wide power step (job start, phase change,
    /// batch idle/off transition).
    ///
    /// Equivalent to calling [`set_node_watts`](Self::set_node_watts) per
    /// node (equal-time pushes to the system trace collapse to its final
    /// value), but folds the whole batch into one system-trace update.
    pub fn set_alloc_watts(&mut self, nodes: &[NodeId], t: SimTime, watts: f64) {
        if nodes.is_empty() {
            return;
        }
        let mut delta = 0.0;
        for &n in nodes {
            delta += self.apply_node(n, t, watts);
        }
        self.commit_delta(delta, nodes.len() as u32);
        self.system_trace.push(t, self.system_watts);
    }

    /// Opens an allocation group: every node in `nodes` draws `watts`
    /// from `t` onward, and subsequent uniform power steps over the same
    /// set cost O(1) via [`EnergyMeter::set_group_watts`] instead of a
    /// walk over the allocation. Returns the group handle and the *mark*
    /// — the summed lifetime energy of the nodes through `t`, in node
    /// order, exactly what `set_alloc_watts` + `alloc_energy_to` at the
    /// same instant would produce.
    ///
    /// One walk over the allocation (the fold of pre-group history into
    /// each node's accumulator) is the only O(n) work a group ever does
    /// besides its close.
    pub fn open_group(&mut self, nodes: &[NodeId], t: SimTime, watts: f64) -> (GroupId, f64) {
        assert!(!nodes.is_empty(), "cannot open an empty group");
        let gid = self.free_groups.pop().unwrap_or_else(|| {
            self.groups.push(AllocGroup {
                watts: 0.0,
                since: SimTime::ZERO,
                acc_per_node: 0.0,
                members: 0,
                in_use: false,
            });
            (self.groups.len() - 1) as u32
        });
        let mut delta = 0.0;
        let mut mark = 0.0;
        for &n in nodes {
            // Identical per-node arithmetic (and order) to the ungrouped
            // set_alloc_watts path, so opening a group is bit-exact with
            // the batch update it replaces.
            delta += self.apply_node(n, t, watts);
            let slot = &mut self.nodes[n.0 as usize];
            slot.group = gid;
            mark += slot.acc;
        }
        self.groups[gid as usize] = AllocGroup {
            watts,
            since: t,
            acc_per_node: 0.0,
            members: nodes.len() as u32,
            in_use: true,
        };
        self.commit_delta(delta, nodes.len() as u32);
        self.system_trace.push(t, self.system_watts);
        (GroupId(gid), mark)
    }

    /// Steps an open group's uniform per-node draw to `watts` at `t`.
    /// O(1) — this is what makes per-phase power fluctuation affordable
    /// on allocations spanning thousands of nodes.
    pub fn set_group_watts(&mut self, gid: GroupId, t: SimTime, watts: f64) {
        debug_assert!(watts >= 0.0, "negative power draw");
        let g = &mut self.groups[gid.0 as usize];
        debug_assert!(g.in_use, "group already closed");
        debug_assert!(t >= g.since, "meter updates must be time-monotone");
        g.acc_per_node += g.watts * t.saturating_since(g.since).as_secs();
        let delta = (watts - g.watts) * f64::from(g.members);
        g.since = t;
        g.watts = watts;
        self.commit_delta(delta, 1);
        self.system_trace.push(t, self.system_watts);
    }

    /// Closes a group at `t`: folds the group energy back into each
    /// member's accumulator, sets every member's individual draw to
    /// `next_watts` (the post-job draw, typically idle), and returns the
    /// total energy the group consumed over its lifetime. `nodes` must be
    /// the exact member set the group was opened with.
    pub fn close_group(
        &mut self,
        gid: GroupId,
        nodes: &[NodeId],
        t: SimTime,
        next_watts: f64,
    ) -> f64 {
        let g = &mut self.groups[gid.0 as usize];
        debug_assert!(g.in_use, "group already closed");
        debug_assert_eq!(g.members as usize, nodes.len(), "member set mismatch");
        debug_assert!(t >= g.since, "meter updates must be time-monotone");
        g.acc_per_node += g.watts * t.saturating_since(g.since).as_secs();
        let acc_per_node = g.acc_per_node;
        let group_watts = g.watts;
        let energy = acc_per_node * f64::from(g.members);
        g.in_use = false;
        let mut delta = 0.0;
        for &n in nodes {
            let slot = &mut self.nodes[n.0 as usize];
            debug_assert_eq!(slot.group, gid.0, "node not a member of this group");
            slot.acc += acc_per_node;
            slot.since = t;
            slot.watts = next_watts;
            slot.group = NO_GROUP;
            delta += next_watts - group_watts;
        }
        self.free_groups.push(gid.0);
        self.commit_delta(delta, nodes.len() as u32);
        self.system_trace.push(t, self.system_watts);
        energy
    }

    /// Encodes the full metering state — per-node accumulators, open and
    /// recycled groups, the running system sum, the system trace, and the
    /// resync counter — bit-exactly, so a restored meter produces the same
    /// floating-point results as one that was never snapshotted.
    pub fn snapshot_into(&self, w: &mut epa_simcore::snap::SnapWriter) {
        w.seq(&self.nodes, |w, n| {
            w.f64(n.watts);
            w.f64(n.since.as_secs());
            w.f64(n.acc);
            w.u32(n.group);
        });
        w.seq(&self.groups, |w, g| {
            w.f64(g.watts);
            w.f64(g.since.as_secs());
            w.f64(g.acc_per_node);
            w.u32(g.members);
            w.bool(g.in_use);
        });
        w.seq(&self.free_groups, |w, &g| w.u32(g));
        w.f64(self.system_watts);
        match &self.system_trace {
            TraceStore::Full(s) => {
                w.u8(0);
                s.snapshot_into(w);
            }
            TraceStore::Bounded(s) => {
                w.u8(1);
                s.snapshot_into(w);
            }
        }
        w.u32(self.updates_since_resync);
    }

    /// Decodes a meter written by [`EnergyMeter::snapshot_into`].
    pub fn restore_from(
        r: &mut epa_simcore::snap::SnapReader<'_>,
    ) -> Result<Self, epa_simcore::snap::SnapshotError> {
        let nodes = r.seq(|r| {
            Ok(NodeAccum {
                watts: r.f64()?,
                since: SimTime::from_secs(r.f64()?),
                acc: r.f64()?,
                group: r.u32()?,
            })
        })?;
        let groups = r.seq(|r| {
            Ok(AllocGroup {
                watts: r.f64()?,
                since: SimTime::from_secs(r.f64()?),
                acc_per_node: r.f64()?,
                members: r.u32()?,
                in_use: r.bool()?,
            })
        })?;
        let free_groups = r.seq(epa_simcore::snap::SnapReader::u32)?;
        let system_watts = r.f64()?;
        let system_trace = match r.u8()? {
            0 => TraceStore::Full(TimeSeries::restore_from(r)?),
            1 => TraceStore::Bounded(BoundedSeries::restore_from(r)?),
            tag => {
                return Err(epa_simcore::snap::SnapshotError::Corrupt {
                    detail: format!("unknown system-trace mode tag {tag}"),
                })
            }
        };
        let updates_since_resync = r.u32()?;
        for (i, n) in nodes.iter().enumerate() {
            if n.group != NO_GROUP && n.group as usize >= groups.len() {
                return Err(epa_simcore::snap::SnapshotError::Corrupt {
                    detail: format!("node {i} references missing group {}", n.group),
                });
            }
        }
        Ok(EnergyMeter {
            nodes,
            groups,
            free_groups,
            system_watts,
            system_trace,
            updates_since_resync,
        })
    }

    /// Current draw of one node in watts (0 if never recorded). Grouped
    /// nodes report their group's live draw.
    #[must_use]
    pub fn node_watts(&self, node: NodeId) -> f64 {
        self.nodes.get(node.0 as usize).map_or(0.0, |n| {
            if n.group == NO_GROUP {
                n.watts
            } else {
                self.groups[n.group as usize].watts
            }
        })
    }

    /// Current system draw in watts.
    #[must_use]
    pub fn system_watts(&self) -> f64 {
        self.system_watts
    }

    /// Total energy consumed by one node from time zero through `t`,
    /// joules. O(1). `t` must be at-or-after the node's latest update
    /// (simulation time is monotone, so callers get this for free).
    #[must_use]
    pub fn node_energy_to(&self, node: NodeId, t: SimTime) -> f64 {
        let Some(slot) = self.nodes.get(node.0 as usize) else {
            return 0.0;
        };
        if slot.group == NO_GROUP {
            debug_assert!(
                t >= slot.since,
                "meter energy queries must be time-monotone"
            );
            slot.acc + slot.watts * t.saturating_since(slot.since).as_secs()
        } else {
            // Grouped: the slot accumulator is frozen at group open; the
            // energy since then lives in the shared group record.
            let g = &self.groups[slot.group as usize];
            debug_assert!(t >= g.since, "meter energy queries must be time-monotone");
            slot.acc + g.acc_per_node + g.watts * t.saturating_since(g.since).as_secs()
        }
    }

    /// Total energy of `nodes` from time zero through `t`, joules —
    /// summed in the order given. Pair two calls to measure a job: mark
    /// at start, subtract from the value at completion. This is the
    /// number Tokyo Tech and JCAHPC hand users at the end of every job.
    #[must_use]
    pub fn alloc_energy_to(&self, nodes: &[NodeId], t: SimTime) -> f64 {
        nodes.iter().map(|&n| self.node_energy_to(n, t)).sum()
    }

    /// System energy over `[a, b]`, joules. In bounded-trace mode only
    /// the whole-run window is answerable: `a` must be zero and `b`
    /// at-or-after the last power step.
    #[must_use]
    pub fn system_energy_joules(&self, a: SimTime, b: SimTime) -> f64 {
        match &self.system_trace {
            TraceStore::Full(s) => s.integrate(a, b),
            TraceStore::Bounded(s) => {
                assert!(
                    a == SimTime::ZERO,
                    "bounded trace answers whole-run energy only (a must be 0, got {a})"
                );
                s.integrate_from_start(b)
            }
        }
    }

    /// The system power trace (for telemetry, peak analysis, reports).
    ///
    /// # Panics
    /// Panics in bounded-trace mode — the raw change-point series is not
    /// retained there; use [`power_trace_rows`](Self::power_trace_rows).
    #[must_use]
    pub fn system_trace(&self) -> &TimeSeries {
        match &self.system_trace {
            TraceStore::Full(s) => s,
            TraceStore::Bounded(_) => panic!(
                "raw system trace unavailable in bounded mode; \
                 use power_trace_rows for the gridded trace"
            ),
        }
    }

    /// The system power trace resampled on a fixed grid over `[a, b]` —
    /// the rows the engine exports in its outcome. In bounded-trace mode
    /// `a` must be zero and `dt` must equal the meter's grid interval;
    /// the result is bit-identical to full mode's
    /// `system_trace().resample(a, b, dt)`.
    #[must_use]
    pub fn power_trace_rows(&self, a: SimTime, b: SimTime, dt: SimDuration) -> Vec<(SimTime, f64)> {
        match &self.system_trace {
            TraceStore::Full(s) => s.resample(a, b, dt),
            TraceStore::Bounded(s) => {
                assert!(
                    a == SimTime::ZERO,
                    "bounded trace resamples from time zero only (a must be 0, got {a})"
                );
                assert!(
                    dt == s.grid_dt(),
                    "bounded trace resamples at its own grid interval only"
                );
                s.sample_grid(b)
            }
        }
    }

    /// Peak system draw on `[a, b]`, watts. In bounded-trace mode `a`
    /// must be zero and `b` at-or-after the last power step.
    #[must_use]
    pub fn peak_system_watts(&self, a: SimTime, b: SimTime) -> f64 {
        match &self.system_trace {
            TraceStore::Full(s) => s.max_on(a, b).unwrap_or(0.0),
            TraceStore::Bounded(s) => {
                assert!(
                    a == SimTime::ZERO,
                    "bounded trace answers whole-run peak only (a must be 0, got {a})"
                );
                s.max_value(b).unwrap_or(0.0)
            }
        }
    }

    /// Average system draw on `[a, b]`, watts. In bounded-trace mode `a`
    /// must be zero and `b` at-or-after the last power step.
    #[must_use]
    pub fn avg_system_watts(&self, a: SimTime, b: SimTime) -> f64 {
        match &self.system_trace {
            TraceStore::Full(s) => s.time_weighted_mean(a, b),
            TraceStore::Bounded(s) => {
                assert!(
                    a == SimTime::ZERO,
                    "bounded trace answers whole-run average only (a must be 0, got {a})"
                );
                s.mean_from_start(b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn single_node_energy() {
        let mut m = EnergyMeter::new();
        m.set_node_watts(n(0), t(0.0), 100.0);
        m.set_node_watts(n(0), t(10.0), 200.0);
        // [0,10) at 100 + [10,20) at 200.
        assert!((m.node_energy_to(n(0), t(20.0)) - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn mark_diff_measures_a_window() {
        let mut m = EnergyMeter::new();
        m.set_node_watts(n(0), t(0.0), 50.0); // idle history before the job
        let mark = m.alloc_energy_to(&[n(0)], t(5.0));
        m.set_node_watts(n(0), t(5.0), 200.0); // job starts
        let end = m.alloc_energy_to(&[n(0)], t(15.0));
        assert!((end - mark - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn system_tracks_sum_of_nodes() {
        let mut m = EnergyMeter::new();
        m.set_node_watts(n(0), t(0.0), 100.0);
        m.set_node_watts(n(1), t(0.0), 50.0);
        assert_eq!(m.system_watts(), 150.0);
        m.set_node_watts(n(0), t(5.0), 20.0);
        assert_eq!(m.system_watts(), 70.0);
        // System energy: [0,5) at 150 + [5,10) at 70.
        assert!((m.system_energy_joules(t(0.0), t(10.0)) - (750.0 + 350.0)).abs() < 1e-9);
    }

    #[test]
    fn alloc_energy_sums_member_nodes() {
        let mut m = EnergyMeter::new();
        m.set_node_watts(n(0), t(0.0), 100.0);
        m.set_node_watts(n(1), t(0.0), 100.0);
        m.set_node_watts(n(2), t(0.0), 999.0); // not in the job
        let e = m.alloc_energy_to(&[n(0), n(1)], t(10.0));
        assert!((e - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn peak_and_average() {
        let mut m = EnergyMeter::new();
        m.set_node_watts(n(0), t(0.0), 100.0);
        m.set_node_watts(n(0), t(10.0), 300.0);
        m.set_node_watts(n(0), t(20.0), 100.0);
        assert_eq!(m.peak_system_watts(t(0.0), t(30.0)), 300.0);
        let avg = m.avg_system_watts(t(0.0), t(30.0));
        assert!((avg - (100.0 * 10.0 + 300.0 * 10.0 + 100.0 * 10.0) / 30.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_node_reads_zero() {
        let m = EnergyMeter::new();
        assert_eq!(m.node_watts(n(9)), 0.0);
        assert_eq!(m.node_energy_to(n(9), t(10.0)), 0.0);
    }

    #[test]
    fn batched_update_equals_sequential() {
        let nodes = [n(0), n(1), n(2), n(3)];
        let mut batched = EnergyMeter::new();
        let mut sequential = EnergyMeter::new();
        batched.set_alloc_watts(&nodes, t(0.0), 100.0);
        batched.set_alloc_watts(&nodes[..2], t(10.0), 250.0);
        for &nd in &nodes {
            sequential.set_node_watts(nd, t(0.0), 100.0);
        }
        for &nd in &nodes[..2] {
            sequential.set_node_watts(nd, t(10.0), 250.0);
        }
        assert_eq!(batched.system_watts(), sequential.system_watts());
        let (a, b) = (t(0.0), t(20.0));
        assert!(
            (batched.system_energy_joules(a, b) - sequential.system_energy_joules(a, b)).abs()
                < 1e-9
        );
        for &nd in &nodes {
            assert_eq!(
                batched.node_energy_to(nd, b),
                sequential.node_energy_to(nd, b)
            );
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut m = EnergyMeter::new();
        m.set_alloc_watts(&[], t(0.0), 100.0);
        assert_eq!(m.system_watts(), 0.0);
        assert!(m.system_trace().is_empty());
    }

    #[test]
    fn group_lifecycle_matches_ungrouped_sequence() {
        let nodes = [n(0), n(1), n(2)];
        let mut grouped = EnergyMeter::new();
        let mut plain = EnergyMeter::new();
        for m in [&mut grouped, &mut plain] {
            m.set_alloc_watts(&nodes, t(0.0), 50.0); // idle history
        }

        // Grouped job: open at 100 W, phase to 300 W, phase to 80 W, close.
        let (gid, mark_g) = grouped.open_group(&nodes, t(10.0), 100.0);
        grouped.set_group_watts(gid, t(20.0), 300.0);
        grouped.set_group_watts(gid, t(30.0), 80.0);
        let energy_g = grouped.close_group(gid, &nodes, t(40.0), 50.0);

        // Same schedule through the ungrouped API.
        plain.set_alloc_watts(&nodes, t(10.0), 100.0);
        let mark_p = plain.alloc_energy_to(&nodes, t(10.0));
        plain.set_alloc_watts(&nodes, t(20.0), 300.0);
        plain.set_alloc_watts(&nodes, t(30.0), 80.0);
        let energy_p = plain.alloc_energy_to(&nodes, t(40.0)) - mark_p;
        plain.set_alloc_watts(&nodes, t(40.0), 50.0);

        assert_eq!(mark_g, mark_p, "open mark must be bit-exact");
        // Per-node: (100*10 + 300*10 + 80*10) * 3 nodes = 14400.
        assert!((energy_g - 14400.0).abs() < 1e-9);
        assert!((energy_g - energy_p).abs() < 1e-9);
        assert!((grouped.system_watts() - plain.system_watts()).abs() < 1e-9);
        for &nd in &nodes {
            let (eg, ep) = (
                grouped.node_energy_to(nd, t(50.0)),
                plain.node_energy_to(nd, t(50.0)),
            );
            assert!((eg - ep).abs() < 1e-9, "node {}: {eg} vs {ep}", nd.0);
        }
        let (sg, sp) = (
            grouped.system_energy_joules(t(0.0), t(50.0)),
            plain.system_energy_joules(t(0.0), t(50.0)),
        );
        assert!((sg - sp).abs() < 1e-9, "{sg} vs {sp}");
    }

    #[test]
    fn grouped_nodes_answer_live_queries() {
        let nodes = [n(0), n(1)];
        let mut m = EnergyMeter::new();
        m.set_alloc_watts(&nodes, t(0.0), 10.0);
        let (gid, _) = m.open_group(&nodes, t(5.0), 200.0);
        assert_eq!(m.node_watts(n(0)), 200.0);
        // 10 W for 5 s of history + 200 W for 5 s in-group.
        assert!((m.node_energy_to(n(0), t(10.0)) - 1050.0).abs() < 1e-9);
        m.set_group_watts(gid, t(10.0), 400.0);
        assert_eq!(m.node_watts(n(1)), 400.0);
        assert!((m.node_energy_to(n(1), t(12.0)) - (50.0 + 1000.0 + 800.0)).abs() < 1e-9);
        assert!((m.system_watts() - 800.0).abs() < 1e-9);
    }

    #[test]
    fn group_slots_are_recycled() {
        let mut m = EnergyMeter::new();
        let (g1, _) = m.open_group(&[n(0)], t(0.0), 100.0);
        m.close_group(g1, &[n(0)], t(1.0), 0.0);
        let (g2, _) = m.open_group(&[n(1), n(2)], t(2.0), 50.0);
        assert_eq!(g1, g2, "closed slot must be reused");
        assert_eq!(m.groups.len(), 1);
        let e = m.close_group(g2, &[n(1), n(2)], t(4.0), 0.0);
        assert!((e - 200.0).abs() < 1e-9);
    }

    #[test]
    fn resync_counts_open_groups_once() {
        let mut m = EnergyMeter::new();
        let nodes = [n(0), n(1), n(2), n(3)];
        let (gid, _) = m.open_group(&nodes, t(0.0), 100.0);
        m.set_node_watts(n(4), t(0.0), 7.0);
        // Force many resyncs while the group is open; the grouped slots'
        // stale wattage must not leak into the system sum.
        for i in 0..2 * RESYNC_INTERVAL {
            m.set_node_watts(n(4), t(f64::from(i) + 1.0), 7.0);
        }
        assert!((m.system_watts() - 407.0).abs() < 1e-9);
        m.set_group_watts(gid, t(9000.0), 25.0);
        for i in 0..RESYNC_INTERVAL {
            m.set_node_watts(n(4), t(9001.0 + f64::from(i)), 7.0);
        }
        assert!((m.system_watts() - 107.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "grouped node updated individually")]
    #[cfg(debug_assertions)]
    fn individual_update_of_grouped_node_panics() {
        let mut m = EnergyMeter::new();
        let (_gid, _) = m.open_group(&[n(0)], t(0.0), 100.0);
        m.set_node_watts(n(0), t(1.0), 50.0);
    }

    #[test]
    fn bounded_trace_matches_full_on_whole_run_queries() {
        let dt = epa_simcore::time::SimDuration::from_mins(5.0);
        let mut full = EnergyMeter::new();
        let mut bounded = EnergyMeter::with_bounded_trace(dt);
        for m in [&mut full, &mut bounded] {
            m.set_alloc_watts(&[n(0), n(1)], t(0.0), 50.0);
            let (gid, _) = m.open_group(&[n(0), n(1)], t(100.0), 200.0);
            m.set_group_watts(gid, t(400.0), 350.0);
            m.close_group(gid, &[n(0), n(1)], t(900.0), 50.0);
            m.set_node_watts(n(0), t(1200.0), 0.0);
        }
        let end = t(1800.0);
        let a = SimTime::ZERO;
        assert_eq!(
            full.system_energy_joules(a, end).to_bits(),
            bounded.system_energy_joules(a, end).to_bits()
        );
        assert_eq!(
            full.peak_system_watts(a, end).to_bits(),
            bounded.peak_system_watts(a, end).to_bits()
        );
        assert_eq!(
            full.avg_system_watts(a, end).to_bits(),
            bounded.avg_system_watts(a, end).to_bits()
        );
        let (fr, br) = (
            full.power_trace_rows(a, end, dt),
            bounded.power_trace_rows(a, end, dt),
        );
        assert_eq!(fr.len(), br.len());
        for ((ft, fv), (bt, bv)) in fr.iter().zip(&br) {
            assert_eq!(ft, bt);
            assert_eq!(fv.to_bits(), bv.to_bits());
        }
    }

    #[test]
    fn bounded_trace_snapshot_roundtrip() {
        let dt = epa_simcore::time::SimDuration::from_mins(5.0);
        let mut m = EnergyMeter::with_bounded_trace(dt);
        m.set_node_watts(n(0), t(0.0), 100.0);
        m.set_node_watts(n(0), t(700.0), 40.0);
        let mut w = epa_simcore::snap::SnapWriter::new();
        m.snapshot_into(&mut w);
        let bytes = w.finish(1);
        let mut r = epa_simcore::snap::SnapReader::open(&bytes, 1).unwrap();
        let restored = EnergyMeter::restore_from(&mut r).unwrap();
        let end = t(2000.0);
        assert_eq!(
            m.system_energy_joules(SimTime::ZERO, end).to_bits(),
            restored.system_energy_joules(SimTime::ZERO, end).to_bits()
        );
        assert_eq!(
            m.power_trace_rows(SimTime::ZERO, end, dt),
            restored.power_trace_rows(SimTime::ZERO, end, dt)
        );
    }

    #[test]
    #[should_panic(expected = "raw system trace unavailable in bounded mode")]
    fn bounded_trace_raw_access_panics() {
        let m = EnergyMeter::with_bounded_trace(epa_simcore::time::SimDuration::from_mins(5.0));
        let _ = m.system_trace();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Energy conservation: the system energy over the full horizon
        /// equals the sum of per-node energies, for arbitrary
        /// time-monotone update sequences.
        #[test]
        fn system_energy_equals_node_sum(
            updates in proptest::collection::vec(
                (0u32..6, 0.1f64..50.0, 0.0f64..400.0), 1..80),
        ) {
            let mut m = EnergyMeter::new();
            let mut clock = 0.0;
            for (node, dt, w) in &updates {
                m.set_node_watts(NodeId(*node), SimTime::from_secs(clock), *w);
                clock += dt;
            }
            let end = SimTime::from_secs(clock + 10.0);
            let sys = m.system_energy_joules(SimTime::ZERO, end);
            let node_sum: f64 = (0..6)
                .map(|i| m.node_energy_to(NodeId(i), end))
                .sum();
            prop_assert!((sys - node_sum).abs() < 1e-6 * (1.0 + sys.abs()),
                "system {} != node sum {}", sys, node_sum);
        }

        /// O(1) accumulator energy equals the analytic step-function
        /// integral computed from the raw update list.
        #[test]
        fn accumulator_matches_analytic_integral(
            updates in proptest::collection::vec(
                (0u32..4, 0.1f64..50.0, 0.0f64..400.0), 1..60),
        ) {
            let mut m = EnergyMeter::new();
            let mut clock = 0.0;
            let mut steps: Vec<(u32, f64, f64)> = Vec::new(); // (node, t, w)
            for (node, dt, w) in &updates {
                m.set_node_watts(NodeId(*node), SimTime::from_secs(clock), *w);
                steps.push((*node, clock, *w));
                clock += dt;
            }
            let end = clock + 7.0;
            for node in 0..4u32 {
                // Analytic: sum over this node's steps of w * (next_t - t).
                let mine: Vec<(f64, f64)> = steps.iter()
                    .filter(|(n, _, _)| *n == node)
                    .map(|&(_, t, w)| (t, w))
                    .collect();
                let mut analytic = 0.0;
                for (i, &(t, w)) in mine.iter().enumerate() {
                    let next = mine.get(i + 1).map_or(end, |&(nt, _)| nt);
                    analytic += w * (next - t);
                }
                let got = m.node_energy_to(NodeId(node), SimTime::from_secs(end));
                prop_assert!((got - analytic).abs() < 1e-6 * (1.0 + analytic.abs()),
                    "node {}: {} vs analytic {}", node, got, analytic);
            }
        }

        /// The incrementally-maintained system wattage equals the sum of
        /// the latest per-node values.
        #[test]
        fn incremental_sum_correct(
            updates in proptest::collection::vec((0u32..8, 0.0f64..500.0), 1..100),
        ) {
            let mut m = EnergyMeter::new();
            let mut latest = [0.0f64; 8];
            for (i, (node, w)) in updates.iter().enumerate() {
                m.set_node_watts(NodeId(*node), SimTime::from_secs(i as f64), *w);
                latest[*node as usize] = *w;
            }
            let expect: f64 = latest.iter().sum();
            prop_assert!((m.system_watts() - expect).abs() < 1e-6);
        }

        /// Long-horizon drift: after 10k updates the running system sum
        /// must still match the per-node values exactly (the periodic
        /// resync crosses RESYNC_INTERVAL twice in this sequence, so this
        /// exercises the resync path, not just incremental accumulation).
        #[test]
        fn incremental_sum_correct_long_horizon(
            seed_updates in proptest::collection::vec((0u32..16, 0.0f64..500.0), 32),
        ) {
            let mut m = EnergyMeter::new();
            let mut latest = [0.0f64; 16];
            let mut k = 0usize;
            // Tile the 32 generated updates into a 10_000-step sequence
            // with per-step perturbed wattages.
            for rep in 0..10_000usize / seed_updates.len() + 1 {
                for (node, w) in &seed_updates {
                    if k >= 10_000 { break; }
                    let w = w + (rep as f64) * 1e-3;
                    m.set_node_watts(NodeId(*node), SimTime::from_secs(k as f64), w);
                    latest[*node as usize] = w;
                    k += 1;
                }
            }
            let expect: f64 = latest.iter().sum();
            prop_assert!(
                (m.system_watts() - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                "drift after {} updates: {} vs {}", k, m.system_watts(), expect
            );
        }

        /// Batched `set_alloc_watts` is observationally identical to the
        /// per-node loop: same system wattage, same energies.
        #[test]
        fn batched_matches_per_node_loop(
            batches in proptest::collection::vec(
                // (node-subset bitmask, watts) per batch step
                (1u32..256, 0.0f64..400.0), 1..60),
        ) {
            let mut batched = EnergyMeter::new();
            let mut sequential = EnergyMeter::new();
            for (i, (mask, w)) in batches.iter().enumerate() {
                let t = SimTime::from_secs(i as f64 * 3.0);
                let nodes: Vec<NodeId> =
                    (0..8).filter(|b| mask & (1 << b) != 0).map(NodeId).collect();
                batched.set_alloc_watts(&nodes, t, *w);
                for &nd in &nodes {
                    sequential.set_node_watts(nd, t, *w);
                }
            }
            prop_assert!((batched.system_watts() - sequential.system_watts()).abs() < 1e-9);
            let end = SimTime::from_secs(batches.len() as f64 * 3.0 + 5.0);
            let (eb, es) = (
                batched.system_energy_joules(SimTime::ZERO, end),
                sequential.system_energy_joules(SimTime::ZERO, end),
            );
            prop_assert!((eb - es).abs() < 1e-6 * (1.0 + es.abs()), "{} vs {}", eb, es);
            for nd in (0..8).map(NodeId) {
                let (nb, ns) = (
                    batched.node_energy_to(nd, end),
                    sequential.node_energy_to(nd, end),
                );
                prop_assert!((nb - ns).abs() < 1e-9 * (1.0 + ns.abs()));
            }
        }

        /// A group open / phase-steps / close cycle is observationally
        /// identical to the same power schedule issued through
        /// `set_alloc_watts`: same marks, same job energy, same per-node
        /// energies and system draw afterwards.
        #[test]
        fn group_cycle_matches_alloc_updates(
            members in 1u32..6,
            idle in 0.0f64..80.0,
            phases in proptest::collection::vec(0.0f64..500.0, 1..10),
            dt in 0.5f64..20.0,
        ) {
            let nodes: Vec<NodeId> = (0..members).map(NodeId).collect();
            let mut grouped = EnergyMeter::new();
            let mut plain = EnergyMeter::new();
            grouped.set_alloc_watts(&nodes, SimTime::ZERO, idle);
            plain.set_alloc_watts(&nodes, SimTime::ZERO, idle);

            let start = SimTime::from_secs(dt);
            let (gid, mark_g) = grouped.open_group(&nodes, start, phases[0]);
            plain.set_alloc_watts(&nodes, start, phases[0]);
            let mark_p = plain.alloc_energy_to(&nodes, start);
            prop_assert_eq!(mark_g, mark_p);

            let mut clock = dt;
            for w in &phases[1..] {
                clock += dt;
                let t = SimTime::from_secs(clock);
                grouped.set_group_watts(gid, t, *w);
                plain.set_alloc_watts(&nodes, t, *w);
            }
            clock += dt;
            let end = SimTime::from_secs(clock);
            let energy_g = grouped.close_group(gid, &nodes, end, idle);
            let energy_p = plain.alloc_energy_to(&nodes, end) - mark_p;
            plain.set_alloc_watts(&nodes, end, idle);

            let tol = 1e-9 * (1.0 + energy_p.abs());
            prop_assert!((energy_g - energy_p).abs() < tol,
                "job energy {} vs {}", energy_g, energy_p);
            prop_assert!(
                (grouped.system_watts() - plain.system_watts()).abs() < 1e-9);
            let probe = SimTime::from_secs(clock + 3.0);
            for &nd in &nodes {
                let (eg, ep) = (
                    grouped.node_energy_to(nd, probe),
                    plain.node_energy_to(nd, probe),
                );
                prop_assert!((eg - ep).abs() < 1e-9 * (1.0 + ep.abs()),
                    "node {}: {} vs {}", nd.0, eg, ep);
            }
        }
    }
}
