//! Exact energy metering.
//!
//! Every node's power draw is a step function of time; the meter stores
//! those steps and integrates them exactly. The core invariant — metered
//! energy equals the analytic integral of the recorded power trace — is
//! property-tested here and is the foundation of every energy number the
//! framework reports (Q7 results, post-job user energy reports, E1–E10).

use epa_cluster::node::NodeId;
use epa_simcore::series::TimeSeries;
use epa_simcore::time::SimTime;
use std::collections::BTreeMap;

/// Per-node and system-wide energy meter.
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    node_traces: BTreeMap<NodeId, TimeSeries>,
    system_watts: f64,
    system_trace: TimeSeries,
}

impl EnergyMeter {
    /// Creates an empty meter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `node` draws `watts` from time `t` onward.
    ///
    /// Maintains the system-level trace incrementally: the system draw is
    /// the sum of all node draws, updated at each change point.
    pub fn set_node_watts(&mut self, node: NodeId, t: SimTime, watts: f64) {
        debug_assert!(watts >= 0.0, "negative power draw");
        let trace = self.node_traces.entry(node).or_default();
        let prev = trace.last().map_or(0.0, |(_, w)| w);
        trace.push(t, watts);
        self.system_watts += watts - prev;
        // Guard tiny negative residue from float cancellation.
        if self.system_watts < 0.0 && self.system_watts > -1e-6 {
            self.system_watts = 0.0;
        }
        self.system_trace.push(t, self.system_watts);
    }

    /// Current draw of one node in watts (0 if never recorded).
    #[must_use]
    pub fn node_watts(&self, node: NodeId) -> f64 {
        self.node_traces
            .get(&node)
            .and_then(TimeSeries::last)
            .map_or(0.0, |(_, w)| w)
    }

    /// Current system draw in watts.
    #[must_use]
    pub fn system_watts(&self) -> f64 {
        self.system_watts
    }

    /// Energy consumed by one node over `[a, b]`, joules.
    #[must_use]
    pub fn node_energy_joules(&self, node: NodeId, a: SimTime, b: SimTime) -> f64 {
        self.node_traces
            .get(&node)
            .map_or(0.0, |tr| tr.integrate(a, b))
    }

    /// System energy over `[a, b]`, joules.
    #[must_use]
    pub fn system_energy_joules(&self, a: SimTime, b: SimTime) -> f64 {
        self.system_trace.integrate(a, b)
    }

    /// Energy of a *job*: the sum over its nodes of each node's energy
    /// during the job's execution window. This is the number Tokyo Tech
    /// and JCAHPC hand users at the end of every job.
    #[must_use]
    pub fn allocation_energy_joules(&self, nodes: &[NodeId], start: SimTime, end: SimTime) -> f64 {
        nodes
            .iter()
            .map(|&n| self.node_energy_joules(n, start, end))
            .sum()
    }

    /// The system power trace (for telemetry, peak analysis, reports).
    #[must_use]
    pub fn system_trace(&self) -> &TimeSeries {
        &self.system_trace
    }

    /// The trace of one node, if recorded.
    #[must_use]
    pub fn node_trace(&self, node: NodeId) -> Option<&TimeSeries> {
        self.node_traces.get(&node)
    }

    /// Peak system draw on `[a, b]`, watts.
    #[must_use]
    pub fn peak_system_watts(&self, a: SimTime, b: SimTime) -> f64 {
        self.system_trace.max_on(a, b).unwrap_or(0.0)
    }

    /// Average system draw on `[a, b]`, watts.
    #[must_use]
    pub fn avg_system_watts(&self, a: SimTime, b: SimTime) -> f64 {
        self.system_trace.time_weighted_mean(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn single_node_energy() {
        let mut m = EnergyMeter::new();
        m.set_node_watts(n(0), t(0.0), 100.0);
        m.set_node_watts(n(0), t(10.0), 200.0);
        assert!((m.node_energy_joules(n(0), t(0.0), t(20.0)) - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn system_tracks_sum_of_nodes() {
        let mut m = EnergyMeter::new();
        m.set_node_watts(n(0), t(0.0), 100.0);
        m.set_node_watts(n(1), t(0.0), 50.0);
        assert_eq!(m.system_watts(), 150.0);
        m.set_node_watts(n(0), t(5.0), 20.0);
        assert_eq!(m.system_watts(), 70.0);
        // System energy: [0,5) at 150 + [5,10) at 70.
        assert!((m.system_energy_joules(t(0.0), t(10.0)) - (750.0 + 350.0)).abs() < 1e-9);
    }

    #[test]
    fn allocation_energy_sums_member_nodes() {
        let mut m = EnergyMeter::new();
        m.set_node_watts(n(0), t(0.0), 100.0);
        m.set_node_watts(n(1), t(0.0), 100.0);
        m.set_node_watts(n(2), t(0.0), 999.0); // not in the job
        let e = m.allocation_energy_joules(&[n(0), n(1)], t(0.0), t(10.0));
        assert!((e - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn peak_and_average() {
        let mut m = EnergyMeter::new();
        m.set_node_watts(n(0), t(0.0), 100.0);
        m.set_node_watts(n(0), t(10.0), 300.0);
        m.set_node_watts(n(0), t(20.0), 100.0);
        assert_eq!(m.peak_system_watts(t(0.0), t(30.0)), 300.0);
        let avg = m.avg_system_watts(t(0.0), t(30.0));
        assert!((avg - (100.0 * 10.0 + 300.0 * 10.0 + 100.0 * 10.0) / 30.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_node_reads_zero() {
        let m = EnergyMeter::new();
        assert_eq!(m.node_watts(n(9)), 0.0);
        assert_eq!(m.node_energy_joules(n(9), t(0.0), t(10.0)), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Energy conservation: the system energy over the full horizon
        /// equals the sum of per-node energies, for arbitrary update
        /// sequences.
        #[test]
        fn system_energy_equals_node_sum(
            updates in proptest::collection::vec(
                (0u32..6, 0.1f64..50.0, 0.0f64..400.0), 1..80),
        ) {
            let mut m = EnergyMeter::new();
            let mut clock = 0.0;
            for (node, dt, w) in &updates {
                m.set_node_watts(NodeId(*node), SimTime::from_secs(clock), *w);
                clock += dt;
            }
            let end = SimTime::from_secs(clock + 10.0);
            let sys = m.system_energy_joules(SimTime::ZERO, end);
            let node_sum: f64 = (0..6)
                .map(|i| m.node_energy_joules(NodeId(i), SimTime::ZERO, end))
                .sum();
            prop_assert!((sys - node_sum).abs() < 1e-6 * (1.0 + sys.abs()),
                "system {} != node sum {}", sys, node_sum);
        }

        /// The incrementally-maintained system wattage equals the sum of
        /// the latest per-node values.
        #[test]
        fn incremental_sum_correct(
            updates in proptest::collection::vec((0u32..8, 0.0f64..500.0), 1..100),
        ) {
            let mut m = EnergyMeter::new();
            let mut latest = [0.0f64; 8];
            for (i, (node, w)) in updates.iter().enumerate() {
                m.set_node_watts(NodeId(*node), SimTime::from_secs(i as f64), *w);
                latest[*node as usize] = *w;
            }
            let expect: f64 = latest.iter().sum();
            prop_assert!((m.system_watts() - expect).abs() < 1e-6);
        }
    }
}
