//! Exact energy metering.
//!
//! Every node's power draw is a step function of time; the meter
//! integrates those steps exactly — but instead of storing a full
//! `TimeSeries` per node (a push per change point, a binary search per
//! query), each node carries just three words: its current draw, the time
//! that draw started, and the energy accumulated before that moment.
//! Updates and point-in-time energy queries are O(1), so metering cost per
//! scheduler event depends only on nodes *touched*, not cluster size.
//! The core invariant — metered energy equals the analytic integral of
//! the recorded power steps — is property-tested here and is the
//! foundation of every energy number the framework reports (Q7 results,
//! post-job user energy reports, E1–E10).
//!
//! Job energy is measured by *marking*: record `alloc_energy_to(nodes,
//! start)` when the job starts and subtract it from `alloc_energy_to(
//! nodes, end)` when it completes. Queries must be at-or-after the last
//! update of each node involved (simulation time is monotone, so this
//! holds by construction); historical window queries remain available at
//! the system level through the retained system trace.

use epa_cluster::node::NodeId;
use epa_simcore::series::TimeSeries;
use epa_simcore::time::SimTime;

/// How many incremental updates may accumulate before `system_watts` is
/// recomputed from the per-node values. Long runs make millions of
/// `+= new - old` updates whose float cancellation slowly drifts the
/// running sum; a periodic O(nodes) resync bounds that drift without
/// measurable cost (it amortizes to one add per update).
const RESYNC_INTERVAL: u32 = 4096;

/// Per-node and system-wide energy meter.
///
/// Node state lives in dense `Vec`s indexed by [`NodeId`] — node ids in a
/// cluster are contiguous, so every operation on the metering hot path is
/// direct indexing.
/// Per-node metering state: current draw, when it started, and energy
/// accumulated before that moment. One struct per node keeps all three
/// fields on the same cache line — updates and queries touch exactly one
/// line per node.
#[derive(Debug, Clone, Copy)]
struct NodeAccum {
    watts: f64,
    since: SimTime,
    acc: f64,
}

impl Default for NodeAccum {
    fn default() -> Self {
        NodeAccum {
            watts: 0.0,
            since: SimTime::ZERO,
            acc: 0.0,
        }
    }
}

#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    /// Per-node accumulators indexed by `NodeId.0`, grown on first write.
    nodes: Vec<NodeAccum>,
    system_watts: f64,
    system_trace: TimeSeries,
    updates_since_resync: u32,
}

impl EnergyMeter {
    /// Creates an empty meter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if idx >= self.nodes.len() {
            self.nodes.resize(idx + 1, NodeAccum::default());
        }
    }

    /// Applies one node update, returning the change in system draw. O(1).
    fn apply_node(&mut self, node: NodeId, t: SimTime, watts: f64) -> f64 {
        debug_assert!(watts >= 0.0, "negative power draw");
        self.ensure(node);
        let slot = &mut self.nodes[node.0 as usize];
        debug_assert!(
            t >= slot.since,
            "meter updates must be time-monotone per node"
        );
        let prev = slot.watts;
        slot.acc += prev * t.saturating_since(slot.since).as_secs();
        slot.since = t;
        slot.watts = watts;
        watts - prev
    }

    /// Folds a system-draw delta into the running sum, resyncing from the
    /// per-node values periodically to cancel accumulated float drift.
    fn commit_delta(&mut self, delta: f64, batch: u32) {
        self.system_watts += delta;
        self.updates_since_resync += batch;
        if self.updates_since_resync >= RESYNC_INTERVAL {
            self.updates_since_resync = 0;
            self.system_watts = self.nodes.iter().map(|n| n.watts).sum();
        }
        // Guard tiny negative residue from float cancellation.
        if self.system_watts < 0.0 && self.system_watts > -1e-6 {
            self.system_watts = 0.0;
        }
    }

    /// Records that `node` draws `watts` from time `t` onward.
    ///
    /// Maintains the system-level trace incrementally: the system draw is
    /// the sum of all node draws, updated at each change point.
    pub fn set_node_watts(&mut self, node: NodeId, t: SimTime, watts: f64) {
        let delta = self.apply_node(node, t, watts);
        self.commit_delta(delta, 1);
        self.system_trace.push(t, self.system_watts);
    }

    /// Records that every node in `nodes` draws `watts` from time `t`
    /// onward — one allocation-wide power step (job start, phase change,
    /// batch idle/off transition).
    ///
    /// Equivalent to calling [`set_node_watts`](Self::set_node_watts) per
    /// node (equal-time pushes to the system trace collapse to its final
    /// value), but folds the whole batch into one system-trace update.
    pub fn set_alloc_watts(&mut self, nodes: &[NodeId], t: SimTime, watts: f64) {
        if nodes.is_empty() {
            return;
        }
        let mut delta = 0.0;
        for &n in nodes {
            delta += self.apply_node(n, t, watts);
        }
        self.commit_delta(delta, nodes.len() as u32);
        self.system_trace.push(t, self.system_watts);
    }

    /// Current draw of one node in watts (0 if never recorded).
    #[must_use]
    pub fn node_watts(&self, node: NodeId) -> f64 {
        self.nodes.get(node.0 as usize).map_or(0.0, |n| n.watts)
    }

    /// Current system draw in watts.
    #[must_use]
    pub fn system_watts(&self) -> f64 {
        self.system_watts
    }

    /// Total energy consumed by one node from time zero through `t`,
    /// joules. O(1). `t` must be at-or-after the node's latest update
    /// (simulation time is monotone, so callers get this for free).
    #[must_use]
    pub fn node_energy_to(&self, node: NodeId, t: SimTime) -> f64 {
        let Some(slot) = self.nodes.get(node.0 as usize) else {
            return 0.0;
        };
        debug_assert!(
            t >= slot.since,
            "meter energy queries must be time-monotone"
        );
        slot.acc + slot.watts * t.saturating_since(slot.since).as_secs()
    }

    /// Total energy of `nodes` from time zero through `t`, joules —
    /// summed in the order given. Pair two calls to measure a job: mark
    /// at start, subtract from the value at completion. This is the
    /// number Tokyo Tech and JCAHPC hand users at the end of every job.
    #[must_use]
    pub fn alloc_energy_to(&self, nodes: &[NodeId], t: SimTime) -> f64 {
        nodes.iter().map(|&n| self.node_energy_to(n, t)).sum()
    }

    /// System energy over `[a, b]`, joules.
    #[must_use]
    pub fn system_energy_joules(&self, a: SimTime, b: SimTime) -> f64 {
        self.system_trace.integrate(a, b)
    }

    /// The system power trace (for telemetry, peak analysis, reports).
    #[must_use]
    pub fn system_trace(&self) -> &TimeSeries {
        &self.system_trace
    }

    /// Peak system draw on `[a, b]`, watts.
    #[must_use]
    pub fn peak_system_watts(&self, a: SimTime, b: SimTime) -> f64 {
        self.system_trace.max_on(a, b).unwrap_or(0.0)
    }

    /// Average system draw on `[a, b]`, watts.
    #[must_use]
    pub fn avg_system_watts(&self, a: SimTime, b: SimTime) -> f64 {
        self.system_trace.time_weighted_mean(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn single_node_energy() {
        let mut m = EnergyMeter::new();
        m.set_node_watts(n(0), t(0.0), 100.0);
        m.set_node_watts(n(0), t(10.0), 200.0);
        // [0,10) at 100 + [10,20) at 200.
        assert!((m.node_energy_to(n(0), t(20.0)) - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn mark_diff_measures_a_window() {
        let mut m = EnergyMeter::new();
        m.set_node_watts(n(0), t(0.0), 50.0); // idle history before the job
        let mark = m.alloc_energy_to(&[n(0)], t(5.0));
        m.set_node_watts(n(0), t(5.0), 200.0); // job starts
        let end = m.alloc_energy_to(&[n(0)], t(15.0));
        assert!((end - mark - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn system_tracks_sum_of_nodes() {
        let mut m = EnergyMeter::new();
        m.set_node_watts(n(0), t(0.0), 100.0);
        m.set_node_watts(n(1), t(0.0), 50.0);
        assert_eq!(m.system_watts(), 150.0);
        m.set_node_watts(n(0), t(5.0), 20.0);
        assert_eq!(m.system_watts(), 70.0);
        // System energy: [0,5) at 150 + [5,10) at 70.
        assert!((m.system_energy_joules(t(0.0), t(10.0)) - (750.0 + 350.0)).abs() < 1e-9);
    }

    #[test]
    fn alloc_energy_sums_member_nodes() {
        let mut m = EnergyMeter::new();
        m.set_node_watts(n(0), t(0.0), 100.0);
        m.set_node_watts(n(1), t(0.0), 100.0);
        m.set_node_watts(n(2), t(0.0), 999.0); // not in the job
        let e = m.alloc_energy_to(&[n(0), n(1)], t(10.0));
        assert!((e - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn peak_and_average() {
        let mut m = EnergyMeter::new();
        m.set_node_watts(n(0), t(0.0), 100.0);
        m.set_node_watts(n(0), t(10.0), 300.0);
        m.set_node_watts(n(0), t(20.0), 100.0);
        assert_eq!(m.peak_system_watts(t(0.0), t(30.0)), 300.0);
        let avg = m.avg_system_watts(t(0.0), t(30.0));
        assert!((avg - (100.0 * 10.0 + 300.0 * 10.0 + 100.0 * 10.0) / 30.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_node_reads_zero() {
        let m = EnergyMeter::new();
        assert_eq!(m.node_watts(n(9)), 0.0);
        assert_eq!(m.node_energy_to(n(9), t(10.0)), 0.0);
    }

    #[test]
    fn batched_update_equals_sequential() {
        let nodes = [n(0), n(1), n(2), n(3)];
        let mut batched = EnergyMeter::new();
        let mut sequential = EnergyMeter::new();
        batched.set_alloc_watts(&nodes, t(0.0), 100.0);
        batched.set_alloc_watts(&nodes[..2], t(10.0), 250.0);
        for &nd in &nodes {
            sequential.set_node_watts(nd, t(0.0), 100.0);
        }
        for &nd in &nodes[..2] {
            sequential.set_node_watts(nd, t(10.0), 250.0);
        }
        assert_eq!(batched.system_watts(), sequential.system_watts());
        let (a, b) = (t(0.0), t(20.0));
        assert!(
            (batched.system_energy_joules(a, b) - sequential.system_energy_joules(a, b)).abs()
                < 1e-9
        );
        for &nd in &nodes {
            assert_eq!(
                batched.node_energy_to(nd, b),
                sequential.node_energy_to(nd, b)
            );
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut m = EnergyMeter::new();
        m.set_alloc_watts(&[], t(0.0), 100.0);
        assert_eq!(m.system_watts(), 0.0);
        assert!(m.system_trace().is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Energy conservation: the system energy over the full horizon
        /// equals the sum of per-node energies, for arbitrary
        /// time-monotone update sequences.
        #[test]
        fn system_energy_equals_node_sum(
            updates in proptest::collection::vec(
                (0u32..6, 0.1f64..50.0, 0.0f64..400.0), 1..80),
        ) {
            let mut m = EnergyMeter::new();
            let mut clock = 0.0;
            for (node, dt, w) in &updates {
                m.set_node_watts(NodeId(*node), SimTime::from_secs(clock), *w);
                clock += dt;
            }
            let end = SimTime::from_secs(clock + 10.0);
            let sys = m.system_energy_joules(SimTime::ZERO, end);
            let node_sum: f64 = (0..6)
                .map(|i| m.node_energy_to(NodeId(i), end))
                .sum();
            prop_assert!((sys - node_sum).abs() < 1e-6 * (1.0 + sys.abs()),
                "system {} != node sum {}", sys, node_sum);
        }

        /// O(1) accumulator energy equals the analytic step-function
        /// integral computed from the raw update list.
        #[test]
        fn accumulator_matches_analytic_integral(
            updates in proptest::collection::vec(
                (0u32..4, 0.1f64..50.0, 0.0f64..400.0), 1..60),
        ) {
            let mut m = EnergyMeter::new();
            let mut clock = 0.0;
            let mut steps: Vec<(u32, f64, f64)> = Vec::new(); // (node, t, w)
            for (node, dt, w) in &updates {
                m.set_node_watts(NodeId(*node), SimTime::from_secs(clock), *w);
                steps.push((*node, clock, *w));
                clock += dt;
            }
            let end = clock + 7.0;
            for node in 0..4u32 {
                // Analytic: sum over this node's steps of w * (next_t - t).
                let mine: Vec<(f64, f64)> = steps.iter()
                    .filter(|(n, _, _)| *n == node)
                    .map(|&(_, t, w)| (t, w))
                    .collect();
                let mut analytic = 0.0;
                for (i, &(t, w)) in mine.iter().enumerate() {
                    let next = mine.get(i + 1).map_or(end, |&(nt, _)| nt);
                    analytic += w * (next - t);
                }
                let got = m.node_energy_to(NodeId(node), SimTime::from_secs(end));
                prop_assert!((got - analytic).abs() < 1e-6 * (1.0 + analytic.abs()),
                    "node {}: {} vs analytic {}", node, got, analytic);
            }
        }

        /// The incrementally-maintained system wattage equals the sum of
        /// the latest per-node values.
        #[test]
        fn incremental_sum_correct(
            updates in proptest::collection::vec((0u32..8, 0.0f64..500.0), 1..100),
        ) {
            let mut m = EnergyMeter::new();
            let mut latest = [0.0f64; 8];
            for (i, (node, w)) in updates.iter().enumerate() {
                m.set_node_watts(NodeId(*node), SimTime::from_secs(i as f64), *w);
                latest[*node as usize] = *w;
            }
            let expect: f64 = latest.iter().sum();
            prop_assert!((m.system_watts() - expect).abs() < 1e-6);
        }

        /// Long-horizon drift: after 10k updates the running system sum
        /// must still match the per-node values exactly (the periodic
        /// resync crosses RESYNC_INTERVAL twice in this sequence, so this
        /// exercises the resync path, not just incremental accumulation).
        #[test]
        fn incremental_sum_correct_long_horizon(
            seed_updates in proptest::collection::vec((0u32..16, 0.0f64..500.0), 32),
        ) {
            let mut m = EnergyMeter::new();
            let mut latest = [0.0f64; 16];
            let mut k = 0usize;
            // Tile the 32 generated updates into a 10_000-step sequence
            // with per-step perturbed wattages.
            for rep in 0..10_000usize / seed_updates.len() + 1 {
                for (node, w) in &seed_updates {
                    if k >= 10_000 { break; }
                    let w = w + (rep as f64) * 1e-3;
                    m.set_node_watts(NodeId(*node), SimTime::from_secs(k as f64), w);
                    latest[*node as usize] = w;
                    k += 1;
                }
            }
            let expect: f64 = latest.iter().sum();
            prop_assert!(
                (m.system_watts() - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                "drift after {} updates: {} vs {}", k, m.system_watts(), expect
            );
        }

        /// Batched `set_alloc_watts` is observationally identical to the
        /// per-node loop: same system wattage, same energies.
        #[test]
        fn batched_matches_per_node_loop(
            batches in proptest::collection::vec(
                // (node-subset bitmask, watts) per batch step
                (1u32..256, 0.0f64..400.0), 1..60),
        ) {
            let mut batched = EnergyMeter::new();
            let mut sequential = EnergyMeter::new();
            for (i, (mask, w)) in batches.iter().enumerate() {
                let t = SimTime::from_secs(i as f64 * 3.0);
                let nodes: Vec<NodeId> =
                    (0..8).filter(|b| mask & (1 << b) != 0).map(NodeId).collect();
                batched.set_alloc_watts(&nodes, t, *w);
                for &nd in &nodes {
                    sequential.set_node_watts(nd, t, *w);
                }
            }
            prop_assert!((batched.system_watts() - sequential.system_watts()).abs() < 1e-9);
            let end = SimTime::from_secs(batches.len() as f64 * 3.0 + 5.0);
            let (eb, es) = (
                batched.system_energy_joules(SimTime::ZERO, end),
                sequential.system_energy_joules(SimTime::ZERO, end),
            );
            prop_assert!((eb - es).abs() < 1e-6 * (1.0 + es.abs()), "{} vs {}", eb, es);
            for nd in (0..8).map(NodeId) {
                let (nb, ns) = (
                    batched.node_energy_to(nd, end),
                    sequential.node_energy_to(nd, end),
                );
                prop_assert!((nb - ns).abs() < 1e-9 * (1.0 + ns.abs()));
            }
        }
    }
}
