//! Retry with exponential backoff for unreliable actuator commands.
//!
//! Production power actuators (CAPMC, RAPL writers, DVFS sysfs) fail
//! transiently; resource managers retry with backoff and eventually
//! declare the node bad. [`execute_with_retry`] simulates one command's
//! full retry sequence as a deterministic function of the RNG stream, so
//! identical seeds replay identical attempt histories.

use crate::config::ActuatorFaultConfig;
use epa_obs::{TraceBus, TraceCategory, TraceEvent};
use epa_simcore::rng::SimRng;
use epa_simcore::time::{SimDuration, SimTime};

/// Outcome of one command's attempt sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttemptReport {
    /// Total attempts made (first try + retries), at least 1.
    pub attempts: u32,
    /// Whether any attempt succeeded.
    pub succeeded: bool,
    /// Accumulated backoff latency across failed attempts. A command
    /// that succeeds on retry k still paid the backoffs before it.
    pub total_delay: SimDuration,
}

/// Runs one command through the retry policy: attempt, and on failure
/// back off exponentially and retry up to `cfg.max_retries` times.
#[must_use]
pub fn execute_with_retry(cfg: &ActuatorFaultConfig, rng: &mut SimRng) -> AttemptReport {
    let mut attempts = 0u32;
    let mut delay_secs = 0.0;
    loop {
        attempts += 1;
        if !rng.bernoulli(cfg.fail_prob) {
            return AttemptReport {
                attempts,
                succeeded: true,
                total_delay: SimDuration::from_secs(delay_secs),
            };
        }
        if attempts > cfg.max_retries {
            return AttemptReport {
                attempts,
                succeeded: false,
                total_delay: SimDuration::from_secs(delay_secs),
            };
        }
        delay_secs += cfg.backoff_delay(attempts).as_secs();
    }
}

/// [`execute_with_retry`] with decision tracing: commands that needed
/// more than one attempt (or failed outright) record an
/// [`TraceEvent::ActuationRetry`] for the target node. First-try
/// successes — the overwhelmingly common case — record nothing, keeping
/// the trace focused on anomalies. RNG consumption is identical to the
/// untraced call, so seeded runs replay the same attempt histories.
#[must_use]
pub fn execute_with_retry_traced(
    cfg: &ActuatorFaultConfig,
    rng: &mut SimRng,
    t: SimTime,
    node: u32,
    bus: &mut TraceBus,
) -> AttemptReport {
    let report = execute_with_retry(cfg, rng);
    if (report.attempts > 1 || !report.succeeded) && bus.enabled(TraceCategory::Actuation) {
        bus.record(
            t,
            TraceEvent::ActuationRetry {
                node,
                attempts: report.attempts,
                succeeded: report.succeeded,
            },
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(fail_prob: f64) -> ActuatorFaultConfig {
        ActuatorFaultConfig {
            fail_prob,
            max_retries: 3,
            backoff_base: SimDuration::from_secs(1.0),
            backoff_factor: 2.0,
            fence_after: 3,
        }
    }

    #[test]
    fn reliable_commands_succeed_first_try() {
        let mut rng = SimRng::new(1);
        let r = execute_with_retry(&cfg(0.0), &mut rng);
        assert!(r.succeeded);
        assert_eq!(r.attempts, 1);
        assert!(r.total_delay.is_zero());
    }

    #[test]
    fn always_failing_commands_exhaust_retries() {
        let mut rng = SimRng::new(1);
        let r = execute_with_retry(&cfg(1.0), &mut rng);
        assert!(!r.succeeded);
        // First try + 3 retries.
        assert_eq!(r.attempts, 4);
        // Backoffs: 1 + 2 + 4 seconds.
        assert!((r.total_delay.as_secs() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn retry_sequence_is_deterministic() {
        let run = |seed| {
            let mut rng = SimRng::new(seed);
            (0..100)
                .map(|_| execute_with_retry(&cfg(0.5), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn traced_retry_records_only_anomalies() {
        use epa_obs::{CategoryMask, TraceBus, TraceEvent};
        let t0 = SimTime::from_secs(1.0);
        let mut bus = TraceBus::new(CategoryMask::ALL, 256);
        // Reliable channel: first-try successes leave the trace empty.
        let mut rng = SimRng::new(1);
        let r = execute_with_retry_traced(&cfg(0.0), &mut rng, t0, 3, &mut bus);
        assert!(r.succeeded);
        assert!(bus.is_empty());
        // Dead channel: the exhausted sequence is recorded.
        let r = execute_with_retry_traced(&cfg(1.0), &mut rng, t0, 3, &mut bus);
        assert!(!r.succeeded);
        assert_eq!(bus.len(), 1);
        let rec = bus.iter().next().unwrap();
        assert!(matches!(
            rec.event,
            TraceEvent::ActuationRetry {
                node: 3,
                attempts: 4,
                succeeded: false
            }
        ));
        // Tracing must not perturb the RNG stream.
        let run = |traced: bool| {
            let mut rng = SimRng::new(9);
            let mut bus = TraceBus::disabled();
            (0..50)
                .map(|_| {
                    if traced {
                        execute_with_retry_traced(&cfg(0.5), &mut rng, t0, 0, &mut bus)
                    } else {
                        execute_with_retry(&cfg(0.5), &mut rng)
                    }
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn partial_failures_accumulate_delay() {
        // With 50% failure some commands succeed after >= 1 retry and
        // carry non-zero delay.
        let mut rng = SimRng::new(42);
        let reports: Vec<AttemptReport> = (0..200)
            .map(|_| execute_with_retry(&cfg(0.5), &mut rng))
            .collect();
        assert!(reports
            .iter()
            .any(|r| r.succeeded && !r.total_delay.is_zero()));
        assert!(reports.iter().any(|r| !r.succeeded));
    }
}
