//! Retry with exponential backoff for unreliable actuator commands.
//!
//! Production power actuators (CAPMC, RAPL writers, DVFS sysfs) fail
//! transiently; resource managers retry with backoff and eventually
//! declare the node bad. [`execute_with_retry`] simulates one command's
//! full retry sequence as a deterministic function of the RNG stream, so
//! identical seeds replay identical attempt histories.

use crate::config::ActuatorFaultConfig;
use epa_simcore::rng::SimRng;
use epa_simcore::time::SimDuration;

/// Outcome of one command's attempt sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttemptReport {
    /// Total attempts made (first try + retries), at least 1.
    pub attempts: u32,
    /// Whether any attempt succeeded.
    pub succeeded: bool,
    /// Accumulated backoff latency across failed attempts. A command
    /// that succeeds on retry k still paid the backoffs before it.
    pub total_delay: SimDuration,
}

/// Runs one command through the retry policy: attempt, and on failure
/// back off exponentially and retry up to `cfg.max_retries` times.
#[must_use]
pub fn execute_with_retry(cfg: &ActuatorFaultConfig, rng: &mut SimRng) -> AttemptReport {
    let mut attempts = 0u32;
    let mut delay_secs = 0.0;
    loop {
        attempts += 1;
        if !rng.bernoulli(cfg.fail_prob) {
            return AttemptReport {
                attempts,
                succeeded: true,
                total_delay: SimDuration::from_secs(delay_secs),
            };
        }
        if attempts > cfg.max_retries {
            return AttemptReport {
                attempts,
                succeeded: false,
                total_delay: SimDuration::from_secs(delay_secs),
            };
        }
        delay_secs += cfg.backoff_delay(attempts).as_secs();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(fail_prob: f64) -> ActuatorFaultConfig {
        ActuatorFaultConfig {
            fail_prob,
            max_retries: 3,
            backoff_base: SimDuration::from_secs(1.0),
            backoff_factor: 2.0,
            fence_after: 3,
        }
    }

    #[test]
    fn reliable_commands_succeed_first_try() {
        let mut rng = SimRng::new(1);
        let r = execute_with_retry(&cfg(0.0), &mut rng);
        assert!(r.succeeded);
        assert_eq!(r.attempts, 1);
        assert!(r.total_delay.is_zero());
    }

    #[test]
    fn always_failing_commands_exhaust_retries() {
        let mut rng = SimRng::new(1);
        let r = execute_with_retry(&cfg(1.0), &mut rng);
        assert!(!r.succeeded);
        // First try + 3 retries.
        assert_eq!(r.attempts, 4);
        // Backoffs: 1 + 2 + 4 seconds.
        assert!((r.total_delay.as_secs() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn retry_sequence_is_deterministic() {
        let run = |seed| {
            let mut rng = SimRng::new(seed);
            (0..100)
                .map(|_| execute_with_retry(&cfg(0.5), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn partial_failures_accumulate_delay() {
        // With 50% failure some commands succeed after >= 1 retry and
        // carry non-zero delay.
        let mut rng = SimRng::new(42);
        let reports: Vec<AttemptReport> = (0..200)
            .map(|_| execute_with_retry(&cfg(0.5), &mut rng))
            .collect();
        assert!(reports
            .iter()
            .any(|r| r.succeeded && !r.total_delay.is_zero()));
        assert!(reports.iter().any(|r| !r.succeeded));
    }
}
