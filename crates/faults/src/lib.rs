//! # epa-faults — deterministic fault injection for the EPA JSRM stack
//!
//! The survey's Figure 1 control loop is "heavily dependent on telemetry
//! sensors" and on privileged actuators (RAPL/CAPMC/DVFS); production
//! sites run it against sensors that go stale and commands that fail.
//! This crate is the framework's fault model:
//!
//! - [`config::FaultConfig`] — what can go wrong: correlated failure
//!   domains (rack/PDU events), sensor dropout/stuck-at, actuator
//!   command failures with retry/backoff/fencing parameters.
//! - [`injector::FaultPlan`] — the pre-generated, seed-deterministic
//!   schedule of correlated domain events.
//! - [`injector::FaultInjector`] — the online sensor/actuator fault
//!   streams, drawn from substreams independent of the engine's RNG.
//! - [`retry::execute_with_retry`] — the exponential-backoff retry
//!   machinery actuator wrappers build on.
//!
//! Determinism is the design center: every fault is a pure function of
//! the fault seed, so chaos tests can assert byte-identical outcomes and
//! bisect regressions by seed.

pub mod config;
pub mod error;
pub mod injector;
pub mod retry;

pub use config::{ActuatorFaultConfig, DomainFaultConfig, FaultConfig, SensorFaultConfig};
pub use error::FaultError;
pub use injector::{DomainEvent, FaultInjector, FaultPlan, SensorSample};
pub use retry::{execute_with_retry, execute_with_retry_traced, AttemptReport};
