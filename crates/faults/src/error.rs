//! Error types for the fault-injection layer.

use thiserror::Error;

/// Errors from fault-model configuration.
#[derive(Debug, Error, PartialEq, Eq)]
pub enum FaultError {
    /// A fault configuration was degenerate (zero rates, negative
    /// probabilities, empty domains, …).
    #[error("invalid fault configuration: {0}")]
    InvalidConfig(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            FaultError::InvalidConfig("x".into()).to_string(),
            "invalid fault configuration: x"
        );
    }
}
