//! The deterministic fault plan and the online fault injector.
//!
//! [`FaultPlan::generate`] pre-computes the correlated failure-domain
//! schedule (which rack/PDU fails, when) as a pure function of the fault
//! seed, so a simulation can schedule every domain event up front and two
//! runs with the same seed replay the same schedule byte-for-byte.
//! [`FaultInjector`] owns the *online* streams — sensor-sample faults and
//! actuator-command faults — that must be drawn at event time.

use crate::config::{FaultConfig, SensorFaultConfig};
use crate::error::FaultError;
use crate::retry::{execute_with_retry, AttemptReport};
use epa_simcore::rng::SimRng;
use epa_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One correlated failure event: a whole failure domain (rack/PDU group)
/// goes down at `t`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainEvent {
    /// Event time.
    pub t: SimTime,
    /// Index of the failing domain (cabinet index in the cluster model).
    pub domain: u32,
    /// Repair time for the affected nodes.
    pub repair_time: SimDuration,
}

/// The pre-generated schedule of correlated failure events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Domain events in chronological order.
    pub domain_events: Vec<DomainEvent>,
}

impl FaultPlan {
    /// Generates the domain-event schedule for `num_domains` failure
    /// domains over `[0, horizon]`. Inter-arrival times are exponential
    /// with the configured MTBF; the failing domain is uniform.
    #[must_use]
    pub fn generate(config: &FaultConfig, horizon: SimTime, num_domains: u32) -> FaultPlan {
        let Some(domain) = &config.domain else {
            return FaultPlan::default();
        };
        if num_domains == 0 {
            return FaultPlan::default();
        }
        let mut rng = SimRng::new(config.seed).stream("faults-domain");
        let rate = 1.0 / domain.mtbf.as_secs().max(1e-9);
        let mut events = Vec::new();
        let mut t = SimTime::from_secs(rng.exponential(rate));
        while t <= horizon {
            let d = rng.uniform_usize(0, num_domains as usize) as u32;
            events.push(DomainEvent {
                t,
                domain: d,
                repair_time: domain.repair_time,
            });
            t += SimDuration::from_secs(rng.exponential(rate));
        }
        FaultPlan {
            domain_events: events,
        }
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.domain_events.len()
    }

    /// True when no events are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.domain_events.is_empty()
    }
}

/// What one telemetry sample draw produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorSample {
    /// The sample went through.
    Ok,
    /// The sample was lost; the consumer's last reading ages.
    Dropout,
    /// The sensor enters a stuck-at window: it keeps reporting its last
    /// value with fresh timestamps for the configured duration.
    Stuck,
}

/// Online fault streams: sensor-sample and actuator-command faults.
///
/// All draws come from substreams of the fault seed, independent of the
/// engine's own RNG, so enabling faults cannot perturb workload or
/// failure-injection randomness (common-random-numbers discipline).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    sensor_rng: SimRng,
    actuator_rng: SimRng,
}

impl FaultInjector {
    /// Creates an injector from a validated config.
    pub fn new(config: FaultConfig) -> Result<Self, FaultError> {
        config.validate()?;
        let root = SimRng::new(config.seed);
        Ok(FaultInjector {
            sensor_rng: root.stream("faults-sensor"),
            actuator_rng: root.stream("faults-actuator"),
            config,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The sensor sub-config, if sensor faults are enabled.
    #[must_use]
    pub fn sensor_config(&self) -> Option<&SensorFaultConfig> {
        self.config.sensor.as_ref()
    }

    /// Encodes the positions of the two online fault streams. The config
    /// is not stored — it is re-supplied at [`FaultInjector::restore_from`]
    /// (and cross-checked against the engine fingerprint by the caller).
    pub fn snapshot_into(&self, w: &mut epa_simcore::snap::SnapWriter) {
        let (seed, pos) = self.sensor_rng.snapshot_state();
        w.u64(seed);
        w.u64(pos);
        let (seed, pos) = self.actuator_rng.snapshot_state();
        w.u64(seed);
        w.u64(pos);
    }

    /// Rebuilds an injector at the exact stream positions written by
    /// [`FaultInjector::snapshot_into`].
    pub fn restore_from(
        r: &mut epa_simcore::snap::SnapReader<'_>,
        config: FaultConfig,
    ) -> Result<Self, epa_simcore::snap::SnapshotError> {
        let sensor_rng = SimRng::from_state(r.u64()?, r.u64()?);
        let actuator_rng = SimRng::from_state(r.u64()?, r.u64()?);
        Ok(FaultInjector {
            config,
            sensor_rng,
            actuator_rng,
        })
    }

    /// Draws the fate of one telemetry sample. Returns [`SensorSample::Ok`]
    /// (without consuming randomness) when sensor faults are disabled.
    pub fn sensor_sample(&mut self) -> SensorSample {
        let Some(s) = &self.config.sensor else {
            return SensorSample::Ok;
        };
        if self.sensor_rng.bernoulli(s.dropout_prob) {
            return SensorSample::Dropout;
        }
        if self.sensor_rng.bernoulli(s.stuck_prob) {
            return SensorSample::Stuck;
        }
        SensorSample::Ok
    }

    /// Runs one actuator command through the retry policy. Returns an
    /// always-successful zero-delay report when actuator faults are
    /// disabled.
    pub fn actuate(&mut self) -> AttemptReport {
        match &self.config.actuator {
            Some(a) => execute_with_retry(a, &mut self.actuator_rng),
            None => AttemptReport {
                attempts: 1,
                succeeded: true,
                total_delay: SimDuration::ZERO,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ActuatorFaultConfig, DomainFaultConfig};

    fn domain_config(seed: u64) -> FaultConfig {
        FaultConfig {
            domain: Some(DomainFaultConfig {
                mtbf: SimDuration::from_hours(6.0),
                repair_time: SimDuration::from_hours(2.0),
            }),
            sensor: None,
            actuator: None,
            seed,
        }
    }

    #[test]
    fn plan_is_deterministic_per_seed() {
        let horizon = SimTime::from_days(7.0);
        let a = FaultPlan::generate(&domain_config(1), horizon, 8);
        let b = FaultPlan::generate(&domain_config(1), horizon, 8);
        let c = FaultPlan::generate(&domain_config(2), horizon, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn plan_respects_horizon_and_domains() {
        let horizon = SimTime::from_days(30.0);
        let plan = FaultPlan::generate(&domain_config(3), horizon, 4);
        assert!(plan.len() > 50, "30 days at 6 h MTBF should yield many");
        for e in &plan.domain_events {
            assert!(e.t <= horizon);
            assert!(e.domain < 4);
        }
        // Chronological order.
        for w in plan.domain_events.windows(2) {
            assert!(w[0].t <= w[1].t);
        }
    }

    #[test]
    fn no_domain_config_means_empty_plan() {
        let plan = FaultPlan::generate(&FaultConfig::default(), SimTime::from_days(30.0), 8);
        assert!(plan.is_empty());
        let plan0 = FaultPlan::generate(&domain_config(1), SimTime::from_days(30.0), 0);
        assert!(plan0.is_empty());
    }

    #[test]
    fn disabled_streams_are_faultless() {
        let mut inj = FaultInjector::new(FaultConfig::default()).unwrap();
        for _ in 0..100 {
            assert_eq!(inj.sensor_sample(), SensorSample::Ok);
            let r = inj.actuate();
            assert!(r.succeeded);
            assert!(r.total_delay.is_zero());
        }
    }

    #[test]
    fn sensor_faults_mix_outcomes() {
        let cfg = FaultConfig {
            sensor: Some(SensorFaultConfig {
                dropout_prob: 0.3,
                stuck_prob: 0.3,
                ..SensorFaultConfig::default()
            }),
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(cfg).unwrap();
        let samples: Vec<SensorSample> = (0..500).map(|_| inj.sensor_sample()).collect();
        assert!(samples.contains(&SensorSample::Ok));
        assert!(samples.contains(&SensorSample::Dropout));
        assert!(samples.contains(&SensorSample::Stuck));
    }

    #[test]
    fn injector_rejects_invalid_config() {
        let bad = FaultConfig {
            actuator: Some(ActuatorFaultConfig {
                fail_prob: 2.0,
                ..ActuatorFaultConfig::default()
            }),
            ..FaultConfig::default()
        };
        assert!(FaultInjector::new(bad).is_err());
    }

    #[test]
    fn injector_streams_deterministic() {
        let cfg = FaultConfig {
            sensor: Some(SensorFaultConfig::default()),
            actuator: Some(ActuatorFaultConfig {
                fail_prob: 0.5,
                ..ActuatorFaultConfig::default()
            }),
            seed: 9,
            ..FaultConfig::default()
        };
        let run = || {
            let mut inj = FaultInjector::new(cfg.clone()).unwrap();
            let s: Vec<SensorSample> = (0..50).map(|_| inj.sensor_sample()).collect();
            let a: Vec<AttemptReport> = (0..50).map(|_| inj.actuate()).collect();
            (s, a)
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::config::DomainFaultConfig;
    use epa_cluster::alloc::{AllocStrategy, Allocator};
    use epa_cluster::node::NodeId;
    use epa_cluster::topology::Topology;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Capacity recovers after faults: under any generated fault
        /// schedule, once every repair has been applied the allocator's
        /// available-node count equals the original system size.
        #[test]
        fn capacity_recovers_after_all_repairs(
            seed in any::<u64>(),
            domains in 1u32..8,
            nodes_per_domain in 1u32..16,
            mtbf_h in 0.5f64..24.0,
            repair_h in 0.5f64..12.0,
        ) {
            let total = domains * nodes_per_domain;
            let config = FaultConfig {
                domain: Some(DomainFaultConfig {
                    mtbf: SimDuration::from_hours(mtbf_h),
                    repair_time: SimDuration::from_hours(repair_h),
                }),
                seed,
                ..FaultConfig::default()
            };
            let plan = FaultPlan::generate(&config, SimTime::from_days(7.0), domains);
            let mut alloc = Allocator::new(
                total,
                AllocStrategy::FirstFit,
                Topology::FatTree { arity: 8 },
            );
            // Replay the plan chronologically, interleaving repairs:
            // nodes already down ride through an overlapping event.
            let mut repairs: BTreeMap<(u64, u32), NodeId> = BTreeMap::new();
            let mut down = vec![false; total as usize];
            let mut seq = 0u32;
            for event in &plan.domain_events {
                // Apply repairs due before this event. Keys are
                // (time.to_bits(), seq); to_bits ordering matches numeric
                // ordering for non-negative times.
                let due: Vec<(u64, u32)> = repairs
                    .keys()
                    .copied()
                    .take_while(|&(t_bits, _)| f64::from_bits(t_bits) <= event.t.as_secs())
                    .collect();
                for k in due {
                    let n = repairs.remove(&k).unwrap();
                    down[n.index()] = false;
                    prop_assert!(alloc.mark_available(n));
                }
                let lo = event.domain * nodes_per_domain;
                for i in lo..lo + nodes_per_domain {
                    let n = NodeId(i);
                    if !down[n.index()] {
                        down[n.index()] = true;
                        prop_assert!(alloc.mark_unavailable(n));
                        let t_repair = event.t + event.repair_time;
                        repairs.insert((t_repair.as_secs().to_bits(), seq), n);
                        seq += 1;
                    }
                }
            }
            // Drain every outstanding repair.
            for (_, n) in std::mem::take(&mut repairs) {
                prop_assert!(alloc.mark_available(n));
            }
            prop_assert_eq!(alloc.free_count(), total as usize);
        }
    }
}
