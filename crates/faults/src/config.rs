//! Fault-model configuration: what can go wrong, and how often.
//!
//! The model covers the three failure surfaces of the survey's Figure 1
//! control loop:
//!
//! - **Correlated hardware failures** ([`DomainFaultConfig`]): a rack or
//!   PDU event takes down a whole node group at once, not just one node.
//! - **Sensor faults** ([`SensorFaultConfig`]): telemetry readings drop
//!   out (staleness grows) or stick at an old value (fresh timestamps,
//!   wrong data).
//! - **Actuator faults** ([`ActuatorFaultConfig`]): privileged commands
//!   (CAPMC/RAPL cap writes, DVFS sets) fail or are delayed, and are
//!   retried with exponential backoff before the node is fenced.

use crate::error::FaultError;
use epa_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Correlated failure-domain events (rack / PDU loss).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainFaultConfig {
    /// Mean time between domain events across the whole system
    /// (exponential inter-arrival).
    pub mtbf: SimDuration,
    /// Repair time for every node the event takes down.
    pub repair_time: SimDuration,
}

impl DomainFaultConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), FaultError> {
        if self.mtbf.as_secs() <= 0.0 {
            return Err(FaultError::InvalidConfig(
                "domain MTBF must be positive".into(),
            ));
        }
        if self.repair_time.as_secs() <= 0.0 {
            return Err(FaultError::InvalidConfig(
                "domain repair time must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Telemetry sensor faults and the staleness-based degradation bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorFaultConfig {
    /// Probability a sample is dropped (no reading; staleness grows).
    pub dropout_prob: f64,
    /// Probability a sample starts a stuck-at window (the sensor keeps
    /// reporting its last value with fresh timestamps).
    pub stuck_prob: f64,
    /// Length of a stuck-at window.
    pub stuck_duration: SimDuration,
    /// When the age of the last reading exceeds this bound, consumers
    /// must stop trusting telemetry and fall back to static estimates.
    pub staleness_bound: SimDuration,
    /// Safety margin applied to the conservative (nameplate/TDP) estimate
    /// used while telemetry is stale (0.1 = +10%).
    pub safety_margin_frac: f64,
}

impl Default for SensorFaultConfig {
    fn default() -> Self {
        SensorFaultConfig {
            dropout_prob: 0.05,
            stuck_prob: 0.01,
            stuck_duration: SimDuration::from_mins(10.0),
            staleness_bound: SimDuration::from_mins(5.0),
            safety_margin_frac: 0.1,
        }
    }
}

impl SensorFaultConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), FaultError> {
        for (name, p) in [
            ("dropout_prob", self.dropout_prob),
            ("stuck_prob", self.stuck_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(FaultError::InvalidConfig(format!(
                    "{name} must be in [0, 1], got {p}"
                )));
            }
        }
        if self.staleness_bound.as_secs() <= 0.0 {
            return Err(FaultError::InvalidConfig(
                "staleness bound must be positive".into(),
            ));
        }
        if self.safety_margin_frac < 0.0 {
            return Err(FaultError::InvalidConfig(
                "safety margin cannot be negative".into(),
            ));
        }
        Ok(())
    }
}

/// Actuator-command faults and the retry/escalation policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActuatorFaultConfig {
    /// Probability any single command attempt fails.
    pub fail_prob: f64,
    /// Retries after the first failed attempt before giving up.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles by `backoff_factor` per
    /// subsequent retry. Successful commands still pay the accumulated
    /// backoff as actuation latency.
    pub backoff_base: SimDuration,
    /// Multiplier applied to the backoff on each further retry.
    pub backoff_factor: f64,
    /// After this many *consecutive* failed cap writes on one node, the
    /// node is fenced (drained and sent to repair).
    pub fence_after: u32,
}

impl Default for ActuatorFaultConfig {
    fn default() -> Self {
        ActuatorFaultConfig {
            fail_prob: 0.02,
            max_retries: 3,
            backoff_base: SimDuration::from_secs(1.0),
            backoff_factor: 2.0,
            fence_after: 3,
        }
    }
}

impl ActuatorFaultConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), FaultError> {
        if !(0.0..=1.0).contains(&self.fail_prob) {
            return Err(FaultError::InvalidConfig(format!(
                "fail_prob must be in [0, 1], got {}",
                self.fail_prob
            )));
        }
        if self.backoff_base.as_secs() < 0.0 {
            return Err(FaultError::InvalidConfig(
                "backoff base cannot be negative".into(),
            ));
        }
        if self.backoff_factor < 1.0 {
            return Err(FaultError::InvalidConfig(
                "backoff factor must be >= 1".into(),
            ));
        }
        if self.fence_after == 0 {
            return Err(FaultError::InvalidConfig(
                "fence_after must be at least 1".into(),
            ));
        }
        Ok(())
    }

    /// Backoff delay before retry number `retry` (1-based).
    #[must_use]
    pub fn backoff_delay(&self, retry: u32) -> SimDuration {
        let factor = self.backoff_factor.powi(retry.saturating_sub(1) as i32);
        SimDuration::from_secs(self.backoff_base.as_secs() * factor)
    }
}

/// The full fault model handed to the engine. Every sub-model is
/// optional; `FaultConfig::default()` injects nothing.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Correlated rack/PDU events, if enabled.
    pub domain: Option<DomainFaultConfig>,
    /// Telemetry sensor faults, if enabled.
    pub sensor: Option<SensorFaultConfig>,
    /// Actuator-command faults, if enabled.
    pub actuator: Option<ActuatorFaultConfig>,
    /// Seed for all fault streams (independent of the engine seed so the
    /// same fault schedule can be replayed under different workloads).
    pub seed: u64,
}

impl FaultConfig {
    /// Validates every configured sub-model.
    pub fn validate(&self) -> Result<(), FaultError> {
        if let Some(d) = &self.domain {
            d.validate()?;
        }
        if let Some(s) = &self.sensor {
            s.validate()?;
        }
        if let Some(a) = &self.actuator {
            a.validate()?;
        }
        Ok(())
    }

    /// True when no fault source is configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.domain.is_none() && self.sensor.is_none() && self.actuator.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        FaultConfig::default().validate().unwrap();
        SensorFaultConfig::default().validate().unwrap();
        ActuatorFaultConfig::default().validate().unwrap();
        assert!(FaultConfig::default().is_empty());
    }

    #[test]
    fn degenerate_domain_rejected() {
        let bad = DomainFaultConfig {
            mtbf: SimDuration::ZERO,
            repair_time: SimDuration::from_hours(1.0),
        };
        assert!(bad.validate().is_err());
        let bad2 = DomainFaultConfig {
            mtbf: SimDuration::from_hours(1.0),
            repair_time: SimDuration::ZERO,
        };
        assert!(bad2.validate().is_err());
    }

    #[test]
    fn probability_bounds_enforced() {
        let s = SensorFaultConfig {
            dropout_prob: 1.5,
            ..SensorFaultConfig::default()
        };
        assert!(s.validate().is_err());
        let mut a = ActuatorFaultConfig {
            fail_prob: -0.1,
            ..ActuatorFaultConfig::default()
        };
        assert!(a.validate().is_err());
        a.fail_prob = 0.5;
        a.fence_after = 0;
        assert!(a.validate().is_err());
    }

    #[test]
    fn backoff_grows_geometrically() {
        let a = ActuatorFaultConfig {
            backoff_base: SimDuration::from_secs(2.0),
            backoff_factor: 2.0,
            ..ActuatorFaultConfig::default()
        };
        assert!((a.backoff_delay(1).as_secs() - 2.0).abs() < 1e-12);
        assert!((a.backoff_delay(2).as_secs() - 4.0).abs() < 1e-12);
        assert!((a.backoff_delay(3).as_secs() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn full_config_validation_cascades() {
        let bad = FaultConfig {
            sensor: Some(SensorFaultConfig {
                staleness_bound: SimDuration::ZERO,
                ..SensorFaultConfig::default()
            }),
            ..FaultConfig::default()
        };
        assert!(bad.validate().is_err());
        assert!(!bad.is_empty());
    }
}
