//! # epa-simcore — discrete-event simulation engine
//!
//! Foundation crate for the EPA JSRM framework: a deterministic
//! discrete-event simulation kernel plus the numeric utilities every other
//! crate builds on.
//!
//! The design follows the classic event-list pattern: a [`Simulation`]
//! owns a monotonic clock and a stable priority queue of events; consumers
//! pop events, advance the clock, and react. Power accounting elsewhere in
//! the workspace is *piecewise between events*, so correctness of the engine
//! (ordering, stability, monotonicity) is the base invariant of the whole
//! reproduction — it is covered by property tests here.
//!
//! Modules:
//! - [`time`] — simulation time and durations (seconds as `f64`, checked).
//! - [`event`] — stable time-ordered event queue.
//! - [`engine`] — the [`Simulation`] driver combining clock + queue.
//! - [`rng`] — seedable, stream-splittable deterministic RNG.
//! - [`stats`] — online statistics, exact percentiles, histograms.
//! - [`series`] — time series with piecewise-constant integration.
//! - [`metrics`] — a string-keyed metrics registry for instrumentation.
//! - [`snap`] — versioned, checksummed binary snapshot codec (resumable
//!   runs).

pub mod chunk;
pub mod engine;
pub mod error;
pub mod event;
pub mod metrics;
pub mod quantile;
pub mod rng;
pub mod series;
pub mod snap;
pub mod stats;
pub mod time;

pub use engine::Simulation;
pub use error::SimError;
pub use event::EventQueue;
pub use metrics::MetricsRegistry;
pub use quantile::P2Quantile;
pub use rng::SimRng;
pub use series::{BoundedSeries, TimeSeries};
pub use snap::{SnapReader, SnapWriter, SnapshotError};
pub use stats::{Histogram, OnlineStats, Percentiles, SummaryStats};
pub use time::{SimDuration, SimTime};
