//! Stable time-ordered event queue.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] that delivers
//! events in non-decreasing time order and, for equal timestamps, in FIFO
//! insertion order. Stability matters: EPA policies schedule cascades of
//! zero-delay follow-up events (e.g. "cap enforced" → "telemetry sampled")
//! whose relative order must be deterministic for reproducible runs.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue delivering `(SimTime, E)` pairs in stable time order.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Inserts an event at an absolute time.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.alloc_seq();
        self.heap.push(Entry { time, seq, payload });
    }

    /// Allocates the next sequence number without pushing an event.
    ///
    /// A sharded engine routes some events into side queues but must keep
    /// one global `(time, seq)` order across *all* queues: allocating the
    /// seq here lets a side queue hold events that interleave with this
    /// queue's exactly as if they had been pushed into it.
    pub fn alloc_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// Inserts an event under a caller-allocated sequence number (from
    /// [`EventQueue::alloc_seq`], possibly of a *different* queue sharing
    /// the numbering). Does not advance this queue's own counter.
    pub fn push_with_seq(&mut self, time: SimTime, seq: u64, payload: E) {
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Removes and returns the earliest event with its `(time, seq)` key.
    pub fn pop_keyed(&mut self) -> Option<(SimTime, u64, E)> {
        self.heap.pop().map(|e| (e.time, e.seq, e.payload))
    }

    /// Time of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// `(time, seq)` key of the next event without removing it. Keys are
    /// totally ordered and unique when all queues involved share one seq
    /// numbering, so this is the conservative-window bound a sharded
    /// drain needs.
    #[must_use]
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|e| (e.time, e.seq))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// The next sequence number this queue would allocate. Snapshot
    /// state: restoring it (with [`EventQueue::set_seq`]) preserves the
    /// global `(time, seq)` numbering across a save/resume boundary.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Overwrites the sequence counter (snapshot restore).
    pub fn set_seq(&mut self, seq: u64) {
        self.seq = seq;
    }

    /// Every pending event as `(time, seq, &payload)`, sorted by key.
    ///
    /// The heap's internal layout depends on insertion history, so a
    /// byte-stable serialization (snapshot→restore→snapshot equality)
    /// must iterate in key order, which this provides without draining.
    #[must_use]
    pub fn sorted_entries(&self) -> Vec<(SimTime, u64, &E)> {
        let mut out: Vec<(SimTime, u64, &E)> = self
            .heap
            .iter()
            .map(|e| (e.time, e.seq, &e.payload))
            .collect();
        out.sort_unstable_by_key(|&(t, seq, _)| (t, seq));
        out
    }

    /// Drains all events in time order into a vector.
    pub fn drain_sorted(&mut self) -> Vec<(SimTime, E)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.pop() {
            out.push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), "c");
        q.push(SimTime::from_secs(1.0), "a");
        q.push(SimTime::from_secs(2.0), "b");
        let order: Vec<_> = q.drain_sorted().into_iter().map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = q.drain_sorted().into_iter().map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10.0), 10);
        q.push(SimTime::from_secs(5.0), 5);
        assert_eq!(q.pop().unwrap().1, 5);
        q.push(SimTime::from_secs(7.0), 7);
        q.push(SimTime::from_secs(20.0), 20);
        assert_eq!(q.pop().unwrap().1, 7);
        assert_eq!(q.pop().unwrap().1, 10);
        assert_eq!(q.pop().unwrap().1, 20);
        assert!(q.pop().is_none());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn shared_seq_numbering_interleaves_queues() {
        // A side queue holding events under seqs allocated from the main
        // queue merges into the exact order a single queue would produce.
        let mut main = EventQueue::new();
        let mut side: EventQueue<&str> = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        main.push(t, "a"); // seq 0
        side.push_with_seq(t, main.alloc_seq(), "b"); // seq 1
        main.push(t, "c"); // seq 2
        let (_, s_side, p_side) = side.pop_keyed().unwrap();
        assert_eq!((s_side, p_side), (1, "b"));
        let (_, s0, p0) = main.pop_keyed().unwrap();
        let (_, s2, p2) = main.pop_keyed().unwrap();
        assert_eq!((s0, p0), (0, "a"));
        assert_eq!((s2, p2), (2, "c"));
    }

    #[test]
    fn peek_key_orders_before_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2.0), "late");
        q.push(SimTime::from_secs(1.0), "early");
        assert_eq!(q.peek_key(), Some((SimTime::from_secs(1.0), 1)));
        assert_eq!(q.pop_keyed().unwrap().2, "early");
        assert_eq!(q.peek_key(), Some((SimTime::from_secs(2.0), 0)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Events always pop in non-decreasing time order, and events that
        /// share a timestamp pop in insertion order (stability).
        #[test]
        fn ordering_and_stability(times in proptest::collection::vec(0u32..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_secs(f64::from(*t)), i);
            }
            let drained = q.drain_sorted();
            for w in drained.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "time order violated");
                if w[0].0 == w[1].0 {
                    prop_assert!(w[0].1 < w[1].1, "stability violated");
                }
            }
            prop_assert_eq!(drained.len(), times.len());
        }

        /// Popping after arbitrary interleavings never yields an event
        /// earlier than one already popped.
        #[test]
        fn monotone_under_interleaving(ops in proptest::collection::vec((0u32..100, proptest::bool::ANY), 1..200)) {
            let mut q = EventQueue::new();
            let mut last_popped: Option<SimTime> = None;
            let mut pending_min: Option<SimTime> = None;
            for (t, is_push) in ops {
                if is_push {
                    // Never push into the past relative to what we already popped:
                    // mimic the engine contract (schedule at >= now).
                    let base = last_popped.map_or(0.0, SimTime::as_secs);
                    let time = SimTime::from_secs(base + f64::from(t));
                    q.push(time, ());
                    pending_min = Some(pending_min.map_or(time, |m| m.min(time)));
                } else if let Some((pt, ())) = q.pop() {
                    if let Some(lp) = last_popped {
                        prop_assert!(pt >= lp);
                    }
                    last_popped = Some(pt);
                }
            }
        }
    }
}
