//! Online statistics, percentiles, and histograms.
//!
//! Question 3(e) of the survey asks each center for the min / 10th / 25th /
//! median / 75th / 90th / max percentiles of job size and wallclock time —
//! [`Percentiles`] and [`SummaryStats`] produce exactly that report.
//! [`OnlineStats`] is a Welford accumulator used throughout the framework
//! where only moments are needed and storing samples would be wasteful.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean/variance/min/max (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "OnlineStats observation must be finite");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (Bessel-corrected) variance.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Encodes the accumulator into a snapshot (bit-exact moments).
    pub fn snapshot_into(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.count);
        w.f64(self.mean);
        w.f64(self.m2);
        w.f64(self.min);
        w.f64(self.max);
    }

    /// Decodes an accumulator written by [`OnlineStats::snapshot_into`].
    pub fn restore_from(
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<Self, crate::snap::SnapshotError> {
        Ok(OnlineStats {
            count: r.u64()?,
            mean: r.f64()?,
            m2: r.f64()?,
            min: r.f64()?,
            max: r.f64()?,
        })
    }
}

/// Exact percentile computation over stored samples.
///
/// Uses the linear-interpolation definition (type 7, the numpy default):
/// for a sorted sample `x[0..n]`, `quantile(q) = x[i] + frac * (x[i+1] - x[i])`
/// with `i = floor(q * (n - 1))`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty sample set.
    #[must_use]
    pub fn new() -> Self {
        Percentiles {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        self.samples.push(x);
        self.sorted = false;
    }

    /// Adds many observations.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.push(x);
        }
    }

    /// Encodes the sample store into a snapshot. The samples are written
    /// in their current storage order together with the sorted flag, so
    /// the restored store is byte-for-byte the same state.
    pub fn snapshot_into(&self, w: &mut crate::snap::SnapWriter) {
        w.seq(&self.samples, |w, &x| w.f64(x));
        w.bool(self.sorted);
    }

    /// Decodes a sample store written by [`Percentiles::snapshot_into`].
    pub fn restore_from(
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<Self, crate::snap::SnapshotError> {
        Ok(Percentiles {
            samples: r.seq(crate::snap::SnapReader::f64)?,
            sorted: r.bool()?,
        })
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no observations were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Raw samples in insertion-or-sorted order (order unspecified).
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }

    /// Quantile `q` in `[0, 1]`. Returns `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        if n == 1 {
            return Some(self.samples[0]);
        }
        let pos = q * (n - 1) as f64;
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        let lo = self.samples[i];
        let hi = self.samples[(i + 1).min(n - 1)];
        Some(lo + frac * (hi - lo))
    }

    /// Percentile `p` in `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        self.quantile(p / 100.0)
    }

    /// The survey's Q3(e) report: min, p10, p25, median, p75, p90, max, mean.
    pub fn summary(&mut self) -> Option<SummaryStats> {
        if self.samples.is_empty() {
            return None;
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        Some(SummaryStats {
            count: self.samples.len() as u64,
            min: self.quantile(0.0)?,
            p10: self.quantile(0.10)?,
            p25: self.quantile(0.25)?,
            median: self.quantile(0.50)?,
            p75: self.quantile(0.75)?,
            p90: self.quantile(0.90)?,
            max: self.quantile(1.0)?,
            mean,
        })
    }
}

/// The percentile summary shape requested by survey question Q3(e).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Number of observations summarized.
    pub count: u64,
    /// Minimum observation.
    pub min: f64,
    /// 10th percentile.
    pub p10: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// A fixed-width-bin histogram over `[lo, hi)` with under/overflow bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `nbins` equal-width bins covering `[lo, hi)`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo && nbins > 0, "invalid histogram range or bin count");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    #[must_use]
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// `(lo, hi)` edges of bin `i`.
    #[must_use]
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Number of bins.
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Total observations including under/overflow.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below `lo`.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Renders a compact ASCII bar chart (used by experiment binaries).
    #[must_use]
    pub fn render_ascii(&self, width: usize) -> String {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_edges(i);
            let bar = "#".repeat(((c as f64 / peak as f64) * width as f64).round() as usize);
            out.push_str(&format!("[{lo:>10.1}, {hi:>10.1}) {c:>8} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-9);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(100.0));
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.7 - 20.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.mean(), before);
    }

    #[test]
    fn percentiles_known_values() {
        let mut p = Percentiles::new();
        p.extend((1..=100).map(f64::from));
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.quantile(1.0), Some(100.0));
        assert!((p.quantile(0.5).unwrap() - 50.5).abs() < 1e-9);
        assert!((p.percentile(25.0).unwrap() - 25.75).abs() < 1e-9);
    }

    #[test]
    fn percentiles_single_sample() {
        let mut p = Percentiles::new();
        p.push(7.0);
        assert_eq!(p.quantile(0.0), Some(7.0));
        assert_eq!(p.quantile(0.5), Some(7.0));
        assert_eq!(p.quantile(1.0), Some(7.0));
    }

    #[test]
    fn percentiles_empty_is_none() {
        let mut p = Percentiles::new();
        assert_eq!(p.quantile(0.5), None);
        assert!(p.summary().is_none());
    }

    #[test]
    fn summary_is_q3e_shape() {
        let mut p = Percentiles::new();
        p.extend((1..=1000).map(f64::from));
        let s = p.summary().unwrap();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        assert!((s.median - 500.5).abs() < 1e-9);
        assert!((s.p10 - 100.9).abs() < 0.2);
        assert!((s.p90 - 900.1).abs() < 0.2);
        assert!((s.mean - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(-1.0);
        h.push(0.0);
        h.push(5.5);
        h.push(9.999);
        h.push(10.0);
        h.push(42.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(5), 1);
        assert_eq!(h.bin_count(9), 1);
        assert_eq!(h.count(), 6);
        assert_eq!(h.bin_edges(3), (3.0, 4.0));
    }

    #[test]
    fn histogram_ascii_renders() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for _ in 0..8 {
            h.push(1.5);
        }
        h.push(2.5);
        let art = h.render_ascii(10);
        assert!(art.contains("########"));
        assert_eq!(art.lines().count(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Interpolated quantiles are monotone in q and bounded by min/max.
        #[test]
        fn quantiles_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
            let mut p = Percentiles::new();
            p.extend(xs.iter().copied());
            let mut prev = f64::NEG_INFINITY;
            for i in 0..=20 {
                let q = f64::from(i) / 20.0;
                let v = p.quantile(q).unwrap();
                prop_assert!(v >= prev - 1e-9);
                prev = v;
            }
            let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(p.quantile(0.0).unwrap() >= lo - 1e-9);
            prop_assert!(p.quantile(1.0).unwrap() <= hi + 1e-9);
        }

        /// Welford merge is equivalent to pooling the samples, for any split.
        #[test]
        fn merge_any_split(xs in proptest::collection::vec(-1e3f64..1e3, 2..200), split_frac in 0.0f64..1.0) {
            let split = ((xs.len() as f64) * split_frac) as usize;
            let mut whole = OnlineStats::new();
            for &x in &xs { whole.push(x); }
            let mut a = OnlineStats::new();
            let mut b = OnlineStats::new();
            for &x in &xs[..split] { a.push(x); }
            for &x in &xs[split..] { b.push(x); }
            a.merge(&b);
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((a.variance() - whole.variance()).abs() < 1e-4);
        }

        /// Histogram conserves counts: bins + underflow + overflow == count.
        #[test]
        fn histogram_conserves(xs in proptest::collection::vec(-100f64..200.0, 0..300)) {
            let mut h = Histogram::new(0.0, 100.0, 13);
            for &x in &xs { h.push(x); }
            let binned: u64 = (0..h.num_bins()).map(|i| h.bin_count(i)).sum();
            prop_assert_eq!(binned + h.underflow() + h.overflow(), h.count());
            prop_assert_eq!(h.count(), xs.len() as u64);
        }
    }
}
