//! Simulation time.
//!
//! Time is measured in seconds since simulation start, stored as `f64`.
//! [`SimTime`] is an absolute instant; [`SimDuration`] is a span. Both
//! reject NaN at construction so they can carry a total order, which the
//! event queue relies on.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulation clock, in seconds since start.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
#[serde(transparent)]
pub struct SimTime(f64);

/// A span of simulation time in seconds. Always finite, may be zero.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
#[serde(transparent)]
pub struct SimDuration(f64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds. Panics on NaN or negative values.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and >= 0, got {secs}"
        );
        SimTime(secs)
    }

    /// Creates a time from whole hours.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Creates a time from whole days.
    #[must_use]
    pub fn from_days(days: f64) -> Self {
        Self::from_secs(days * 86_400.0)
    }

    /// Seconds since simulation start.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Hours since simulation start.
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Days since simulation start.
    #[must_use]
    pub fn as_days(self) -> f64 {
        self.0 / 86_400.0
    }

    /// Seconds into the current simulated day (diurnal phase, `[0, 86400)`).
    #[must_use]
    pub fn second_of_day(self) -> f64 {
        self.0.rem_euclid(86_400.0)
    }

    /// Hour of the simulated day in `[0, 24)`.
    #[must_use]
    pub fn hour_of_day(self) -> f64 {
        self.second_of_day() / 3600.0
    }

    /// Day index since start (0-based).
    #[must_use]
    pub fn day_index(self) -> u64 {
        (self.0 / 86_400.0) as u64
    }

    /// Duration elapsed since `earlier`. Panics if `earlier` is later.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_secs(self.0 - earlier.0)
    }

    /// Saturating difference: zero if `earlier` is later than `self`.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_secs((self.0 - earlier.0).max(0.0))
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// The earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from seconds. Panics on NaN, infinity, or negatives.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration must be finite and >= 0, got {secs}"
        );
        SimDuration(secs)
    }

    /// Creates a duration from minutes.
    #[must_use]
    pub fn from_mins(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// Creates a duration from hours.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Creates a duration from days.
    #[must_use]
    pub fn from_days(days: f64) -> Self {
        Self::from_secs(days * 86_400.0)
    }

    /// Span length in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Span length in hours.
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// True when the span has zero length.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// The longer of two spans.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// The shorter of two spans.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime::from_secs(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl Div for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Construction guarantees finiteness, so partial_cmp cannot fail.
        self.partial_cmp(other).expect("SimTime is always finite")
    }
}

impl Eq for SimDuration {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other)
            .expect("SimDuration is always finite")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0;
        let days = (total / 86_400.0) as u64;
        let rem = total % 86_400.0;
        let h = (rem / 3600.0) as u64;
        let m = ((rem % 3600.0) / 60.0) as u64;
        let s = rem % 60.0;
        if days > 0 {
            write!(f, "{days}d {h:02}:{m:02}:{s:04.1}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:04.1}")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 86_400.0 {
            write!(f, "{:.2}d", self.0 / 86_400.0)
        } else if self.0 >= 3600.0 {
            write!(f, "{:.2}h", self.0 / 3600.0)
        } else if self.0 >= 60.0 {
            write!(f, "{:.2}m", self.0 / 60.0)
        } else {
            write!(f, "{:.2}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_hours(25.0);
        assert!((t.as_secs() - 90_000.0).abs() < 1e-9);
        assert_eq!(t.day_index(), 1);
        assert!((t.hour_of_day() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_secs(100.0);
        let d = SimDuration::from_mins(2.0);
        let t2 = t + d;
        assert_eq!(t2.since(t), d);
        assert_eq!(t2 - d, t);
        assert_eq!(t2 - t, d);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_secs(10.0);
        let b = SimTime::from_secs(20.0);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).as_secs(), 10.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_duration_rejected() {
        let _ = SimDuration::from_secs(-1.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(3.0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.0),
        ];
        v.sort();
        assert_eq!(v[0].as_secs(), 1.0);
        assert_eq!(v[2].as_secs(), 3.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs(3725.0)), "01:02:05.0");
        assert_eq!(format!("{}", SimDuration::from_secs(90.0)), "1.50m");
        assert_eq!(format!("{}", SimDuration::from_days(2.0)), "2.00d");
    }

    #[test]
    fn duration_ratio() {
        let a = SimDuration::from_hours(2.0);
        let b = SimDuration::from_hours(1.0);
        assert!((a / b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = SimDuration::from_secs(1.0);
        let db = SimDuration::from_secs(2.0);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
    }
}
