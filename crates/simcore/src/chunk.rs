//! Columnar delta-compressed chunks for append-only `(time, value)`
//! streams.
//!
//! Long streaming runs produce tens of millions of trace points —
//! power-trace change points, decision-trace payloads — whose raw form
//! is 16 bytes each. Two observations make them compress extremely well
//! without any entropy coder:
//!
//! 1. **Times are near-monotone**: consecutive timestamps share their
//!    high mantissa bits, so XOR-ing each `f64` bit pattern with its
//!    predecessor zeroes the high bytes and a LEB128 varint stores the
//!    remainder in a few bytes.
//! 2. **Values repeat**: a power trace sits at the same wattage for many
//!    change points (the run-length structure the series layer exploits).
//!    A repeated value XORs to zero and encodes in exactly one byte.
//!
//! A chunk is self-contained — `[count][time-xor column][value-xor
//! column]`, every integer a varint — so chunks can be decoded
//! independently, streamed to disk behind a schema-versioned header, and
//! read back without loading the whole stream. [`ChunkedSeries`] is the
//! in-memory accumulator (seal every [`DEFAULT_CHUNK_CAP`] points,
//! optionally spill sealed chunks to a writer); [`ChunkFileReader`]
//! replays a spilled stream.

use crate::time::SimTime;
use std::io::{self, Read, Write};

/// Magic bytes opening a spilled chunk stream. The trailing digit is the
/// schema version: bump it on any change to the chunk layout.
pub const CHUNK_STREAM_MAGIC: [u8; 8] = *b"EPACHNK1";

/// Points per sealed chunk. 4096 points keeps a worst-case chunk around
/// 72 KiB (18 bytes/point when nothing compresses) while amortizing the
/// per-chunk header to noise.
pub const DEFAULT_CHUNK_CAP: usize = 4096;

/// Appends `v` as a LEB128 varint (7 bits per byte, high bit = more).
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint at `*pos`, advancing it. `None` on truncation
/// or a varint longer than the 10 bytes a `u64` can need.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let &byte = bytes.get(*pos)?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
    }
    None
}

/// Encodes one self-contained chunk from raw `(time_bits, value_bits)`
/// pairs: `[n][n time xor-deltas][n value xor-deltas]`, each a varint.
/// The first element of each column is XOR-ed with zero (stored as-is).
///
/// The XOR of two nearby `f64` bit patterns concentrates its set bits at
/// the *top* of the word (shared sign/exponent cancel partially; the low
/// mantissa bits are often zero) — the opposite of what a little-endian
/// varint rewards. Byte-swapping the XOR moves those trailing-zero bytes
/// to the high end, where the varint drops them for free; a repeated
/// value XORs to zero and still costs exactly one byte.
#[must_use]
pub fn encode_chunk(points: &[(u64, u64)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(2 + points.len() * 4);
    write_varint(&mut buf, points.len() as u64);
    let mut prev = 0u64;
    for &(t, _) in points {
        write_varint(&mut buf, (t ^ prev).swap_bytes());
        prev = t;
    }
    prev = 0;
    for &(_, v) in points {
        write_varint(&mut buf, (v ^ prev).swap_bytes());
        prev = v;
    }
    buf
}

/// Decodes a chunk produced by [`encode_chunk`]. Errors on truncation
/// or trailing garbage.
pub fn decode_chunk(bytes: &[u8]) -> io::Result<Vec<(u64, u64)>> {
    let corrupt = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let mut pos = 0usize;
    let n = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("truncated chunk count"))?;
    let n = usize::try_from(n).map_err(|_| corrupt("chunk count overflows usize"))?;
    let mut out = Vec::with_capacity(n);
    let mut prev = 0u64;
    for _ in 0..n {
        let raw = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("truncated time column"))?;
        let t = raw.swap_bytes() ^ prev;
        prev = t;
        out.push((t, 0));
    }
    prev = 0;
    for slot in &mut out {
        let raw = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("truncated value column"))?;
        let v = raw.swap_bytes() ^ prev;
        prev = v;
        slot.1 = v;
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes after chunk columns"));
    }
    Ok(out)
}

/// An append-only compressed `(SimTime, f64)` stream.
///
/// Points accumulate in an open tail; every `cap` points the tail is
/// sealed into one encoded chunk. Sealed chunks either stay in memory
/// (default — [`ChunkedSeries::iter`] walks them transparently) or, in
/// spill mode, are written to the sink as they seal so resident memory
/// stays O(`cap`) regardless of stream length.
pub struct ChunkedSeries {
    cap: usize,
    sealed: Vec<Vec<u8>>,
    tail: Vec<(u64, u64)>,
    len: u64,
    spill: Option<Box<dyn Write + Send>>,
    spilled_chunks: u64,
}

impl std::fmt::Debug for ChunkedSeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkedSeries")
            .field("cap", &self.cap)
            .field("sealed", &self.sealed.len())
            .field("tail", &self.tail.len())
            .field("len", &self.len)
            .field("spilling", &self.spill.is_some())
            .field("spilled_chunks", &self.spilled_chunks)
            .finish()
    }
}

impl Default for ChunkedSeries {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkedSeries {
    /// An in-memory compressed series with the default chunk size.
    #[must_use]
    pub fn new() -> Self {
        Self::with_cap(DEFAULT_CHUNK_CAP)
    }

    /// An in-memory compressed series sealing every `cap` points.
    ///
    /// # Panics
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn with_cap(cap: usize) -> Self {
        assert!(cap > 0, "chunk capacity must be positive");
        ChunkedSeries {
            cap,
            sealed: Vec::new(),
            tail: Vec::new(),
            len: 0,
            spill: None,
            spilled_chunks: 0,
        }
    }

    /// A spilling series: writes the stream header now and every sealed
    /// chunk (length-prefixed) to `sink` as it fills. Spilled chunks are
    /// no longer iterable from this object — replay them with
    /// [`ChunkFileReader`] over the written bytes.
    pub fn spilling(cap: usize, mut sink: Box<dyn Write + Send>) -> io::Result<Self> {
        assert!(cap > 0, "chunk capacity must be positive");
        sink.write_all(&CHUNK_STREAM_MAGIC)?;
        Ok(ChunkedSeries {
            cap,
            sealed: Vec::new(),
            tail: Vec::new(),
            len: 0,
            spill: Some(sink),
            spilled_chunks: 0,
        })
    }

    /// Appends a point. Seals (and in spill mode writes out) a chunk
    /// when the tail reaches the chunk capacity.
    pub fn push(&mut self, t: SimTime, v: f64) -> io::Result<()> {
        self.tail.push((t.as_secs().to_bits(), v.to_bits()));
        self.len += 1;
        if self.tail.len() >= self.cap {
            self.seal()?;
        }
        Ok(())
    }

    fn seal(&mut self) -> io::Result<()> {
        if self.tail.is_empty() {
            return Ok(());
        }
        let chunk = encode_chunk(&self.tail);
        self.tail.clear();
        match self.spill.as_mut() {
            Some(sink) => {
                let mut frame = Vec::with_capacity(chunk.len() + 4);
                write_varint(&mut frame, chunk.len() as u64);
                sink.write_all(&frame)?;
                sink.write_all(&chunk)?;
                self.spilled_chunks += 1;
            }
            None => self.sealed.push(chunk),
        }
        Ok(())
    }

    /// Seals the open tail and flushes the sink. Call at end of run in
    /// spill mode so the written stream holds every point.
    pub fn finish(&mut self) -> io::Result<()> {
        self.seal()?;
        if let Some(sink) = self.spill.as_mut() {
            sink.flush()?;
        }
        Ok(())
    }

    /// Total points pushed (including spilled ones).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no points have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Chunks written to the spill sink so far.
    #[must_use]
    pub fn spilled_chunks(&self) -> u64 {
        self.spilled_chunks
    }

    /// Compressed bytes currently resident (sealed chunks + the open
    /// tail at its raw width).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.sealed.iter().map(Vec::len).sum::<usize>() + self.tail.len() * 16
    }

    /// Iterates every point still resident, oldest first — sealed chunks
    /// are decoded transparently, then the open tail. In spill mode this
    /// covers only the unsealed tail; spilled chunks live in the sink.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.sealed
            .iter()
            .flat_map(|c| decode_chunk(c).expect("sealed chunks are self-produced and valid"))
            .chain(self.tail.iter().copied())
            .map(|(t, v)| (SimTime::from_secs(f64::from_bits(t)), f64::from_bits(v)))
    }
}

/// Replays a spilled chunk stream written by [`ChunkedSeries::spilling`]:
/// validates the header, then yields points chunk by chunk, holding one
/// decoded chunk in memory at a time.
pub struct ChunkFileReader<R: Read> {
    src: R,
    current: std::vec::IntoIter<(u64, u64)>,
    done: bool,
}

impl<R: Read> ChunkFileReader<R> {
    /// Opens a stream, validating the magic/version header.
    pub fn open(mut src: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        src.read_exact(&mut magic)?;
        if magic != CHUNK_STREAM_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad chunk-stream magic {magic:02x?}"),
            ));
        }
        Ok(ChunkFileReader {
            src,
            current: Vec::new().into_iter(),
            done: false,
        })
    }

    /// Reads one varint from the source, byte by byte. `Ok(None)` on a
    /// clean EOF at a chunk boundary.
    fn read_varint(&mut self) -> io::Result<Option<u64>> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let mut byte = [0u8; 1];
            match self.src.read_exact(&mut byte) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof && shift == 0 => {
                    return Ok(None);
                }
                Err(e) => return Err(e),
            }
            v |= u64::from(byte[0] & 0x7f) << shift;
            if byte[0] & 0x80 == 0 {
                return Ok(Some(v));
            }
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "varint exceeds u64",
        ))
    }

    fn load_next_chunk(&mut self) -> io::Result<bool> {
        let Some(frame_len) = self.read_varint()? else {
            self.done = true;
            return Ok(false);
        };
        let frame_len = usize::try_from(frame_len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "chunk frame too large"))?;
        let mut frame = vec![0u8; frame_len];
        self.src.read_exact(&mut frame)?;
        self.current = decode_chunk(&frame)?.into_iter();
        Ok(true)
    }
}

impl<R: Read> Iterator for ChunkFileReader<R> {
    type Item = io::Result<(SimTime, f64)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some((t, v)) = self.current.next() {
                return Some(Ok((
                    SimTime::from_secs(f64::from_bits(t)),
                    f64::from_bits(v),
                )));
            }
            if self.done {
                return None;
            }
            match self.load_next_chunk() {
                Ok(true) => {}
                Ok(false) => return None,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// A `'static` clonable byte sink for exercising spill mode.
    #[derive(Clone, Default)]
    pub(super) struct SharedBuf(pub std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        pub(super) fn take(&self) -> Vec<u8> {
            self.0.lock().unwrap().clone()
        }
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_detects_truncation() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn chunk_roundtrip() {
        let points: Vec<(u64, u64)> = (0..100)
            .map(|i| ((i as f64).to_bits(), (100.0 + (i % 3) as f64).to_bits()))
            .collect();
        let chunk = encode_chunk(&points);
        assert_eq!(decode_chunk(&chunk).unwrap(), points);
    }

    #[test]
    fn repeated_values_compress_to_one_byte_each() {
        // A constant-value run: every value delta XORs to zero.
        let points: Vec<(u64, u64)> = (0..1000)
            .map(|i| ((i as f64 * 60.0).to_bits(), 250.0f64.to_bits()))
            .collect();
        let chunk = encode_chunk(&points);
        // 16 raw bytes per point; the value column must collapse to ~1
        // byte per point and near-monotone times to a few.
        assert!(
            chunk.len() < points.len() * 8,
            "expected <8 bytes/point, got {} for {} points",
            chunk.len(),
            points.len()
        );
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut chunk = encode_chunk(&[(1, 2), (3, 4)]);
        chunk.push(0);
        assert!(decode_chunk(&chunk).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let chunk = encode_chunk(&[(u64::MAX, u64::MAX), (1, 1)]);
        assert!(decode_chunk(&chunk[..chunk.len() - 1]).is_err());
    }

    #[test]
    fn chunked_series_iterates_across_seal_boundary() {
        let mut s = ChunkedSeries::with_cap(8);
        let pts: Vec<(SimTime, f64)> = (0..20).map(|i| (t(i as f64), i as f64 * 1.5)).collect();
        for &(pt, pv) in &pts {
            s.push(pt, pv).unwrap();
        }
        assert_eq!(s.len(), 20);
        assert_eq!(s.sealed.len(), 2);
        let got: Vec<(SimTime, f64)> = s.iter().collect();
        assert_eq!(got, pts);
    }

    #[test]
    fn resident_bytes_stay_small_for_constant_stream() {
        let mut s = ChunkedSeries::with_cap(1024);
        for i in 0..100_000 {
            s.push(t(i as f64), 42.0).unwrap();
        }
        // 100k points are 1.6 MB raw. The constant value column costs
        // one byte per point and integer-second times a few, so the
        // stream must compress at least ~2.5x even in this worst-ish
        // time pattern (every timestamp distinct).
        assert!(
            s.resident_bytes() < 640_000,
            "resident {} bytes",
            s.resident_bytes()
        );
    }

    #[test]
    fn spill_stream_roundtrips_through_file_reader() {
        let buf = SharedBuf::default();
        {
            let mut s = ChunkedSeries::spilling(16, Box::new(buf.clone())).unwrap();
            for i in 0..100 {
                s.push(t(i as f64 * 0.5), (i % 7) as f64).unwrap();
            }
            assert_eq!(s.spilled_chunks(), 6); // 96 points sealed
            s.finish().unwrap();
        }
        let bytes = buf.take();
        let reader = ChunkFileReader::open(std::io::Cursor::new(&bytes)).unwrap();
        let got: Vec<(SimTime, f64)> = reader.map(Result::unwrap).collect();
        assert_eq!(got.len(), 100);
        for (i, &(pt, pv)) in got.iter().enumerate() {
            assert_eq!(pt, t(i as f64 * 0.5));
            assert_eq!(pv, (i % 7) as f64);
        }
    }

    #[test]
    fn file_reader_rejects_bad_magic() {
        let bytes = b"NOTCHUNK rest".to_vec();
        assert!(ChunkFileReader::open(std::io::Cursor::new(&bytes)).is_err());
    }

    #[test]
    fn empty_stream_yields_nothing() {
        let buf = SharedBuf::default();
        {
            let mut s = ChunkedSeries::spilling(16, Box::new(buf.clone())).unwrap();
            s.finish().unwrap();
        }
        let bytes = buf.take();
        let reader = ChunkFileReader::open(std::io::Cursor::new(&bytes)).unwrap();
        assert_eq!(reader.count(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any point stream roundtrips bit-exactly through encode/decode,
        /// including negative, subnormal-ish, and repeated values.
        #[test]
        fn chunk_roundtrip_arbitrary(
            points in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..300),
        ) {
            let chunk = encode_chunk(&points);
            prop_assert_eq!(decode_chunk(&chunk).unwrap(), points);
        }

        /// The spill stream replays every pushed point bit-exactly at any
        /// chunk capacity (seal boundaries must be invisible).
        #[test]
        fn spill_roundtrip_any_cap(
            vals in proptest::collection::vec(0.0f64..1e6, 1..200),
            cap in 1usize..40,
        ) {
            let buf = super::tests::SharedBuf::default();
            {
                let mut s = ChunkedSeries::spilling(cap, Box::new(buf.clone())).unwrap();
                for (i, &v) in vals.iter().enumerate() {
                    s.push(SimTime::from_secs(i as f64), v).unwrap();
                }
                s.finish().unwrap();
            }
            let bytes = buf.take();
            let reader = ChunkFileReader::open(std::io::Cursor::new(&bytes)).unwrap();
            let got: Vec<(SimTime, f64)> = reader.map(Result::unwrap).collect();
            prop_assert_eq!(got.len(), vals.len());
            for (i, (&(pt, pv), &v)) in got.iter().zip(&vals).enumerate() {
                prop_assert_eq!(pt, SimTime::from_secs(i as f64));
                prop_assert_eq!(pv.to_bits(), v.to_bits());
            }
        }
    }
}
