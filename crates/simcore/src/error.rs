//! Error types for the simulation kernel.

use thiserror::Error;

/// Errors produced by the simulation kernel and shared numeric utilities.
#[derive(Debug, Error, PartialEq, Eq)]
pub enum SimError {
    /// An operation referenced a simulation entity that does not exist.
    #[error("unknown entity: {0}")]
    UnknownEntity(String),

    /// An operation was attempted in a state that does not allow it.
    #[error("invalid state: {0}")]
    InvalidState(String),

    /// A configuration value was out of its admissible range.
    #[error("invalid configuration: {0}")]
    InvalidConfig(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SimError::UnknownEntity("node 7".into()).to_string(),
            "unknown entity: node 7"
        );
        assert_eq!(
            SimError::InvalidState("already booted".into()).to_string(),
            "invalid state: already booted"
        );
        assert_eq!(
            SimError::InvalidConfig("negative cap".into()).to_string(),
            "invalid configuration: negative cap"
        );
    }
}
