//! Time series with piecewise-constant semantics.
//!
//! Power traces in this framework are *step functions*: a node draws a
//! constant wattage between two state-change events. [`TimeSeries`]
//! stores `(t, value)` change points and provides exact integration
//! (energy = ∫ P dt), time-weighted averages, and resampling for
//! telemetry-style reporting.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A piecewise-constant time series: the value set at `t_i` holds on
/// `[t_i, t_{i+1})`. Change points must be appended in non-decreasing
/// time order.
///
/// Alongside the change points the series maintains a cumulative-energy
/// prefix-sum array: `cum[i]` is the exact integral of the step function
/// from the first change point up to `points[i].0`. Window queries
/// ([`integrate`](Self::integrate), [`max_on`](Self::max_on),
/// [`time_weighted_mean`](Self::time_weighted_mean)) binary-search the
/// change points instead of scanning the whole trace, so a query costs
/// O(log n) (plus the window's own length for `max_on`) rather than O(n).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
    /// `cum[i]` = ∫ from `points[0].0` to `points[i].0`; always the same
    /// length as `points` (`cum[0]` is 0).
    cum: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        TimeSeries {
            points: Vec::new(),
            cum: Vec::new(),
        }
    }

    /// Creates a series with an initial value at t = 0.
    #[must_use]
    pub fn with_initial(value: f64) -> Self {
        TimeSeries {
            points: vec![(SimTime::ZERO, value)],
            cum: vec![0.0],
        }
    }

    /// Appends a change point. Equal-time appends overwrite the previous
    /// value at that instant (last write wins), matching event semantics
    /// where several updates may land on one timestamp.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the last change point.
    pub fn push(&mut self, t: SimTime, value: f64) {
        debug_assert!(value.is_finite());
        if let Some(&(last_t, last_v)) = self.points.last() {
            assert!(t >= last_t, "time series must be appended in order");
            if t == last_t {
                // `cum` is unaffected: cum[last] covers only up to last_t,
                // and the segment starting there has not elapsed yet.
                let last = self.points.last_mut().expect("nonempty");
                last.1 = value;
                return;
            }
            // Skip redundant points to keep traces compact.
            if last_v == value {
                return;
            }
            let total = self.cum.last().expect("cum tracks points");
            self.cum.push(total + last_v * (t - last_t).as_secs());
        } else {
            self.cum.push(0.0);
        }
        self.points.push((t, value));
    }

    /// Cumulative integral from the first change point to `x`, read from
    /// the prefix-sum array in O(log n).
    fn energy_to(&self, x: SimTime) -> f64 {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&x)) {
            Ok(i) => self.cum[i],
            Err(0) => 0.0,
            Err(i) => {
                let (t_prev, v_prev) = self.points[i - 1];
                self.cum[i - 1] + v_prev * (x - t_prev).as_secs()
            }
        }
    }

    /// Number of stored change points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no change points are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The value in effect at time `t` (the most recent change point at or
    /// before `t`). `None` before the first change point.
    #[must_use]
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// The last change point, if any.
    #[must_use]
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }

    /// Encodes the series into a snapshot. The prefix-sum array is
    /// serialized alongside the change points (rather than recomputed on
    /// restore) so the restored series is bit-identical state, not just
    /// equivalent.
    pub fn snapshot_into(&self, w: &mut crate::snap::SnapWriter) {
        w.seq(&self.points, |w, &(t, v)| {
            w.f64(t.as_secs());
            w.f64(v);
        });
        w.seq(&self.cum, |w, &c| w.f64(c));
    }

    /// Decodes a series written by [`TimeSeries::snapshot_into`].
    pub fn restore_from(
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<Self, crate::snap::SnapshotError> {
        let points = r.seq(|r| {
            let t = SimTime::from_secs(r.f64()?);
            let v = r.f64()?;
            Ok((t, v))
        })?;
        let cum = r.seq(crate::snap::SnapReader::f64)?;
        if cum.len() != points.len() {
            return Err(crate::snap::SnapshotError::Corrupt {
                detail: format!(
                    "time series has {} points but {} prefix sums",
                    points.len(),
                    cum.len()
                ),
            });
        }
        Ok(TimeSeries { points, cum })
    }

    /// Exact integral of the step function over `[a, b]`, in O(log n) as
    /// the difference of two prefix-sum reads.
    ///
    /// Intervals before the first change point contribute zero. For a power
    /// trace in watts this returns joules.
    #[must_use]
    pub fn integrate(&self, a: SimTime, b: SimTime) -> f64 {
        assert!(b >= a, "integration bounds reversed");
        if self.points.is_empty() || b == a {
            return 0.0;
        }
        self.energy_to(b) - self.energy_to(a)
    }

    /// Reference O(n) implementation of [`integrate`](Self::integrate):
    /// a direct scan over every segment. Kept for the equivalence
    /// property tests and the naive-vs-prefix benchmarks.
    #[must_use]
    pub fn integrate_naive(&self, a: SimTime, b: SimTime) -> f64 {
        assert!(b >= a, "integration bounds reversed");
        if self.points.is_empty() || b == a {
            return 0.0;
        }
        let mut acc = 0.0;
        for (i, &(t_i, v_i)) in self.points.iter().enumerate() {
            let seg_start = t_i.max(a);
            let seg_end = match self.points.get(i + 1) {
                Some(&(t_next, _)) => t_next.min(b),
                None => b,
            };
            if seg_end > seg_start {
                acc += v_i * (seg_end - seg_start).as_secs();
            }
            if t_i >= b {
                break;
            }
        }
        acc
    }

    /// Time-weighted mean over `[a, b]` counting only time at or after the
    /// first change point.
    #[must_use]
    pub fn time_weighted_mean(&self, a: SimTime, b: SimTime) -> f64 {
        if self.points.is_empty() || b <= a {
            return 0.0;
        }
        let eff_start = self.points[0].0.max(a);
        if b <= eff_start {
            return 0.0;
        }
        self.integrate(a, b) / (b - eff_start).as_secs()
    }

    /// Maximum value attained on `[a, b]` (considering the value in effect
    /// at `a`). `None` if the series has no value anywhere on the interval.
    ///
    /// Costs O(log n + k) where k is the number of change points inside
    /// the window: the window start is located by binary search instead of
    /// scanning from the beginning of the trace.
    #[must_use]
    pub fn max_on(&self, a: SimTime, b: SimTime) -> Option<f64> {
        let mut best: Option<f64> = self.value_at(a);
        let start = self.points.partition_point(|&(t, _)| t < a);
        for &(t, v) in &self.points[start..] {
            if t > b {
                break;
            }
            best = Some(best.map_or(v, |m| m.max(v)));
        }
        best
    }

    /// Samples the series at a fixed interval over `[a, b]`, producing
    /// telemetry-style `(t, value)` rows. Times before the first change
    /// point sample as 0.
    #[must_use]
    pub fn resample(&self, a: SimTime, b: SimTime, dt: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!dt.is_zero(), "resample interval must be positive");
        let mut out = Vec::new();
        let mut t = a;
        while t <= b {
            out.push((t, self.value_at(t).unwrap_or(0.0)));
            t += dt;
        }
        out
    }

    /// Iterates over the raw change points.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn value_at_steps() {
        let mut ts = TimeSeries::new();
        ts.push(t(10.0), 100.0);
        ts.push(t(20.0), 200.0);
        assert_eq!(ts.value_at(t(5.0)), None);
        assert_eq!(ts.value_at(t(10.0)), Some(100.0));
        assert_eq!(ts.value_at(t(15.0)), Some(100.0));
        assert_eq!(ts.value_at(t(20.0)), Some(200.0));
        assert_eq!(ts.value_at(t(1e6)), Some(200.0));
    }

    #[test]
    fn equal_time_push_overwrites() {
        let mut ts = TimeSeries::new();
        ts.push(t(10.0), 100.0);
        ts.push(t(10.0), 150.0);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.value_at(t(10.0)), Some(150.0));
    }

    #[test]
    fn redundant_points_skipped() {
        let mut ts = TimeSeries::with_initial(5.0);
        ts.push(t(10.0), 5.0);
        ts.push(t(20.0), 6.0);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn integrate_simple_rectangle() {
        let mut ts = TimeSeries::new();
        ts.push(t(0.0), 100.0);
        assert!((ts.integrate(t(0.0), t(10.0)) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn integrate_steps() {
        let mut ts = TimeSeries::new();
        ts.push(t(0.0), 100.0);
        ts.push(t(10.0), 200.0);
        // [0,10) at 100 + [10,20] at 200 = 1000 + 2000
        assert!((ts.integrate(t(0.0), t(20.0)) - 3000.0).abs() < 1e-9);
        // Partial window [5, 15]
        assert!((ts.integrate(t(5.0), t(15.0)) - (500.0 + 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn integrate_before_first_point_is_zero() {
        let mut ts = TimeSeries::new();
        ts.push(t(100.0), 50.0);
        assert_eq!(ts.integrate(t(0.0), t(100.0)), 0.0);
        assert!((ts.integrate(t(0.0), t(102.0)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_mean_ignores_undefined_prefix() {
        let mut ts = TimeSeries::new();
        ts.push(t(10.0), 100.0);
        // Over [0, 20]: integral 1000 over effective 10 s.
        assert!((ts.time_weighted_mean(t(0.0), t(20.0)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn max_on_window() {
        let mut ts = TimeSeries::new();
        ts.push(t(0.0), 1.0);
        ts.push(t(10.0), 5.0);
        ts.push(t(20.0), 2.0);
        assert_eq!(ts.max_on(t(0.0), t(30.0)), Some(5.0));
        assert_eq!(ts.max_on(t(12.0), t(15.0)), Some(5.0)); // value in effect
        assert_eq!(ts.max_on(t(21.0), t(25.0)), Some(2.0));
    }

    #[test]
    fn resample_grid() {
        let mut ts = TimeSeries::new();
        ts.push(t(5.0), 10.0);
        let rows = ts.resample(t(0.0), t(10.0), SimDuration::from_secs(5.0));
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].1, 0.0);
        assert_eq!(rows[1].1, 10.0);
        assert_eq!(rows[2].1, 10.0);
    }

    #[test]
    #[should_panic(expected = "appended in order")]
    fn out_of_order_push_panics() {
        let mut ts = TimeSeries::new();
        ts.push(t(10.0), 1.0);
        ts.push(t(5.0), 2.0);
    }

    #[test]
    fn prefix_sum_tracks_points_through_overwrite_and_skip() {
        let mut ts = TimeSeries::new();
        ts.push(t(0.0), 100.0);
        ts.push(t(10.0), 100.0); // redundant, skipped
        ts.push(t(20.0), 200.0);
        ts.push(t(20.0), 300.0); // equal-time overwrite
        assert_eq!(ts.len(), 2);
        // [0,20) at 100, then 300 onward.
        assert!((ts.integrate(t(0.0), t(30.0)) - (2000.0 + 3000.0)).abs() < 1e-9);
        assert!(
            (ts.integrate(t(0.0), t(30.0)) - ts.integrate_naive(t(0.0), t(30.0))).abs() < 1e-12
        );
    }

    #[test]
    fn integrate_matches_naive_on_window_edges() {
        let mut ts = TimeSeries::new();
        for i in 0..50 {
            ts.push(t(f64::from(i) * 3.0), f64::from(i % 7) * 10.0 + 1.0);
        }
        for &(a, b) in &[
            (0.0, 147.0),
            (1.5, 1.5),
            (10.0, 11.0),
            (0.0, 500.0),
            (140.0, 300.0),
        ] {
            let fast = ts.integrate(t(a), t(b));
            let naive = ts.integrate_naive(t(a), t(b));
            assert!(
                (fast - naive).abs() < 1e-9 * (1.0 + naive.abs()),
                "[{a},{b}]: {fast} vs {naive}"
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    proptest! {
        /// Integration is additive over adjacent windows:
        /// ∫[a,c] = ∫[a,b] + ∫[b,c].
        #[test]
        fn integral_additivity(
            steps in proptest::collection::vec((0.0f64..100.0, 0.0f64..500.0), 1..40),
            cuts in proptest::collection::vec(0.0f64..120.0, 2..3),
        ) {
            let mut ts = TimeSeries::new();
            let mut clock = 0.0;
            for (dt, v) in steps {
                clock += dt;
                ts.push(t(clock), v);
            }
            let mut sorted = cuts.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (a, c) = (sorted[0], sorted[sorted.len() - 1]);
            let b = (a + c) / 2.0;
            let whole = ts.integrate(t(a), t(c));
            let parts = ts.integrate(t(a), t(b)) + ts.integrate(t(b), t(c));
            prop_assert!((whole - parts).abs() < 1e-6 * (1.0 + whole.abs()));
        }

        /// The integral of a constant-valued series over [a,b] equals
        /// value * overlap with the defined region.
        #[test]
        fn constant_series_integral(v in 0.0f64..1e4, start in 0.0f64..100.0, len in 0.0f64..100.0) {
            let mut ts = TimeSeries::new();
            ts.push(t(start), v);
            let b = start + len;
            let got = ts.integrate(t(0.0), t(b));
            prop_assert!((got - v * len).abs() < 1e-6 * (1.0 + got.abs()));
        }

        /// The prefix-sum integral agrees with the naive full scan on
        /// arbitrary traces and windows, including equal-time overwrites.
        #[test]
        fn prefix_sum_matches_naive_scan(
            steps in proptest::collection::vec((0.0f64..20.0, 0.0f64..500.0), 1..120),
            window in (0.0f64..2400.0, 0.0f64..2400.0),
        ) {
            let mut ts = TimeSeries::new();
            let mut clock = 0.0;
            for (dt, v) in steps {
                clock += dt; // dt may be 0: exercises last-write-wins
                ts.push(t(clock), v);
            }
            let (lo, hi) = if window.0 <= window.1 { window } else { (window.1, window.0) };
            let fast = ts.integrate(t(lo), t(hi));
            let naive = ts.integrate_naive(t(lo), t(hi));
            prop_assert!(
                (fast - naive).abs() < 1e-6 * (1.0 + naive.abs()),
                "window [{}, {}]: prefix {} vs naive {}", lo, hi, fast, naive
            );
        }

        /// `max_on` with the binary-searched window start agrees with a
        /// naive scan over all change points.
        #[test]
        fn max_on_matches_naive_scan(
            steps in proptest::collection::vec((0.1f64..20.0, 0.0f64..500.0), 1..60),
            window in (0.0f64..1300.0, 0.0f64..1300.0),
        ) {
            let mut ts = TimeSeries::new();
            let mut clock = 0.0;
            for (dt, v) in steps {
                clock += dt;
                ts.push(t(clock), v);
            }
            let (lo, hi) = if window.0 <= window.1 { window } else { (window.1, window.0) };
            let fast = ts.max_on(t(lo), t(hi));
            let mut naive: Option<f64> = ts.value_at(t(lo));
            for (pt, v) in ts.iter() {
                if pt > t(hi) { break; }
                if pt >= t(lo) {
                    naive = Some(naive.map_or(v, |m| m.max(v)));
                }
            }
            prop_assert_eq!(fast, naive);
        }
    }
}
