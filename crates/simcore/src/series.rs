//! Time series with piecewise-constant semantics.
//!
//! Power traces in this framework are *step functions*: a node draws a
//! constant wattage between two state-change events. [`TimeSeries`]
//! stores `(t, value)` change points and provides exact integration
//! (energy = ∫ P dt), time-weighted averages, and resampling for
//! telemetry-style reporting.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A piecewise-constant time series: the value set at `t_i` holds on
/// `[t_i, t_{i+1})`. Change points must be appended in non-decreasing
/// time order.
///
/// Alongside the change points the series maintains a cumulative-energy
/// prefix-sum array: `cum[i]` is the exact integral of the step function
/// from the first change point up to `points[i].0`. Window queries
/// ([`integrate`](Self::integrate), [`max_on`](Self::max_on),
/// [`time_weighted_mean`](Self::time_weighted_mean)) binary-search the
/// change points instead of scanning the whole trace, so a query costs
/// O(log n) (plus the window's own length for `max_on`) rather than O(n).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
    /// `cum[i]` = ∫ from `points[0].0` to `points[i].0`; always the same
    /// length as `points` (`cum[0]` is 0).
    cum: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        TimeSeries {
            points: Vec::new(),
            cum: Vec::new(),
        }
    }

    /// Creates a series with an initial value at t = 0.
    #[must_use]
    pub fn with_initial(value: f64) -> Self {
        TimeSeries {
            points: vec![(SimTime::ZERO, value)],
            cum: vec![0.0],
        }
    }

    /// Appends a change point. Equal-time appends overwrite the previous
    /// value at that instant (last write wins), matching event semantics
    /// where several updates may land on one timestamp.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the last change point.
    pub fn push(&mut self, t: SimTime, value: f64) {
        debug_assert!(value.is_finite());
        if let Some(&(last_t, last_v)) = self.points.last() {
            assert!(t >= last_t, "time series must be appended in order");
            if t == last_t {
                // `cum` is unaffected: cum[last] covers only up to last_t,
                // and the segment starting there has not elapsed yet.
                let last = self.points.last_mut().expect("nonempty");
                last.1 = value;
                return;
            }
            // Skip redundant points to keep traces compact.
            if last_v == value {
                return;
            }
            let total = self.cum.last().expect("cum tracks points");
            self.cum.push(total + last_v * (t - last_t).as_secs());
        } else {
            self.cum.push(0.0);
        }
        self.points.push((t, value));
    }

    /// Cumulative integral from the first change point to `x`, read from
    /// the prefix-sum array in O(log n).
    fn energy_to(&self, x: SimTime) -> f64 {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&x)) {
            Ok(i) => self.cum[i],
            Err(0) => 0.0,
            Err(i) => {
                let (t_prev, v_prev) = self.points[i - 1];
                self.cum[i - 1] + v_prev * (x - t_prev).as_secs()
            }
        }
    }

    /// Number of stored change points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no change points are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The value in effect at time `t` (the most recent change point at or
    /// before `t`). `None` before the first change point.
    #[must_use]
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// The last change point, if any.
    #[must_use]
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }

    /// Encodes the series into a snapshot. The prefix-sum array is
    /// serialized alongside the change points (rather than recomputed on
    /// restore) so the restored series is bit-identical state, not just
    /// equivalent.
    pub fn snapshot_into(&self, w: &mut crate::snap::SnapWriter) {
        w.seq(&self.points, |w, &(t, v)| {
            w.f64(t.as_secs());
            w.f64(v);
        });
        w.seq(&self.cum, |w, &c| w.f64(c));
    }

    /// Decodes a series written by [`TimeSeries::snapshot_into`].
    pub fn restore_from(
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<Self, crate::snap::SnapshotError> {
        let points = r.seq(|r| {
            let t = SimTime::from_secs(r.f64()?);
            let v = r.f64()?;
            Ok((t, v))
        })?;
        let cum = r.seq(crate::snap::SnapReader::f64)?;
        if cum.len() != points.len() {
            return Err(crate::snap::SnapshotError::Corrupt {
                detail: format!(
                    "time series has {} points but {} prefix sums",
                    points.len(),
                    cum.len()
                ),
            });
        }
        Ok(TimeSeries { points, cum })
    }

    /// Exact integral of the step function over `[a, b]`, in O(log n) as
    /// the difference of two prefix-sum reads.
    ///
    /// Intervals before the first change point contribute zero. For a power
    /// trace in watts this returns joules.
    #[must_use]
    pub fn integrate(&self, a: SimTime, b: SimTime) -> f64 {
        assert!(b >= a, "integration bounds reversed");
        if self.points.is_empty() || b == a {
            return 0.0;
        }
        self.energy_to(b) - self.energy_to(a)
    }

    /// Reference O(n) implementation of [`integrate`](Self::integrate):
    /// a direct scan over every segment. Kept for the equivalence
    /// property tests and the naive-vs-prefix benchmarks.
    #[must_use]
    pub fn integrate_naive(&self, a: SimTime, b: SimTime) -> f64 {
        assert!(b >= a, "integration bounds reversed");
        if self.points.is_empty() || b == a {
            return 0.0;
        }
        let mut acc = 0.0;
        for (i, &(t_i, v_i)) in self.points.iter().enumerate() {
            let seg_start = t_i.max(a);
            let seg_end = match self.points.get(i + 1) {
                Some(&(t_next, _)) => t_next.min(b),
                None => b,
            };
            if seg_end > seg_start {
                acc += v_i * (seg_end - seg_start).as_secs();
            }
            if t_i >= b {
                break;
            }
        }
        acc
    }

    /// Time-weighted mean over `[a, b]` counting only time at or after the
    /// first change point.
    #[must_use]
    pub fn time_weighted_mean(&self, a: SimTime, b: SimTime) -> f64 {
        if self.points.is_empty() || b <= a {
            return 0.0;
        }
        let eff_start = self.points[0].0.max(a);
        if b <= eff_start {
            return 0.0;
        }
        self.integrate(a, b) / (b - eff_start).as_secs()
    }

    /// Maximum value attained on `[a, b]` (considering the value in effect
    /// at `a`). `None` if the series has no value anywhere on the interval.
    ///
    /// Costs O(log n + k) where k is the number of change points inside
    /// the window: the window start is located by binary search instead of
    /// scanning from the beginning of the trace.
    #[must_use]
    pub fn max_on(&self, a: SimTime, b: SimTime) -> Option<f64> {
        let mut best: Option<f64> = self.value_at(a);
        let start = self.points.partition_point(|&(t, _)| t < a);
        for &(t, v) in &self.points[start..] {
            if t > b {
                break;
            }
            best = Some(best.map_or(v, |m| m.max(v)));
        }
        best
    }

    /// Samples the series at a fixed interval over `[a, b]`, producing
    /// telemetry-style `(t, value)` rows. Times before the first change
    /// point sample as 0.
    #[must_use]
    pub fn resample(&self, a: SimTime, b: SimTime, dt: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!dt.is_zero(), "resample interval must be positive");
        let mut out = Vec::new();
        let mut t = a;
        while t <= b {
            out.push((t, self.value_at(t).unwrap_or(0.0)));
            t += dt;
        }
        out
    }

    /// Iterates over the raw change points.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points.iter().copied()
    }
}

/// A bounded-memory stand-in for [`TimeSeries`] that answers the four
/// whole-run queries a power trace exists for — `∫ from 0`, max, time-
/// weighted mean from 0, and a fixed-interval sample grid — without
/// storing the change points. State is O(1) plus the sample grid
/// (horizon / grid interval), instead of O(change points).
///
/// Every answer is bit-identical to the [`TimeSeries`] it replaces: the
/// integral accumulator performs the same `acc + v·Δt` additions in the
/// same order as the prefix-sum array, the max folds committed values in
/// append order exactly as [`TimeSeries::max_on`] does over `[0, end]`,
/// and the grid advances by the same `t += dt` float steps as
/// [`TimeSeries::resample`]. The one-point *pending* stage mirrors the
/// last stored change point, so equal-time overwrites and redundant-value
/// skips behave exactly like [`TimeSeries::push`] — a transient value
/// overwritten at the same instant never touches the accumulators.
///
/// Queries are only defined for windows `[0, b]` with `b` at or after
/// the last pushed time (the whole-run window); anything else panics.
#[derive(Debug, Clone)]
pub struct BoundedSeries {
    grid_dt: SimDuration,
    /// Next grid instant not yet emitted; grid values are final once a
    /// strictly later change point exists.
    next_grid: SimTime,
    grid_vals: Vec<(SimTime, f64)>,
    /// The last change point — not yet folded into `acc`/`vmax` because
    /// an equal-time push may still overwrite it.
    pending: Option<(SimTime, f64)>,
    first_t: SimTime,
    /// Integral of committed segments (the prefix-sum array's last entry).
    acc: f64,
    /// Max over committed point values, in append order.
    vmax: Option<f64>,
    len: u64,
}

impl BoundedSeries {
    /// Creates an empty bounded series sampling on a `grid_dt` grid
    /// anchored at t = 0.
    ///
    /// # Panics
    /// Panics if `grid_dt` is zero (as [`TimeSeries::resample`] would).
    #[must_use]
    pub fn new(grid_dt: SimDuration) -> Self {
        assert!(!grid_dt.is_zero(), "resample interval must be positive");
        BoundedSeries {
            grid_dt,
            next_grid: SimTime::ZERO,
            grid_vals: Vec::new(),
            pending: None,
            first_t: SimTime::ZERO,
            acc: 0.0,
            vmax: None,
            len: 0,
        }
    }

    /// Emits every grid instant strictly before `t`: their sampled value
    /// (the pending point's value, or 0 before the first point) can no
    /// longer change.
    fn emit_grid_to(&mut self, t: SimTime) {
        let v = self.pending.map_or(0.0, |(_, v)| v);
        while self.next_grid < t {
            self.grid_vals.push((self.next_grid, v));
            self.next_grid += self.grid_dt;
        }
    }

    /// Appends a change point — the exact semantics (ordering assert,
    /// equal-time overwrite, redundant-value skip) of
    /// [`TimeSeries::push`].
    pub fn push(&mut self, t: SimTime, value: f64) {
        debug_assert!(value.is_finite());
        let Some((last_t, last_v)) = self.pending else {
            self.emit_grid_to(t);
            self.first_t = t;
            self.pending = Some((t, value));
            self.len = 1;
            return;
        };
        assert!(t >= last_t, "time series must be appended in order");
        if t == last_t {
            self.pending = Some((t, value));
            return;
        }
        if last_v == value {
            return;
        }
        self.emit_grid_to(t);
        self.acc += last_v * (t - last_t).as_secs();
        self.vmax = Some(self.vmax.map_or(last_v, |m| m.max(last_v)));
        self.pending = Some((t, value));
        self.len += 1;
    }

    /// The sample-grid interval this series was created with.
    #[must_use]
    pub fn grid_dt(&self) -> SimDuration {
        self.grid_dt
    }

    /// Number of stored change points ([`TimeSeries::len`] equivalent).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no change points have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending.is_none()
    }

    fn assert_whole_run(&self, b: SimTime) {
        if let Some((last_t, _)) = self.pending {
            assert!(
                b >= last_t,
                "bounded series answers whole-run queries only: end {b} precedes last point {last_t}",
            );
        }
    }

    /// `TimeSeries::integrate(0, b)` for `b` at/after the last point.
    #[must_use]
    pub fn integrate_from_start(&self, b: SimTime) -> f64 {
        self.assert_whole_run(b);
        let Some((last_t, last_v)) = self.pending else {
            return 0.0;
        };
        if b == SimTime::ZERO {
            return 0.0;
        }
        if b == last_t {
            self.acc
        } else {
            self.acc + last_v * (b - last_t).as_secs()
        }
    }

    /// `TimeSeries::max_on(0, b)` for `b` at/after the last point.
    #[must_use]
    pub fn max_value(&self, b: SimTime) -> Option<f64> {
        self.assert_whole_run(b);
        let (_, pending_v) = self.pending?;
        Some(self.vmax.map_or(pending_v, |m| m.max(pending_v)))
    }

    /// `TimeSeries::time_weighted_mean(0, b)` for `b` at/after the last
    /// point.
    #[must_use]
    pub fn mean_from_start(&self, b: SimTime) -> f64 {
        self.assert_whole_run(b);
        if self.pending.is_none() || b <= SimTime::ZERO {
            return 0.0;
        }
        let eff_start = self.first_t.max(SimTime::ZERO);
        if b <= eff_start {
            return 0.0;
        }
        self.integrate_from_start(b) / (b - eff_start).as_secs()
    }

    /// `TimeSeries::resample(0, b, grid_dt)` for `b` at/after the last
    /// point: the already-final grid values plus the tail sampled at the
    /// pending value.
    #[must_use]
    pub fn sample_grid(&self, b: SimTime) -> Vec<(SimTime, f64)> {
        self.assert_whole_run(b);
        let mut out = self.grid_vals.clone();
        let v = self.pending.map_or(0.0, |(_, v)| v);
        let mut t = self.next_grid;
        while t <= b {
            out.push((t, v));
            t += self.grid_dt;
        }
        out
    }

    /// Encodes the bounded series into a snapshot (bit-exact state).
    pub fn snapshot_into(&self, w: &mut crate::snap::SnapWriter) {
        w.f64(self.grid_dt.as_secs());
        w.f64(self.next_grid.as_secs());
        w.seq(&self.grid_vals, |w, &(t, v)| {
            w.f64(t.as_secs());
            w.f64(v);
        });
        w.opt(self.pending.as_ref(), |w, &(t, v)| {
            w.f64(t.as_secs());
            w.f64(v);
        });
        w.f64(self.first_t.as_secs());
        w.f64(self.acc);
        w.opt(self.vmax.as_ref(), |w, &m| w.f64(m));
        w.u64(self.len);
    }

    /// Decodes a series written by [`BoundedSeries::snapshot_into`].
    pub fn restore_from(
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<Self, crate::snap::SnapshotError> {
        Ok(BoundedSeries {
            grid_dt: SimDuration::from_secs(r.f64()?),
            next_grid: SimTime::from_secs(r.f64()?),
            grid_vals: r.seq(|r| Ok((SimTime::from_secs(r.f64()?), r.f64()?)))?,
            pending: r.opt(|r| Ok((SimTime::from_secs(r.f64()?), r.f64()?)))?,
            first_t: SimTime::from_secs(r.f64()?),
            acc: r.f64()?,
            vmax: r.opt(crate::snap::SnapReader::f64)?,
            len: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn value_at_steps() {
        let mut ts = TimeSeries::new();
        ts.push(t(10.0), 100.0);
        ts.push(t(20.0), 200.0);
        assert_eq!(ts.value_at(t(5.0)), None);
        assert_eq!(ts.value_at(t(10.0)), Some(100.0));
        assert_eq!(ts.value_at(t(15.0)), Some(100.0));
        assert_eq!(ts.value_at(t(20.0)), Some(200.0));
        assert_eq!(ts.value_at(t(1e6)), Some(200.0));
    }

    #[test]
    fn equal_time_push_overwrites() {
        let mut ts = TimeSeries::new();
        ts.push(t(10.0), 100.0);
        ts.push(t(10.0), 150.0);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.value_at(t(10.0)), Some(150.0));
    }

    #[test]
    fn redundant_points_skipped() {
        let mut ts = TimeSeries::with_initial(5.0);
        ts.push(t(10.0), 5.0);
        ts.push(t(20.0), 6.0);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn integrate_simple_rectangle() {
        let mut ts = TimeSeries::new();
        ts.push(t(0.0), 100.0);
        assert!((ts.integrate(t(0.0), t(10.0)) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn integrate_steps() {
        let mut ts = TimeSeries::new();
        ts.push(t(0.0), 100.0);
        ts.push(t(10.0), 200.0);
        // [0,10) at 100 + [10,20] at 200 = 1000 + 2000
        assert!((ts.integrate(t(0.0), t(20.0)) - 3000.0).abs() < 1e-9);
        // Partial window [5, 15]
        assert!((ts.integrate(t(5.0), t(15.0)) - (500.0 + 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn integrate_before_first_point_is_zero() {
        let mut ts = TimeSeries::new();
        ts.push(t(100.0), 50.0);
        assert_eq!(ts.integrate(t(0.0), t(100.0)), 0.0);
        assert!((ts.integrate(t(0.0), t(102.0)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_mean_ignores_undefined_prefix() {
        let mut ts = TimeSeries::new();
        ts.push(t(10.0), 100.0);
        // Over [0, 20]: integral 1000 over effective 10 s.
        assert!((ts.time_weighted_mean(t(0.0), t(20.0)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn max_on_window() {
        let mut ts = TimeSeries::new();
        ts.push(t(0.0), 1.0);
        ts.push(t(10.0), 5.0);
        ts.push(t(20.0), 2.0);
        assert_eq!(ts.max_on(t(0.0), t(30.0)), Some(5.0));
        assert_eq!(ts.max_on(t(12.0), t(15.0)), Some(5.0)); // value in effect
        assert_eq!(ts.max_on(t(21.0), t(25.0)), Some(2.0));
    }

    #[test]
    fn resample_grid() {
        let mut ts = TimeSeries::new();
        ts.push(t(5.0), 10.0);
        let rows = ts.resample(t(0.0), t(10.0), SimDuration::from_secs(5.0));
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].1, 0.0);
        assert_eq!(rows[1].1, 10.0);
        assert_eq!(rows[2].1, 10.0);
    }

    #[test]
    #[should_panic(expected = "appended in order")]
    fn out_of_order_push_panics() {
        let mut ts = TimeSeries::new();
        ts.push(t(10.0), 1.0);
        ts.push(t(5.0), 2.0);
    }

    #[test]
    fn prefix_sum_tracks_points_through_overwrite_and_skip() {
        let mut ts = TimeSeries::new();
        ts.push(t(0.0), 100.0);
        ts.push(t(10.0), 100.0); // redundant, skipped
        ts.push(t(20.0), 200.0);
        ts.push(t(20.0), 300.0); // equal-time overwrite
        assert_eq!(ts.len(), 2);
        // [0,20) at 100, then 300 onward.
        assert!((ts.integrate(t(0.0), t(30.0)) - (2000.0 + 3000.0)).abs() < 1e-9);
        assert!(
            (ts.integrate(t(0.0), t(30.0)) - ts.integrate_naive(t(0.0), t(30.0))).abs() < 1e-12
        );
    }

    #[test]
    fn integrate_matches_naive_on_window_edges() {
        let mut ts = TimeSeries::new();
        for i in 0..50 {
            ts.push(t(f64::from(i) * 3.0), f64::from(i % 7) * 10.0 + 1.0);
        }
        for &(a, b) in &[
            (0.0, 147.0),
            (1.5, 1.5),
            (10.0, 11.0),
            (0.0, 500.0),
            (140.0, 300.0),
        ] {
            let fast = ts.integrate(t(a), t(b));
            let naive = ts.integrate_naive(t(a), t(b));
            assert!(
                (fast - naive).abs() < 1e-9 * (1.0 + naive.abs()),
                "[{a},{b}]: {fast} vs {naive}"
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    proptest! {
        /// Integration is additive over adjacent windows:
        /// ∫[a,c] = ∫[a,b] + ∫[b,c].
        #[test]
        fn integral_additivity(
            steps in proptest::collection::vec((0.0f64..100.0, 0.0f64..500.0), 1..40),
            cuts in proptest::collection::vec(0.0f64..120.0, 2..3),
        ) {
            let mut ts = TimeSeries::new();
            let mut clock = 0.0;
            for (dt, v) in steps {
                clock += dt;
                ts.push(t(clock), v);
            }
            let mut sorted = cuts.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (a, c) = (sorted[0], sorted[sorted.len() - 1]);
            let b = (a + c) / 2.0;
            let whole = ts.integrate(t(a), t(c));
            let parts = ts.integrate(t(a), t(b)) + ts.integrate(t(b), t(c));
            prop_assert!((whole - parts).abs() < 1e-6 * (1.0 + whole.abs()));
        }

        /// The integral of a constant-valued series over [a,b] equals
        /// value * overlap with the defined region.
        #[test]
        fn constant_series_integral(v in 0.0f64..1e4, start in 0.0f64..100.0, len in 0.0f64..100.0) {
            let mut ts = TimeSeries::new();
            ts.push(t(start), v);
            let b = start + len;
            let got = ts.integrate(t(0.0), t(b));
            prop_assert!((got - v * len).abs() < 1e-6 * (1.0 + got.abs()));
        }

        /// The prefix-sum integral agrees with the naive full scan on
        /// arbitrary traces and windows, including equal-time overwrites.
        #[test]
        fn prefix_sum_matches_naive_scan(
            steps in proptest::collection::vec((0.0f64..20.0, 0.0f64..500.0), 1..120),
            window in (0.0f64..2400.0, 0.0f64..2400.0),
        ) {
            let mut ts = TimeSeries::new();
            let mut clock = 0.0;
            for (dt, v) in steps {
                clock += dt; // dt may be 0: exercises last-write-wins
                ts.push(t(clock), v);
            }
            let (lo, hi) = if window.0 <= window.1 { window } else { (window.1, window.0) };
            let fast = ts.integrate(t(lo), t(hi));
            let naive = ts.integrate_naive(t(lo), t(hi));
            prop_assert!(
                (fast - naive).abs() < 1e-6 * (1.0 + naive.abs()),
                "window [{}, {}]: prefix {} vs naive {}", lo, hi, fast, naive
            );
        }

        /// The bounded accumulator answers every whole-run query
        /// bit-identically to the full series it replaces, on arbitrary
        /// traces including equal-time overwrites (dt = 0) and redundant
        /// repeated values.
        #[test]
        fn bounded_matches_full_series_bitwise(
            steps in proptest::collection::vec(
                (0.0f64..600.0, 0.0f64..500.0, 0u8..4), 1..80),
            tail in 0.0f64..900.0,
            grid_secs in 30.0f64..900.0,
        ) {
            let dt = SimDuration::from_secs(grid_secs);
            let mut full = TimeSeries::new();
            let mut bounded = BoundedSeries::new(dt);
            let mut clock = 0.0f64;
            let mut last_v = 0.0f64;
            for (gap, v, kind) in steps {
                // kind 0: normal step; 1: equal-time overwrite;
                // 2: redundant value repeat; 3: normal step.
                let (g, val) = match kind {
                    1 => (0.0, v),
                    2 => (gap, last_v),
                    _ => (gap, v),
                };
                clock += g;
                last_v = val;
                full.push(t(clock), val);
                bounded.push(t(clock), val);
            }
            let end = t(clock + tail);
            prop_assert_eq!(full.len() as u64, bounded.len());
            let (fi, bi) = (full.integrate(t(0.0), end), bounded.integrate_from_start(end));
            prop_assert_eq!(fi.to_bits(), bi.to_bits(), "integrate: {} vs {}", fi, bi);
            let (fm, bm) = (full.max_on(t(0.0), end), bounded.max_value(end));
            prop_assert_eq!(fm.map(f64::to_bits), bm.map(f64::to_bits));
            let (fa, ba) = (
                full.time_weighted_mean(t(0.0), end),
                bounded.mean_from_start(end),
            );
            prop_assert_eq!(fa.to_bits(), ba.to_bits(), "mean: {} vs {}", fa, ba);
            let fr = full.resample(t(0.0), end, dt);
            let br = bounded.sample_grid(end);
            prop_assert_eq!(fr.len(), br.len());
            for (i, (&(ft, fv), &(bt, bv))) in fr.iter().zip(&br).enumerate() {
                prop_assert_eq!(ft, bt, "grid time {} diverges", i);
                prop_assert_eq!(fv.to_bits(), bv.to_bits(), "grid value {} diverges", i);
            }
        }

        /// `max_on` with the binary-searched window start agrees with a
        /// naive scan over all change points.
        #[test]
        fn max_on_matches_naive_scan(
            steps in proptest::collection::vec((0.1f64..20.0, 0.0f64..500.0), 1..60),
            window in (0.0f64..1300.0, 0.0f64..1300.0),
        ) {
            let mut ts = TimeSeries::new();
            let mut clock = 0.0;
            for (dt, v) in steps {
                clock += dt;
                ts.push(t(clock), v);
            }
            let (lo, hi) = if window.0 <= window.1 { window } else { (window.1, window.0) };
            let fast = ts.max_on(t(lo), t(hi));
            let mut naive: Option<f64> = ts.value_at(t(lo));
            for (pt, v) in ts.iter() {
                if pt > t(hi) { break; }
                if pt >= t(lo) {
                    naive = Some(naive.map_or(v, |m| m.max(v)));
                }
            }
            prop_assert_eq!(fast, naive);
        }
    }
}
