//! Streaming quantile estimation (the P² algorithm).
//!
//! The exact [`crate::stats::Percentiles`] store keeps every sample; at
//! telemetry rates (one reading per node per second, for weeks) that is
//! wasteful. The P² algorithm (Jain & Chlamtac, 1985) tracks a single
//! quantile with five markers in O(1) memory — the standard choice in
//! monitoring pipelines like the ones STFC's Table II row describes.
//!
//! Accuracy versus the exact estimator is quantified by the
//! `telemetry`-group benches and a property test here.

use serde::{Deserialize, Serialize};

/// P² estimator for a single quantile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates).
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    increments: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q` in `(0, 1)`.
    ///
    /// # Panics
    /// Panics if `q` is outside `(0, 1)`.
    #[must_use]
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1), got {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The tracked quantile.
    #[must_use]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        if self.count < 5 {
            self.heights[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            }
            return;
        }
        self.count += 1;

        // Find the cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust the three middle markers if they drifted.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let sign = d.signum();
                let candidate = self.parabolic(i, sign);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, sign)
                    };
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, sign: f64) -> f64 {
        let n = &self.positions;
        let h = &self.heights;
        h[i] + sign / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + sign) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - sign) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, sign: f64) -> f64 {
        let j = if sign > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + sign * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate (`None` before any observation).
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n if n < 5 => {
                // Exact for the warm-up prefix.
                let mut xs = self.heights[..n as usize].to_vec();
                xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let pos = self.q * (xs.len() - 1) as f64;
                let i = pos.floor() as usize;
                let frac = pos - i as f64;
                let hi = xs[(i + 1).min(xs.len() - 1)];
                Some(xs[i] + frac * (hi - xs[i]))
            }
            _ => Some(self.heights[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn warmup_is_exact() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.estimate(), None);
        p.push(10.0);
        assert_eq!(p.estimate(), Some(10.0));
        p.push(20.0);
        assert_eq!(p.estimate(), Some(15.0));
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut p = P2Quantile::new(0.5);
        let mut rng = SimRng::new(1);
        for _ in 0..50_000 {
            p.push(rng.uniform());
        }
        let est = p.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.01, "median estimate {est}");
    }

    #[test]
    fn p90_of_exponential_stream() {
        let mut p = P2Quantile::new(0.9);
        let mut rng = SimRng::new(2);
        for _ in 0..50_000 {
            p.push(rng.exponential(1.0));
        }
        // True p90 of Exp(1) is ln(10).
        let est = p.estimate().unwrap();
        assert!(
            (est - std::f64::consts::LN_10).abs() < 0.12,
            "p90 estimate {est}"
        );
    }

    #[test]
    fn tracks_sorted_input() {
        let mut p = P2Quantile::new(0.25);
        for i in 1..=10_000 {
            p.push(f64::from(i));
        }
        let est = p.estimate().unwrap();
        assert!((est - 2500.0).abs() < 150.0, "p25 estimate {est}");
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0,1)")]
    fn invalid_quantile_rejected() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn count_tracks() {
        let mut p = P2Quantile::new(0.5);
        for i in 0..7 {
            p.push(f64::from(i));
        }
        assert_eq!(p.count(), 7);
        assert_eq!(p.q(), 0.5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// On moderately sized random streams, the P² estimate lands within
        /// the sample range and within a loose band of the exact quantile.
        #[test]
        fn close_to_exact(
            xs in proptest::collection::vec(0.0f64..1000.0, 100..600),
            qi in 1usize..10,
        ) {
            let q = qi as f64 / 10.0;
            let mut p = P2Quantile::new(q);
            for &x in &xs { p.push(x); }
            let est = p.estimate().unwrap();
            let mut sorted = xs.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let lo = sorted[0];
            let hi = sorted[sorted.len() - 1];
            prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "estimate out of range");
            let exact = sorted[((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len()-1)];
            let spread = (hi - lo).max(1e-9);
            prop_assert!((est - exact).abs() <= spread * 0.25,
                "estimate {} vs exact {} (spread {})", est, exact, spread);
        }
    }
}
