//! Deterministic, stream-splittable random numbers.
//!
//! Reproducibility is a hard requirement for the survey reproduction: the
//! same site model and seed must produce byte-identical reports. We use
//! ChaCha8 (from `rand_chacha`), whose output is specified and
//! version-stable, unlike `StdRng` whose algorithm may change between
//! `rand` releases.
//!
//! [`SimRng::stream`] derives independent named substreams so that, e.g.,
//! the workload generator and the facility weather model draw from
//! unrelated sequences — adding a draw to one cannot perturb the other.
//! This is the standard trick for variance-controlled simulation
//! experiments (common random numbers across policy variants).

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic RNG with named-substream derivation.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
    seed: u64,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this RNG (or its root ancestor stream) was created with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent substream identified by a label.
    ///
    /// The derivation is pure: it depends only on the root seed and the
    /// label, not on how many draws have been made from `self`.
    #[must_use]
    pub fn stream(&self, label: &str) -> SimRng {
        let sub = splitmix64(self.seed ^ fnv1a(label.as_bytes()));
        SimRng::new(sub)
    }

    /// Derives an independent substream identified by an index (e.g. a
    /// replication number or node id).
    #[must_use]
    pub fn stream_indexed(&self, label: &str, index: u64) -> SimRng {
        let sub = splitmix64(self.seed ^ fnv1a(label.as_bytes()) ^ splitmix64(index));
        SimRng::new(sub)
    }

    /// Derives `n` independent substreams `label[0..n]` in index order —
    /// one per shard of a partitioned simulation. Each substream is the
    /// same pure derivation as [`SimRng::stream_indexed`], so the set is
    /// independent of the draw state of `self` and of `n` itself: shard
    /// `i`'s stream is identical whether the run uses 4 shards or 16.
    #[must_use]
    pub fn substreams(&self, label: &str, n: usize) -> Vec<SimRng> {
        (0..n)
            .map(|i| self.stream_indexed(label, i as u64))
            .collect()
    }

    /// The generator's complete observable state: `(seed, word_pos)`.
    ///
    /// ChaCha is a counter-mode cipher, so the absolute stream position
    /// (in 32-bit words) plus the seed fully determine every future
    /// draw; substream derivation is a pure function of the seed alone.
    /// Feed the pair to [`SimRng::from_state`] to resume the stream.
    #[must_use]
    pub fn snapshot_state(&self) -> (u64, u64) {
        (self.seed, self.inner.get_word_pos())
    }

    /// Rebuilds an RNG from a [`SimRng::snapshot_state`] pair. The next
    /// draw is exactly what the snapshotted generator would have drawn.
    #[must_use]
    pub fn from_state(seed: u64, word_pos: u64) -> Self {
        let mut rng = SimRng::new(seed);
        if word_pos > 0 {
            rng.inner.set_word_pos(word_pos);
        }
        rng
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi >= lo, "uniform_range requires hi >= lo");
        lo + self.uniform() * (hi - lo)
    }

    /// Uniform integer in `[lo, hi)` (half-open). Panics if `lo >= hi`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "uniform_usize requires lo < hi");
        self.inner.random_range(lo..hi)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Exponential draw with the given rate (mean `1/rate`).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        // Inverse-CDF; uniform() < 1 so ln argument is > 0.
        -(1.0 - self.uniform()).ln() / rate
    }

    /// Standard normal draw (Box–Muller; one value per call for simplicity).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "std_dev must be non-negative");
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Log-normal draw parameterized by the *underlying* normal's mu/sigma.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.uniform_usize(0, items.len())]
    }

    /// Weighted choice: returns the index drawn with probability
    /// proportional to `weights[i]`. Panics if all weights are zero.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0,
            "choose_weighted requires positive total weight"
        );
        let mut x = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(0, i + 1);
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn streams_are_independent_of_draw_count() {
        let root = SimRng::new(7);
        let s1 = root.stream("workload");
        let mut consumed = SimRng::new(7);
        let _ = consumed.next_u64();
        let s2 = consumed.stream("workload");
        let mut a = s1.clone();
        let mut b = s2.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn distinct_labels_give_distinct_streams() {
        let root = SimRng::new(7);
        let mut a = root.stream("weather");
        let mut b = root.stream("workload");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn indexed_streams_distinct() {
        let root = SimRng::new(7);
        let mut a = root.stream_indexed("node", 0);
        let mut b = root.stream_indexed("node", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn substreams_are_prefix_stable_in_count() {
        // Shard i's stream must not depend on how many shards exist.
        let root = SimRng::new(11);
        let four = root.substreams("shard", 4);
        let sixteen = root.substreams("shard", 16);
        for (i, (a, b)) in four.iter().zip(&sixteen).enumerate() {
            let (mut a, mut b) = (a.clone(), b.clone());
            assert_eq!(a.next_u64(), b.next_u64(), "shard {i}");
        }
        let seeds: std::collections::HashSet<u64> =
            sixteen.iter().map(super::SimRng::seed).collect();
        assert_eq!(seeds.len(), 16, "substreams must be pairwise distinct");
    }

    #[test]
    fn snapshot_state_resumes_exact_stream() {
        for draws in [0usize, 1, 7, 16, 33, 500] {
            let mut a = SimRng::new(0xfeed);
            for _ in 0..draws {
                let _ = a.uniform();
            }
            let (seed, pos) = a.snapshot_state();
            let mut b = SimRng::from_state(seed, pos);
            assert_eq!(b.snapshot_state(), (seed, pos), "restore is stable");
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64(), "diverged after {draws} draws");
            }
            // Substream derivation is seed-pure, unaffected by position.
            let (mut sa, mut sb) = (a.stream("x"), b.stream("x"));
            assert_eq!(sa.next_u64(), sb.next_u64());
        }
    }

    #[test]
    fn exponential_mean_is_reciprocal_rate() {
        let mut rng = SimRng::new(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / f64::from(n);
        assert!((mean - 2.0).abs() < 0.1, "mean was {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(4);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut rng = SimRng::new(5);
        let w = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.choose_weighted(&w)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(6);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SimRng::new(8);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// uniform_range stays within bounds for arbitrary finite ranges.
        #[test]
        fn uniform_range_in_bounds(seed in any::<u64>(), lo in -1e6f64..1e6, width in 0.001f64..1e6) {
            let mut rng = SimRng::new(seed);
            let hi = lo + width;
            for _ in 0..32 {
                let x = rng.uniform_range(lo, hi);
                prop_assert!(x >= lo && x < hi);
            }
        }

        /// Stream derivation is pure: same (seed, label) always yields the
        /// same substream regardless of interleaved draws.
        #[test]
        fn stream_derivation_pure(seed in any::<u64>(), label in "[a-z]{1,12}") {
            let r1 = SimRng::new(seed);
            let mut r2 = SimRng::new(seed);
            for _ in 0..5 { let _ = r2.next_u32(); }
            let mut s1 = r1.stream(&label);
            let mut s2 = r2.stream(&label);
            prop_assert_eq!(s1.next_u64(), s2.next_u64());
        }
    }
}
