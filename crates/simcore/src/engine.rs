//! The simulation driver: clock + event queue.
//!
//! [`Simulation`] is deliberately minimal — it owns the clock and the
//! event list and enforces the two kernel invariants:
//!
//! 1. the clock never moves backwards, and
//! 2. events cannot be scheduled in the past.
//!
//! Higher layers (the scheduler loop in `epa-sched`, the site runner in
//! `epa-sites`) pop events and mutate their own state; keeping the kernel
//! free of callbacks avoids borrow-checker contortions and keeps every
//! state transition explicit and testable.

use crate::event::EventQueue;
use crate::time::{SimDuration, SimTime};

/// A discrete-event simulation: a monotonic clock plus a stable event queue.
#[derive(Debug)]
pub struct Simulation<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
    horizon: Option<SimTime>,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Creates a simulation starting at t = 0 with no horizon.
    #[must_use]
    pub fn new() -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
            horizon: None,
        }
    }

    /// Creates a simulation that stops delivering events past `horizon`.
    #[must_use]
    pub fn with_horizon(horizon: SimTime) -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
            horizon: Some(horizon),
        }
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configured horizon, if any.
    #[must_use]
    pub fn horizon(&self) -> Option<SimTime> {
        self.horizon
    }

    /// Number of events delivered so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock — scheduling into
    /// the past is always a logic error in the caller.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        self.queue.push(at, event);
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules an event at the current time (delivered after all events
    /// already queued for this instant — FIFO within a timestamp).
    pub fn schedule_now(&mut self, event: E) {
        self.queue.push(self.now, event);
    }

    /// Time of the next pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// `(time, seq)` key of the next pending event, if any — the bound a
    /// conservative-window drain of seq-sharing side queues runs up to.
    #[must_use]
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.queue.peek_key()
    }

    /// Allocates a sequence number from this simulation's global event
    /// numbering without scheduling anything. Side queues (shard-local
    /// event queues) stamp their entries with these so the merged
    /// `(time, seq)` order across all queues equals the order a single
    /// queue would deliver.
    pub fn alloc_seq(&mut self) -> u64 {
        self.queue.alloc_seq()
    }

    /// Delivers the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is empty or the next event lies beyond
    /// the horizon. In the horizon case the clock is advanced to the horizon
    /// so that final-state accounting (energy integration, utilization)
    /// covers the full simulated interval, and the remaining events are
    /// dropped.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let t = self.queue.peek_time()?;
        if let Some(h) = self.horizon {
            if t > h {
                self.now = self.now.max(h);
                self.queue.clear();
                return None;
            }
        }
        let (t, e) = self.queue.pop().expect("peeked, so pop must succeed");
        debug_assert!(t >= self.now);
        self.now = t;
        self.processed += 1;
        Some((t, e))
    }

    /// Read-only access to the event queue (snapshot encoding: the
    /// caller serializes pending entries and the seq counter).
    #[must_use]
    pub fn queue(&self) -> &EventQueue<E> {
        &self.queue
    }

    /// Mutable access to the event queue (snapshot restore: the caller
    /// clears it, rebuilds pending entries with
    /// [`EventQueue::push_with_seq`], and restores the seq counter).
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Overwrites the clock and the processed-event count (snapshot
    /// restore). Unlike [`Simulation::advance_to`] this may rewind —
    /// restoring a snapshot into a freshly-built simulation is the one
    /// legitimate case where the monotonic-clock invariant resets.
    pub fn restore_clock(&mut self, now: SimTime, processed: u64) {
        self.now = now;
        self.processed = processed;
    }

    /// Advances the clock without delivering an event (e.g. to the horizon
    /// after the queue drains). Panics if `to` is in the past.
    pub fn advance_to(&mut self, to: SimTime) {
        assert!(to >= self.now, "cannot rewind the clock");
        self.now = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn clock_follows_events() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(10.0), Ev::Tick(1));
        sim.schedule_at(SimTime::from_secs(5.0), Ev::Tick(0));
        let (t0, e0) = sim.next_event().unwrap();
        assert_eq!(t0.as_secs(), 5.0);
        assert_eq!(e0, Ev::Tick(0));
        assert_eq!(sim.now().as_secs(), 5.0);
        let (t1, _) = sim.next_event().unwrap();
        assert_eq!(t1.as_secs(), 10.0);
        assert_eq!(sim.events_processed(), 2);
        assert!(sim.next_event().is_none());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(100.0), Ev::Tick(0));
        sim.next_event().unwrap();
        sim.schedule_in(SimDuration::from_secs(50.0), Ev::Tick(1));
        let (t, _) = sim.next_event().unwrap();
        assert_eq!(t.as_secs(), 150.0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn past_scheduling_panics() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(10.0), Ev::Tick(0));
        sim.next_event().unwrap();
        sim.schedule_at(SimTime::from_secs(5.0), Ev::Tick(1));
    }

    #[test]
    fn horizon_stops_delivery_and_advances_clock() {
        let mut sim = Simulation::with_horizon(SimTime::from_secs(100.0));
        sim.schedule_at(SimTime::from_secs(50.0), Ev::Tick(0));
        sim.schedule_at(SimTime::from_secs(150.0), Ev::Tick(1));
        assert!(sim.next_event().is_some());
        assert!(sim.next_event().is_none());
        assert_eq!(sim.now().as_secs(), 100.0);
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn event_exactly_at_horizon_is_delivered() {
        let mut sim = Simulation::with_horizon(SimTime::from_secs(100.0));
        sim.schedule_at(SimTime::from_secs(100.0), Ev::Tick(0));
        assert!(sim.next_event().is_some());
    }

    #[test]
    fn schedule_now_fifo() {
        let mut sim = Simulation::new();
        sim.schedule_now(Ev::Tick(0));
        sim.schedule_now(Ev::Tick(1));
        assert_eq!(sim.next_event().unwrap().1, Ev::Tick(0));
        assert_eq!(sim.next_event().unwrap().1, Ev::Tick(1));
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut sim: Simulation<Ev> = Simulation::new();
        sim.advance_to(SimTime::from_secs(42.0));
        assert_eq!(sim.now().as_secs(), 42.0);
    }
}
