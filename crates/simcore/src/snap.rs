//! Versioned, checksummed binary snapshot codec.
//!
//! The engine's snapshot/restore capability (resumable runs, crash
//! recovery) needs a serialization format that is:
//!
//! - **deterministic** — the same state always encodes to the same
//!   bytes, so snapshot→restore→snapshot is byte-stable and testable;
//! - **self-describing enough to fail loudly** — a fixed magic, a schema
//!   version, a whole-payload checksum, and named section markers turn
//!   corruption, truncation, and version skew into typed
//!   [`SnapshotError`]s instead of silently half-loaded state;
//! - **dependency-free** — the workspace builds offline; this is a
//!   hand-rolled little-endian codec, not a serde backend.
//!
//! Layout: `"EPASNAP1"` (8 bytes) · version (`u32`) · payload length
//! (`u64`) · FNV-1a-64 checksum of the payload (`u64`) · payload. The
//! payload is a strict sequence of primitive fields; composite state is
//! framed by named section markers so a reader that drifts out of sync
//! reports *where* it lost the plot.
//!
//! Every value is little-endian. `f64` round-trips via its IEEE-754 bit
//! pattern, so restored floating-point state is bit-identical — the
//! foundation of the engine's byte-identical-resume guarantee.

use std::fmt;

/// The 8-byte magic prefix of every snapshot.
pub const SNAP_MAGIC: [u8; 8] = *b"EPASNAP1";

/// Marker byte preceding each named section.
const SECTION_TAG: u8 = 0xA5;

/// Why a snapshot could not be decoded. Restore paths return these —
/// never panic — so a damaged or incompatible snapshot degrades into a
/// reportable error instead of corrupt engine state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The snapshot was written by an incompatible schema version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this reader understands.
        expected: u32,
    },
    /// The buffer ends before the declared payload does.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// The snapshot describes a different machine (node count, shard
    /// layout) than the engine it is being restored into.
    TopologyMismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// The snapshot was taken under a different engine configuration
    /// (config fingerprint, workload, or policy disagree).
    ConfigMismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// The payload is structurally invalid (bad section marker, invalid
    /// enum tag, impossible value).
    Corrupt {
        /// Human-readable description of the damage.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot: bad magic"),
            SnapshotError::UnsupportedVersion { found, expected } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (expected {expected})"
                )
            }
            SnapshotError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated snapshot: needed {needed} bytes, have {available}"
                )
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::TopologyMismatch { detail } => {
                write!(f, "snapshot topology mismatch: {detail}")
            }
            SnapshotError::ConfigMismatch { detail } => {
                write!(f, "snapshot config mismatch: {detail}")
            }
            SnapshotError::Corrupt { detail } => write!(f, "corrupt snapshot: {detail}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit hash — the snapshot checksum and the config
/// fingerprint's fold. Not cryptographic; it guards against accidental
/// corruption and mismatched inputs, not adversaries.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Incremental FNV-1a-64 fold for building config fingerprints out of
/// heterogeneous fields without allocating an intermediate buffer.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    hash: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// Starts a fingerprint at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fingerprint {
            hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Folds raw bytes into the fingerprint.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Folds a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Folds an `f64` via its bit pattern.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Folds a string (length-prefixed, so `"ab","c"` ≠ `"a","bc"`).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    /// The folded hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

/// Serializer for the snapshot payload. Fields are appended in a fixed
/// order; [`SnapWriter::finish`] frames the payload with magic, version,
/// length, and checksum.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Appends a named section marker. Purely structural: readers check
    /// it with [`SnapReader::section`] to detect drift early and report
    /// which component's state went bad.
    pub fn section(&mut self, name: &str) {
        self.buf.push(SECTION_TAG);
        self.str(name);
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` (little-endian, two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` via its IEEE-754 bit pattern (bit-exact).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends an option tag (1 = present) followed by the value when
    /// present, encoded by `f`.
    pub fn opt<T>(&mut self, v: Option<&T>, f: impl FnOnce(&mut Self, &T)) {
        match v {
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
            None => self.u8(0),
        }
    }

    /// Appends a length-prefixed sequence, each element encoded by `f`.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.u64(items.len() as u64);
        for item in items {
            f(self, item);
        }
    }

    /// Bytes written so far (payload only, no header).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Frames the payload: magic · version · length · checksum · payload.
    #[must_use]
    pub fn finish(self, version: u32) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.buf.len() + 28);
        out.extend_from_slice(&SNAP_MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&self.buf).to_le_bytes());
        out.extend_from_slice(&self.buf);
        out
    }
}

/// Deserializer over a framed snapshot. [`SnapReader::open`] validates
/// magic, version, declared length, and checksum before any field is
/// decoded; every accessor returns a typed error instead of panicking.
#[derive(Debug)]
pub struct SnapReader<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Validates the frame and returns a reader positioned at the start
    /// of the payload.
    pub fn open(bytes: &'a [u8], expected_version: u32) -> Result<Self, SnapshotError> {
        if bytes.len() < 8 {
            return Err(SnapshotError::Truncated {
                needed: 8,
                available: bytes.len(),
            });
        }
        if bytes[..8] != SNAP_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if bytes.len() < 28 {
            return Err(SnapshotError::Truncated {
                needed: 28,
                available: bytes.len(),
            });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != expected_version {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                expected: expected_version,
            });
        }
        let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
        let stored = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
        let available = bytes.len() - 28;
        if available < len {
            return Err(SnapshotError::Truncated {
                needed: len + 28,
                available: bytes.len(),
            });
        }
        let payload = &bytes[28..28 + len];
        let computed = fnv1a64(payload);
        if computed != stored {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        Ok(SnapReader { payload, pos: 0 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.payload.len() {
            return Err(SnapshotError::Truncated {
                needed: self.pos + n,
                available: self.payload.len(),
            });
        }
        let slice = &self.payload[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Consumes and validates a section marker written by
    /// [`SnapWriter::section`].
    pub fn section(&mut self, name: &str) -> Result<(), SnapshotError> {
        let tag = self.u8()?;
        if tag != SECTION_TAG {
            return Err(SnapshotError::Corrupt {
                detail: format!("expected section marker for {name:?}, found byte {tag:#04x}"),
            });
        }
        let found = self.str()?;
        if found != name {
            return Err(SnapshotError::Corrupt {
                detail: format!("expected section {name:?}, found {found:?}"),
            });
        }
        Ok(())
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `usize` (stored as `u64`; errors if it overflows).
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt {
            detail: format!("length {v} overflows usize"),
        })
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt {
                detail: format!("invalid bool byte {b:#04x}"),
            }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Corrupt {
            detail: "invalid UTF-8 in string".to_owned(),
        })
    }

    /// Reads an option written by [`SnapWriter::opt`].
    pub fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, SnapshotError>,
    ) -> Result<Option<T>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            b => Err(SnapshotError::Corrupt {
                detail: format!("invalid option tag {b:#04x}"),
            }),
        }
    }

    /// Reads a length-prefixed sequence written by [`SnapWriter::seq`].
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, SnapshotError>,
    ) -> Result<Vec<T>, SnapshotError> {
        let len = self.usize()?;
        // Guard allocation against a corrupt length that slipped past the
        // checksum (each element is at least one byte).
        if len > self.payload.len() - self.pos {
            return Err(SnapshotError::Corrupt {
                detail: format!("sequence length {len} exceeds remaining payload"),
            });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Verifies the whole payload was consumed — trailing garbage means
    /// the writer and reader disagree about the schema.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.pos != self.payload.len() {
            return Err(SnapshotError::Corrupt {
                detail: format!(
                    "{} unread payload bytes after the last field",
                    self.payload.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_frame(version: u32) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.section("demo");
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.i64(-42);
        w.f64(std::f64::consts::PI);
        w.bool(true);
        w.str("hello");
        w.opt(Some(&3u64), |w, v| w.u64(*v));
        w.opt(None::<&u64>, |w, v| w.u64(*v));
        w.seq(&[1u64, 2, 3], |w, v| w.u64(*v));
        w.finish(version)
    }

    #[test]
    fn primitives_roundtrip() {
        let bytes = roundtrip_frame(1);
        let mut r = SnapReader::open(&bytes, 1).unwrap();
        r.section("demo").unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), std::f64::consts::PI);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.opt(|r| r.u64()).unwrap(), Some(3));
        assert_eq!(r.opt(|r| r.u64()).unwrap(), None);
        assert_eq!(r.seq(|r| r.u64()).unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = roundtrip_frame(1);
        bytes[0] ^= 0xff;
        assert_eq!(
            SnapReader::open(&bytes, 1).unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn version_skew_is_typed() {
        let bytes = roundtrip_frame(2);
        assert_eq!(
            SnapReader::open(&bytes, 1).unwrap_err(),
            SnapshotError::UnsupportedVersion {
                found: 2,
                expected: 1
            }
        );
    }

    #[test]
    fn every_flipped_payload_byte_is_caught() {
        let bytes = roundtrip_frame(1);
        for i in 28..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            match SnapReader::open(&bad, 1) {
                Err(SnapshotError::ChecksumMismatch { .. }) => {}
                other => panic!("flip at {i}: expected checksum mismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_truncation_is_caught() {
        let bytes = roundtrip_frame(1);
        for cut in 0..bytes.len() {
            match SnapReader::open(&bytes[..cut], 1) {
                Err(SnapshotError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected truncation error, got {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_section_name_is_corrupt() {
        let mut w = SnapWriter::new();
        w.section("alpha");
        let bytes = w.finish(1);
        let mut r = SnapReader::open(&bytes, 1).unwrap();
        assert!(matches!(
            r.section("beta").unwrap_err(),
            SnapshotError::Corrupt { .. }
        ));
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut w = SnapWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.finish(1);
        let mut r = SnapReader::open(&bytes, 1).unwrap();
        let _ = r.u8().unwrap();
        assert!(matches!(
            r.finish().unwrap_err(),
            SnapshotError::Corrupt { .. }
        ));
    }

    #[test]
    fn fingerprint_is_order_and_frame_sensitive() {
        let a = Fingerprint::new().str("ab").str("c").finish();
        let b = Fingerprint::new().str("a").str("bc").finish();
        assert_ne!(a, b, "length prefixes must separate fields");
        let c = Fingerprint::new().u64(1).u64(2).finish();
        let d = Fingerprint::new().u64(2).u64(1).finish();
        assert_ne!(c, d);
    }
}
