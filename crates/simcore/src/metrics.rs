//! String-keyed metrics registry.
//!
//! Every layer of the framework (power substrate, scheduler policies,
//! resource manager) records counters, gauges, and traces under
//! hierarchical names like `"sched/backfilled_jobs"` or
//! `"power/system_watts"`. The registry is the single collection point the
//! survey engine reads when answering quantitative questionnaire items
//! (Q3 throughput, Q7 results).

use crate::series::TimeSeries;
use crate::stats::{OnlineStats, Percentiles};
use crate::time::SimTime;
use serde::Serialize;
use std::collections::BTreeMap;

/// A registry of named counters, distributions, and time series.
///
/// Uses `BTreeMap` so that report iteration order is deterministic.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    stats: BTreeMap<String, OnlineStats>,
    distributions: BTreeMap<String, Percentiles>,
    series: BTreeMap<String, TimeSeries>,
}

/// A point-in-time snapshot of scalar metrics, serializable for reports.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Mean of each observed distribution by name.
    pub means: BTreeMap<String, f64>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments a counter by `n`, creating it at zero if absent.
    pub fn incr(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Reads a counter (0 when never written).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records an observation into both the moment accumulator and the
    /// exact-percentile sample store for `name`.
    pub fn observe(&mut self, name: &str, x: f64) {
        self.stats.entry(name.to_owned()).or_default().push(x);
        self.distributions
            .entry(name.to_owned())
            .or_default()
            .push(x);
    }

    /// Moment accumulator for `name`, if any observations were recorded.
    #[must_use]
    pub fn stats(&self, name: &str) -> Option<&OnlineStats> {
        self.stats.get(name)
    }

    /// Mutable access to the percentile store for `name`.
    pub fn distribution_mut(&mut self, name: &str) -> Option<&mut Percentiles> {
        self.distributions.get_mut(name)
    }

    /// Appends a change point to the time series `name`.
    pub fn trace(&mut self, name: &str, t: SimTime, value: f64) {
        self.series
            .entry(name.to_owned())
            .or_default()
            .push(t, value);
    }

    /// The time series recorded under `name`, if any.
    #[must_use]
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Names of all recorded counters.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// Names of all recorded series.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Produces a serializable snapshot of counters and distribution means.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            means: self
                .stats
                .iter()
                .map(|(k, v)| (k.clone(), v.mean()))
                .collect(),
        }
    }

    /// Encodes the full registry (counters, moment accumulators, sample
    /// stores, time series) into a snapshot. `BTreeMap` iteration order
    /// makes the encoding deterministic.
    pub fn snapshot_into(&self, w: &mut crate::snap::SnapWriter) {
        let counters: Vec<_> = self.counters.iter().collect();
        w.seq(&counters, |w, (k, v)| {
            w.str(k);
            w.u64(**v);
        });
        let stats: Vec<_> = self.stats.iter().collect();
        w.seq(&stats, |w, (k, v)| {
            w.str(k);
            v.snapshot_into(w);
        });
        let distributions: Vec<_> = self.distributions.iter().collect();
        w.seq(&distributions, |w, (k, v)| {
            w.str(k);
            v.snapshot_into(w);
        });
        let series: Vec<_> = self.series.iter().collect();
        w.seq(&series, |w, (k, v)| {
            w.str(k);
            v.snapshot_into(w);
        });
    }

    /// Decodes a registry written by [`MetricsRegistry::snapshot_into`].
    pub fn restore_from(
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<Self, crate::snap::SnapshotError> {
        let counters = r.seq(|r| Ok((r.str()?, r.u64()?)))?.into_iter().collect();
        let stats = r
            .seq(|r| Ok((r.str()?, OnlineStats::restore_from(r)?)))?
            .into_iter()
            .collect();
        let distributions = r
            .seq(|r| Ok((r.str()?, Percentiles::restore_from(r)?)))?
            .into_iter()
            .collect();
        let series = r
            .seq(|r| Ok((r.str()?, TimeSeries::restore_from(r)?)))?
            .into_iter()
            .collect();
        Ok(MetricsRegistry {
            counters,
            stats,
            distributions,
            series,
        })
    }

    /// Merges another registry into this one (counters add, observations
    /// pool, series must not collide).
    ///
    /// # Panics
    /// Panics if both registries recorded a series under the same name —
    /// series merging is ambiguous for step functions.
    pub fn merge(&mut self, other: MetricsRegistry) {
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.stats {
            self.stats.entry(k).or_default().merge(&v);
        }
        for (k, v) in other.distributions {
            let dst = self.distributions.entry(k).or_default();
            dst.extend(v.samples().iter().copied());
        }
        for (k, v) in other.series {
            assert!(
                !self.series.contains_key(&k),
                "series '{k}' recorded by both registries; merge is ambiguous"
            );
            self.series.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.incr("jobs/completed", 1);
        m.incr("jobs/completed", 2);
        assert_eq!(m.counter("jobs/completed"), 3);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn observations_feed_stats_and_percentiles() {
        let mut m = MetricsRegistry::new();
        for i in 1..=9 {
            m.observe("wait", f64::from(i));
        }
        assert!((m.stats("wait").unwrap().mean() - 5.0).abs() < 1e-12);
        let p = m.distribution_mut("wait").unwrap();
        assert_eq!(p.quantile(0.5), Some(5.0));
    }

    #[test]
    fn traces_are_series() {
        let mut m = MetricsRegistry::new();
        m.trace("watts", SimTime::ZERO, 100.0);
        m.trace("watts", SimTime::from_secs(10.0), 200.0);
        let s = m.series("watts").unwrap();
        assert!((s.integrate(SimTime::ZERO, SimTime::from_secs(20.0)) - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_is_deterministic() {
        let mut m = MetricsRegistry::new();
        m.incr("b", 1);
        m.incr("a", 1);
        m.observe("x", 2.0);
        let snap = m.snapshot();
        let keys: Vec<_> = snap.counters.keys().cloned().collect();
        assert_eq!(keys, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(snap.means["x"], 2.0);
    }

    #[test]
    fn merge_pools_counters_and_stats() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.incr("c", 1);
        b.incr("c", 2);
        a.observe("x", 1.0);
        b.observe("x", 3.0);
        b.trace("s", SimTime::ZERO, 1.0);
        a.merge(b);
        assert_eq!(a.counter("c"), 3);
        assert!((a.stats("x").unwrap().mean() - 2.0).abs() < 1e-12);
        assert!(a.series("s").is_some());
    }

    #[test]
    #[should_panic(expected = "ambiguous")]
    fn merge_series_collision_panics() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.trace("s", SimTime::ZERO, 1.0);
        b.trace("s", SimTime::ZERO, 2.0);
        a.merge(b);
    }
}
