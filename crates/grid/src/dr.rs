//! Demand-response contracts: curtailment events with contractual
//! targets and penalty accounting.
//!
//! A DR contract is a list of events. During an event the utility asks
//! the site to hold facility draw at or below `target_frac` of the
//! nominal budget; energy drawn above the target during the window is
//! "excess", and if the excess over a window exceeds the contractual
//! tolerance the operator pays a penalty per excess kWh. The engine
//! receives events only through the control plane
//! (`ControlAction::ResizeBudget`, optionally `EmergencyShed`); this
//! module owns the contract semantics and the accounting.

use crate::error::GridError;
use epa_simcore::snap::Fingerprint;
use epa_simcore::SimTime;
use serde::Serialize;

/// One curtailment window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DrEvent {
    /// Window start.
    pub start: SimTime,
    /// Window end.
    pub end: SimTime,
    /// Curtailment target as a fraction of the nominal budget (0, 1].
    pub target_frac: f64,
    /// When true the engine also arms an emergency shed if observed
    /// draw is above the target at event start (hard curtailment); when
    /// false the event only resizes the budget (soft curtailment).
    pub enforce: bool,
}

impl DrEvent {
    /// Target draw in watts for a given nominal budget.
    #[must_use]
    pub fn target_watts(&self, nominal_watts: f64) -> f64 {
        nominal_watts * self.target_frac
    }
}

/// A demand-response contract: events plus penalty terms.
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct DrContract {
    /// Curtailment windows, in ascending, non-overlapping order.
    pub events: Vec<DrEvent>,
    /// Penalty per kWh of excess beyond the tolerance, in the same
    /// currency as the price trace.
    pub penalty_per_excess_kwh: f64,
    /// Excess energy forgiven per event before penalties apply, kWh.
    pub tolerance_kwh: f64,
}

/// Per-event settlement produced by [`DrContract::account`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DrEventOutcome {
    /// Index of the event in the contract.
    pub event: usize,
    /// Seconds during the window where draw exceeded the target.
    pub violation_secs: f64,
    /// Energy above the target during the window, kWh.
    pub excess_kwh: f64,
    /// Penalty charged for this event.
    pub penalty: f64,
}

/// Contract-wide settlement.
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct DrAccounting {
    /// One settlement row per event.
    pub events: Vec<DrEventOutcome>,
    /// Sum of per-event penalties.
    pub penalty_total: f64,
}

impl DrContract {
    /// Validates event ordering and penalty terms.
    pub fn validate(&self) -> Result<(), GridError> {
        let mut prev_end = f64::NEG_INFINITY;
        for (i, ev) in self.events.iter().enumerate() {
            if ev.start >= ev.end {
                return Err(GridError::InvalidConfig(format!(
                    "DR event {i} has an empty window [{}, {})",
                    ev.start.as_secs(),
                    ev.end.as_secs()
                )));
            }
            if ev.start.as_secs() < prev_end {
                return Err(GridError::InvalidConfig(format!(
                    "DR event {i} overlaps the previous event"
                )));
            }
            if !(ev.target_frac > 0.0 && ev.target_frac <= 1.0) {
                return Err(GridError::InvalidConfig(format!(
                    "DR event {i} target fraction {} outside (0, 1]",
                    ev.target_frac
                )));
            }
            prev_end = ev.end.as_secs();
        }
        if self.penalty_per_excess_kwh < 0.0 || self.tolerance_kwh < 0.0 {
            return Err(GridError::InvalidConfig(
                "penalty and tolerance must be non-negative".into(),
            ));
        }
        Ok(())
    }

    /// The legacy budget-schedule encoding of this contract: each event
    /// becomes a resize down to the target at `start` and a resize back
    /// to nominal at `end`. This is exactly the shape the old inline
    /// `e12_demand_response` schedule used, and the adapter the rework
    /// proves byte-identical against.
    #[must_use]
    pub fn budget_schedule(&self, nominal_watts: f64) -> Vec<(SimTime, f64)> {
        self.events
            .iter()
            .flat_map(|ev| {
                [
                    (ev.start, ev.target_watts(nominal_watts)),
                    (ev.end, nominal_watts),
                ]
            })
            .collect()
    }

    /// Settles the contract against a recorded power trace of
    /// `(seconds, watts)` samples (the engine's `power_trace`), treating
    /// each sample as holding until the next. Penalty applies iff an
    /// event's excess energy exceeds the tolerance.
    #[must_use]
    pub fn account(&self, nominal_watts: f64, power_trace: &[(f64, f64)]) -> DrAccounting {
        let mut out = DrAccounting::default();
        for (i, ev) in self.events.iter().enumerate() {
            let target = ev.target_watts(nominal_watts);
            let (start, end) = (ev.start.as_secs(), ev.end.as_secs());
            let mut violation_secs = 0.0;
            let mut excess_joules = 0.0;
            for pair in power_trace.windows(2) {
                let (t0, w) = pair[0];
                let (t1, _) = pair[1];
                let lo = t0.max(start);
                let hi = t1.min(end);
                if hi > lo && w > target {
                    violation_secs += hi - lo;
                    excess_joules += (w - target) * (hi - lo);
                }
            }
            let excess_kwh = excess_joules / 3.6e6;
            let penalty = if excess_kwh > self.tolerance_kwh {
                (excess_kwh - self.tolerance_kwh) * self.penalty_per_excess_kwh
            } else {
                0.0
            };
            out.events.push(DrEventOutcome {
                event: i,
                violation_secs,
                excess_kwh,
                penalty,
            });
            out.penalty_total += penalty;
        }
        out
    }

    /// Folds the contract into a config fingerprint.
    pub fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.u64(self.events.len() as u64);
        for ev in &self.events {
            fp.f64(ev.start.as_secs());
            fp.f64(ev.end.as_secs());
            fp.f64(ev.target_frac);
            fp.u64(u64::from(ev.enforce));
        }
        fp.f64(self.penalty_per_excess_kwh);
        fp.f64(self.tolerance_kwh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn event(start: f64, end: f64, frac: f64) -> DrEvent {
        DrEvent {
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
            target_frac: frac,
            enforce: false,
        }
    }

    fn one_event(start: f64, end: f64, frac: f64) -> DrContract {
        DrContract {
            events: vec![event(start, end, frac)],
            penalty_per_excess_kwh: 10.0,
            tolerance_kwh: 1.0,
        }
    }

    #[test]
    fn validation_rejects_bad_contracts() {
        one_event(0.0, 10.0, 0.5).validate().unwrap();
        assert!(one_event(10.0, 10.0, 0.5).validate().is_err());
        assert!(one_event(0.0, 10.0, 0.0).validate().is_err());
        assert!(one_event(0.0, 10.0, 1.5).validate().is_err());
        let mut c = one_event(0.0, 10.0, 0.5);
        c.events.push(event(5.0, 15.0, 0.5));
        assert!(c.validate().is_err(), "overlap must be rejected");
        let mut c = one_event(0.0, 10.0, 0.5);
        c.tolerance_kwh = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn budget_schedule_matches_legacy_shape() {
        let nominal = 1000.0;
        let c = one_event(3600.0, 7200.0, 0.5);
        assert_eq!(
            c.budget_schedule(nominal),
            vec![
                (SimTime::from_secs(3600.0), 500.0),
                (SimTime::from_secs(7200.0), 1000.0)
            ]
        );
    }

    #[test]
    fn accounting_integrates_excess() {
        let c = one_event(0.0, 3600.0, 0.5);
        // 1000 W flat against a 500 W target for one hour: 0.5 kWh excess,
        // under the 1 kWh tolerance, so no penalty.
        let trace = vec![(0.0, 1000.0), (3600.0, 1000.0)];
        let acc = c.account(1000.0, &trace);
        assert!((acc.events[0].excess_kwh - 0.5).abs() < 1e-9);
        assert_eq!(acc.penalty_total, 0.0);
        // Four hours of the same draw inside a longer event: 2 kWh excess,
        // 1 kWh over tolerance → penalty 10.
        let c = one_event(0.0, 4.0 * 3600.0, 0.5);
        let trace = vec![(0.0, 1000.0), (4.0 * 3600.0, 1000.0)];
        let acc = c.account(1000.0, &trace);
        assert!((acc.events[0].excess_kwh - 2.0).abs() < 1e-9);
        assert!((acc.penalty_total - 10.0).abs() < 1e-9);
    }

    proptest! {
        /// Penalty is charged iff the curtailment target was missed by
        /// more than the tolerance, and never for compliant traces.
        #[test]
        fn penalty_iff_target_missed(
            draw_frac in 0.0f64..1.5,
            target_frac in 0.05f64..1.0,
            hours in 1.0f64..12.0,
            tolerance in 0.0f64..5.0,
        ) {
            let nominal = 1000.0;
            let end = hours * 3600.0;
            let c = DrContract {
                events: vec![event(0.0, end, target_frac)],
                penalty_per_excess_kwh: 7.0,
                tolerance_kwh: tolerance,
            };
            let trace = vec![(0.0, nominal * draw_frac), (end, nominal * draw_frac)];
            let acc = c.account(nominal, &trace);
            let excess_kwh = ((draw_frac - target_frac).max(0.0) * nominal * end) / 3.6e6;
            prop_assert!((acc.events[0].excess_kwh - excess_kwh).abs() < 1e-9);
            if excess_kwh > tolerance {
                prop_assert!(acc.penalty_total > 0.0, "missed target must be penalized");
                prop_assert!((acc.penalty_total - (excess_kwh - tolerance) * 7.0).abs() < 1e-9);
            } else {
                prop_assert_eq!(acc.penalty_total, 0.0);
            }
        }
    }
}
