//! The grid co-simulation model: configuration the engine is handed at
//! build time, the mutable state it advances at every window barrier,
//! and the settled summary it reports at the end of a run.
//!
//! The coupling contract with the engine is deliberately narrow:
//!
//! - at every power tick the engine calls [`GridState::on_tick`] with
//!   the elapsed interval and the metered IT draw, and gets back the
//!   *target IT budget* the facility can sustain right now (cooling
//!   head-room × follow-the-renewables derating × any active DR
//!   curtailment). The engine turns a changed target into a
//!   `ControlAction::ResizeBudget` through the control plane — the grid
//!   never touches scheduler internals directly;
//! - DR event boundaries arrive as ordinary global simulation events and
//!   call [`GridState::on_event_start`] / [`GridState::on_event_end`];
//! - [`GridState`] snapshots into its own named section of the engine
//!   snapshot, so crash-safe resume replays cost/carbon/penalty
//!   accounting byte-exactly.

use crate::cooling::CoolingModel;
use crate::dr::{DrAccounting, DrContract, DrEvent, DrEventOutcome};
use crate::error::GridError;
use crate::trace::{GridTrace, TraceCursor};
use epa_simcore::snap::{Fingerprint, SnapReader, SnapWriter, SnapshotError};
use epa_simcore::SimTime;
use serde::Serialize;

/// Immutable grid configuration — re-supplied at resume and guarded by
/// the engine's config fingerprint, like the rest of `EngineConfig`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GridConfig {
    /// Electricity price trace, currency per MWh.
    pub price: GridTrace,
    /// Carbon-intensity trace, gCO₂ per kWh.
    pub carbon: GridTrace,
    /// Demand-response contract (may have zero events).
    pub contract: DrContract,
    /// Cooling loop; when absent, PUE falls back to the engine's static
    /// facility model and no cooling feedback applies.
    pub cooling: Option<CoolingModel>,
    /// Nominal (uncurtailed) IT power budget, watts.
    pub nominal_it_watts: f64,
    /// Follow-the-renewables price response in `[0, 1]`: how much of the
    /// budget to shed when the price sits at its trace maximum.
    pub price_follow: f64,
    /// Carbon analog of `price_follow`.
    pub carbon_follow: f64,
}

/// Floor on the follow-the-renewables derating: the budget target never
/// drops below this fraction of its cooling-limited base, so the site
/// keeps running (and draining its queue) even at peak price + carbon.
const FOLLOW_FLOOR: f64 = 0.05;

impl GridConfig {
    /// A fully synthetic site configuration: diurnal price and carbon
    /// traces in the site's local time, a simple cooling loop sized for
    /// `site_budget_watts`, and an empty DR contract.
    #[must_use]
    pub fn synthetic(
        nominal_it_watts: f64,
        site_budget_watts: f64,
        base_price_per_mwh: f64,
        base_carbon_g_per_kwh: f64,
        days: u32,
        tz_offset_hours: f64,
        seed: u64,
    ) -> Self {
        GridConfig {
            price: GridTrace::synthetic_price(
                base_price_per_mwh,
                0.35,
                days,
                tz_offset_hours,
                seed,
            ),
            carbon: GridTrace::synthetic_carbon(
                base_carbon_g_per_kwh,
                0.5,
                days,
                tz_offset_hours,
                seed.wrapping_add(1),
            ),
            contract: DrContract::default(),
            cooling: Some(CoolingModel::simple(site_budget_watts)),
            nominal_it_watts,
            price_follow: 0.0,
            carbon_follow: 0.0,
        }
    }

    /// Validates traces, contract, cooling, and follow weights.
    pub fn validate(&self) -> Result<(), GridError> {
        self.contract.validate()?;
        if let Some(c) = &self.cooling {
            c.validate()?;
        }
        if !self.nominal_it_watts.is_finite() || self.nominal_it_watts <= 0.0 {
            return Err(GridError::InvalidConfig(
                "nominal IT budget must be positive".into(),
            ));
        }
        for (name, w) in [
            ("price_follow", self.price_follow),
            ("carbon_follow", self.carbon_follow),
        ] {
            if !(0.0..=1.0).contains(&w) {
                return Err(GridError::InvalidConfig(format!(
                    "{name} must lie in [0, 1], got {w}"
                )));
            }
        }
        Ok(())
    }

    /// Folds the whole config into the engine's resume fingerprint.
    pub fn fingerprint(&self, fp: &mut Fingerprint) {
        self.price.fingerprint(fp);
        self.carbon.fingerprint(fp);
        self.contract.fingerprint(fp);
        fp.u64(u64::from(self.cooling.is_some()));
        if let Some(c) = &self.cooling {
            c.fingerprint(fp);
        }
        fp.f64(self.nominal_it_watts);
        fp.f64(self.price_follow);
        fp.f64(self.carbon_follow);
    }

    /// The DR event with the given index, if any.
    #[must_use]
    pub fn event(&self, idx: u32) -> Option<&DrEvent> {
        self.contract.events.get(idx as usize)
    }
}

/// Mutable grid runtime state, advanced at window barriers only.
#[derive(Debug, Clone, PartialEq)]
pub struct GridState {
    price_cursor: TraceCursor,
    carbon_cursor: TraceCursor,
    /// Cached trace bounds (config-derived; rebuilt at resume).
    price_bounds: (f64, f64),
    carbon_bounds: (f64, f64),
    /// Index of the DR event currently in force.
    active_event: Option<u32>,
    /// Per-event accumulated excess energy (joules of IT draw above the
    /// curtailment target) and violation seconds.
    event_excess_joules: Vec<f64>,
    event_violation_secs: Vec<f64>,
    /// Settled totals.
    cost_total: f64,
    carbon_kg_total: f64,
    energy_it_joules: f64,
    energy_facility_joules: f64,
    /// Most recent per-tick readings, exposed to `Observation`.
    last_price: f64,
    last_carbon: f64,
    last_pue: f64,
    dr_active: bool,
}

impl GridState {
    /// Fresh state for a config (reads the traces at t = 0).
    #[must_use]
    pub fn new(cfg: &GridConfig) -> Self {
        GridState {
            price_cursor: TraceCursor::new(),
            carbon_cursor: TraceCursor::new(),
            price_bounds: cfg.price.bounds(),
            carbon_bounds: cfg.carbon.bounds(),
            active_event: None,
            event_excess_joules: vec![0.0; cfg.contract.events.len()],
            event_violation_secs: vec![0.0; cfg.contract.events.len()],
            cost_total: 0.0,
            carbon_kg_total: 0.0,
            energy_it_joules: 0.0,
            energy_facility_joules: 0.0,
            last_price: cfg.price.value_at(SimTime::ZERO),
            last_carbon: cfg.carbon.value_at(SimTime::ZERO),
            last_pue: 1.0,
            dr_active: false,
        }
    }

    /// Advances the twin over `(t - dt_secs, t]`: settles cost/carbon
    /// for the interval at the metered IT draw, accumulates DR excess,
    /// and returns the IT budget target the facility can sustain at `t`.
    ///
    /// `fallback_pue` is used when the config carries no cooling loop
    /// (the engine passes its static facility PUE, or 1.0).
    pub fn on_tick(
        &mut self,
        cfg: &GridConfig,
        t: SimTime,
        dt_secs: f64,
        it_watts: f64,
        temp_c: f64,
        fallback_pue: f64,
    ) -> f64 {
        let price = self.price_cursor.value(&cfg.price, t);
        let carbon = self.carbon_cursor.value(&cfg.carbon, t);
        let pue = match &cfg.cooling {
            Some(c) => c.pue(temp_c, it_watts, cfg.nominal_it_watts),
            None => fallback_pue.max(1.0),
        };
        let facility_watts = it_watts * pue;

        // Settle the elapsed interval.
        if dt_secs > 0.0 {
            let it_j = it_watts * dt_secs;
            let fac_j = facility_watts * dt_secs;
            self.energy_it_joules += it_j;
            self.energy_facility_joules += fac_j;
            // price is per MWh (3.6e9 J); carbon is g per kWh (3.6e6 J).
            self.cost_total += fac_j / 3.6e9 * price;
            self.carbon_kg_total += fac_j / 3.6e6 * carbon / 1000.0;
            if let Some(i) = self.active_event {
                if let Some(ev) = cfg.event(i) {
                    let target = ev.target_watts(cfg.nominal_it_watts);
                    if it_watts > target {
                        self.event_excess_joules[i as usize] += (it_watts - target) * dt_secs;
                        self.event_violation_secs[i as usize] += dt_secs;
                    }
                }
            }
        }

        self.last_price = price;
        self.last_carbon = carbon;
        self.last_pue = pue;

        self.budget_target(cfg, temp_c)
    }

    /// The IT budget target at the current readings: cooling-limited
    /// base, derated by the follow-the-renewables weights, then capped
    /// by any active DR curtailment.
    #[must_use]
    pub fn budget_target(&self, cfg: &GridConfig, temp_c: f64) -> f64 {
        let base = match &cfg.cooling {
            Some(c) => c
                .effective_it_budget(temp_c, cfg.nominal_it_watts)
                .min(cfg.nominal_it_watts),
            None => cfg.nominal_it_watts,
        };
        let price_norm = normalize(self.last_price, self.price_bounds);
        let carbon_norm = normalize(self.last_carbon, self.carbon_bounds);
        let follow = (1.0 - cfg.price_follow * price_norm - cfg.carbon_follow * carbon_norm)
            .clamp(FOLLOW_FLOOR, 1.0);
        let mut target = base * follow;
        if let Some(ev) = self.active_event.and_then(|i| cfg.event(i)) {
            target = target.min(ev.target_watts(cfg.nominal_it_watts));
        }
        target
    }

    /// Marks DR event `idx` as in force.
    pub fn on_event_start(&mut self, idx: u32) {
        self.active_event = Some(idx);
        self.dr_active = true;
    }

    /// Marks DR event `idx` as over.
    pub fn on_event_end(&mut self, idx: u32) {
        if self.active_event == Some(idx) {
            self.active_event = None;
        }
        self.dr_active = false;
    }

    /// Most recent electricity price, currency per MWh.
    #[must_use]
    pub fn price(&self) -> f64 {
        self.last_price
    }

    /// Most recent carbon intensity, gCO₂ per kWh.
    #[must_use]
    pub fn carbon(&self) -> f64 {
        self.last_carbon
    }

    /// Most recent PUE.
    #[must_use]
    pub fn pue(&self) -> f64 {
        self.last_pue
    }

    /// Whether a DR event is currently in force.
    #[must_use]
    pub fn dr_active(&self) -> bool {
        self.dr_active
    }

    /// Settles the run into a summary (penalties per the contract).
    #[must_use]
    pub fn summary(&self, cfg: &GridConfig) -> GridSummary {
        let mut dr = DrAccounting::default();
        for (i, _ev) in cfg.contract.events.iter().enumerate() {
            let excess_kwh = self.event_excess_joules[i] / 3.6e6;
            let penalty = if excess_kwh > cfg.contract.tolerance_kwh {
                (excess_kwh - cfg.contract.tolerance_kwh) * cfg.contract.penalty_per_excess_kwh
            } else {
                0.0
            };
            dr.events.push(DrEventOutcome {
                event: i,
                violation_secs: self.event_violation_secs[i],
                excess_kwh,
                penalty,
            });
            dr.penalty_total += penalty;
        }
        let energy_it_mwh = self.energy_it_joules / 3.6e9;
        let energy_facility_mwh = self.energy_facility_joules / 3.6e9;
        GridSummary {
            energy_it_mwh,
            energy_facility_mwh,
            mean_pue: if self.energy_it_joules > 0.0 {
                self.energy_facility_joules / self.energy_it_joules
            } else {
                1.0
            },
            cost: self.cost_total,
            carbon_kg: self.carbon_kg_total,
            penalty: dr.penalty_total,
            cost_with_penalty: self.cost_total + dr.penalty_total,
            dr,
        }
    }

    /// Encodes the state into the engine snapshot's `grid` section.
    pub fn snapshot_into(&self, w: &mut SnapWriter) {
        self.price_cursor.snapshot_into(w);
        self.carbon_cursor.snapshot_into(w);
        w.opt(self.active_event.as_ref(), |w, v| w.u32(*v));
        w.seq(&self.event_excess_joules, |w, v| w.f64(*v));
        w.seq(&self.event_violation_secs, |w, v| w.f64(*v));
        w.f64(self.cost_total);
        w.f64(self.carbon_kg_total);
        w.f64(self.energy_it_joules);
        w.f64(self.energy_facility_joules);
        w.f64(self.last_price);
        w.f64(self.last_carbon);
        w.f64(self.last_pue);
        w.bool(self.dr_active);
    }

    /// Decodes state written by [`GridState::snapshot_into`]. The config
    /// is re-supplied (it is fingerprint-guarded), and the trace bounds
    /// are rebuilt from it.
    pub fn restore_from(r: &mut SnapReader<'_>, cfg: &GridConfig) -> Result<Self, SnapshotError> {
        let price_cursor = TraceCursor::restore_from(r)?;
        let carbon_cursor = TraceCursor::restore_from(r)?;
        let active_event = r.opt(|r| r.u32())?;
        let event_excess_joules = r.seq(|r| r.f64())?;
        let event_violation_secs = r.seq(|r| r.f64())?;
        Ok(GridState {
            price_cursor,
            carbon_cursor,
            price_bounds: cfg.price.bounds(),
            carbon_bounds: cfg.carbon.bounds(),
            active_event,
            event_excess_joules,
            event_violation_secs,
            cost_total: r.f64()?,
            carbon_kg_total: r.f64()?,
            energy_it_joules: r.f64()?,
            energy_facility_joules: r.f64()?,
            last_price: r.f64()?,
            last_carbon: r.f64()?,
            last_pue: r.f64()?,
            dr_active: r.bool()?,
        })
    }
}

fn normalize(v: f64, (lo, hi): (f64, f64)) -> f64 {
    if hi - lo <= 1e-12 {
        return 0.5;
    }
    ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
}

/// Settled grid results for one run — reported alongside (never inside)
/// `SimOutcome`, so grid-disabled outcomes stay byte-identical.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GridSummary {
    /// IT-side energy over the run, MWh.
    pub energy_it_mwh: f64,
    /// Facility-side energy (IT × PUE), MWh.
    pub energy_facility_mwh: f64,
    /// Energy-weighted mean PUE.
    pub mean_pue: f64,
    /// Electricity cost at the time-of-day price, facility-side.
    pub cost: f64,
    /// Carbon emitted, kg CO₂.
    pub carbon_kg: f64,
    /// Total DR penalties.
    pub penalty: f64,
    /// Cost plus penalties.
    pub cost_with_penalty: f64,
    /// Per-event DR settlement.
    pub dr: DrAccounting,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dr::DrEvent;

    fn cfg() -> GridConfig {
        let mut c = GridConfig::synthetic(1000.0, 1500.0, 100.0, 400.0, 2, 0.0, 42);
        c.contract = DrContract {
            events: vec![DrEvent {
                start: SimTime::from_hours(10.0),
                end: SimTime::from_hours(12.0),
                target_frac: 0.5,
                enforce: false,
            }],
            penalty_per_excess_kwh: 5.0,
            tolerance_kwh: 0.1,
        };
        c
    }

    #[test]
    fn synthetic_config_validates() {
        cfg().validate().unwrap();
        let mut bad = cfg();
        bad.price_follow = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = cfg();
        bad.nominal_it_watts = 0.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn tick_settles_cost_and_carbon() {
        let c = cfg();
        let mut s = GridState::new(&c);
        // One hour at full IT draw.
        let target = s.on_tick(&c, SimTime::from_hours(1.0), 3600.0, 1000.0, 15.0, 1.0);
        assert!(target > 0.0 && target <= c.nominal_it_watts);
        let sum = s.summary(&c);
        assert!((sum.energy_it_mwh - 1e-3).abs() < 1e-12);
        assert!(sum.energy_facility_mwh > sum.energy_it_mwh, "PUE > 1");
        assert!(sum.cost > 0.0 && sum.carbon_kg > 0.0);
        assert!(sum.mean_pue > 1.0);
    }

    #[test]
    fn dr_event_caps_target_and_accrues_excess() {
        let c = cfg();
        let mut s = GridState::new(&c);
        s.on_event_start(0);
        assert!(s.dr_active());
        // Draw 1000 W against the 500 W target for an hour inside the event.
        let target = s.on_tick(&c, SimTime::from_hours(11.0), 3600.0, 1000.0, 15.0, 1.0);
        assert!(target <= 500.0 + 1e-9, "target {target} not capped by DR");
        s.on_event_end(0);
        assert!(!s.dr_active());
        let sum = s.summary(&c);
        assert!((sum.dr.events[0].excess_kwh - 0.5).abs() < 1e-9);
        assert!((sum.penalty - (0.5 - 0.1) * 5.0).abs() < 1e-9);
        assert!((sum.cost_with_penalty - (sum.cost + sum.penalty)).abs() < 1e-12);
    }

    #[test]
    fn follow_weights_shrink_target() {
        let mut c = cfg();
        let mut s = GridState::new(&c);
        let t = SimTime::from_hours(18.0); // evening price peak
        let base = s.on_tick(&c, t, 0.0, 800.0, 15.0, 1.0);
        c.price_follow = 0.8;
        let derated = s.budget_target(&c, 15.0);
        assert!(derated < base, "derated {derated} vs base {base}");
        assert!(derated >= base * FOLLOW_FLOOR - 1e-9);
    }

    #[test]
    fn state_snapshot_roundtrips() {
        let c = cfg();
        let mut s = GridState::new(&c);
        s.on_event_start(0);
        for h in 1..30 {
            s.on_tick(
                &c,
                SimTime::from_hours(f64::from(h)),
                3600.0,
                900.0,
                18.0,
                1.0,
            );
        }
        let mut w = SnapWriter::new();
        s.snapshot_into(&mut w);
        let bytes = w.finish(1);
        let mut r = SnapReader::open(&bytes, 1).unwrap();
        let back = GridState::restore_from(&mut r, &c).unwrap();
        r.finish().unwrap();
        assert_eq!(back, s);
        // And the restored state re-snapshots byte-identically.
        let mut w2 = SnapWriter::new();
        back.snapshot_into(&mut w2);
        assert_eq!(w2.finish(1), {
            let mut w3 = SnapWriter::new();
            s.snapshot_into(&mut w3);
            w3.finish(1)
        });
    }
}
