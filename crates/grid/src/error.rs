//! Error types for the facility digital twin.

use thiserror::Error;

/// Errors from grid traces, demand-response contracts, and the cooling
/// model.
#[derive(Debug, Error, PartialEq)]
pub enum GridError {
    /// A trace was structurally invalid (empty, unsorted, non-finite).
    #[error("invalid grid trace: {0}")]
    InvalidTrace(String),

    /// A configuration value was out of range.
    #[error("invalid grid configuration: {0}")]
    InvalidConfig(String),

    /// A CSV-ish trace file could not be parsed.
    #[error("trace parse error on line {line}: {detail}")]
    Parse {
        /// 1-based line number of the offending row.
        line: usize,
        /// What was wrong with it.
        detail: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            GridError::Parse {
                line: 3,
                detail: "bad float".into()
            }
            .to_string(),
            "trace parse error on line 3: bad float"
        );
    }
}
