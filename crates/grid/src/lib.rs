//! # epa-grid — the facility digital twin
//!
//! The survey's sites do not run in a vacuum: operators steer to
//! electricity price, carbon intensity, demand-response contracts, and
//! cooling limits, not just node watts. This crate models that facility
//! layer and co-simulates it with the discrete-event engine at window
//! barriers:
//!
//! - [`GridTrace`] — piecewise-linear time-of-day price and carbon
//!   traces, from seeded synthetic generators or a CSV-ish offline file;
//! - [`DrContract`] / [`DrEvent`] — demand-response curtailment windows
//!   with contractual targets, tolerance, and penalty accounting;
//! - [`CoolingModel`] — a PUE that responds to IT load and outdoor
//!   temperature, and the fixed point it induces on the IT budget;
//! - [`GridConfig`] / [`GridState`] / [`GridSummary`] — the engine-side
//!   coupling: per-tick settlement, budget targets, snapshot codec.
//!
//! The engine couples to the twin only through the control plane
//! (`ControlAction::ResizeBudget` / `EmergencyShed`) and ordinary global
//! simulation events, which is what preserves the standing invariant:
//! byte-identical outcomes across shard/thread counts, and byte-identical
//! to the grid-less engine when no [`GridConfig`] is supplied.

#![warn(missing_docs)]

pub mod cooling;
pub mod dr;
pub mod error;
pub mod model;
pub mod trace;

pub use cooling::CoolingModel;
pub use dr::{DrAccounting, DrContract, DrEvent, DrEventOutcome};
pub use error::GridError;
pub use model::{GridConfig, GridState, GridSummary};
pub use trace::{GridTrace, TraceCursor};
