//! Piecewise-linear grid traces: time-of-day electricity price and
//! carbon intensity.
//!
//! A [`GridTrace`] is an immutable sequence of `(time, value)` nodes with
//! strictly increasing times; queries interpolate linearly between nodes
//! and clamp outside the covered span. Traces come from two sources:
//!
//! - **seeded synthetic generators** ([`GridTrace::synthetic_price`],
//!   [`GridTrace::synthetic_carbon`]) — deterministic diurnal shapes with
//!   per-hour jitter drawn from indexed [`SimRng`] substreams, so every
//!   query order reproduces the same trace;
//! - **a CSV-ish offline format** ([`GridTrace::parse_csv`]) — `hours,value`
//!   rows, `#` comments — hand-parsed to keep the workspace
//!   dependency-free (the shim/offline discipline).
//!
//! [`TraceCursor`] is the engine-side read position: monotone-time
//! queries advance it instead of binary-searching, and it snapshots into
//! the engine's crash-safe state (the cursor is *runtime* state, the
//! trace itself is configuration and is re-supplied at resume).

use crate::error::GridError;
use epa_simcore::rng::SimRng;
use epa_simcore::snap::{Fingerprint, SnapReader, SnapWriter, SnapshotError};
use epa_simcore::time::SimTime;
use serde::Serialize;

/// An immutable piecewise-linear time series.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GridTrace {
    /// `(seconds, value)` nodes, strictly increasing in time.
    nodes: Vec<(f64, f64)>,
}

impl GridTrace {
    /// Builds a trace from `(seconds, value)` nodes. Requires at least
    /// one node, strictly increasing times, and finite values.
    pub fn new(nodes: Vec<(f64, f64)>) -> Result<Self, GridError> {
        if nodes.is_empty() {
            return Err(GridError::InvalidTrace(
                "trace needs at least one node".into(),
            ));
        }
        for w in nodes.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(GridError::InvalidTrace(format!(
                    "node times must strictly increase ({} then {})",
                    w[0].0, w[1].0
                )));
            }
        }
        for &(t, v) in &nodes {
            if !t.is_finite() || !v.is_finite() {
                return Err(GridError::InvalidTrace(format!(
                    "non-finite node ({t}, {v})"
                )));
            }
        }
        Ok(GridTrace { nodes })
    }

    /// A constant trace.
    #[must_use]
    pub fn flat(value: f64) -> Self {
        GridTrace {
            nodes: vec![(0.0, value)],
        }
    }

    /// The trace nodes.
    #[must_use]
    pub fn nodes(&self) -> &[(f64, f64)] {
        &self.nodes
    }

    /// Linear interpolation at `t`, clamped to the first/last node value
    /// outside the covered span.
    #[must_use]
    pub fn value_at(&self, t: SimTime) -> f64 {
        self.value_from(t, self.seek_index(t.as_secs()))
    }

    /// `(min, max)` over the node values.
    #[must_use]
    pub fn bounds(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(_, v) in &self.nodes {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// The value at `t` normalized into `[0, 1]` by the trace bounds
    /// (0.5 for a flat trace): the "how expensive/dirty is now, relative
    /// to this trace" signal follow-the-renewables policies key off.
    #[must_use]
    pub fn normalized_at(&self, t: SimTime) -> f64 {
        let (lo, hi) = self.bounds();
        if hi - lo <= 1e-12 {
            return 0.5;
        }
        ((self.value_at(t) - lo) / (hi - lo)).clamp(0.0, 1.0)
    }

    /// Index of the last node at or before `t_secs` (0 when `t` precedes
    /// the trace).
    fn seek_index(&self, t_secs: f64) -> usize {
        match self
            .nodes
            .binary_search_by(|&(nt, _)| nt.partial_cmp(&t_secs).expect("finite node time"))
        {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Interpolates at `t` given a hint index (the last node at or
    /// before `t`, as maintained by [`TraceCursor`]).
    fn value_from(&self, t: SimTime, idx: usize) -> f64 {
        let ts = t.as_secs();
        let (t0, v0) = self.nodes[idx];
        if ts <= t0 {
            return v0;
        }
        match self.nodes.get(idx + 1) {
            Some(&(t1, v1)) => v0 + (v1 - v0) * (ts - t0) / (t1 - t0),
            None => v0,
        }
    }

    /// Parses the CSV-ish offline format: one `hours,value` row per
    /// line, blank lines and `#` comments ignored.
    pub fn parse_csv(text: &str) -> Result<Self, GridError> {
        let mut nodes = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (h, v) = line.split_once(',').ok_or_else(|| GridError::Parse {
                line: i + 1,
                detail: format!("expected 'hours,value', got {line:?}"),
            })?;
            let hours: f64 = h.trim().parse().map_err(|_| GridError::Parse {
                line: i + 1,
                detail: format!("{:?} is not a number", h.trim()),
            })?;
            let value: f64 = v.trim().parse().map_err(|_| GridError::Parse {
                line: i + 1,
                detail: format!("{:?} is not a number", v.trim()),
            })?;
            nodes.push((hours * 3600.0, value));
        }
        GridTrace::new(nodes)
    }

    /// Folds the trace into a config fingerprint (the engine rejects a
    /// resume whose trace disagrees with the snapshot's).
    pub fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.u64(self.nodes.len() as u64);
        for &(t, v) in &self.nodes {
            fp.f64(t);
            fp.f64(v);
        }
    }

    /// Synthetic time-of-day electricity price: a morning and an evening
    /// peak in *local* time (`tz_offset_hours` east of simulation time),
    /// hourly nodes over `days` days, deterministic per-hour jitter.
    #[must_use]
    pub fn synthetic_price(
        base_per_mwh: f64,
        swing_frac: f64,
        days: u32,
        tz_offset_hours: f64,
        seed: u64,
    ) -> Self {
        let rng = SimRng::new(seed);
        let hours = u64::from(days) * 24;
        let nodes = (0..=hours)
            .map(|h| {
                let local = (h as f64 + tz_offset_hours).rem_euclid(24.0);
                // Two-peak demand curve: a broad evening peak near 18:00
                // and a shoulder near 09:00, troughing overnight.
                let evening = (std::f64::consts::PI * (local - 12.0) / 12.0).sin();
                let morning = 0.5 * (std::f64::consts::PI * (local - 3.0) / 6.0).sin();
                let shape = (0.7 * evening + 0.3 * morning).clamp(-1.0, 1.0);
                let mut hour_rng = rng.stream_indexed("grid-price-hour", h);
                let jitter = hour_rng.normal(0.0, 0.04 * base_per_mwh.abs());
                let v =
                    (base_per_mwh * (1.0 + swing_frac * shape) + jitter).max(base_per_mwh * 0.1);
                (h as f64 * 3600.0, v)
            })
            .collect();
        GridTrace::new(nodes).expect("synthetic nodes are valid")
    }

    /// Synthetic carbon intensity (gCO₂/kWh): a midday solar dip in
    /// local time — the "renewables are plentiful" window
    /// follow-the-renewables scheduling chases — with per-hour jitter.
    #[must_use]
    pub fn synthetic_carbon(
        base_g_per_kwh: f64,
        swing_frac: f64,
        days: u32,
        tz_offset_hours: f64,
        seed: u64,
    ) -> Self {
        let rng = SimRng::new(seed);
        let hours = u64::from(days) * 24;
        let nodes = (0..=hours)
            .map(|h| {
                let local = (h as f64 + tz_offset_hours).rem_euclid(24.0);
                // Solar availability: zero outside 06:00–18:00 local,
                // sinusoidal hump peaking at noon.
                let sun = if (6.0..=18.0).contains(&local) {
                    (std::f64::consts::PI * (local - 6.0) / 12.0).sin()
                } else {
                    0.0
                };
                let mut hour_rng = rng.stream_indexed("grid-carbon-hour", h);
                let jitter = hour_rng.normal(0.0, 0.03 * base_g_per_kwh.abs());
                let v =
                    (base_g_per_kwh * (1.0 - swing_frac * sun) + jitter).max(base_g_per_kwh * 0.05);
                (h as f64 * 3600.0, v)
            })
            .collect();
        GridTrace::new(nodes).expect("synthetic nodes are valid")
    }
}

/// A monotone read position into a [`GridTrace`] — engine runtime state,
/// snapshotted with the rest of the grid section so a resumed run reads
/// the trace from exactly where the interrupted run stood.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCursor {
    /// Index of the last node at or before the last queried time.
    idx: u32,
}

impl TraceCursor {
    /// A cursor at the start of a trace.
    #[must_use]
    pub fn new() -> Self {
        TraceCursor { idx: 0 }
    }

    /// Advances to `t` (monotone queries only) and interpolates. Equal
    /// to [`GridTrace::value_at`] for any non-decreasing query sequence.
    pub fn value(&mut self, trace: &GridTrace, t: SimTime) -> f64 {
        let ts = t.as_secs();
        let nodes = trace.nodes();
        while (self.idx as usize) + 1 < nodes.len() && nodes[self.idx as usize + 1].0 <= ts {
            self.idx += 1;
        }
        trace.value_from(t, self.idx as usize)
    }

    /// Encodes the cursor into a snapshot section.
    pub fn snapshot_into(&self, w: &mut SnapWriter) {
        w.u32(self.idx);
    }

    /// Decodes a cursor written by [`TraceCursor::snapshot_into`].
    pub fn restore_from(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TraceCursor { idx: r.u32()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ramp() -> GridTrace {
        GridTrace::new(vec![(0.0, 10.0), (3600.0, 20.0), (7200.0, 40.0)]).unwrap()
    }

    #[test]
    fn rejects_degenerate_traces() {
        assert!(GridTrace::new(vec![]).is_err());
        assert!(GridTrace::new(vec![(0.0, 1.0), (0.0, 2.0)]).is_err());
        assert!(GridTrace::new(vec![(10.0, 1.0), (5.0, 2.0)]).is_err());
        assert!(GridTrace::new(vec![(0.0, f64::NAN)]).is_err());
    }

    #[test]
    fn interpolates_and_clamps() {
        let tr = ramp();
        assert_eq!(tr.value_at(SimTime::ZERO), 10.0);
        assert!((tr.value_at(SimTime::from_secs(1800.0)) - 15.0).abs() < 1e-9);
        assert_eq!(tr.value_at(SimTime::from_secs(3600.0)), 20.0);
        assert_eq!(tr.value_at(SimTime::from_secs(99_999.0)), 40.0);
    }

    #[test]
    fn normalized_uses_bounds() {
        let tr = ramp();
        assert!((tr.normalized_at(SimTime::ZERO) - 0.0).abs() < 1e-9);
        assert!((tr.normalized_at(SimTime::from_secs(7200.0)) - 1.0).abs() < 1e-9);
        assert_eq!(GridTrace::flat(55.0).normalized_at(SimTime::ZERO), 0.5);
    }

    #[test]
    fn csv_roundtrip_and_errors() {
        let tr = GridTrace::parse_csv("# price trace\n0, 80\n1.5, 95.5\n\n24, 70\n").unwrap();
        assert_eq!(tr.nodes().len(), 3);
        assert!((tr.value_at(SimTime::from_hours(1.5)) - 95.5).abs() < 1e-9);
        assert_eq!(
            GridTrace::parse_csv("0 80"),
            Err(GridError::Parse {
                line: 1,
                detail: "expected 'hours,value', got \"0 80\"".into()
            })
        );
        assert!(matches!(
            GridTrace::parse_csv("0,x"),
            Err(GridError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn synthetic_traces_are_deterministic_and_positive() {
        let a = GridTrace::synthetic_price(100.0, 0.3, 3, 9.0, 7);
        let b = GridTrace::synthetic_price(100.0, 0.3, 3, 9.0, 7);
        assert_eq!(a, b);
        assert_ne!(a, GridTrace::synthetic_price(100.0, 0.3, 3, 9.0, 8));
        assert!(a.nodes().iter().all(|&(_, v)| v > 0.0));
        let c = GridTrace::synthetic_carbon(400.0, 0.5, 3, 9.0, 7);
        assert!(c.nodes().iter().all(|&(_, v)| v > 0.0));
    }

    #[test]
    fn carbon_dips_at_local_noon() {
        let c = GridTrace::synthetic_carbon(400.0, 0.6, 2, 0.0, 3);
        let noon = c.value_at(SimTime::from_hours(12.0));
        let midnight = c.value_at(SimTime::from_hours(0.0));
        assert!(noon < midnight, "noon {noon} vs midnight {midnight}");
    }

    proptest! {
        /// Monotone cursor queries match stateless interpolation exactly,
        /// hit node values exactly at node times, and the cursor
        /// snapshot-roundtrips byte-exactly mid-stream.
        #[test]
        fn cursor_matches_value_at(
            raw in proptest::collection::vec((0.0f64..500_000.0, -50.0f64..50.0), 2..24),
            queries in proptest::collection::vec(0.0f64..600_000.0, 1..40),
        ) {
            let mut nodes: Vec<(f64, f64)> = raw;
            nodes.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            nodes.dedup_by(|a, b| (a.0 - b.0).abs() < 1.0);
            prop_assume!(nodes.len() >= 2);
            let trace = GridTrace::new(nodes.clone()).unwrap();
            let mut sorted = queries;
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut cursor = TraceCursor::new();
            for (i, q) in sorted.iter().enumerate() {
                let t = SimTime::from_secs(*q);
                let via_cursor = cursor.value(&trace, t);
                let via_search = trace.value_at(t);
                prop_assert_eq!(via_cursor.to_bits(), via_search.to_bits());
                if i == sorted.len() / 2 {
                    // Snapshot the cursor mid-stream and byte-compare.
                    let mut w = SnapWriter::new();
                    cursor.snapshot_into(&mut w);
                    let bytes = w.finish(1);
                    let mut r = SnapReader::open(&bytes, 1).unwrap();
                    let back = TraceCursor::restore_from(&mut r).unwrap();
                    prop_assert_eq!(back, cursor);
                }
            }
            // Node times report node values exactly.
            for &(nt, nv) in trace.nodes() {
                prop_assert_eq!(trace.value_at(SimTime::from_secs(nt)).to_bits(), nv.to_bits());
            }
        }
    }
}
