//! The cooling loop: a PUE model that responds to IT load and outdoor
//! temperature, and the fixed-point it induces on the facility budget.
//!
//! The survey's LRZ row links the scheduler to "IT infrastructure +
//! cooling" and delays jobs when the infrastructure is inefficient. The
//! mechanism: facility draw = IT draw × PUE, where PUE rises with
//! outdoor temperature (chillers fight harder) and with *low* IT load
//! (fixed cooling overhead amortizes over fewer IT watts). The IT budget
//! that fits a facility-side cap therefore depends on the PUE, which
//! depends on the IT draw — a fixed point the engine solves at every
//! window barrier and feeds back as the effective power budget.

use crate::error::GridError;
use epa_simcore::snap::Fingerprint;
use serde::Serialize;

/// Load- and weather-dependent PUE, plus the facility-side budget it
/// gates.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CoolingModel {
    /// Facility-side power cap, watts (IT × PUE must fit under this).
    pub site_budget_watts: f64,
    /// PUE at the reference temperature and full IT load.
    pub base_pue: f64,
    /// PUE increase per °C above the reference temperature.
    pub pue_per_degree: f64,
    /// Reference outdoor temperature, °C.
    pub reference_temp_c: f64,
    /// Extra PUE at zero IT load (fixed cooling overhead), linearly
    /// amortized away at full load.
    pub idle_overhead: f64,
}

impl CoolingModel {
    /// A plain chilled-water loop over a facility cap.
    #[must_use]
    pub fn simple(site_budget_watts: f64) -> Self {
        CoolingModel {
            site_budget_watts,
            base_pue: 1.25,
            pue_per_degree: 0.008,
            reference_temp_c: 15.0,
            idle_overhead: 0.10,
        }
    }

    /// Validates the model.
    pub fn validate(&self) -> Result<(), GridError> {
        if self.site_budget_watts <= 0.0 {
            return Err(GridError::InvalidConfig(
                "cooling site budget must be positive".into(),
            ));
        }
        if self.base_pue < 1.0 {
            return Err(GridError::InvalidConfig(format!(
                "base PUE cannot be below 1.0, got {}",
                self.base_pue
            )));
        }
        if self.pue_per_degree < 0.0 || self.idle_overhead < 0.0 {
            return Err(GridError::InvalidConfig(
                "PUE slopes must be non-negative".into(),
            ));
        }
        Ok(())
    }

    /// PUE at outdoor temperature `temp_c` with `it_watts` of IT draw on
    /// a machine whose full-load draw is `nominal_it_watts`. Floored at
    /// 1.0 (a PUE below 1 is unphysical).
    #[must_use]
    pub fn pue(&self, temp_c: f64, it_watts: f64, nominal_it_watts: f64) -> f64 {
        let load = if nominal_it_watts > 0.0 {
            (it_watts / nominal_it_watts).clamp(0.0, 1.0)
        } else {
            1.0
        };
        (self.base_pue
            + self.pue_per_degree * (temp_c - self.reference_temp_c)
            + self.idle_overhead * (1.0 - load))
            .max(1.0)
    }

    /// The largest IT draw whose facility-side total (IT × PUE at that
    /// draw) fits under the site budget, capped at `nominal_it_watts`.
    ///
    /// Solved by fixed-point iteration of `b ← min(nominal, budget /
    /// PUE(b))`: PUE is non-increasing in `b`, so the map is monotone on
    /// `[0, nominal]` and the iteration converges from above; the
    /// iteration count is fixed, so the result is a pure (deterministic)
    /// function of the inputs.
    #[must_use]
    pub fn effective_it_budget(&self, temp_c: f64, nominal_it_watts: f64) -> f64 {
        let mut b = nominal_it_watts.max(0.0);
        for _ in 0..32 {
            b = (self.site_budget_watts / self.pue(temp_c, b, nominal_it_watts))
                .min(nominal_it_watts)
                .max(0.0);
        }
        b
    }

    /// Folds the model into a config fingerprint.
    pub fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.f64(self.site_budget_watts);
        fp.f64(self.base_pue);
        fp.f64(self.pue_per_degree);
        fp.f64(self.reference_temp_c);
        fp.f64(self.idle_overhead);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn validation() {
        CoolingModel::simple(1e6).validate().unwrap();
        let mut c = CoolingModel::simple(1e6);
        c.base_pue = 0.8;
        assert!(c.validate().is_err());
        let mut c = CoolingModel::simple(1e6);
        c.site_budget_watts = 0.0;
        assert!(c.validate().is_err());
        let mut c = CoolingModel::simple(1e6);
        c.idle_overhead = -0.1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn hotter_and_emptier_is_less_efficient() {
        let c = CoolingModel::simple(1e6);
        assert!(c.pue(30.0, 8e5, 1e6) > c.pue(10.0, 8e5, 1e6));
        assert!(c.pue(15.0, 1e5, 1e6) > c.pue(15.0, 9e5, 1e6));
    }

    proptest! {
        /// PUE stays inside its analytic bounds for any inputs.
        #[test]
        fn pue_bounds(
            temp in -40.0f64..55.0,
            it in 0.0f64..2e6,
            nominal in 1.0f64..2e6,
        ) {
            let c = CoolingModel::simple(1e6);
            let p = c.pue(temp, it, nominal);
            let ceiling = c.base_pue
                + c.pue_per_degree * (55.0 - c.reference_temp_c)
                + c.idle_overhead;
            prop_assert!(p >= 1.0);
            prop_assert!(p <= ceiling + 1e-9);
        }

        /// The effective budget is a stable fixed point: one more
        /// application of the map moves it by (near) nothing, it never
        /// exceeds the nominal IT draw, and the implied facility draw
        /// respects the site budget whenever the cap isn't the binding
        /// constraint.
        #[test]
        fn effective_budget_is_fixed_point(
            temp in -30.0f64..45.0,
            site_budget in 1e4f64..5e6,
            nominal in 1e4f64..5e6,
        ) {
            let c = CoolingModel {
                site_budget_watts: site_budget,
                ..CoolingModel::simple(site_budget)
            };
            let b = c.effective_it_budget(temp, nominal);
            prop_assert!(b >= 0.0 && b <= nominal + 1e-9);
            let next = (site_budget / c.pue(temp, b, nominal)).min(nominal).max(0.0);
            prop_assert!((next - b).abs() <= 1e-6 * b.max(1.0), "not a fixed point: {b} -> {next}");
            if b < nominal - 1e-6 {
                // Budget-bound: facility draw at the fixed point fills the cap.
                let facility = b * c.pue(temp, b, nominal);
                prop_assert!((facility - site_budget).abs() <= 1e-6 * site_budget);
            }
        }
    }
}
