//! Runtime (wallclock) prediction.
//!
//! User walltime estimates are notoriously inflated (Mu'alem & Feitelson,
//! cited by the survey); history-based runtime prediction tightens them,
//! which improves backfilling decisions and the power-aware admission
//! tests that multiply predicted power by predicted *duration*. The same
//! tag-history approach as power prediction applies.

use crate::history::HistoryStore;
use epa_workload::job::Job;
use serde::Serialize;

/// A runtime predictor: estimated execution seconds for a job.
pub trait RuntimePredictor {
    /// Predicted runtime in seconds (`None` when there is no basis).
    fn predict_runtime_secs(&self, job: &Job, history: &HistoryStore) -> Option<f64>;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Mean runtime of (user, tag) history, falling back to tag, then to a
/// fraction of the user's walltime estimate.
#[derive(Debug, Clone, Copy)]
pub struct TagMeanRuntime {
    /// Fallback: predicted = estimate × this factor when no history
    /// exists (0.5 reflects the classic ~2× over-estimation).
    pub estimate_fraction: f64,
}

impl Default for TagMeanRuntime {
    fn default() -> Self {
        TagMeanRuntime {
            estimate_fraction: 0.5,
        }
    }
}

impl RuntimePredictor for TagMeanRuntime {
    fn predict_runtime_secs(&self, job: &Job, history: &HistoryStore) -> Option<f64> {
        let user_tag: Vec<f64> = history
            .for_user_tag(job.user, &job.app.tag)
            .map(|r| r.runtime_secs)
            .collect();
        if !user_tag.is_empty() {
            return Some(user_tag.iter().sum::<f64>() / user_tag.len() as f64);
        }
        let tag: Vec<f64> = history
            .for_tag(&job.app.tag)
            .map(|r| r.runtime_secs)
            .collect();
        if !tag.is_empty() {
            return Some(tag.iter().sum::<f64>() / tag.len() as f64);
        }
        Some(job.walltime_estimate.as_secs() * self.estimate_fraction)
    }

    fn name(&self) -> &'static str {
        "tag-mean-runtime"
    }
}

/// The user's own walltime estimate (the baseline every site actually
/// schedules with).
#[derive(Debug, Clone, Copy, Default)]
pub struct UserEstimateRuntime;

impl RuntimePredictor for UserEstimateRuntime {
    fn predict_runtime_secs(&self, job: &Job, _history: &HistoryStore) -> Option<f64> {
        Some(job.walltime_estimate.as_secs())
    }

    fn name(&self) -> &'static str {
        "user-estimate"
    }
}

/// Runtime-prediction error summary over a replay.
#[derive(Debug, Clone, Serialize)]
pub struct RuntimeErrors {
    /// Predictor name.
    pub predictor: String,
    /// Mean absolute percentage error.
    pub mape: f64,
    /// Mean over-estimation factor (predicted / true).
    pub mean_factor: f64,
}

/// Chronological replay evaluation of a runtime predictor over records.
#[must_use]
pub fn evaluate_runtime<P: RuntimePredictor>(
    predictor: &P,
    records: &[crate::history::RunRecord],
) -> RuntimeErrors {
    use epa_simcore::time::{SimDuration, SimTime};
    use epa_workload::job::{AppProfile, JobId};
    let mut store = HistoryStore::new();
    let mut abs_pct = 0.0;
    let mut factor = 0.0;
    let mut n = 0u64;
    for (i, r) in records.iter().enumerate() {
        let job = Job {
            id: JobId(i as u64),
            user: r.user,
            app: AppProfile::balanced(&r.tag),
            submit: SimTime::ZERO,
            nodes: r.nodes,
            // The classic ~2× user over-estimate.
            walltime_estimate: SimDuration::from_secs(r.runtime_secs * 2.0),
            base_runtime: SimDuration::from_secs(r.runtime_secs.max(1.0)),
            priority: 0,
            moldable: None,
        };
        if let Some(pred) = predictor.predict_runtime_secs(&job, &store) {
            if r.runtime_secs > 0.0 {
                abs_pct += ((pred - r.runtime_secs) / r.runtime_secs).abs();
                factor += pred / r.runtime_secs;
                n += 1;
            }
        }
        store.record(r.clone());
    }
    let n = n.max(1) as f64;
    RuntimeErrors {
        predictor: predictor.name().to_owned(),
        mape: abs_pct / n,
        mean_factor: factor / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::RunRecord;
    use epa_workload::job::JobBuilder;

    fn rec(user: u32, tag: &str, runtime: f64) -> RunRecord {
        RunRecord {
            user,
            tag: tag.into(),
            nodes: 4,
            runtime_secs: runtime,
            watts_per_node: 200.0,
            ambient_c: 20.0,
        }
    }

    fn job(user: u32, tag: &str) -> Job {
        let mut j = JobBuilder::new(1).user(user).build();
        j.app.tag = tag.to_owned();
        j
    }

    #[test]
    fn tag_history_mean() {
        let mut h = HistoryStore::new();
        h.record(rec(1, "cfd", 1000.0));
        h.record(rec(1, "cfd", 3000.0));
        let p = TagMeanRuntime::default();
        assert_eq!(p.predict_runtime_secs(&job(1, "cfd"), &h), Some(2000.0));
        // Other user falls back to tag mean.
        assert_eq!(p.predict_runtime_secs(&job(9, "cfd"), &h), Some(2000.0));
    }

    #[test]
    fn cold_start_uses_estimate_fraction() {
        let h = HistoryStore::new();
        let p = TagMeanRuntime::default();
        let j = job(1, "new-app"); // default estimate: 2 h
        assert_eq!(p.predict_runtime_secs(&j, &h), Some(3600.0));
    }

    #[test]
    fn user_estimate_baseline() {
        let h = HistoryStore::new();
        let p = UserEstimateRuntime;
        assert_eq!(p.predict_runtime_secs(&job(1, "x"), &h), Some(7200.0));
    }

    #[test]
    fn history_beats_user_estimate_on_stable_apps() {
        // Stable per-tag runtimes; user estimates are 2× inflated.
        let records: Vec<RunRecord> = (0..60)
            .map(|i| {
                rec(
                    i % 4,
                    if i % 2 == 0 { "a" } else { "b" },
                    if i % 2 == 0 { 1000.0 } else { 5000.0 },
                )
            })
            .collect();
        let hist = evaluate_runtime(&TagMeanRuntime::default(), &records);
        let user = evaluate_runtime(&UserEstimateRuntime, &records);
        assert!(
            hist.mape < user.mape,
            "hist {} vs user {}",
            hist.mape,
            user.mape
        );
        assert!((user.mean_factor - 2.0).abs() < 1e-9);
    }
}
