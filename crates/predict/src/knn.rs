//! k-nearest-neighbour power prediction on submission features.
//!
//! Mirrors the machine-learning line of the survey's related work
//! (Borghesi et al., Sîrbu & Babaoglu): predict a job's power from the
//! most similar *past* runs, where similarity is computed on what is known
//! at submission time — size, requested walltime, tag match, user match.

use crate::history::{HistoryStore, RunRecord};
use crate::predictors::PowerPredictor;
use epa_workload::job::Job;

/// kNN predictor with feature weighting.
#[derive(Debug, Clone, Copy)]
pub struct KnnPredictor {
    /// Neighbours consulted.
    pub k: usize,
    /// Distance penalty added when the application tag differs.
    pub tag_mismatch_penalty: f64,
    /// Distance penalty added when the user differs.
    pub user_mismatch_penalty: f64,
}

impl Default for KnnPredictor {
    fn default() -> Self {
        KnnPredictor {
            k: 5,
            tag_mismatch_penalty: 2.0,
            user_mismatch_penalty: 0.5,
        }
    }
}

impl KnnPredictor {
    fn distance(&self, job: &Job, rec: &RunRecord) -> f64 {
        let size_d = (f64::from(job.nodes).ln() - f64::from(rec.nodes).ln()).abs();
        let time_d =
            (job.walltime_estimate.as_secs().max(1.0).ln() - rec.runtime_secs.max(1.0).ln()).abs()
                * 0.5;
        let tag_d = if job.app.tag == rec.tag {
            0.0
        } else {
            self.tag_mismatch_penalty
        };
        let user_d = if job.user == rec.user {
            0.0
        } else {
            self.user_mismatch_penalty
        };
        size_d + time_d + tag_d + user_d
    }
}

impl PowerPredictor for KnnPredictor {
    fn predict_watts_per_node(
        &self,
        job: &Job,
        history: &HistoryStore,
        _ambient_c: f64,
    ) -> Option<f64> {
        if history.is_empty() || self.k == 0 {
            return None;
        }
        let mut scored: Vec<(f64, f64)> = history
            .records()
            .iter()
            .map(|r| (self.distance(job, r), r.watts_per_node))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let take = self.k.min(scored.len());
        // Inverse-distance weighting with an epsilon floor.
        let mut num = 0.0;
        let mut den = 0.0;
        for &(d, w) in &scored[..take] {
            let weight = 1.0 / (d + 0.1);
            num += weight * w;
            den += weight;
        }
        Some(num / den)
    }

    fn name(&self) -> &'static str {
        "knn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::RunRecord;
    use epa_workload::job::JobBuilder;

    fn rec(user: u32, tag: &str, nodes: u32, watts: f64) -> RunRecord {
        RunRecord {
            user,
            tag: tag.into(),
            nodes,
            runtime_secs: 3600.0,
            watts_per_node: watts,
            ambient_c: 20.0,
        }
    }

    fn job(user: u32, tag: &str, nodes: u32) -> epa_workload::job::Job {
        let mut j = JobBuilder::new(1).user(user).nodes(nodes).build();
        j.app.tag = tag.to_owned();
        j
    }

    #[test]
    fn prefers_matching_tag_and_size() {
        let mut h = HistoryStore::new();
        // Matching tag/size cluster at ~200 W.
        for _ in 0..5 {
            h.record(rec(1, "cfd", 16, 200.0));
        }
        // Different tag cluster at ~400 W.
        for _ in 0..5 {
            h.record(rec(2, "hpl", 16, 400.0));
        }
        let p = KnnPredictor::default();
        let pred = p
            .predict_watts_per_node(&job(1, "cfd", 16), &h, 20.0)
            .unwrap();
        assert!((pred - 200.0).abs() < 10.0, "pred {pred}");
    }

    #[test]
    fn interpolates_between_sizes() {
        let mut h = HistoryStore::new();
        h.record(rec(1, "cfd", 4, 150.0));
        h.record(rec(1, "cfd", 64, 250.0));
        let p = KnnPredictor {
            k: 2,
            ..Default::default()
        };
        let pred = p
            .predict_watts_per_node(&job(1, "cfd", 16), &h, 20.0)
            .unwrap();
        assert!(pred > 150.0 && pred < 250.0, "pred {pred}");
    }

    #[test]
    fn empty_history_none() {
        let h = HistoryStore::new();
        assert!(KnnPredictor::default()
            .predict_watts_per_node(&job(1, "x", 4), &h, 20.0)
            .is_none());
    }

    #[test]
    fn k_zero_none() {
        let mut h = HistoryStore::new();
        h.record(rec(1, "x", 4, 100.0));
        let p = KnnPredictor {
            k: 0,
            ..Default::default()
        };
        assert!(p
            .predict_watts_per_node(&job(1, "x", 4), &h, 20.0)
            .is_none());
    }

    #[test]
    fn k_larger_than_history_uses_all() {
        let mut h = HistoryStore::new();
        h.record(rec(1, "x", 4, 100.0));
        h.record(rec(1, "x", 4, 300.0));
        let p = KnnPredictor {
            k: 50,
            ..Default::default()
        };
        let pred = p.predict_watts_per_node(&job(1, "x", 4), &h, 20.0).unwrap();
        assert!((pred - 200.0).abs() < 1e-9);
    }
}
