//! Baseline power predictors.
//!
//! All predictors answer the same question a power-aware scheduler asks at
//! dispatch time: *"how many watts per node will this job draw?"* They
//! differ in what they key on, mirroring the approaches in the survey's
//! related work:
//!
//! - [`TagMeanPredictor`] — mean of history for (user, tag), falling back
//!   to tag, then global (LRZ LoadLeveler's "first run characterizes the
//!   app" approach).
//! - [`QuantilePredictor`] — a high quantile of the tag history; the
//!   conservative choice when a cap violation is expensive.
//! - [`GlobalMeanPredictor`] — no per-app knowledge at all (the strawman).
//! - [`TemperatureScaledPredictor`] — RIKEN's pre-run estimate "based on
//!   temperature": node power rises with ambient temperature (fan/leakage
//!   effects), so the estimate scales a base prediction by a per-degree
//!   coefficient.

use crate::history::HistoryStore;
use epa_workload::job::Job;

/// A power predictor: watts-per-node estimate for a job about to start.
pub trait PowerPredictor {
    /// Predicted average watts per node for `job`, given the ambient
    /// temperature at dispatch. `None` when the predictor has no basis.
    fn predict_watts_per_node(
        &self,
        job: &Job,
        history: &HistoryStore,
        ambient_c: f64,
    ) -> Option<f64>;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Mean over (user, tag) history, falling back to tag, then global.
#[derive(Debug, Clone, Copy, Default)]
pub struct TagMeanPredictor;

impl PowerPredictor for TagMeanPredictor {
    fn predict_watts_per_node(
        &self,
        job: &Job,
        history: &HistoryStore,
        _ambient_c: f64,
    ) -> Option<f64> {
        let user_tag: Vec<f64> = history
            .for_user_tag(job.user, &job.app.tag)
            .map(|r| r.watts_per_node)
            .collect();
        if !user_tag.is_empty() {
            return Some(user_tag.iter().sum::<f64>() / user_tag.len() as f64);
        }
        let tag: Vec<f64> = history
            .for_tag(&job.app.tag)
            .map(|r| r.watts_per_node)
            .collect();
        if !tag.is_empty() {
            return Some(tag.iter().sum::<f64>() / tag.len() as f64);
        }
        history.global_mean_watts()
    }

    fn name(&self) -> &'static str {
        "tag-mean"
    }
}

/// A high quantile of the tag history (conservative estimate).
#[derive(Debug, Clone, Copy)]
pub struct QuantilePredictor {
    /// Quantile in `[0,1]`, e.g. 0.9.
    pub quantile: f64,
}

impl Default for QuantilePredictor {
    fn default() -> Self {
        QuantilePredictor { quantile: 0.9 }
    }
}

impl PowerPredictor for QuantilePredictor {
    fn predict_watts_per_node(
        &self,
        job: &Job,
        history: &HistoryStore,
        _ambient_c: f64,
    ) -> Option<f64> {
        let mut xs: Vec<f64> = history
            .for_tag(&job.app.tag)
            .map(|r| r.watts_per_node)
            .collect();
        if xs.is_empty() {
            return history.global_mean_watts();
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite watts"));
        let q = self.quantile.clamp(0.0, 1.0);
        let pos = q * (xs.len() - 1) as f64;
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        let hi = xs[(i + 1).min(xs.len() - 1)];
        Some(xs[i] + frac * (hi - xs[i]))
    }

    fn name(&self) -> &'static str {
        "tag-quantile"
    }
}

/// Global mean of all history, regardless of the job.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalMeanPredictor;

impl PowerPredictor for GlobalMeanPredictor {
    fn predict_watts_per_node(
        &self,
        _job: &Job,
        history: &HistoryStore,
        _ambient_c: f64,
    ) -> Option<f64> {
        history.global_mean_watts()
    }

    fn name(&self) -> &'static str {
        "global-mean"
    }
}

/// RIKEN-style temperature-scaled estimate: wraps a base predictor and
/// scales by `1 + coefficient · (T − T_ref)`, where the history's mean
/// ambient serves as `T_ref`.
#[derive(Debug, Clone, Copy)]
pub struct TemperatureScaledPredictor<P> {
    /// The base predictor.
    pub base: P,
    /// Fractional power increase per °C above the reference.
    pub per_degree: f64,
}

impl<P: PowerPredictor> TemperatureScaledPredictor<P> {
    /// Creates the wrapper with a typical 0.4%/°C coefficient.
    #[must_use]
    pub fn new(base: P) -> Self {
        TemperatureScaledPredictor {
            base,
            per_degree: 0.004,
        }
    }
}

impl<P: PowerPredictor> PowerPredictor for TemperatureScaledPredictor<P> {
    fn predict_watts_per_node(
        &self,
        job: &Job,
        history: &HistoryStore,
        ambient_c: f64,
    ) -> Option<f64> {
        let base = self.base.predict_watts_per_node(job, history, ambient_c)?;
        let records = history.records();
        let t_ref = if records.is_empty() {
            ambient_c
        } else {
            records.iter().map(|r| r.ambient_c).sum::<f64>() / records.len() as f64
        };
        Some(base * (1.0 + self.per_degree * (ambient_c - t_ref)))
    }

    fn name(&self) -> &'static str {
        "temperature-scaled"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::RunRecord;
    use epa_workload::job::JobBuilder;

    fn rec(user: u32, tag: &str, watts: f64, ambient: f64) -> RunRecord {
        RunRecord {
            user,
            tag: tag.into(),
            nodes: 4,
            runtime_secs: 100.0,
            watts_per_node: watts,
            ambient_c: ambient,
        }
    }

    fn history() -> HistoryStore {
        let mut h = HistoryStore::new();
        h.record(rec(1, "cfd", 200.0, 20.0));
        h.record(rec(1, "cfd", 220.0, 20.0));
        h.record(rec(2, "cfd", 300.0, 20.0));
        h.record(rec(3, "qcd", 400.0, 20.0));
        h
    }

    fn job(user: u32, tag: &str) -> epa_workload::job::Job {
        let mut j = JobBuilder::new(1).user(user).build();
        j.app.tag = tag.to_owned();
        j
    }

    #[test]
    fn tag_mean_prefers_user_tag() {
        let h = history();
        let p = TagMeanPredictor;
        // User 1 has cfd history at 200/220 → 210.
        assert_eq!(
            p.predict_watts_per_node(&job(1, "cfd"), &h, 20.0),
            Some(210.0)
        );
        // User 9 has none → tag mean (200+220+300)/3 = 240.
        assert_eq!(
            p.predict_watts_per_node(&job(9, "cfd"), &h, 20.0),
            Some(240.0)
        );
        // Unknown tag → global mean 280.
        assert_eq!(
            p.predict_watts_per_node(&job(9, "new"), &h, 20.0),
            Some(280.0)
        );
    }

    #[test]
    fn empty_history_returns_none() {
        let h = HistoryStore::new();
        assert_eq!(
            TagMeanPredictor.predict_watts_per_node(&job(1, "cfd"), &h, 20.0),
            None
        );
    }

    #[test]
    fn quantile_is_conservative() {
        let h = history();
        let q = QuantilePredictor { quantile: 0.9 };
        let mean = TagMeanPredictor
            .predict_watts_per_node(&job(9, "cfd"), &h, 20.0)
            .unwrap();
        let high = q.predict_watts_per_node(&job(9, "cfd"), &h, 20.0).unwrap();
        assert!(high > mean);
        assert!(high <= 300.0);
    }

    #[test]
    fn quantile_falls_back_to_global() {
        let h = history();
        let q = QuantilePredictor::default();
        assert_eq!(
            q.predict_watts_per_node(&job(1, "unknown"), &h, 20.0),
            Some(280.0)
        );
    }

    #[test]
    fn global_mean_ignores_job() {
        let h = history();
        let g = GlobalMeanPredictor;
        assert_eq!(
            g.predict_watts_per_node(&job(1, "cfd"), &h, 20.0),
            Some(280.0)
        );
        assert_eq!(
            g.predict_watts_per_node(&job(9, "zzz"), &h, 20.0),
            Some(280.0)
        );
    }

    #[test]
    fn temperature_scaling_raises_hot_estimates() {
        let h = history();
        let p = TemperatureScaledPredictor::new(TagMeanPredictor);
        let cool = p.predict_watts_per_node(&job(1, "cfd"), &h, 20.0).unwrap();
        let hot = p.predict_watts_per_node(&job(1, "cfd"), &h, 35.0).unwrap();
        assert!(
            (cool - 210.0).abs() < 1e-9,
            "reference temp matches history"
        );
        assert!(hot > cool);
        assert!((hot / cool - (1.0 + 0.004 * 15.0)).abs() < 1e-9);
    }

    #[test]
    fn predictor_names() {
        assert_eq!(TagMeanPredictor.name(), "tag-mean");
        assert_eq!(QuantilePredictor::default().name(), "tag-quantile");
        assert_eq!(GlobalMeanPredictor.name(), "global-mean");
        assert_eq!(
            TemperatureScaledPredictor::new(TagMeanPredictor).name(),
            "temperature-scaled"
        );
    }
}
