//! # epa-predict — job power, energy, and runtime prediction
//!
//! "A very important aspect for energy and power aware job schedulers and
//! resource managers is knowledge of an application's features before its
//! execution" (survey, §VI). This crate implements the prediction
//! approaches the survey catalogues:
//!
//! - [`history`] — the per-(user, application-tag) run archive every
//!   predictor mines (Auweter's tag approach at LRZ; Tokyo Tech's
//!   long-term archive).
//! - [`predictors`] — tag-mean and conservative-quantile predictors, the
//!   global fallback, and RIKEN's temperature-scaled pre-run estimate.
//! - [`regression`] — online least-squares on job features (Shoukourian,
//!   Sîrbu & Babaoglu).
//! - [`knn`] — k-nearest-neighbour prediction on submission features
//!   (Borghesi's ML line).
//! - [`eval`] — MAPE/RMSE/bias evaluation harness comparing predictors on
//!   a replay of the history (experiment E7).

pub mod eval;
pub mod history;
pub mod knn;
pub mod predictors;
pub mod regression;
pub mod runtime;

pub use eval::{evaluate, PredictionErrors};
pub use history::{HistoryStore, RunRecord};
pub use knn::KnnPredictor;
pub use predictors::{
    GlobalMeanPredictor, PowerPredictor, QuantilePredictor, TagMeanPredictor,
    TemperatureScaledPredictor,
};
pub use regression::LinearRegression;
pub use runtime::{RuntimePredictor, TagMeanRuntime, UserEstimateRuntime};
