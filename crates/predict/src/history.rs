//! The run-history archive.
//!
//! Stores one [`RunRecord`] per completed job, indexed by user and
//! application tag. This is the data substrate every predictor consumes —
//! the "power and energy info archived long term" that Tokyo Tech reports
//! analyzing for EPA scheduling.

use epa_workload::job::Job;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One completed run's observed facts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Submitting user.
    pub user: u32,
    /// Application tag.
    pub tag: String,
    /// Nodes used.
    pub nodes: u32,
    /// Observed runtime in seconds.
    pub runtime_secs: f64,
    /// Observed average power per node in watts.
    pub watts_per_node: f64,
    /// Outdoor temperature during the run, °C (drives RIKEN's model).
    pub ambient_c: f64,
}

impl RunRecord {
    /// Total energy of the run in joules.
    #[must_use]
    pub fn energy_joules(&self) -> f64 {
        self.watts_per_node * f64::from(self.nodes) * self.runtime_secs
    }
}

/// Archive of completed runs with per-tag and per-(user, tag) indices.
#[derive(Debug, Clone, Default)]
pub struct HistoryStore {
    records: Vec<RunRecord>,
    by_tag: HashMap<String, Vec<usize>>,
    by_user_tag: HashMap<(u32, String), Vec<usize>>,
}

impl HistoryStore {
    /// Creates an empty archive.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed run.
    pub fn record(&mut self, rec: RunRecord) {
        let idx = self.records.len();
        self.by_tag.entry(rec.tag.clone()).or_default().push(idx);
        self.by_user_tag
            .entry((rec.user, rec.tag.clone()))
            .or_default()
            .push(idx);
        self.records.push(rec);
    }

    /// Convenience: records a run derived from a job plus observations.
    pub fn record_job(
        &mut self,
        job: &Job,
        runtime_secs: f64,
        watts_per_node: f64,
        ambient_c: f64,
    ) {
        self.record(RunRecord {
            user: job.user,
            tag: job.app.tag.clone(),
            nodes: job.nodes,
            runtime_secs,
            watts_per_node,
            ambient_c,
        });
    }

    /// Number of archived runs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no runs are archived.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in archive order.
    #[must_use]
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Records matching an application tag.
    pub fn for_tag(&self, tag: &str) -> impl Iterator<Item = &RunRecord> {
        self.by_tag
            .get(tag)
            .into_iter()
            .flatten()
            .map(|&i| &self.records[i])
    }

    /// Records matching (user, tag) — the most specific key.
    pub fn for_user_tag(&self, user: u32, tag: &str) -> impl Iterator<Item = &RunRecord> {
        self.by_user_tag
            .get(&(user, tag.to_owned()))
            .into_iter()
            .flatten()
            .map(|&i| &self.records[i])
    }

    /// Encodes the archive. Only the records are stored; the tag and
    /// (user, tag) indices are rebuilt on restore.
    pub fn snapshot_into(&self, w: &mut epa_simcore::snap::SnapWriter) {
        w.seq(&self.records, |w, rec| {
            w.u32(rec.user);
            w.str(&rec.tag);
            w.u32(rec.nodes);
            w.f64(rec.runtime_secs);
            w.f64(rec.watts_per_node);
            w.f64(rec.ambient_c);
        });
    }

    /// Decodes an archive written by [`HistoryStore::snapshot_into`],
    /// rebuilding both indices.
    pub fn restore_from(
        r: &mut epa_simcore::snap::SnapReader<'_>,
    ) -> Result<Self, epa_simcore::snap::SnapshotError> {
        let records = r.seq(|r| {
            Ok(RunRecord {
                user: r.u32()?,
                tag: r.str()?,
                nodes: r.u32()?,
                runtime_secs: r.f64()?,
                watts_per_node: r.f64()?,
                ambient_c: r.f64()?,
            })
        })?;
        let mut store = HistoryStore::new();
        for rec in records {
            store.record(rec);
        }
        Ok(store)
    }

    /// Mean watts-per-node over all history (the global fallback).
    #[must_use]
    pub fn global_mean_watts(&self) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        Some(self.records.iter().map(|r| r.watts_per_node).sum::<f64>() / self.records.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(user: u32, tag: &str, watts: f64) -> RunRecord {
        RunRecord {
            user,
            tag: tag.into(),
            nodes: 4,
            runtime_secs: 3600.0,
            watts_per_node: watts,
            ambient_c: 20.0,
        }
    }

    #[test]
    fn indices_filter_correctly() {
        let mut h = HistoryStore::new();
        h.record(rec(1, "cfd", 200.0));
        h.record(rec(1, "qcd", 300.0));
        h.record(rec(2, "cfd", 250.0));
        assert_eq!(h.len(), 3);
        assert_eq!(h.for_tag("cfd").count(), 2);
        assert_eq!(h.for_user_tag(1, "cfd").count(), 1);
        assert_eq!(h.for_user_tag(2, "qcd").count(), 0);
        assert_eq!(h.for_tag("nope").count(), 0);
    }

    #[test]
    fn global_mean() {
        let mut h = HistoryStore::new();
        assert_eq!(h.global_mean_watts(), None);
        h.record(rec(1, "a", 100.0));
        h.record(rec(1, "b", 300.0));
        assert_eq!(h.global_mean_watts(), Some(200.0));
    }

    #[test]
    fn energy_accounting() {
        let r = rec(1, "a", 250.0);
        assert!((r.energy_joules() - 250.0 * 4.0 * 3600.0).abs() < 1e-9);
    }
}
