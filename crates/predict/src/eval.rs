//! Prediction-quality evaluation (experiment E7).
//!
//! Replays a history chronologically: for each run, predict from the
//! archive *so far*, then reveal the truth and archive it. Reports MAPE,
//! RMSE, mean bias, and coverage (fraction of jobs the predictor could
//! score at all).

use crate::history::{HistoryStore, RunRecord};
use crate::predictors::PowerPredictor;
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::job::{AppProfile, Job, JobId};
use serde::Serialize;

/// Aggregate prediction errors.
#[derive(Debug, Clone, Serialize)]
pub struct PredictionErrors {
    /// Predictor name.
    pub predictor: String,
    /// Jobs scored (prediction available).
    pub scored: u64,
    /// Jobs skipped (no basis to predict).
    pub skipped: u64,
    /// Mean absolute percentage error over scored jobs.
    pub mape: f64,
    /// Root-mean-square error in watts.
    pub rmse: f64,
    /// Mean signed error (positive = over-prediction), watts.
    pub bias: f64,
}

fn job_from_record(i: u64, r: &RunRecord) -> Job {
    Job {
        id: JobId(i),
        user: r.user,
        app: AppProfile::balanced(&r.tag),
        submit: SimTime::ZERO,
        nodes: r.nodes,
        walltime_estimate: SimDuration::from_secs(r.runtime_secs.max(1.0) * 1.5),
        base_runtime: SimDuration::from_secs(r.runtime_secs.max(1.0)),
        priority: 0,
        moldable: None,
    }
}

/// Chronological replay evaluation of one predictor over a record stream.
#[must_use]
pub fn evaluate<P: PowerPredictor>(predictor: &P, records: &[RunRecord]) -> PredictionErrors {
    let mut store = HistoryStore::new();
    let mut abs_pct = 0.0;
    let mut sq = 0.0;
    let mut signed = 0.0;
    let mut scored = 0u64;
    let mut skipped = 0u64;
    for (i, r) in records.iter().enumerate() {
        let job = job_from_record(i as u64, r);
        match predictor.predict_watts_per_node(&job, &store, r.ambient_c) {
            Some(pred) if r.watts_per_node > 0.0 => {
                let err = pred - r.watts_per_node;
                abs_pct += (err / r.watts_per_node).abs();
                sq += err * err;
                signed += err;
                scored += 1;
            }
            _ => skipped += 1,
        }
        store.record(r.clone());
    }
    let n = scored.max(1) as f64;
    PredictionErrors {
        predictor: predictor.name().to_owned(),
        scored,
        skipped,
        mape: abs_pct / n,
        rmse: (sq / n).sqrt(),
        bias: signed / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictors::{GlobalMeanPredictor, TagMeanPredictor};

    fn stream() -> Vec<RunRecord> {
        // Two apps with distinct, stable power levels.
        let mut v = Vec::new();
        for i in 0..40 {
            let (tag, watts) = if i % 2 == 0 {
                ("low", 150.0)
            } else {
                ("high", 350.0)
            };
            v.push(RunRecord {
                user: i % 4,
                tag: tag.into(),
                nodes: 8,
                runtime_secs: 3600.0,
                watts_per_node: watts,
                ambient_c: 20.0,
            });
        }
        v
    }

    #[test]
    fn tag_mean_beats_global_mean_on_bimodal_stream() {
        let s = stream();
        let tag = evaluate(&TagMeanPredictor, &s);
        let global = evaluate(&GlobalMeanPredictor, &s);
        assert!(
            tag.mape < global.mape,
            "tag {} vs global {}",
            tag.mape,
            global.mape
        );
        assert!(tag.rmse < global.rmse);
    }

    #[test]
    fn first_job_is_skipped() {
        let s = stream();
        let e = evaluate(&TagMeanPredictor, &s);
        assert!(e.skipped >= 1, "cold start must skip");
        assert_eq!(e.scored + e.skipped, s.len() as u64);
    }

    #[test]
    fn perfect_predictor_zero_error() {
        // A constant stream is perfectly predicted by tag-mean after warmup.
        let s: Vec<RunRecord> = (0..20)
            .map(|_| RunRecord {
                user: 0,
                tag: "x".into(),
                nodes: 4,
                runtime_secs: 100.0,
                watts_per_node: 250.0,
                ambient_c: 20.0,
            })
            .collect();
        let e = evaluate(&TagMeanPredictor, &s);
        assert!(e.mape < 1e-12);
        assert!(e.rmse < 1e-9);
        assert!(e.bias.abs() < 1e-9);
    }

    #[test]
    fn empty_stream() {
        let e = evaluate(&TagMeanPredictor, &[]);
        assert_eq!(e.scored, 0);
        assert_eq!(e.skipped, 0);
    }
}
