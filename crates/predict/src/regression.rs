//! Online multivariate linear regression via normal equations.
//!
//! Predicts watts-per-node from job features (node count, runtime
//! estimate, mean cpu-boundness, ambient temperature) the way the
//! model-regression line of work does (Shoukourian et al., Sîrbu &
//! Babaoglu — both cited by the survey). Feature dimensionality is tiny
//! (≤ 8), so we accumulate `XᵀX` and `Xᵀy` incrementally and solve by
//! Gaussian elimination with partial pivoting at query time; a ridge term
//! keeps the system well-posed before enough samples arrive.

use crate::history::HistoryStore;
use crate::predictors::PowerPredictor;
use epa_workload::job::Job;

/// Incrementally-fitted least-squares model `y ≈ wᵀx + b`.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    dim: usize,
    xtx: Vec<f64>,
    xty: Vec<f64>,
    n: u64,
    ridge: f64,
}

impl LinearRegression {
    /// Creates a model for `dim` features (the intercept is handled
    /// internally as an extra constant feature).
    #[must_use]
    pub fn new(dim: usize) -> Self {
        let d = dim + 1;
        LinearRegression {
            dim,
            xtx: vec![0.0; d * d],
            xty: vec![0.0; d],
            n: 0,
            ridge: 1e-6,
        }
    }

    /// Number of samples observed.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.n
    }

    /// Feature dimension (without the intercept).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Adds one observation.
    ///
    /// # Panics
    /// Panics if `x.len() != dim`.
    pub fn observe(&mut self, x: &[f64], y: f64) {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        let d = self.dim + 1;
        let mut xe = Vec::with_capacity(d);
        xe.extend_from_slice(x);
        xe.push(1.0);
        for i in 0..d {
            for j in 0..d {
                self.xtx[i * d + j] += xe[i] * xe[j];
            }
            self.xty[i] += xe[i] * y;
        }
        self.n += 1;
    }

    /// Solves for the weights (last entry is the intercept). `None` when
    /// no samples have been observed.
    #[must_use]
    pub fn weights(&self) -> Option<Vec<f64>> {
        if self.n == 0 {
            return None;
        }
        let d = self.dim + 1;
        let mut a = self.xtx.clone();
        for i in 0..d {
            a[i * d + i] += self.ridge * self.n as f64;
        }
        let mut b = self.xty.clone();
        solve_in_place(&mut a, &mut b, d)
    }

    /// Predicts `y` for features `x`.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> Option<f64> {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        let w = self.weights()?;
        let mut y = w[self.dim]; // intercept
        for i in 0..self.dim {
            y += w[i] * x[i];
        }
        Some(y)
    }
}

/// Gaussian elimination with partial pivoting; returns the solution or
/// `None` for a singular system.
fn solve_in_place(a: &mut [f64], b: &mut [f64], d: usize) -> Option<Vec<f64>> {
    for col in 0..d {
        // Pivot.
        let mut pivot = col;
        let mut best = a[col * d + col].abs();
        for row in (col + 1)..d {
            let v = a[row * d + col].abs();
            if v > best {
                best = v;
                pivot = row;
            }
        }
        if best < 1e-12 {
            return None;
        }
        if pivot != col {
            for k in 0..d {
                a.swap(col * d + k, pivot * d + k);
            }
            b.swap(col, pivot);
        }
        // Eliminate below.
        for row in (col + 1)..d {
            let f = a[row * d + col] / a[col * d + col];
            for k in col..d {
                a[row * d + k] -= f * a[col * d + k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; d];
    for col in (0..d).rev() {
        let mut acc = b[col];
        for k in (col + 1)..d {
            acc -= a[col * d + k] * x[k];
        }
        x[col] = acc / a[col * d + col];
    }
    Some(x)
}

/// The feature vector used by the regression power predictor.
#[must_use]
pub fn job_features(job: &Job, ambient_c: f64) -> Vec<f64> {
    vec![
        f64::from(job.nodes).ln(),
        job.walltime_estimate.as_secs().ln(),
        job.app.mean_cpu_boundness(),
        job.app.mean_utilization(),
        ambient_c,
    ]
}

/// A [`PowerPredictor`] backed by [`LinearRegression`], trained from the
/// history store at query time (stateless wrt. the trait, cached fits are
/// the caller's concern at this scale).
#[derive(Debug, Clone, Copy, Default)]
pub struct RegressionPredictor;

impl PowerPredictor for RegressionPredictor {
    fn predict_watts_per_node(
        &self,
        job: &Job,
        history: &HistoryStore,
        ambient_c: f64,
    ) -> Option<f64> {
        if history.is_empty() {
            return None;
        }
        let mut lr = LinearRegression::new(5);
        for r in history.records() {
            // Reconstruct approximate features from the record.
            let x = vec![
                f64::from(r.nodes).ln(),
                r.runtime_secs.max(1.0).ln(),
                0.5,
                0.8,
                r.ambient_c,
            ];
            lr.observe(&x, r.watts_per_node);
        }
        lr.predict(&job_features(job, ambient_c))
    }

    fn name(&self) -> &'static str {
        "regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_on_linear_data() {
        let mut lr = LinearRegression::new(2);
        // y = 3x1 - 2x2 + 5
        for (x1, x2) in [
            (0.0, 0.0),
            (1.0, 0.0),
            (0.0, 1.0),
            (2.0, 3.0),
            (4.0, 1.0),
            (1.5, 2.5),
        ] {
            lr.observe(&[x1, x2], 3.0 * x1 - 2.0 * x2 + 5.0);
        }
        let y = lr.predict(&[10.0, 7.0]).unwrap();
        assert!((y - (30.0 - 14.0 + 5.0)).abs() < 1e-4, "got {y}");
        let w = lr.weights().unwrap();
        assert!((w[0] - 3.0).abs() < 1e-4);
        assert!((w[1] + 2.0).abs() < 1e-4);
        assert!((w[2] - 5.0).abs() < 1e-4);
    }

    #[test]
    fn unfitted_returns_none() {
        let lr = LinearRegression::new(3);
        assert!(lr.predict(&[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn underdetermined_is_regularized_not_singular() {
        let mut lr = LinearRegression::new(3);
        lr.observe(&[1.0, 2.0, 3.0], 10.0);
        // One sample, four unknowns: ridge keeps it solvable.
        let y = lr.predict(&[1.0, 2.0, 3.0]);
        assert!(y.is_some());
        assert!((y.unwrap() - 10.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let mut lr = LinearRegression::new(2);
        lr.observe(&[1.0], 1.0);
    }

    #[test]
    fn noisy_fit_recovers_trend() {
        let mut lr = LinearRegression::new(1);
        // y = 2x + 1 with deterministic "noise".
        for i in 0..100 {
            let x = f64::from(i) * 0.1;
            let noise = if i % 2 == 0 { 0.05 } else { -0.05 };
            lr.observe(&[x], 2.0 * x + 1.0 + noise);
        }
        let w = lr.weights().unwrap();
        assert!((w[0] - 2.0).abs() < 0.05);
        assert!((w[1] - 1.0).abs() < 0.1);
    }

    #[test]
    fn regression_predictor_on_history() {
        use crate::history::{HistoryStore, RunRecord};
        use epa_workload::job::JobBuilder;
        let mut h = HistoryStore::new();
        // Power grows with ambient temperature.
        for i in 0..50 {
            h.record(RunRecord {
                user: 0,
                tag: "x".into(),
                nodes: 8,
                runtime_secs: 3600.0,
                watts_per_node: 200.0 + f64::from(i % 10),
                ambient_c: 15.0 + f64::from(i % 10),
            });
        }
        let p = RegressionPredictor;
        let job = JobBuilder::new(1).nodes(8).build();
        let cold = p.predict_watts_per_node(&job, &h, 15.0).unwrap();
        let hot = p.predict_watts_per_node(&job, &h, 24.0).unwrap();
        assert!(hot > cold, "hot {hot} cold {cold}");
    }
}
