//! Moldable job configurations.
//!
//! A moldable job can start with different node counts; runtime follows a
//! parallel-efficiency law. Power-constrained schedulers (Sarood et al.,
//! Patki et al. — both cited in the survey's related work) pick the
//! configuration that best uses the instantaneous power budget: fewer
//! nodes when power is scarce, more when it is plentiful.
//!
//! Runtime model (Amdahl-flavoured): relative to the reference point
//! `(n0, t0)`, running on `n` nodes takes
//! `t(n) = t0 · (serial + (1−serial)·n0/n) / eff(n)` with
//! `eff(n) = 1` at `n = n0` — we fold efficiency loss into the serial
//! fraction for a single-parameter law that is monotone and realistic.

use epa_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Moldability descriptor: admissible node counts and the scaling law.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoldableConfig {
    /// Minimum node count the job accepts.
    pub min_nodes: u32,
    /// Maximum node count the job can exploit.
    pub max_nodes: u32,
    /// Serial (non-parallelizable) fraction of the work, `[0,1)`.
    pub serial_fraction: f64,
}

impl MoldableConfig {
    /// Creates a config; `serial_fraction` is clamped into `[0, 0.95]`.
    #[must_use]
    pub fn new(min_nodes: u32, max_nodes: u32, serial_fraction: f64) -> Self {
        MoldableConfig {
            min_nodes,
            max_nodes,
            serial_fraction: serial_fraction.clamp(0.0, 0.95),
        }
    }

    /// Validates the range.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_nodes == 0 {
            return Err("moldable min_nodes must be positive".into());
        }
        if self.min_nodes > self.max_nodes {
            return Err(format!(
                "moldable range inverted: {}..{}",
                self.min_nodes, self.max_nodes
            ));
        }
        if !(0.0..1.0).contains(&self.serial_fraction) {
            return Err(format!(
                "serial fraction must be in [0,1), got {}",
                self.serial_fraction
            ));
        }
        Ok(())
    }

    /// Runtime on `nodes`, given the reference point `(ref_nodes,
    /// ref_runtime)`. `nodes` is clamped into the admissible range.
    #[must_use]
    pub fn runtime_on(&self, nodes: u32, ref_nodes: u32, ref_runtime: SimDuration) -> SimDuration {
        let n = f64::from(nodes.clamp(self.min_nodes, self.max_nodes));
        let n0 = f64::from(ref_nodes.max(1));
        let s = self.serial_fraction;
        // Work at the reference point normalizes the law to t(n0) = t0.
        let denom = s + (1.0 - s); // = 1, by construction at n0
        let factor = (s + (1.0 - s) * n0 / n) / denom;
        SimDuration::from_secs(ref_runtime.as_secs() * factor)
    }

    /// Admissible node counts (powers of two within range, plus both
    /// endpoints) — the discrete menu schedulers pick from.
    #[must_use]
    pub fn candidate_nodes(&self) -> Vec<u32> {
        let mut out = vec![self.min_nodes];
        let mut p = 1u32;
        while p <= self.max_nodes {
            if p > self.min_nodes && p < self.max_nodes {
                out.push(p);
            }
            p = match p.checked_mul(2) {
                Some(v) => v,
                None => break,
            };
        }
        if self.max_nodes != self.min_nodes {
            out.push(self.max_nodes);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Parallel efficiency at `nodes` relative to the reference point:
    /// `eff = t(n0)·n0 / (t(n)·n)`.
    #[must_use]
    pub fn efficiency_at(&self, nodes: u32, ref_nodes: u32, ref_runtime: SimDuration) -> f64 {
        let t_n = self.runtime_on(nodes, ref_nodes, ref_runtime).as_secs();
        let n = f64::from(nodes.clamp(self.min_nodes, self.max_nodes));
        (ref_runtime.as_secs() * f64::from(ref_nodes.max(1))) / (t_n * n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hours(h: f64) -> SimDuration {
        SimDuration::from_hours(h)
    }

    #[test]
    fn reference_point_is_identity() {
        let m = MoldableConfig::new(4, 64, 0.05);
        let t = m.runtime_on(16, 16, hours(2.0));
        assert!((t.as_hours() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn more_nodes_is_faster_but_sublinear() {
        let m = MoldableConfig::new(4, 64, 0.1);
        let t16 = m.runtime_on(16, 16, hours(2.0));
        let t32 = m.runtime_on(32, 16, hours(2.0));
        let t64 = m.runtime_on(64, 16, hours(2.0));
        assert!(t32 < t16);
        assert!(t64 < t32);
        // Sublinear: doubling nodes less than halves the runtime.
        assert!(t32.as_secs() > t16.as_secs() / 2.0);
        assert!(t64.as_secs() > t16.as_secs() / 4.0);
    }

    #[test]
    fn fewer_nodes_is_slower() {
        let m = MoldableConfig::new(4, 64, 0.1);
        let t8 = m.runtime_on(8, 16, hours(2.0));
        assert!(t8 > hours(2.0));
    }

    #[test]
    fn nodes_clamped_to_range() {
        let m = MoldableConfig::new(4, 64, 0.1);
        assert_eq!(
            m.runtime_on(1, 16, hours(2.0)),
            m.runtime_on(4, 16, hours(2.0))
        );
        assert_eq!(
            m.runtime_on(1000, 16, hours(2.0)),
            m.runtime_on(64, 16, hours(2.0))
        );
    }

    #[test]
    fn candidates_cover_range() {
        let m = MoldableConfig::new(3, 48, 0.1);
        let c = m.candidate_nodes();
        assert_eq!(c.first(), Some(&3));
        assert_eq!(c.last(), Some(&48));
        assert!(c.contains(&4));
        assert!(c.contains(&32));
        for w in c.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn single_point_range() {
        let m = MoldableConfig::new(8, 8, 0.1);
        assert_eq!(m.candidate_nodes(), vec![8]);
    }

    #[test]
    fn efficiency_declines_with_scale() {
        let m = MoldableConfig::new(4, 256, 0.05);
        let e16 = m.efficiency_at(16, 16, hours(1.0));
        let e128 = m.efficiency_at(128, 16, hours(1.0));
        assert!((e16 - 1.0).abs() < 1e-9);
        assert!(e128 < e16);
        assert!(e128 > 0.0);
    }

    #[test]
    fn validation() {
        assert!(MoldableConfig::new(0, 8, 0.1).validate().is_err());
        assert!(MoldableConfig::new(9, 8, 0.1).validate().is_err());
        assert!(MoldableConfig::new(2, 8, 0.1).validate().is_ok());
        // Clamp keeps serial fraction legal.
        assert!(MoldableConfig::new(2, 8, 2.0).validate().is_ok());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Runtime is monotone non-increasing in node count within range.
        #[test]
        fn runtime_monotone(serial in 0.0f64..0.9, ref_nodes in 1u32..128) {
            let m = MoldableConfig::new(1, 1024, serial);
            let t0 = SimDuration::from_hours(1.0);
            let mut prev = f64::INFINITY;
            for n in [1u32, 2, 4, 8, 16, 64, 256, 1024] {
                let t = m.runtime_on(n, ref_nodes, t0).as_secs();
                prop_assert!(t <= prev + 1e-9);
                prev = t;
            }
        }

        /// Efficiency is within (0, 1] at or above the reference point.
        #[test]
        fn efficiency_bounded(serial in 0.0f64..0.9, n in 8u32..512) {
            let m = MoldableConfig::new(8, 512, serial);
            let e = m.efficiency_at(n, 8, SimDuration::from_hours(1.0));
            prop_assert!(e > 0.0 && e <= 1.0 + 1e-9, "eff {}", e);
        }
    }
}
