//! Job size and runtime distributions.
//!
//! Shapes follow the workload-modeling literature the survey's Q3 builds
//! on (Feitelson's workload book, Mu'alem & Feitelson for estimate
//! inaccuracy):
//!
//! - **Sizes**: log-uniform over `[min, max]` with a strong bias toward
//!   powers of two, plus a capability spike at full-machine scale for
//!   capability-dominated sites (RIKEN's monthly large-job days).
//! - **Runtimes**: log-normal, truncated to `[min, max]`.
//! - **Estimates**: users multiply the true runtime by a random factor
//!   ≥ 1 (often the queue limit), modeled as `1 + Exp(·)` with a point
//!   mass at "exactly right".

use epa_simcore::rng::SimRng;
use epa_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Job size (node count) distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeDistribution {
    /// Smallest job size in nodes.
    pub min_nodes: u32,
    /// Largest job size in nodes (usually the machine size).
    pub max_nodes: u32,
    /// Probability that a size snaps to the nearest power of two.
    pub pow2_bias: f64,
    /// Probability of a full-machine capability job.
    pub capability_fraction: f64,
}

impl SizeDistribution {
    /// A capacity-style mix: mostly small jobs, few large.
    #[must_use]
    pub fn capacity(max_nodes: u32) -> Self {
        SizeDistribution {
            min_nodes: 1,
            max_nodes,
            pow2_bias: 0.7,
            capability_fraction: 0.005,
        }
    }

    /// A capability-style mix: larger typical sizes, frequent full-machine
    /// runs.
    #[must_use]
    pub fn capability(max_nodes: u32) -> Self {
        SizeDistribution {
            min_nodes: (max_nodes / 64).max(1),
            max_nodes,
            pow2_bias: 0.8,
            capability_fraction: 0.08,
        }
    }

    /// Draws one job size.
    #[must_use]
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        let max = self.max_nodes.max(self.min_nodes);
        if rng.bernoulli(self.capability_fraction) {
            return max;
        }
        let lo = f64::from(self.min_nodes.max(1)).ln();
        let hi = f64::from(max).ln();
        let raw = rng.uniform_range(lo, hi.max(lo + f64::EPSILON)).exp();
        let mut n = raw.round().clamp(f64::from(self.min_nodes), f64::from(max)) as u32;
        if rng.bernoulli(self.pow2_bias) {
            let p2 = nearest_power_of_two(n);
            n = p2.clamp(self.min_nodes, max);
        }
        n.max(1)
    }
}

/// Runtime distribution: truncated log-normal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeDistribution {
    /// Median runtime.
    pub median: SimDuration,
    /// Log-space sigma (1.0–1.5 reproduces the heavy right tail of real
    /// traces).
    pub sigma: f64,
    /// Floor.
    pub min: SimDuration,
    /// Ceiling (the queue's walltime limit).
    pub max: SimDuration,
}

impl RuntimeDistribution {
    /// A typical mixed workload: median 1 h, 10 min..24 h.
    #[must_use]
    pub fn typical() -> Self {
        RuntimeDistribution {
            median: SimDuration::from_hours(1.0),
            sigma: 1.2,
            min: SimDuration::from_mins(10.0),
            max: SimDuration::from_hours(24.0),
        }
    }

    /// Draws one true runtime.
    #[must_use]
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let mu = self.median.as_secs().max(1.0).ln();
        let x = rng.log_normal(mu, self.sigma.max(0.0));
        SimDuration::from_secs(x.clamp(self.min.as_secs(), self.max.as_secs()))
    }

    /// Draws a user walltime estimate for a true runtime: with probability
    /// `accurate_fraction` the estimate is the runtime padded 5%; otherwise
    /// it is inflated by `1 + Exp(1/overestimate_mean)`, capped at `max`.
    #[must_use]
    pub fn sample_estimate(
        &self,
        true_runtime: SimDuration,
        accurate_fraction: f64,
        overestimate_mean: f64,
        rng: &mut SimRng,
    ) -> SimDuration {
        let factor = if rng.bernoulli(accurate_fraction.clamp(0.0, 1.0)) {
            1.05
        } else {
            1.0 + rng.exponential(1.0 / overestimate_mean.max(1e-6))
        };
        let est = true_runtime.as_secs() * factor;
        SimDuration::from_secs(est.min(self.max.as_secs()).max(true_runtime.as_secs()))
    }
}

fn nearest_power_of_two(n: u32) -> u32 {
    if n <= 1 {
        return 1;
    }
    let lower = 1u32 << (31 - n.leading_zeros());
    let upper = lower.saturating_mul(2);
    if n - lower <= upper - n {
        lower
    } else {
        upper
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_pow2() {
        assert_eq!(nearest_power_of_two(1), 1);
        assert_eq!(nearest_power_of_two(3), 2); // ties break low
        assert_eq!(nearest_power_of_two(5), 4);
        assert_eq!(nearest_power_of_two(6), 4); // ties break low
        assert_eq!(nearest_power_of_two(7), 8);
        assert_eq!(nearest_power_of_two(48), 32); // ties break low
        assert_eq!(nearest_power_of_two(40), 32);
    }

    #[test]
    fn sizes_in_range() {
        let d = SizeDistribution::capacity(1024);
        let mut rng = SimRng::new(1);
        for _ in 0..5000 {
            let n = d.sample(&mut rng);
            assert!((1..=1024).contains(&n));
        }
    }

    #[test]
    fn capability_mix_has_full_machine_jobs() {
        let d = SizeDistribution::capability(512);
        let mut rng = SimRng::new(2);
        let full = (0..5000).filter(|_| d.sample(&mut rng) == 512).count();
        assert!(full > 100, "expected frequent capability jobs, got {full}");
    }

    #[test]
    fn capacity_mix_mostly_small() {
        let d = SizeDistribution::capacity(1024);
        let mut rng = SimRng::new(3);
        let sizes: Vec<u32> = (0..5000).map(|_| d.sample(&mut rng)).collect();
        let small = sizes.iter().filter(|&&n| n <= 64).count();
        assert!(
            small as f64 > 0.5 * sizes.len() as f64,
            "small {small}/{}",
            sizes.len()
        );
    }

    #[test]
    fn pow2_bias_shapes_distribution() {
        let d = SizeDistribution {
            min_nodes: 1,
            max_nodes: 1024,
            pow2_bias: 1.0,
            capability_fraction: 0.0,
        };
        let mut rng = SimRng::new(4);
        for _ in 0..1000 {
            let n = d.sample(&mut rng);
            assert!(n.is_power_of_two(), "{n} not a power of two");
        }
    }

    #[test]
    fn runtimes_clamped() {
        let d = RuntimeDistribution::typical();
        let mut rng = SimRng::new(5);
        for _ in 0..5000 {
            let r = d.sample(&mut rng);
            assert!(r >= d.min && r <= d.max);
        }
    }

    #[test]
    fn runtime_median_approx() {
        let d = RuntimeDistribution::typical();
        let mut rng = SimRng::new(6);
        let mut xs: Vec<f64> = (0..20000).map(|_| d.sample(&mut rng).as_secs()).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        let expect = d.median.as_secs();
        assert!(
            (median - expect).abs() < expect * 0.15,
            "median {median} vs {expect}"
        );
    }

    #[test]
    fn estimates_never_below_runtime() {
        let d = RuntimeDistribution::typical();
        let mut rng = SimRng::new(7);
        for _ in 0..2000 {
            let r = d.sample(&mut rng);
            let e = d.sample_estimate(r, 0.3, 1.0, &mut rng);
            assert!(e >= r);
            assert!(e <= d.max.max(r));
        }
    }

    #[test]
    fn estimates_inflate_on_average() {
        let d = RuntimeDistribution::typical();
        let mut rng = SimRng::new(8);
        let r = SimDuration::from_hours(1.0);
        let mean: f64 = (0..5000)
            .map(|_| d.sample_estimate(r, 0.0, 1.0, &mut rng).as_secs())
            .sum::<f64>()
            / 5000.0;
        // 1 + Exp(mean 1) → factor mean ≈ 2.
        assert!(mean > 1.6 * r.as_secs(), "mean {mean}");
    }
}
