//! Job arrival processes.
//!
//! Submissions at real centers follow strong diurnal and weekly cycles:
//! users submit during working hours, far less at night and on weekends.
//! We model a non-homogeneous Poisson process by thinning: a base
//! exponential inter-arrival draw modulated by an hour-of-day × day-of-week
//! intensity profile.

use epa_simcore::rng::SimRng;
use epa_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Arrival process configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson with the given mean arrivals per hour.
    Poisson {
        /// Mean arrival rate, jobs per hour.
        rate_per_hour: f64,
    },
    /// Poisson modulated by diurnal and weekly factors.
    DiurnalPoisson {
        /// Peak (working-hours) arrival rate, jobs per hour.
        peak_rate_per_hour: f64,
        /// Night intensity as a fraction of peak, `[0,1]`.
        night_fraction: f64,
        /// Weekend intensity as a fraction of the weekday level, `[0,1]`.
        weekend_fraction: f64,
    },
}

impl ArrivalProcess {
    /// Instantaneous intensity (jobs/hour) at simulation time `t`.
    #[must_use]
    pub fn intensity(&self, t: SimTime) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_hour } => rate_per_hour,
            ArrivalProcess::DiurnalPoisson {
                peak_rate_per_hour,
                night_fraction,
                weekend_fraction,
            } => {
                let hour = t.hour_of_day();
                // Working window 08:00–20:00 at peak, smooth shoulders.
                let diurnal = if (8.0..20.0).contains(&hour) {
                    1.0
                } else {
                    night_fraction.clamp(0.0, 1.0)
                };
                let weekday = t.day_index() % 7; // day 0 = Monday
                let weekly = if weekday >= 5 {
                    weekend_fraction.clamp(0.0, 1.0)
                } else {
                    1.0
                };
                peak_rate_per_hour * diurnal * weekly
            }
        }
    }

    /// Peak intensity over any time (the thinning envelope).
    #[must_use]
    pub fn peak_intensity(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_hour } => rate_per_hour,
            ArrivalProcess::DiurnalPoisson {
                peak_rate_per_hour, ..
            } => peak_rate_per_hour,
        }
    }

    /// Generates arrival times in `[0, horizon)` by Lewis–Shedler thinning.
    #[must_use]
    pub fn generate(&self, horizon: SimTime, rng: &mut SimRng) -> Vec<SimTime> {
        let lambda_max = self.peak_intensity();
        if lambda_max <= 0.0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            // Candidate inter-arrival from the envelope process (hours).
            let gap_hours = rng.exponential(lambda_max);
            t += SimDuration::from_hours(gap_hours);
            if t >= horizon {
                break;
            }
            // Accept with probability intensity(t)/lambda_max.
            if rng.uniform() < self.intensity(t) / lambda_max {
                out.push(t);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_matches() {
        let p = ArrivalProcess::Poisson {
            rate_per_hour: 10.0,
        };
        let mut rng = SimRng::new(1);
        let horizon = SimTime::from_days(30.0);
        let arrivals = p.generate(horizon, &mut rng);
        let expected = 10.0 * 24.0 * 30.0;
        let got = arrivals.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.1,
            "expected ~{expected}, got {got}"
        );
    }

    #[test]
    fn arrivals_sorted_and_in_horizon() {
        let p = ArrivalProcess::Poisson {
            rate_per_hour: 20.0,
        };
        let mut rng = SimRng::new(2);
        let horizon = SimTime::from_days(3.0);
        let arrivals = p.generate(horizon, &mut rng);
        for w in arrivals.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(arrivals.iter().all(|&t| t < horizon));
    }

    #[test]
    fn diurnal_day_busier_than_night() {
        let p = ArrivalProcess::DiurnalPoisson {
            peak_rate_per_hour: 12.0,
            night_fraction: 0.2,
            weekend_fraction: 1.0,
        };
        let mut rng = SimRng::new(3);
        let arrivals = p.generate(SimTime::from_days(60.0), &mut rng);
        let day = arrivals
            .iter()
            .filter(|t| (8.0..20.0).contains(&t.hour_of_day()))
            .count();
        let night = arrivals.len() - day;
        assert!(
            day as f64 > 3.0 * night as f64,
            "day {day} vs night {night}"
        );
    }

    #[test]
    fn weekend_quieter_than_weekday() {
        let p = ArrivalProcess::DiurnalPoisson {
            peak_rate_per_hour: 12.0,
            night_fraction: 1.0,
            weekend_fraction: 0.25,
        };
        let mut rng = SimRng::new(4);
        let arrivals = p.generate(SimTime::from_days(70.0), &mut rng);
        let weekend = arrivals.iter().filter(|t| t.day_index() % 7 >= 5).count();
        let weekday = arrivals.len() - weekend;
        // 5 weekday days vs 2 weekend days at 25% intensity:
        // expect weekday/weekend ≈ 5 / (2·0.25) = 10.
        let ratio = weekday as f64 / weekend.max(1) as f64;
        assert!(ratio > 5.0, "ratio {ratio}");
    }

    #[test]
    fn zero_rate_yields_no_arrivals() {
        let p = ArrivalProcess::Poisson { rate_per_hour: 0.0 };
        let mut rng = SimRng::new(5);
        assert!(p.generate(SimTime::from_days(10.0), &mut rng).is_empty());
    }

    #[test]
    fn determinism_per_seed() {
        let p = ArrivalProcess::Poisson { rate_per_hour: 5.0 };
        let a = p.generate(SimTime::from_days(2.0), &mut SimRng::new(7));
        let b = p.generate(SimTime::from_days(2.0), &mut SimRng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn intensity_profile() {
        let p = ArrivalProcess::DiurnalPoisson {
            peak_rate_per_hour: 10.0,
            night_fraction: 0.1,
            weekend_fraction: 0.5,
        };
        // Monday 12:00.
        assert_eq!(p.intensity(SimTime::from_hours(12.0)), 10.0);
        // Monday 03:00.
        assert_eq!(p.intensity(SimTime::from_hours(3.0)), 1.0);
        // Saturday 12:00 (day 5).
        assert_eq!(
            p.intensity(SimTime::from_days(5.0) + epa_simcore::time::SimDuration::from_hours(12.0)),
            5.0
        );
    }
}
