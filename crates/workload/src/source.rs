//! Streaming job sources.
//!
//! Million-job runs cannot afford a materialized `Vec<Job>`: a
//! [`JobSource`] hands the engine one arrival at a time, in
//! non-decreasing submit order, so peak memory stays flat in the job
//! count. Three implementations cover the workload paths the repo
//! already has:
//!
//! - [`MaterializedSource`] — an owned `Vec<Job>` (the pre-existing
//!   path), stable-sorted by submit time so arbitrary input order is
//!   legal;
//! - [`SwfStreamSource`] — lazy line-at-a-time parsing of a Standard
//!   Workload Format trace from any [`BufRead`], sharing the exact
//!   parser of [`crate::trace::read_swf`];
//! - [`LazyGeneratorSource`] — on-demand synthesis from
//!   [`WorkloadParams`], byte-identical (jobs, ids, order) to
//!   [`WorkloadGenerator::generate`] without ever holding more than one
//!   campaign's reorder buffer.
//!
//! # Contract
//!
//! `next_job` must yield jobs with non-decreasing `submit` and must keep
//! returning `None` once exhausted. `fingerprint` must identify the
//! workload independently of the cursor position (the engine folds it
//! into its config fingerprint, which is checked on snapshot resume).
//! `snapshot_cursor` / `restore_cursor` serialize the read position; the
//! default encoding is the emitted-job count with a replay-based
//! restore, which sources with cheap random access (or expensive
//! replay) override.

use crate::arrival::ArrivalProcess;
use crate::generator::WorkloadParams;
use crate::job::{AppProfile, Job, JobId};
use crate::moldable::MoldableConfig;
use crate::trace::parse_swf_line;
use epa_simcore::rng::SimRng;
use epa_simcore::snap::{Fingerprint, SnapReader, SnapWriter, SnapshotError};
use epa_simcore::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::io::BufRead;

/// A pull-based stream of jobs in non-decreasing submit order.
pub trait JobSource: Send {
    /// The next job, or `None` when the source is exhausted.
    fn next_job(&mut self) -> Option<Job>;

    /// Number of jobs emitted so far.
    fn emitted(&self) -> u64;

    /// Total jobs this source will emit, when cheaply known.
    fn total_hint(&self) -> Option<u64> {
        None
    }

    /// Folds a cursor-independent identity of the workload into `fp`.
    fn fingerprint(&self, fp: &mut Fingerprint);

    /// Serializes the read cursor. The default stores the emitted count.
    fn snapshot_cursor(&self, w: &mut SnapWriter) {
        w.u64(self.emitted());
    }

    /// Restores the cursor written by
    /// [`JobSource::snapshot_cursor`] onto a freshly-constructed source.
    /// The default replays `next_job` up to the stored count.
    fn restore_cursor(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let target = r.u64()?;
        if self.emitted() > target {
            return Err(SnapshotError::Corrupt {
                detail: format!(
                    "source cursor {} already past snapshot cursor {target}",
                    self.emitted()
                ),
            });
        }
        while self.emitted() < target {
            if self.next_job().is_none() {
                return Err(SnapshotError::Corrupt {
                    detail: format!(
                        "source exhausted at {} jobs, snapshot cursor is {target}",
                        self.emitted()
                    ),
                });
            }
        }
        Ok(())
    }
}

/// The materialized path: an owned job list, stable-sorted by submit
/// time at construction (ties keep input order), with an O(1) cursor.
#[derive(Debug, Clone)]
pub struct MaterializedSource {
    jobs: Vec<Job>,
    cursor: usize,
}

impl MaterializedSource {
    /// Takes ownership of `jobs`; input order among equal submit times
    /// is preserved (stable sort).
    #[must_use]
    pub fn new(mut jobs: Vec<Job>) -> Self {
        jobs.sort_by_key(|j| j.submit);
        MaterializedSource { jobs, cursor: 0 }
    }

    /// The sorted job list.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }
}

impl JobSource for MaterializedSource {
    fn next_job(&mut self) -> Option<Job> {
        let job = self.jobs.get(self.cursor)?.clone();
        self.cursor += 1;
        Some(job)
    }

    fn emitted(&self) -> u64 {
        self.cursor as u64
    }

    fn total_hint(&self) -> Option<u64> {
        Some(self.jobs.len() as u64)
    }

    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.u64(self.jobs.len() as u64);
        for j in &self.jobs {
            fp.u64(j.id.0);
            fp.f64(j.submit.as_secs());
            fp.u64(u64::from(j.nodes));
            fp.u64(i64::from(j.priority) as u64);
            fp.f64(j.base_runtime.as_secs());
            fp.f64(j.walltime_estimate.as_secs());
            fp.str(&j.app.tag);
        }
    }

    fn restore_cursor(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let target = r.u64()?;
        if target > self.jobs.len() as u64 {
            return Err(SnapshotError::Corrupt {
                detail: format!(
                    "snapshot cursor {target} exceeds workload of {} jobs",
                    self.jobs.len()
                ),
            });
        }
        self.cursor = target as usize;
        Ok(())
    }
}

/// Lazy SWF trace reader: parses one line per [`JobSource::next_job`]
/// call from any [`BufRead`], so a multi-gigabyte archive trace streams
/// through in constant memory. Uses the exact single-pass parser of
/// [`crate::trace::read_swf`], including the incremental `; App:` tag
/// table and cancelled-job skipping.
///
/// The `label` names the trace (e.g. its path) and is the workload's
/// snapshot-resume identity: resuming a snapshotted run requires a
/// fresh reader over the *same* trace under the same label.
#[derive(Debug)]
pub struct SwfStreamSource<R> {
    reader: R,
    label: String,
    line_buf: String,
    lineno: usize,
    tag_table: BTreeMap<usize, String>,
    emitted: u64,
    done: bool,
}

impl<R: BufRead> SwfStreamSource<R> {
    /// Wraps a buffered reader over SWF text.
    #[must_use]
    pub fn new(reader: R, label: &str) -> Self {
        SwfStreamSource {
            reader,
            label: label.to_owned(),
            line_buf: String::new(),
            lineno: 0,
            tag_table: BTreeMap::new(),
            emitted: 0,
            done: false,
        }
    }

    /// The next job, surfacing parse and I/O failures as typed errors
    /// ([`JobSource::next_job`] panics on them instead).
    pub fn try_next(&mut self) -> Result<Option<Job>, crate::error::WorkloadError> {
        if self.done {
            return Ok(None);
        }
        loop {
            self.line_buf.clear();
            let n = self.reader.read_line(&mut self.line_buf).map_err(|e| {
                crate::error::WorkloadError::Parse {
                    line: self.lineno + 1,
                    message: format!("read failed: {e}"),
                }
            })?;
            if n == 0 {
                self.done = true;
                return Ok(None);
            }
            let lineno = self.lineno;
            self.lineno += 1;
            if let Some(job) = parse_swf_line(lineno, &self.line_buf, &mut self.tag_table)? {
                self.emitted += 1;
                return Ok(Some(job));
            }
        }
    }
}

impl<R: BufRead + Send> JobSource for SwfStreamSource<R> {
    /// # Panics
    /// Panics on a malformed line or reader failure; use
    /// [`SwfStreamSource::try_next`] to handle those as errors (e.g. in
    /// a validation pre-pass).
    fn next_job(&mut self) -> Option<Job> {
        self.try_next().expect("SWF stream")
    }

    fn emitted(&self) -> u64 {
        self.emitted
    }

    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.str("swf-stream");
        fp.str(&self.label);
    }
}

/// Builds a streaming source over in-memory SWF text.
#[must_use]
pub fn swf_text_source(text: String, label: &str) -> SwfStreamSource<std::io::Cursor<String>> {
    SwfStreamSource::new(std::io::Cursor::new(text), label)
}

/// Unbounded lazy workload synthesis: draws arrivals by incremental
/// Lewis–Shedler thinning and job attributes from the same substreams,
/// in the same order, as [`WorkloadGenerator::generate`] — collecting
/// this source yields a byte-identical job list (including the dense
/// post-sort ids) while holding only a small campaign reorder buffer.
///
/// Campaign expansion staggers replicas past later arrivals;
/// [`WorkloadGenerator::generate`] fixes that with a global sort. Here a
/// `(submit, generation-seq)` keyed buffer is flushed exactly when no
/// future arrival can precede its minimum, reproducing the sorted order
/// online. Ids are assigned densely at emission.
#[derive(Debug)]
pub struct LazyGeneratorSource {
    params: WorkloadParams,
    horizon: SimTime,
    first_id: u64,
    lambda_max: f64,
    weights: Vec<f64>,
    arr_rng: SimRng,
    attr_rng: SimRng,
    /// Current envelope-process time of the thinning loop.
    t: SimTime,
    arrivals_done: bool,
    /// The next accepted raw arrival, drawn but not yet expanded.
    next_arrival: Option<SimTime>,
    /// Reorder buffer over `(submit, generation seq)` — the exact sort
    /// key `generate` uses (pre-sort ids increase in generation order).
    buffer: BTreeMap<(SimTime, u64), Job>,
    gen_seq: u64,
    emitted: u64,
}

impl LazyGeneratorSource {
    /// Creates a lazy source equivalent to
    /// `WorkloadGenerator::new(params).generate(horizon, first_id)`.
    #[must_use]
    pub fn new(params: WorkloadParams, horizon: SimTime, first_id: u64) -> Self {
        let root = SimRng::new(params.seed);
        let arr_rng = root.stream("arrivals");
        let attr_rng = root.stream("attributes");
        let lambda_max = params.arrivals.peak_intensity();
        let weights: Vec<f64> = params.app_mix.iter().map(|(_, w)| *w).collect();
        let mut src = LazyGeneratorSource {
            params,
            horizon,
            first_id,
            lambda_max,
            weights,
            arr_rng,
            attr_rng,
            t: SimTime::ZERO,
            arrivals_done: lambda_max <= 0.0,
            next_arrival: None,
            buffer: BTreeMap::new(),
            gen_seq: 0,
            emitted: 0,
        };
        src.next_arrival = src.pull_arrival();
        src
    }

    /// The workload parameters.
    #[must_use]
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// One accepted arrival from the thinning loop — draw-for-draw the
    /// loop body of [`ArrivalProcess::generate`].
    fn pull_arrival(&mut self) -> Option<SimTime> {
        if self.arrivals_done {
            return None;
        }
        loop {
            let gap_hours = self.arr_rng.exponential(self.lambda_max);
            self.t += SimDuration::from_hours(gap_hours);
            if self.t >= self.horizon {
                self.arrivals_done = true;
                return None;
            }
            if self.arr_rng.uniform() < self.params.arrivals.intensity(self.t) / self.lambda_max {
                return Some(self.t);
            }
        }
    }

    /// Expands one arrival into its (possibly campaign) batch — the
    /// per-arrival body of [`WorkloadGenerator::generate`], same
    /// attribute-stream draw order. Ids are placeholders until emission.
    fn expand(&mut self, submit: SimTime) {
        let nodes = self.params.sizes.sample(&mut self.attr_rng);
        let runtime = self.params.runtimes.sample(&mut self.attr_rng);
        let estimate = self.params.runtimes.sample_estimate(
            runtime,
            self.params.accurate_estimate_fraction,
            self.params.overestimate_mean,
            &mut self.attr_rng,
        );
        let app = if self.weights.is_empty() {
            AppProfile::balanced("generic")
        } else {
            self.params.app_mix[self.attr_rng.choose_weighted(&self.weights)]
                .0
                .clone()
        };
        let moldable = if self.attr_rng.bernoulli(self.params.moldable_fraction) && nodes > 1 {
            Some(MoldableConfig::new(
                (nodes / 4).max(1),
                nodes.saturating_mul(2).min(self.params.sizes.max_nodes),
                self.attr_rng.uniform_range(0.02, 0.15),
            ))
        } else {
            None
        };
        let user = self
            .attr_rng
            .uniform_usize(0, self.params.users.max(1) as usize) as u32;
        let seed_job = Job {
            id: JobId(0),
            user,
            app,
            submit,
            nodes,
            walltime_estimate: estimate,
            base_runtime: runtime,
            priority: 0,
            moldable,
        };
        let replicas = if self
            .attr_rng
            .bernoulli(self.params.campaign_probability.clamp(0.0, 1.0))
        {
            let (lo, hi) = self.params.campaign_size;
            let hi = hi.max(lo).max(1);
            self.attr_rng
                .uniform_usize(lo.max(1) as usize, hi as usize + 1)
        } else {
            1
        };
        for r in 0..replicas {
            let mut j = seed_job.clone();
            j.submit = submit + SimDuration::from_secs(r as f64 * 2.0);
            if r > 0 {
                let jitter = self.attr_rng.uniform_range(0.9, 1.1);
                j.base_runtime = SimDuration::from_secs(seed_job.base_runtime.as_secs() * jitter);
                if j.walltime_estimate < j.base_runtime {
                    j.walltime_estimate = j.base_runtime;
                }
            }
            self.buffer.insert((j.submit, self.gen_seq), j);
            self.gen_seq += 1;
        }
    }
}

impl JobSource for LazyGeneratorSource {
    fn next_job(&mut self) -> Option<Job> {
        loop {
            if let Some((&key, _)) = self.buffer.iter().next() {
                // Safe to emit once no undrawn arrival can precede it:
                // every future job's submit is >= the next raw arrival,
                // and ties lose to the buffer's smaller generation seq.
                let ready = match self.next_arrival {
                    Some(na) => key.0 <= na,
                    None => true,
                };
                if ready {
                    let mut job = self.buffer.remove(&key).expect("key just observed");
                    job.id = JobId(self.first_id + self.emitted);
                    self.emitted += 1;
                    return Some(job);
                }
            } else if self.next_arrival.is_none() {
                return None;
            }
            let na = self
                .next_arrival
                .take()
                .expect("buffer not ready => arrival pending");
            self.expand(na);
            self.next_arrival = self.pull_arrival();
        }
    }

    fn emitted(&self) -> u64 {
        self.emitted
    }

    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.str("lazy-generator");
        let p = &self.params;
        match &p.arrivals {
            ArrivalProcess::Poisson { rate_per_hour } => {
                fp.str("poisson").f64(*rate_per_hour);
            }
            ArrivalProcess::DiurnalPoisson {
                peak_rate_per_hour,
                night_fraction,
                weekend_fraction,
            } => {
                fp.str("diurnal")
                    .f64(*peak_rate_per_hour)
                    .f64(*night_fraction)
                    .f64(*weekend_fraction);
            }
        }
        fp.u64(u64::from(p.sizes.min_nodes))
            .u64(u64::from(p.sizes.max_nodes))
            .f64(p.sizes.pow2_bias)
            .f64(p.sizes.capability_fraction);
        fp.f64(p.runtimes.median.as_secs())
            .f64(p.runtimes.sigma)
            .f64(p.runtimes.min.as_secs())
            .f64(p.runtimes.max.as_secs());
        fp.u64(u64::from(p.users))
            .f64(p.accurate_estimate_fraction)
            .f64(p.overestimate_mean);
        fp.u64(p.app_mix.len() as u64);
        for (app, w) in &p.app_mix {
            fp.str(&app.tag).f64(*w);
            fp.u64(app.phases.len() as u64);
            for ph in &app.phases {
                fp.f64(ph.weight).f64(ph.cpu_boundness).f64(ph.utilization);
            }
        }
        fp.f64(p.moldable_fraction)
            .f64(p.campaign_probability)
            .u64(u64::from(p.campaign_size.0))
            .u64(u64::from(p.campaign_size.1))
            .u64(p.seed);
        fp.f64(self.horizon.as_secs()).u64(self.first_id);
    }

    /// Full-state cursor: RNG word positions, thinning clock, and the
    /// reorder buffer — O(buffer) to restore, no replay of the stream.
    fn snapshot_cursor(&self, w: &mut SnapWriter) {
        w.u64(self.emitted);
        let (seed, pos) = self.arr_rng.snapshot_state();
        w.u64(seed);
        w.u64(pos);
        let (seed, pos) = self.attr_rng.snapshot_state();
        w.u64(seed);
        w.u64(pos);
        w.f64(self.t.as_secs());
        w.bool(self.arrivals_done);
        w.opt(self.next_arrival.as_ref(), |w, t| w.f64(t.as_secs()));
        w.u64(self.gen_seq);
        let entries: Vec<(&(SimTime, u64), &Job)> = self.buffer.iter().collect();
        w.seq(&entries, |w, (&(t, seq), job)| {
            w.f64(t.as_secs());
            w.u64(seq);
            job.snapshot_into(w);
        });
    }

    fn restore_cursor(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.emitted = r.u64()?;
        let (seed, pos) = (r.u64()?, r.u64()?);
        self.arr_rng = SimRng::from_state(seed, pos);
        let (seed, pos) = (r.u64()?, r.u64()?);
        self.attr_rng = SimRng::from_state(seed, pos);
        self.t = SimTime::from_secs(r.f64()?);
        self.arrivals_done = r.bool()?;
        self.next_arrival = r.opt(|r| Ok(SimTime::from_secs(r.f64()?)))?;
        self.gen_seq = r.u64()?;
        let entries = r.seq(|r| {
            let t = SimTime::from_secs(r.f64()?);
            let seq = r.u64()?;
            let job = Job::restore_from(r)?;
            Ok(((t, seq), job))
        })?;
        self.buffer = entries.into_iter().collect();
        Ok(())
    }
}

/// Collects a source into a job list (tests, small runs, and the
/// materialized baselines streaming runs are verified against).
#[must_use]
pub fn collect_source(source: &mut dyn JobSource) -> Vec<Job> {
    let mut out = Vec::new();
    while let Some(j) = source.next_job() {
        out.push(j);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WorkloadGenerator, WorkloadParams};
    use crate::job::JobBuilder;
    use crate::trace::{read_swf, write_swf};

    #[test]
    fn materialized_sorts_stably_and_seeks() {
        let a = JobBuilder::new(0).submit(SimTime::from_secs(50.0)).build();
        let b = JobBuilder::new(1).submit(SimTime::from_secs(10.0)).build();
        let c = JobBuilder::new(2).submit(SimTime::from_secs(10.0)).build();
        let mut src = MaterializedSource::new(vec![a, b, c]);
        assert_eq!(src.total_hint(), Some(3));
        let order: Vec<u64> = collect_source(&mut src).iter().map(|j| j.id.0).collect();
        // Stable: ties at t=10 keep input order (b before c).
        assert_eq!(order, vec![1, 2, 0]);
        assert_eq!(src.emitted(), 3);
        assert!(src.next_job().is_none());
    }

    #[test]
    fn materialized_cursor_snapshot_roundtrip() {
        let jobs: Vec<Job> = (0..5)
            .map(|i| {
                JobBuilder::new(i)
                    .submit(SimTime::from_secs(i as f64))
                    .build()
            })
            .collect();
        let mut src = MaterializedSource::new(jobs.clone());
        let _ = src.next_job();
        let _ = src.next_job();
        let mut w = SnapWriter::new();
        src.snapshot_cursor(&mut w);
        let bytes = w.finish(1);
        let mut fresh = MaterializedSource::new(jobs);
        let mut r = SnapReader::open(&bytes, 1).unwrap();
        fresh.restore_cursor(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fresh.emitted(), 2);
        assert_eq!(fresh.next_job().unwrap().id, src.next_job().unwrap().id);
    }

    #[test]
    fn swf_stream_matches_read_swf() {
        let params = WorkloadParams::typical(256, 17);
        let jobs = WorkloadGenerator::new(params).generate(SimTime::from_days(2.0), 0);
        let text = write_swf(&jobs);
        let materialized = read_swf(&text).unwrap();
        let mut src = swf_text_source(text, "test");
        let streamed = collect_source(&mut src);
        assert_eq!(streamed, materialized);
        assert_eq!(src.emitted(), materialized.len() as u64);
    }

    #[test]
    fn swf_stream_replay_restore() {
        let params = WorkloadParams::typical(64, 3);
        let jobs = WorkloadGenerator::new(params).generate(SimTime::from_days(1.0), 0);
        let text = write_swf(&jobs);
        let mut src = swf_text_source(text.clone(), "t");
        for _ in 0..3 {
            let _ = src.next_job();
        }
        let mut w = SnapWriter::new();
        src.snapshot_cursor(&mut w);
        let bytes = w.finish(1);
        let mut fresh = swf_text_source(text, "t");
        let mut r = SnapReader::open(&bytes, 1).unwrap();
        fresh.restore_cursor(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(collect_source(&mut fresh), collect_source(&mut src));
    }

    #[test]
    fn swf_stream_parse_error_is_typed() {
        let mut src = swf_text_source("1 2 3\n".to_owned(), "bad");
        assert!(src.try_next().is_err());
    }

    #[test]
    fn lazy_generator_matches_generate() {
        for seed in [1u64, 7, 42] {
            let params = WorkloadParams::typical(256, seed);
            let horizon = SimTime::from_days(3.0);
            let expected = WorkloadGenerator::new(params.clone()).generate(horizon, 5);
            let mut src = LazyGeneratorSource::new(params, horizon, 5);
            let got = collect_source(&mut src);
            assert_eq!(got, expected, "seed {seed}");
        }
    }

    #[test]
    fn lazy_generator_matches_generate_with_heavy_campaigns() {
        let mut params = WorkloadParams::typical(128, 9);
        params.campaign_probability = 0.5;
        params.campaign_size = (4, 8);
        let horizon = SimTime::from_days(2.0);
        let expected = WorkloadGenerator::new(params.clone()).generate(horizon, 0);
        let mut src = LazyGeneratorSource::new(params, horizon, 0);
        assert_eq!(collect_source(&mut src), expected);
    }

    #[test]
    fn lazy_generator_cursor_snapshot_roundtrip() {
        let params = WorkloadParams::typical(128, 11);
        let horizon = SimTime::from_days(2.0);
        let mut src = LazyGeneratorSource::new(params.clone(), horizon, 0);
        for _ in 0..25 {
            let _ = src.next_job();
        }
        let mut w = SnapWriter::new();
        src.snapshot_cursor(&mut w);
        let bytes = w.finish(1);
        let mut fresh = LazyGeneratorSource::new(params, horizon, 0);
        let mut r = SnapReader::open(&bytes, 1).unwrap();
        fresh.restore_cursor(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fresh.emitted(), 25);
        assert_eq!(collect_source(&mut fresh), collect_source(&mut src));
    }

    #[test]
    fn lazy_generator_fingerprint_distinguishes_seeds() {
        let horizon = SimTime::from_days(1.0);
        let mut a = Fingerprint::new();
        LazyGeneratorSource::new(WorkloadParams::typical(64, 1), horizon, 0).fingerprint(&mut a);
        let mut b = Fingerprint::new();
        LazyGeneratorSource::new(WorkloadParams::typical(64, 2), horizon, 0).fingerprint(&mut b);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn zero_rate_lazy_source_is_empty() {
        let mut params = WorkloadParams::typical(64, 1);
        params.arrivals = ArrivalProcess::Poisson { rate_per_hour: 0.0 };
        let mut src = LazyGeneratorSource::new(params, SimTime::from_days(1.0), 0);
        assert!(src.next_job().is_none());
        assert_eq!(src.emitted(), 0);
    }
}
