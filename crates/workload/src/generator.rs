//! Workload generation: assembling jobs from arrivals, sizes, runtimes,
//! and application mixes.
//!
//! [`WorkloadParams`] describes a site's workload the way Q3 answers do:
//! throughput, job-size mix (capability vs capacity), runtime scale, user
//! population, and application mix. [`WorkloadGenerator::generate`]
//! produces a reproducible job list; [`WorkloadSummary`] computes the
//! exact Q3(e) percentile report.

use crate::arrival::ArrivalProcess;
use crate::distributions::{RuntimeDistribution, SizeDistribution};
use crate::job::{AppProfile, Job, JobId};
use crate::moldable::MoldableConfig;
use epa_simcore::rng::SimRng;
use epa_simcore::stats::{Percentiles, SummaryStats};
use epa_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Full description of a site's synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Size distribution.
    pub sizes: SizeDistribution,
    /// Runtime distribution.
    pub runtimes: RuntimeDistribution,
    /// Number of distinct users.
    pub users: u32,
    /// Fraction of jobs with accurate walltime estimates.
    pub accurate_estimate_fraction: f64,
    /// Mean of the exponential over-estimation factor.
    pub overestimate_mean: f64,
    /// Application mix: (profile, weight).
    pub app_mix: Vec<(AppProfile, f64)>,
    /// Fraction of jobs that are moldable.
    pub moldable_fraction: f64,
    /// Probability that a submission is a *campaign*: the user submits a
    /// batch of similar jobs at once (parameter sweeps are the bread and
    /// butter of capacity workloads).
    pub campaign_probability: f64,
    /// Campaign size range `[min, max]` (inclusive), replicas of the
    /// seed job with staggered submission.
    pub campaign_size: (u32, u32),
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadParams {
    /// A balanced default workload for a machine of `max_nodes`.
    #[must_use]
    pub fn typical(max_nodes: u32, seed: u64) -> Self {
        WorkloadParams {
            arrivals: ArrivalProcess::DiurnalPoisson {
                peak_rate_per_hour: 12.0,
                night_fraction: 0.25,
                weekend_fraction: 0.5,
            },
            sizes: SizeDistribution::capacity(max_nodes),
            runtimes: RuntimeDistribution::typical(),
            users: 64,
            accurate_estimate_fraction: 0.25,
            overestimate_mean: 1.5,
            app_mix: vec![
                (AppProfile::balanced("mixed"), 0.5),
                (AppProfile::compute_bound("dense-la"), 0.25),
                (AppProfile::memory_bound("stencil"), 0.25),
            ],
            moldable_fraction: 0.2,
            campaign_probability: 0.06,
            campaign_size: (3, 10),
            seed,
        }
    }
}

/// Generates job lists from parameters.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    params: WorkloadParams,
}

impl WorkloadGenerator {
    /// Creates a generator.
    #[must_use]
    pub fn new(params: WorkloadParams) -> Self {
        WorkloadGenerator { params }
    }

    /// The parameters.
    #[must_use]
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// Generates all jobs submitted in `[0, horizon)`, sorted by submit
    /// time, ids dense from `first_id`. Campaign submissions expand one
    /// arrival into a staggered batch of similar jobs.
    #[must_use]
    pub fn generate(&self, horizon: SimTime, first_id: u64) -> Vec<Job> {
        let root = SimRng::new(self.params.seed);
        let mut arr_rng = root.stream("arrivals");
        let mut attr_rng = root.stream("attributes");
        let arrivals = self.params.arrivals.generate(horizon, &mut arr_rng);
        let weights: Vec<f64> = self.params.app_mix.iter().map(|(_, w)| *w).collect();
        let mut out: Vec<Job> = Vec::with_capacity(arrivals.len());
        for submit in arrivals {
            let nodes = self.params.sizes.sample(&mut attr_rng);
            let runtime = self.params.runtimes.sample(&mut attr_rng);
            let estimate = self.params.runtimes.sample_estimate(
                runtime,
                self.params.accurate_estimate_fraction,
                self.params.overestimate_mean,
                &mut attr_rng,
            );
            let app = if weights.is_empty() {
                AppProfile::balanced("generic")
            } else {
                self.params.app_mix[attr_rng.choose_weighted(&weights)]
                    .0
                    .clone()
            };
            let moldable = if attr_rng.bernoulli(self.params.moldable_fraction) && nodes > 1 {
                Some(MoldableConfig::new(
                    (nodes / 4).max(1),
                    nodes.saturating_mul(2).min(self.params.sizes.max_nodes),
                    attr_rng.uniform_range(0.02, 0.15),
                ))
            } else {
                None
            };
            let user = attr_rng.uniform_usize(0, self.params.users.max(1) as usize) as u32;
            let seed_job = Job {
                id: JobId(first_id + out.len() as u64),
                user,
                app,
                submit,
                nodes,
                walltime_estimate: estimate,
                base_runtime: runtime,
                priority: 0,
                moldable,
            };
            let replicas = if attr_rng.bernoulli(self.params.campaign_probability.clamp(0.0, 1.0)) {
                let (lo, hi) = self.params.campaign_size;
                let hi = hi.max(lo).max(1);
                attr_rng.uniform_usize(lo.max(1) as usize, hi as usize + 1)
            } else {
                1
            };
            for r in 0..replicas {
                let mut j = seed_job.clone();
                j.id = JobId(first_id + out.len() as u64);
                // Same user and app; runtimes jitter ±10%; submissions
                // stagger a few seconds apart (one submit script).
                j.submit = submit + SimDuration::from_secs(r as f64 * 2.0);
                if r > 0 {
                    let jitter = attr_rng.uniform_range(0.9, 1.1);
                    j.base_runtime =
                        SimDuration::from_secs(seed_job.base_runtime.as_secs() * jitter);
                    if j.walltime_estimate < j.base_runtime {
                        j.walltime_estimate = j.base_runtime;
                    }
                }
                out.push(j);
            }
        }
        // Campaign staggering can leapfrog the next arrival; restore
        // submit order and dense ids.
        out.sort_by(|a, b| a.submit.cmp(&b.submit).then(a.id.cmp(&b.id)));
        for (i, j) in out.iter_mut().enumerate() {
            j.id = JobId(first_id + i as u64);
        }
        out
    }
}

/// The Q3 summary of a workload: counts plus Q3(e) percentiles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSummary {
    /// Number of jobs.
    pub jobs: u64,
    /// Jobs per (simulated) month of the covered span.
    pub jobs_per_month: f64,
    /// Node-count percentiles (Q3e "job size").
    pub size: SummaryStats,
    /// True-runtime percentiles in seconds (Q3e "wallclock time").
    pub runtime_secs: SummaryStats,
    /// Fraction of total node-seconds in jobs using ≥ half the machine
    /// ("capability share", Q3d).
    pub capability_share: f64,
}

impl WorkloadSummary {
    /// Computes the summary; `machine_nodes` defines the capability
    /// threshold, `span` the covered interval for throughput.
    #[must_use]
    pub fn compute(jobs: &[Job], machine_nodes: u32, span: SimTime) -> Option<WorkloadSummary> {
        if jobs.is_empty() {
            return None;
        }
        let mut sizes = Percentiles::new();
        let mut runtimes = Percentiles::new();
        let mut total_ns = 0.0;
        let mut cap_ns = 0.0;
        for j in jobs {
            sizes.push(f64::from(j.nodes));
            runtimes.push(j.base_runtime.as_secs());
            let ns = j.node_seconds();
            total_ns += ns;
            if j.nodes * 2 >= machine_nodes {
                cap_ns += ns;
            }
        }
        let months = (span.as_days() / 30.44).max(1e-9);
        Some(WorkloadSummary {
            jobs: jobs.len() as u64,
            jobs_per_month: jobs.len() as f64 / months,
            size: sizes.summary()?,
            runtime_secs: runtimes.summary()?,
            capability_share: if total_ns > 0.0 {
                cap_ns / total_ns
            } else {
                0.0
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generate_typical(seed: u64) -> Vec<Job> {
        let params = WorkloadParams::typical(1024, seed);
        WorkloadGenerator::new(params).generate(SimTime::from_days(7.0), 0)
    }

    #[test]
    fn jobs_sorted_and_valid() {
        let jobs = generate_typical(1);
        assert!(!jobs.is_empty());
        for w in jobs.windows(2) {
            assert!(w[0].submit <= w[1].submit);
        }
        for j in &jobs {
            j.validate().unwrap();
        }
    }

    #[test]
    fn ids_dense_from_first() {
        let jobs = generate_typical(1);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i as u64));
        }
        let params = WorkloadParams::typical(64, 1);
        let jobs2 = WorkloadGenerator::new(params).generate(SimTime::from_days(1.0), 100);
        assert_eq!(jobs2[0].id, JobId(100));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate_typical(42), generate_typical(42));
        assert_ne!(generate_typical(42), generate_typical(43));
    }

    #[test]
    fn app_mix_respected() {
        let jobs = generate_typical(2);
        let tags: std::collections::HashSet<&str> =
            jobs.iter().map(|j| j.app.tag.as_str()).collect();
        assert!(tags.contains("mixed"));
        assert!(tags.contains("dense-la"));
        assert!(tags.contains("stencil"));
    }

    #[test]
    fn moldable_fraction_approx() {
        let jobs = generate_typical(3);
        let moldable = jobs.iter().filter(|j| j.moldable.is_some()).count();
        let frac = moldable as f64 / jobs.len() as f64;
        assert!(frac > 0.05 && frac < 0.4, "fraction {frac}");
    }

    #[test]
    fn summary_shape() {
        let jobs = generate_typical(4);
        let span = SimTime::from_days(7.0);
        let s = WorkloadSummary::compute(&jobs, 1024, span).unwrap();
        assert_eq!(s.jobs, jobs.len() as u64);
        assert!(s.jobs_per_month > 0.0);
        assert!(s.size.min >= 1.0);
        assert!(s.size.max <= 1024.0);
        assert!(s.runtime_secs.median > 0.0);
        assert!((0.0..=1.0).contains(&s.capability_share));
    }

    #[test]
    fn empty_summary_is_none() {
        assert!(WorkloadSummary::compute(&[], 64, SimTime::from_days(1.0)).is_none());
    }

    #[test]
    fn campaigns_produce_same_user_batches() {
        let mut params = WorkloadParams::typical(256, 9);
        params.campaign_probability = 0.5;
        params.campaign_size = (4, 6);
        let jobs = WorkloadGenerator::new(params).generate(SimTime::from_days(2.0), 0);
        // Find at least one run of >= 4 consecutive submissions by the
        // same user with the same tag within seconds of each other.
        let mut best_run = 1;
        let mut run = 1;
        for w in jobs.windows(2) {
            let close = (w[1].submit.as_secs() - w[0].submit.as_secs()) <= 2.5;
            if close && w[0].user == w[1].user && w[0].app.tag == w[1].app.tag {
                run += 1;
                best_run = best_run.max(run);
            } else {
                run = 1;
            }
        }
        assert!(best_run >= 4, "longest campaign run {best_run}");
    }

    #[test]
    fn zero_campaign_probability_means_no_batches() {
        let mut params = WorkloadParams::typical(256, 9);
        params.campaign_probability = 0.0;
        let a = WorkloadGenerator::new(params.clone()).generate(SimTime::from_days(1.0), 0);
        params.campaign_probability = 0.5;
        let b = WorkloadGenerator::new(params).generate(SimTime::from_days(1.0), 0);
        assert!(
            b.len() > a.len(),
            "campaigns must add jobs: {} vs {}",
            b.len(),
            a.len()
        );
    }

    #[test]
    fn capability_share_rises_with_capability_mix() {
        let mut cap_params = WorkloadParams::typical(512, 5);
        cap_params.sizes = SizeDistribution::capability(512);
        let cap_jobs = WorkloadGenerator::new(cap_params).generate(SimTime::from_days(7.0), 0);
        let capacity_jobs = {
            let mut p = WorkloadParams::typical(512, 5);
            p.sizes = SizeDistribution::capacity(512);
            WorkloadGenerator::new(p).generate(SimTime::from_days(7.0), 0)
        };
        let span = SimTime::from_days(7.0);
        let a = WorkloadSummary::compute(&cap_jobs, 512, span).unwrap();
        let b = WorkloadSummary::compute(&capacity_jobs, 512, span).unwrap();
        assert!(
            a.capability_share > b.capability_share,
            "{} vs {}",
            a.capability_share,
            b.capability_share
        );
    }
}
