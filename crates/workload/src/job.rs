//! The job model.
//!
//! A [`Job`] is one batch submission: resources requested, the user's
//! walltime estimate, and the *true* execution profile the simulator
//! knows but schedulers must predict — base runtime at nominal frequency
//! and a sequence of [`Phase`]s with distinct cpu-boundness and
//! utilization (the compute / memory / communication structure that
//! DVFS-based policies exploit, per Freeh et al.).

use crate::moldable::MoldableConfig;
use epa_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique job identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// One execution phase of an application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Fraction of the base runtime this phase occupies (weights are
    /// normalized by [`Job::normalized_phases`]).
    pub weight: f64,
    /// How strongly runtime scales with CPU frequency: 1 = compute bound,
    /// 0 = memory/communication bound.
    pub cpu_boundness: f64,
    /// Core utilization during the phase, `[0,1]`.
    pub utilization: f64,
}

/// An application profile: the per-tag behaviour predictors key on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Application tag ("lattice-qcd", "cfd", …). The survey's related
    /// work (Auweter, Borghesi, Sîrbu) all key predictions on such tags.
    pub tag: String,
    /// Execution phases.
    pub phases: Vec<Phase>,
}

impl AppProfile {
    /// A balanced mixed compute/memory profile.
    #[must_use]
    pub fn balanced(tag: &str) -> Self {
        AppProfile {
            tag: tag.to_owned(),
            phases: vec![
                Phase {
                    weight: 0.5,
                    cpu_boundness: 0.9,
                    utilization: 0.95,
                },
                Phase {
                    weight: 0.3,
                    cpu_boundness: 0.3,
                    utilization: 0.8,
                },
                Phase {
                    weight: 0.2,
                    cpu_boundness: 0.1,
                    utilization: 0.5,
                },
            ],
        }
    }

    /// A compute-bound profile (dense linear algebra).
    #[must_use]
    pub fn compute_bound(tag: &str) -> Self {
        AppProfile {
            tag: tag.to_owned(),
            phases: vec![Phase {
                weight: 1.0,
                cpu_boundness: 0.95,
                utilization: 1.0,
            }],
        }
    }

    /// A memory-bound profile (stencils, graph codes).
    #[must_use]
    pub fn memory_bound(tag: &str) -> Self {
        AppProfile {
            tag: tag.to_owned(),
            phases: vec![Phase {
                weight: 1.0,
                cpu_boundness: 0.15,
                utilization: 0.85,
            }],
        }
    }

    /// Weighted-average cpu-boundness across phases.
    #[must_use]
    pub fn mean_cpu_boundness(&self) -> f64 {
        let total: f64 = self.phases.iter().map(|p| p.weight).sum();
        if total <= 0.0 {
            return 0.5;
        }
        self.phases
            .iter()
            .map(|p| p.weight * p.cpu_boundness)
            .sum::<f64>()
            / total
    }

    /// Weighted-average utilization across phases.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        let total: f64 = self.phases.iter().map(|p| p.weight).sum();
        if total <= 0.0 {
            return 0.8;
        }
        self.phases
            .iter()
            .map(|p| p.weight * p.utilization)
            .sum::<f64>()
            / total
    }
}

/// One batch job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique id.
    pub id: JobId,
    /// Submitting user (index into a site's user population).
    pub user: u32,
    /// Application behaviour.
    pub app: AppProfile,
    /// Submission time.
    pub submit: SimTime,
    /// Nodes requested.
    pub nodes: u32,
    /// The user's walltime request (over-estimate of the true runtime);
    /// schedulers kill jobs exceeding it.
    pub walltime_estimate: SimDuration,
    /// True runtime at base frequency, uncapped (hidden from schedulers).
    pub base_runtime: SimDuration,
    /// Queue priority (larger = more important).
    pub priority: i32,
    /// Moldable operating points, if the job is moldable.
    pub moldable: Option<MoldableConfig>,
}

impl Job {
    /// Encodes the full job (identity, profile, request, moldability).
    pub fn snapshot_into(&self, w: &mut epa_simcore::snap::SnapWriter) {
        w.u64(self.id.0);
        w.u32(self.user);
        w.str(&self.app.tag);
        w.seq(&self.app.phases, |w, p| {
            w.f64(p.weight);
            w.f64(p.cpu_boundness);
            w.f64(p.utilization);
        });
        w.f64(self.submit.as_secs());
        w.u32(self.nodes);
        w.f64(self.walltime_estimate.as_secs());
        w.f64(self.base_runtime.as_secs());
        w.i64(i64::from(self.priority));
        w.opt(self.moldable.as_ref(), |w, m| {
            w.u32(m.min_nodes);
            w.u32(m.max_nodes);
            w.f64(m.serial_fraction);
        });
    }

    /// Decodes a job written by [`Job::snapshot_into`].
    pub fn restore_from(
        r: &mut epa_simcore::snap::SnapReader<'_>,
    ) -> Result<Self, epa_simcore::snap::SnapshotError> {
        let id = JobId(r.u64()?);
        let user = r.u32()?;
        let tag = r.str()?;
        let phases = r.seq(|r| {
            Ok(Phase {
                weight: r.f64()?,
                cpu_boundness: r.f64()?,
                utilization: r.f64()?,
            })
        })?;
        let submit = SimTime::from_secs(r.f64()?);
        let nodes = r.u32()?;
        let walltime_estimate = SimDuration::from_secs(r.f64()?);
        let base_runtime = SimDuration::from_secs(r.f64()?);
        let priority =
            i32::try_from(r.i64()?).map_err(|_| epa_simcore::snap::SnapshotError::Corrupt {
                detail: format!("priority out of i32 range for job {}", id.0),
            })?;
        let moldable = r.opt(|r| {
            Ok(MoldableConfig {
                min_nodes: r.u32()?,
                max_nodes: r.u32()?,
                serial_fraction: r.f64()?,
            })
        })?;
        Ok(Job {
            id,
            user,
            app: AppProfile { tag, phases },
            submit,
            nodes,
            walltime_estimate,
            base_runtime,
            priority,
            moldable,
        })
    }

    /// Phases with weights normalized to sum to 1.
    #[must_use]
    pub fn normalized_phases(&self) -> Vec<Phase> {
        let total: f64 = self.app.phases.iter().map(|p| p.weight).sum();
        if total <= 0.0 {
            return vec![Phase {
                weight: 1.0,
                cpu_boundness: 0.5,
                utilization: 0.8,
            }];
        }
        self.app
            .phases
            .iter()
            .map(|p| Phase {
                weight: p.weight / total,
                ..*p
            })
            .collect()
    }

    /// Runtime when every phase is slowed by the DVFS law at a fixed
    /// frequency ratio slowdown function. `slowdown(beta)` maps a phase's
    /// cpu-boundness to its runtime inflation.
    #[must_use]
    pub fn runtime_under(&self, slowdown: impl Fn(f64) -> f64) -> SimDuration {
        let factor: f64 = self
            .normalized_phases()
            .iter()
            .map(|p| p.weight * slowdown(p.cpu_boundness))
            .sum();
        SimDuration::from_secs(self.base_runtime.as_secs() * factor.max(0.0))
    }

    /// Node-seconds of the request (the standard accounting unit).
    #[must_use]
    pub fn node_seconds(&self) -> f64 {
        f64::from(self.nodes) * self.base_runtime.as_secs()
    }

    /// True when the walltime estimate is at least the true runtime (the
    /// job completes rather than being killed at the limit).
    #[must_use]
    pub fn estimate_sufficient(&self) -> bool {
        self.walltime_estimate >= self.base_runtime
    }

    /// Validates basic job sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err(format!("{}: zero nodes", self.id));
        }
        if self.base_runtime.is_zero() {
            return Err(format!("{}: zero runtime", self.id));
        }
        if self.walltime_estimate.is_zero() {
            return Err(format!("{}: zero walltime estimate", self.id));
        }
        if self.app.phases.is_empty() {
            return Err(format!("{}: no phases", self.id));
        }
        for p in &self.app.phases {
            if !(0.0..=1.0).contains(&p.cpu_boundness) || !(0.0..=1.0).contains(&p.utilization) {
                return Err(format!("{}: phase parameters out of range", self.id));
            }
            if p.weight < 0.0 {
                return Err(format!("{}: negative phase weight", self.id));
            }
        }
        if let Some(m) = &self.moldable {
            m.validate().map_err(|e| format!("{}: {e}", self.id))?;
        }
        Ok(())
    }
}

/// Builder for tests and examples.
#[derive(Debug, Clone)]
pub struct JobBuilder {
    job: Job,
}

impl JobBuilder {
    /// Starts a builder with sensible defaults.
    #[must_use]
    pub fn new(id: u64) -> Self {
        JobBuilder {
            job: Job {
                id: JobId(id),
                user: 0,
                app: AppProfile::balanced("generic"),
                submit: SimTime::ZERO,
                nodes: 1,
                walltime_estimate: SimDuration::from_hours(2.0),
                base_runtime: SimDuration::from_hours(1.0),
                priority: 0,
                moldable: None,
            },
        }
    }

    /// Sets the node count.
    #[must_use]
    pub fn nodes(mut self, n: u32) -> Self {
        self.job.nodes = n;
        self
    }

    /// Sets the true base runtime.
    #[must_use]
    pub fn runtime(mut self, d: SimDuration) -> Self {
        self.job.base_runtime = d;
        self
    }

    /// Sets the user's walltime estimate.
    #[must_use]
    pub fn estimate(mut self, d: SimDuration) -> Self {
        self.job.walltime_estimate = d;
        self
    }

    /// Sets the submit time.
    #[must_use]
    pub fn submit(mut self, t: SimTime) -> Self {
        self.job.submit = t;
        self
    }

    /// Sets the application profile.
    #[must_use]
    pub fn app(mut self, app: AppProfile) -> Self {
        self.job.app = app;
        self
    }

    /// Sets the user index.
    #[must_use]
    pub fn user(mut self, u: u32) -> Self {
        self.job.user = u;
        self
    }

    /// Sets the priority.
    #[must_use]
    pub fn priority(mut self, p: i32) -> Self {
        self.job.priority = p;
        self
    }

    /// Sets moldability.
    #[must_use]
    pub fn moldable(mut self, m: MoldableConfig) -> Self {
        self.job.moldable = Some(m);
        self
    }

    /// Finalizes the job.
    ///
    /// # Panics
    /// Panics if the job fails validation.
    #[must_use]
    pub fn build(self) -> Job {
        self.job.validate().expect("invalid job");
        self.job
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_validate() {
        let j = JobBuilder::new(1).build();
        assert_eq!(j.id, JobId(1));
        assert!(j.estimate_sufficient());
        assert!(j.validate().is_ok());
    }

    #[test]
    fn normalized_phases_sum_to_one() {
        let j = JobBuilder::new(1).app(AppProfile::balanced("x")).build();
        let total: f64 = j.normalized_phases().iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn runtime_under_identity_slowdown() {
        let j = JobBuilder::new(1).build();
        let r = j.runtime_under(|_| 1.0);
        assert!((r.as_secs() - j.base_runtime.as_secs()).abs() < 1e-9);
    }

    #[test]
    fn runtime_under_phase_sensitive_slowdown() {
        // Only compute-bound phases slow down under |2x slowdown of beta=1|.
        let j = JobBuilder::new(1)
            .app(AppProfile::compute_bound("hpl"))
            .build();
        let r = j.runtime_under(|beta| 1.0 + beta);
        assert!((r.as_secs() / j.base_runtime.as_secs() - 1.95).abs() < 1e-9);
        let m = JobBuilder::new(2)
            .app(AppProfile::memory_bound("stream"))
            .build();
        let rm = m.runtime_under(|beta| 1.0 + beta);
        assert!((rm.as_secs() / m.base_runtime.as_secs() - 1.15).abs() < 1e-9);
    }

    #[test]
    fn mean_profile_statistics() {
        let app = AppProfile::balanced("x");
        let b = app.mean_cpu_boundness();
        assert!(b > 0.4 && b < 0.8, "got {b}");
        let u = app.mean_utilization();
        assert!(u > 0.7 && u <= 1.0, "got {u}");
    }

    #[test]
    fn insufficient_estimate_detected() {
        let j = JobBuilder::new(1)
            .runtime(SimDuration::from_hours(3.0))
            .estimate(SimDuration::from_hours(1.0))
            .build();
        assert!(!j.estimate_sufficient());
    }

    #[test]
    fn node_seconds() {
        let j = JobBuilder::new(1)
            .nodes(4)
            .runtime(SimDuration::from_secs(100.0))
            .build();
        assert!((j.node_seconds() - 400.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid job")]
    fn zero_nodes_rejected() {
        let _ = JobBuilder::new(1).nodes(0).build();
    }

    #[test]
    fn out_of_range_phase_rejected() {
        let mut j = JobBuilder::new(1).build();
        j.app.phases[0].cpu_boundness = 1.5;
        assert!(j.validate().is_err());
    }

    #[test]
    fn degenerate_phases_get_default_normalization() {
        let mut j = JobBuilder::new(1).build();
        j.app.phases = vec![Phase {
            weight: 0.0,
            cpu_boundness: 0.5,
            utilization: 0.5,
        }];
        let ps = j.normalized_phases();
        assert_eq!(ps.len(), 1);
        assert!((ps[0].weight - 1.0).abs() < 1e-12);
    }
}
