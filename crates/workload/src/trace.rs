//! Standard Workload Format (SWF) compatible traces.
//!
//! The Parallel Workloads Archive's SWF is the lingua franca for job
//! traces (one job per line, 18 whitespace-separated fields, `;` header
//! comments). We write the fields the simulator knows and read them back;
//! unknown/inapplicable fields carry the SWF convention value `-1`.
//!
//! Field mapping (1-based SWF columns):
//! 1 job id · 2 submit (s) · 4 run time (s) · 5 allocated processors
//! (nodes here) · 8 requested processors · 9 requested time (s) ·
//! 12 user id · 14 application id (index into a tag table emitted in the
//! header) — all others `-1`.

use crate::error::WorkloadError;
use crate::job::{AppProfile, Job, JobId};
use epa_simcore::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::io::{self, Write};

/// Parses one SWF line. Comments (including `; App:` tag-table lines,
/// which update `tag_table`), blank lines, and cancelled jobs yield
/// `Ok(None)`; a job line yields the decoded job. The single-pass tag
/// table matches [`read_swf`]'s historical semantics: a job line sees
/// only the `; App:` entries that preceded it.
pub(crate) fn parse_swf_line(
    lineno: usize,
    line: &str,
    tag_table: &mut BTreeMap<usize, String>,
) -> Result<Option<Job>, WorkloadError> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(None);
    }
    if let Some(rest) = line.strip_prefix(';') {
        let rest = rest.trim();
        if let Some(app) = rest.strip_prefix("App:") {
            let mut it = app.split_whitespace();
            if let (Some(id), Some(tag)) = (it.next(), it.next()) {
                if let Ok(id) = id.parse::<usize>() {
                    tag_table.insert(id, tag.to_owned());
                }
            }
        }
        return Ok(None);
    }
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() < 14 {
        return Err(WorkloadError::Parse {
            line: lineno + 1,
            message: format!("expected >=14 SWF fields, got {}", fields.len()),
        });
    }
    let parse_i64 = |idx: usize| -> Result<i64, WorkloadError> {
        fields[idx].parse().map_err(|_| WorkloadError::Parse {
            line: lineno + 1,
            message: format!("field {} not an integer: '{}'", idx + 1, fields[idx]),
        })
    };
    let id = parse_i64(0)?;
    let submit = parse_i64(1)?;
    let runtime = parse_i64(3)?;
    let alloc = parse_i64(4)?;
    let req_procs = parse_i64(7)?;
    let req_time = parse_i64(8)?;
    let user = parse_i64(11)?;
    let app_id = parse_i64(13)?;

    let nodes = if alloc > 0 { alloc } else { req_procs };
    if nodes <= 0 || runtime <= 0 {
        // SWF traces carry cancelled jobs with -1; skip them.
        return Ok(None);
    }
    let tag = tag_table
        .get(&(app_id.max(0) as usize))
        .cloned()
        .unwrap_or_else(|| format!("app{}", app_id.max(0)));
    let est = if req_time > 0 { req_time } else { runtime };
    Ok(Some(Job {
        id: JobId(id.max(0) as u64),
        user: user.max(0) as u32,
        app: AppProfile::balanced(&tag),
        submit: SimTime::from_secs(submit.max(0) as f64),
        nodes: nodes as u32,
        walltime_estimate: SimDuration::from_secs(est.max(runtime) as f64),
        base_runtime: SimDuration::from_secs(runtime as f64),
        priority: 0,
        moldable: None,
    }))
}

/// Streaming SWF writer: header up front, one [`SwfWriter::push_job`]
/// per job, `; App:` tag-table lines emitted the first time each tag
/// appears. Export of a streaming run never materializes the job list;
/// [`write_swf`] is a convenience wrapper over this.
#[derive(Debug)]
pub struct SwfWriter<W: Write> {
    out: W,
    app_ids: BTreeMap<String, usize>,
    jobs_written: u64,
}

impl<W: Write> SwfWriter<W> {
    /// Creates a writer and emits the SWF header comments.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(b"; SWF trace written by epa-workload\n; Version: 2.2\n")?;
        Ok(SwfWriter {
            out,
            app_ids: BTreeMap::new(),
            jobs_written: 0,
        })
    }

    /// Appends one job line (preceded by its `; App:` table line when
    /// the tag is new).
    pub fn push_job(&mut self, j: &Job) -> io::Result<()> {
        let app = match self.app_ids.get(j.app.tag.as_str()) {
            Some(&id) => id,
            None => {
                let id = self.app_ids.len();
                writeln!(self.out, "; App: {id} {}", j.app.tag)?;
                self.app_ids.insert(j.app.tag.clone(), id);
                id
            }
        };
        self.jobs_written += 1;
        // Columns:       1   2  3   4   5  6  7   8   9 10  11  12 13  14 15 16 17 18
        writeln!(
            self.out,
            "{} {} -1 {} {} -1 -1 {} {} -1 -1 {} -1 {} -1 -1 -1 -1",
            j.id.0,
            j.submit.as_secs().round() as i64,
            j.base_runtime.as_secs().round() as i64,
            j.nodes,
            j.nodes,
            j.walltime_estimate.as_secs().round() as i64,
            j.user,
            app,
        )
    }

    /// Number of job lines written so far.
    #[must_use]
    pub fn jobs_written(&self) -> u64 {
        self.jobs_written
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Serializes jobs to SWF text (a materialized convenience over
/// [`SwfWriter`]).
#[must_use]
pub fn write_swf(jobs: &[Job]) -> String {
    let mut buf: Vec<u8> = Vec::new();
    {
        let mut w = SwfWriter::new(&mut buf).expect("write to Vec cannot fail");
        for j in jobs {
            w.push_job(j).expect("write to Vec cannot fail");
        }
        let _ = w.finish().expect("flush to Vec cannot fail");
    }
    String::from_utf8(buf).expect("SWF output is ASCII")
}

/// Parses an SWF text back into jobs. Application tags are recovered from
/// the `; App:` header lines when present; otherwise tags are `app<N>`.
pub fn read_swf(text: &str) -> Result<Vec<Job>, WorkloadError> {
    let mut tag_table: BTreeMap<usize, String> = BTreeMap::new();
    let mut jobs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if let Some(job) = parse_swf_line(lineno, line, &mut tag_table)? {
            jobs.push(job);
        }
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WorkloadGenerator, WorkloadParams};
    use crate::job::JobBuilder;

    #[test]
    fn roundtrip_preserves_scheduling_fields() {
        let params = WorkloadParams::typical(256, 11);
        let jobs = WorkloadGenerator::new(params).generate(SimTime::from_days(2.0), 0);
        let text = write_swf(&jobs);
        let back = read_swf(&text).unwrap();
        assert_eq!(back.len(), jobs.len());
        for (a, b) in jobs.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.user, b.user);
            assert_eq!(a.app.tag, b.app.tag);
            assert!((a.submit.as_secs() - b.submit.as_secs()).abs() < 1.0);
            assert!((a.base_runtime.as_secs() - b.base_runtime.as_secs()).abs() < 1.0);
            assert!(
                (a.walltime_estimate.as_secs() - b.walltime_estimate.as_secs()).abs() < 1.0
                    || b.walltime_estimate >= b.base_runtime
            );
        }
    }

    #[test]
    fn header_carries_app_tags() {
        let jobs = vec![JobBuilder::new(1).build()];
        let text = write_swf(&jobs);
        assert!(text.contains("; App: 0 generic"));
    }

    #[test]
    fn skips_cancelled_jobs() {
        let text = "; header\n1 100 -1 -1 -1 -1 -1 4 3600 -1 -1 7 -1 0 -1 -1 -1 -1\n";
        let jobs = read_swf(text).unwrap();
        assert!(jobs.is_empty(), "runtime -1 should be skipped");
    }

    #[test]
    fn parses_minimal_line() {
        let text = "5 250 -1 1200 16 -1 -1 16 7200 -1 -1 3 -1 0 -1 -1 -1 -1\n";
        let jobs = read_swf(text).unwrap();
        assert_eq!(jobs.len(), 1);
        let j = &jobs[0];
        assert_eq!(j.id, JobId(5));
        assert_eq!(j.nodes, 16);
        assert_eq!(j.user, 3);
        assert_eq!(j.base_runtime.as_secs(), 1200.0);
        assert_eq!(j.walltime_estimate.as_secs(), 7200.0);
    }

    #[test]
    fn short_line_is_error() {
        let err = read_swf("1 2 3\n").unwrap_err();
        assert!(matches!(err, WorkloadError::Parse { line: 1, .. }));
    }

    #[test]
    fn garbage_field_is_error() {
        let text = "x 250 -1 1200 16 -1 -1 16 7200 -1 -1 3 -1 0 -1 -1 -1 -1\n";
        assert!(read_swf(text).is_err());
    }

    #[test]
    fn streaming_writer_emits_tags_on_first_use() {
        let a = JobBuilder::new(0)
            .app(AppProfile::compute_bound("hpl"))
            .build();
        let b = JobBuilder::new(1).build(); // "generic"
        let mut buf: Vec<u8> = Vec::new();
        {
            let mut w = SwfWriter::new(&mut buf).unwrap();
            w.push_job(&a).unwrap();
            w.push_job(&b).unwrap();
            assert_eq!(w.jobs_written(), 2);
            let _ = w.finish().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("; App: 0 hpl"));
        assert!(text.contains("; App: 1 generic"));
        let back = read_swf(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].app.tag, "hpl");
        assert_eq!(back[1].app.tag, "generic");
    }

    #[test]
    fn streaming_writer_matches_write_swf() {
        let params = WorkloadParams::typical(128, 21);
        let jobs = WorkloadGenerator::new(params).generate(SimTime::from_days(1.0), 0);
        let mut buf: Vec<u8> = Vec::new();
        {
            let mut w = SwfWriter::new(&mut buf).unwrap();
            for j in &jobs {
                w.push_job(j).unwrap();
            }
            let _ = w.finish().unwrap();
        }
        assert_eq!(String::from_utf8(buf).unwrap(), write_swf(&jobs));
    }

    #[test]
    fn estimate_never_below_runtime_after_parse() {
        // req_time (field 9) below runtime gets clamped up.
        let text = "1 0 -1 5000 8 -1 -1 8 100 -1 -1 0 -1 0 -1 -1 -1 -1\n";
        let jobs = read_swf(text).unwrap();
        assert!(jobs[0].walltime_estimate >= jobs[0].base_runtime);
    }
}
