//! # epa-workload — jobs and workload generation
//!
//! Models the batch workloads the survey's Q3 asks about: what runs, what
//! waits, how big, how long, and with what power behaviour.
//!
//! - [`job`] — the job model: resources, walltime estimates, application
//!   phases (compute/memory/communication) with per-phase cpu-boundness,
//!   user and application tags (the prediction keys the survey's related
//!   work uses).
//! - [`moldable`] — moldable-job configurations: alternative
//!   (nodes, runtime) operating points under a parallel-efficiency law
//!   (Sarood, Patki, Bailey — the over-provisioning literature).
//! - [`arrival`] — arrival processes: Poisson with diurnal/weekly
//!   modulation, matching real submission patterns.
//! - [`distributions`] — size and runtime distributions: power-of-two
//!   biased log-uniform sizes and log-normal runtimes with user walltime
//!   over-estimation (Mu'alem & Feitelson).
//! - [`generator`] — assembles a full synthetic workload with capability /
//!   capacity mixes per site.
//! - [`trace`] — a Standard-Workload-Format-compatible trace reader and
//!   writer for interchange and replay.
//! - [`source`] — pull-based [`source::JobSource`] streams (materialized,
//!   lazy SWF, lazy generator) for bounded-memory million-job runs.

pub mod arrival;
pub mod distributions;
pub mod error;
pub mod generator;
pub mod job;
pub mod moldable;
pub mod source;
pub mod trace;

pub use arrival::ArrivalProcess;
pub use distributions::{RuntimeDistribution, SizeDistribution};
pub use error::WorkloadError;
pub use generator::{WorkloadGenerator, WorkloadParams, WorkloadSummary};
pub use job::{AppProfile, Job, JobId, Phase};
pub use moldable::MoldableConfig;
pub use source::{
    collect_source, swf_text_source, JobSource, LazyGeneratorSource, MaterializedSource,
    SwfStreamSource,
};
pub use trace::{read_swf, write_swf, SwfWriter};
