//! Error types for workload handling.

use thiserror::Error;

/// Errors from workload generation and trace parsing.
#[derive(Debug, Error, PartialEq, Eq)]
pub enum WorkloadError {
    /// A trace line could not be parsed.
    #[error("SWF parse error at line {line}: {message}")]
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },

    /// Invalid workload parameters.
    #[error("invalid workload parameters: {0}")]
    InvalidParams(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = WorkloadError::Parse {
            line: 3,
            message: "bad field".into(),
        };
        assert_eq!(e.to_string(), "SWF parse error at line 3: bad field");
    }
}
