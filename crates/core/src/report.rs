//! Full survey-report assembly.
//!
//! [`SurveyReport::compile`] runs every site, assembles the structured
//! questionnaire responses, builds the capability matrix and cross-site
//! analysis, and renders the complete document: selection summary,
//! Tables I and II, the Figure 1 interaction matrix, the Figure 2 map,
//! coverage and similarity analysis — the paper plus the "upcoming
//! in-depth analysis" it promises.

use crate::analysis::{cluster_sites, common_mechanisms, unique_mechanisms};
use crate::geomap;
use crate::matrix::CapabilityMatrix;
use crate::questionnaire::{Question, SiteResponse};
use crate::selection::SelectionCriteria;
use crate::tables;
use epa_rm::interactions::InteractionLedger;
use epa_sites::config::SiteConfig;
use epa_sites::runner::{run_site, SiteReport};
use epa_sites::taxonomy::Stage;

/// The compiled survey: everything derived from the nine site runs.
pub struct SurveyReport {
    /// Site configs in survey order.
    pub configs: Vec<SiteConfig>,
    /// Per-site run reports.
    pub reports: Vec<SiteReport>,
    /// Structured questionnaire responses.
    pub responses: Vec<SiteResponse>,
    /// The capability matrix.
    pub matrix: CapabilityMatrix,
    /// Merged component-interaction ledger (Figure 1).
    pub interactions: InteractionLedger,
}

impl SurveyReport {
    /// Runs all sites and compiles the survey.
    #[must_use]
    pub fn compile(configs: Vec<SiteConfig>) -> SurveyReport {
        let reports: Vec<SiteReport> = configs.iter().map(run_site).collect();
        let responses: Vec<SiteResponse> = configs
            .iter()
            .zip(&reports)
            .map(|(c, r)| SiteResponse::assemble(c, r))
            .collect();
        let mut matrix = CapabilityMatrix::new();
        let mut interactions = InteractionLedger::new();
        for (c, r) in configs.iter().zip(&reports) {
            matrix.add_site(&c.meta.key, &c.capabilities);
            interactions.merge(&r.interactions);
        }
        SurveyReport {
            configs,
            reports,
            responses,
            matrix,
            interactions,
        }
    }

    /// Renders the selection summary (§III).
    #[must_use]
    pub fn render_selection(&self) -> String {
        let criteria = SelectionCriteria::default();
        let mut out = String::new();
        out.push_str(
            "Center selection (three-part test: Top500-class, EPA JSRM deployment, willingness)\n",
        );
        for c in &self.configs {
            let o = criteria.apply(c);
            out.push_str(&format!(
                "  {:<12} top500={} deployment={} willing={} -> {}\n",
                o.site,
                o.top500_class,
                o.epa_jsrm_deployment,
                o.willing,
                if o.selected() { "SELECTED" } else { "excluded" }
            ));
        }
        out
    }

    /// Renders the cross-site analysis section.
    #[must_use]
    pub fn render_analysis(&self) -> String {
        let mut out = String::new();
        out.push_str("Capability coverage (sites per mechanism and stage)\n");
        out.push_str(&self.matrix.render_coverage());
        out.push('\n');
        out.push_str("Common production themes (>= 3 sites): ");
        let common: Vec<String> = common_mechanisms(&self.matrix, Stage::Production, 3)
            .into_iter()
            .map(|m| m.label().to_owned())
            .collect();
        out.push_str(&common.join(", "));
        out.push('\n');
        out.push_str("Unique production approaches:\n");
        for (m, site) in unique_mechanisms(&self.matrix, Stage::Production) {
            out.push_str(&format!("  {site}: {}\n", m.label()));
        }
        out.push_str("Site clusters by overall capability similarity (threshold 0.4):\n");
        for cluster in cluster_sites(&self.matrix, Stage::Research, 0.4) {
            out.push_str(&format!("  {{{}}}\n", cluster.join(", ")));
        }
        out
    }

    /// Renders the whole document.
    #[must_use]
    pub fn render_full(&self) -> String {
        let mut out = String::new();
        out.push_str("ENERGY AND POWER AWARE JOB SCHEDULING AND RESOURCE MANAGEMENT\n");
        out.push_str("Global Survey — reproduction report\n\n");
        out.push_str(&self.render_selection());
        out.push('\n');
        out.push_str(&tables::render_table1(&self.reports));
        out.push('\n');
        out.push_str(&tables::render_table2(&self.reports));
        out.push('\n');
        out.push_str("Measured evidence per site (simulated week)\n");
        out.push_str(&tables::render_evidence(&self.reports));
        out.push('\n');
        out.push_str("Figure 1: component interactions (messages, all sites merged)\n");
        out.push_str(&self.interactions.render_matrix());
        out.push('\n');
        let metas: Vec<_> = self.configs.iter().map(|c| c.meta.clone()).collect();
        out.push_str(&geomap::render_map(&metas, 100, 28));
        out.push('\n');
        out.push_str(&self.render_analysis());
        out.push('\n');
        out.push_str("Per-site questionnaire responses\n");
        for r in &self.responses {
            out.push_str(&format!("\n## {}\n", r.site));
            for q in Question::ALL {
                out.push_str(&format!("{q:?}: {}\n", r.answer(q)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_simcore::time::SimTime;
    use epa_sites::all_sites;

    fn quick_survey() -> SurveyReport {
        let configs: Vec<SiteConfig> = all_sites(3)
            .into_iter()
            .map(|mut s| {
                s.horizon = SimTime::from_hours(8.0);
                s
            })
            .collect();
        SurveyReport::compile(configs)
    }

    #[test]
    fn compile_produces_nine_of_everything() {
        let s = quick_survey();
        assert_eq!(s.reports.len(), 9);
        assert_eq!(s.responses.len(), 9);
        assert_eq!(s.matrix.sites(), 9);
        assert!(s.interactions.total() > 0);
    }

    #[test]
    fn full_render_contains_all_sections() {
        let s = quick_survey();
        let doc = s.render_full();
        assert!(doc.contains("TABLE I"));
        assert!(doc.contains("TABLE II"));
        assert!(doc.contains("Figure 1"));
        assert!(doc.contains("Figure 2"));
        assert!(doc.contains("SELECTED"));
        assert!(doc.contains("Q7Efficacy"));
        assert!(doc.contains("Unique production approaches"));
    }

    #[test]
    fn all_sites_selected_in_selection_section() {
        let s = quick_survey();
        let sel = s.render_selection();
        assert_eq!(sel.matches("SELECTED").count(), 9);
        assert_eq!(sel.matches("excluded").count(), 0);
    }
}
