//! Center selection (survey §III).
//!
//! The survey applied a three-part test: (1) the center operates a Top500
//! system, (2) it has deployed — or is developing with intent to deploy —
//! large-scale EPA JSRM technology in production, and (3) its leadership
//! is willing to participate. Eleven centers passed; nine participated.

use epa_sites::config::SiteConfig;
use epa_sites::taxonomy::Stage;
use serde::Serialize;

/// The §III selection criteria, with tunable thresholds.
#[derive(Debug, Clone, Serialize)]
pub struct SelectionCriteria {
    /// Proxy for the Top500 bar: minimum peak TFLOP/s.
    pub min_peak_tflops: f64,
    /// Criterion 2: require at least one capability at or above this
    /// stage (TechDevelopment = "intent to deploy" suffices).
    pub min_stage: Stage,
}

impl Default for SelectionCriteria {
    fn default() -> Self {
        SelectionCriteria {
            min_peak_tflops: 100.0,
            min_stage: Stage::TechDevelopment,
        }
    }
}

/// Outcome of applying the test to one center.
#[derive(Debug, Clone, Serialize)]
pub struct SelectionOutcome {
    /// Site key.
    pub site: String,
    /// Criterion 1: representative HPC center with a Top500-class system.
    pub top500_class: bool,
    /// Criterion 2: deployed or intends to deploy EPA JSRM in production.
    pub epa_jsrm_deployment: bool,
    /// Criterion 3: willing to participate (all modeled sites did —
    /// the two decliners are not modeled).
    pub willing: bool,
}

impl SelectionOutcome {
    /// Whether the site passes all three parts.
    #[must_use]
    pub fn selected(&self) -> bool {
        self.top500_class && self.epa_jsrm_deployment && self.willing
    }
}

impl SelectionCriteria {
    /// Applies the three-part test to a site.
    #[must_use]
    pub fn apply(&self, site: &SiteConfig) -> SelectionOutcome {
        SelectionOutcome {
            site: site.meta.key.clone(),
            top500_class: site.system.peak_tflops >= self.min_peak_tflops,
            epa_jsrm_deployment: site.capabilities.iter().any(|c| c.stage >= self.min_stage),
            willing: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_sites::all_sites;
    use epa_sites::taxonomy::{Capability, Mechanism};

    #[test]
    fn all_nine_modeled_sites_pass() {
        let criteria = SelectionCriteria::default();
        for site in all_sites(1) {
            let o = criteria.apply(&site);
            assert!(o.selected(), "{} fails selection: {o:?}", site.meta.key);
        }
    }

    #[test]
    fn research_only_center_fails_criterion_two() {
        let mut site = all_sites(1).remove(0);
        site.capabilities = vec![Capability::new(
            Stage::Research,
            Mechanism::Monitoring,
            "exploratory only",
        )];
        let o = SelectionCriteria::default().apply(&site);
        assert!(!o.selected());
        assert!(!o.epa_jsrm_deployment);
        assert!(o.top500_class);
    }

    #[test]
    fn small_system_fails_criterion_one() {
        let mut site = all_sites(1).remove(0);
        site.system.peak_tflops = 1.0;
        let o = SelectionCriteria::default().apply(&site);
        assert!(!o.selected());
    }
}
