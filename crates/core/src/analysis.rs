//! Cross-site analysis: similarity, clustering, common and unique themes.
//!
//! §VII of the paper promises an analysis that will "identify common
//! themes in the responses as well as … particularly noteworthy
//! approaches or techniques employed at specific sites". This module
//! implements that promised analysis: Jaccard similarity over mechanism
//! sets, average-linkage agglomerative clustering of sites, and the
//! common/unique mechanism extraction.

use crate::matrix::CapabilityMatrix;
use epa_sites::taxonomy::{Mechanism, Stage};
use std::collections::BTreeSet;

/// Jaccard similarity of two sites' mechanism sets at or above `stage`.
#[must_use]
pub fn jaccard_similarity(matrix: &CapabilityMatrix, a: &str, b: &str, stage: Stage) -> f64 {
    let sa: BTreeSet<Mechanism> = matrix.mechanisms_at(a, stage).into_iter().collect();
    let sb: BTreeSet<Mechanism> = matrix.mechanisms_at(b, stage).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

/// Mechanisms present in at least `k` sites at or above `stage` — the
/// "common themes".
#[must_use]
pub fn common_mechanisms(matrix: &CapabilityMatrix, stage: Stage, k: usize) -> Vec<Mechanism> {
    Mechanism::ALL
        .into_iter()
        .filter(|&m| matrix.coverage(m, stage) >= k)
        .collect()
}

/// Mechanisms present at exactly one site at or above `stage`, with the
/// site — the "noteworthy site-specific approaches".
#[must_use]
pub fn unique_mechanisms(matrix: &CapabilityMatrix, stage: Stage) -> Vec<(Mechanism, String)> {
    let mut out = Vec::new();
    for m in Mechanism::ALL {
        let holders: Vec<String> = matrix
            .site_keys()
            .filter(|s| matrix.stage_of(s, m).is_some_and(|have| have >= stage))
            .map(str::to_owned)
            .collect();
        if holders.len() == 1 {
            out.push((m, holders.into_iter().next().expect("one")));
        }
    }
    out
}

/// Average-linkage agglomerative clustering of sites by mechanism
/// similarity; merging stops when the best pair's similarity drops below
/// `threshold`. Returns clusters of site keys.
#[must_use]
pub fn cluster_sites(matrix: &CapabilityMatrix, stage: Stage, threshold: f64) -> Vec<Vec<String>> {
    let sites: Vec<String> = matrix.site_keys().map(str::to_owned).collect();
    let mut clusters: Vec<Vec<String>> = sites.iter().map(|s| vec![s.clone()]).collect();
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                // Average pairwise similarity between the clusters.
                let mut total = 0.0;
                let mut n = 0u32;
                for a in &clusters[i] {
                    for b in &clusters[j] {
                        total += jaccard_similarity(matrix, a, b, stage);
                        n += 1;
                    }
                }
                let sim = total / f64::from(n.max(1));
                if best.is_none_or(|(.., s)| sim > s) {
                    best = Some((i, j, sim));
                }
            }
        }
        match best {
            Some((i, j, sim)) if sim >= threshold => {
                let merged = clusters.remove(j);
                clusters[i].extend(merged);
            }
            _ => break,
        }
    }
    for c in &mut clusters {
        c.sort();
    }
    clusters.sort();
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_sites::all_sites;

    fn matrix() -> CapabilityMatrix {
        let mut m = CapabilityMatrix::new();
        for site in all_sites(1) {
            m.add_site(&site.meta.key, &site.capabilities);
        }
        m
    }

    #[test]
    fn jaccard_self_is_one() {
        let m = matrix();
        for s in ["riken", "kaust", "lrz"] {
            assert!((jaccard_similarity(&m, s, s, Stage::Research) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn jaccard_symmetric_and_bounded() {
        let m = matrix();
        let sites: Vec<String> = m.site_keys().map(str::to_owned).collect();
        for a in &sites {
            for b in &sites {
                let ab = jaccard_similarity(&m, a, b, Stage::Research);
                let ba = jaccard_similarity(&m, b, a, Stage::Research);
                assert!((ab - ba).abs() < 1e-12);
                assert!((0.0..=1.0).contains(&ab));
            }
        }
    }

    #[test]
    fn capping_sites_more_similar_than_unrelated() {
        let m = matrix();
        // KAUST and Trinity both do production CAPMC capping.
        let kaust_trinity = jaccard_similarity(&m, "kaust", "trinity", Stage::Production);
        // KAUST and Tokyo Tech share no production mechanism.
        let kaust_tokyo = jaccard_similarity(&m, "kaust", "tokyo-tech", Stage::Production);
        assert!(
            kaust_trinity > kaust_tokyo,
            "{kaust_trinity} vs {kaust_tokyo}"
        );
    }

    #[test]
    fn common_theme_is_monitoring_or_capping() {
        let m = matrix();
        let common = common_mechanisms(&m, Stage::Research, 4);
        assert!(
            common.contains(&Mechanism::PowerCapping) || common.contains(&Mechanism::Monitoring),
            "common themes: {common:?}"
        );
    }

    #[test]
    fn unique_production_mechanisms_exist() {
        let m = matrix();
        let unique = unique_mechanisms(&m, Stage::Production);
        // CINECA's MS3 job limiting is one-of-a-kind in production.
        assert!(
            unique
                .iter()
                .any(|(mech, site)| *mech == Mechanism::JobLimiting && site == "cineca"),
            "unique: {unique:?}"
        );
    }

    #[test]
    fn clustering_thresholds() {
        let m = matrix();
        // Threshold 0: everything merges into one cluster.
        let all = cluster_sites(&m, Stage::Research, 0.0);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].len(), 9);
        // Threshold above 1: nothing merges.
        let none = cluster_sites(&m, Stage::Research, 1.01);
        assert_eq!(none.len(), 9);
        // A moderate threshold yields something in between.
        let mid = cluster_sites(&m, Stage::Research, 0.4);
        assert!(mid.len() > 1 && mid.len() < 9, "clusters: {mid:?}");
        // Every site appears exactly once.
        let total: usize = mid.iter().map(Vec::len).sum();
        assert_eq!(total, 9);
    }
}
