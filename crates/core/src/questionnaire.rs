//! The Q1–Q8 questionnaire (survey §IV) as a typed schema.
//!
//! The paper's §IV lists eight questions with sub-items. Here each
//! question is a variant of [`Question`] carrying its official text, and
//! [`SiteResponse`] holds a site's structured answers — the quantitative
//! ones (Q2 power figures, Q3 workload statistics, Q7 results) computed
//! from the site simulation, the categorical ones (Q1, Q4–Q6, Q8) derived
//! from the site's declared capabilities and metadata.

use epa_simcore::stats::SummaryStats;
use epa_sites::config::SiteConfig;
use epa_sites::runner::SiteReport;
use epa_sites::taxonomy::{Mechanism, Stage};
use serde::Serialize;

/// The eight survey questions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Question {
    /// Q1: motivation.
    Q1Motivation,
    /// Q2: data center and system description.
    Q2SystemDescription,
    /// Q3: general workload.
    Q3Workload,
    /// Q4: EPA JSRM capabilities.
    Q4Capabilities,
    /// Q5: elements comprising the solution.
    Q5Elements,
    /// Q6: application/task-level joint optimization.
    Q6JointOptimization,
    /// Q7: how well does the solution work.
    Q7Efficacy,
    /// Q8: next steps.
    Q8NextSteps,
}

impl Question {
    /// All questions in survey order.
    pub const ALL: [Question; 8] = [
        Question::Q1Motivation,
        Question::Q2SystemDescription,
        Question::Q3Workload,
        Question::Q4Capabilities,
        Question::Q5Elements,
        Question::Q6JointOptimization,
        Question::Q7Efficacy,
        Question::Q8NextSteps,
    ];

    /// The question's official wording (abridged from §IV).
    #[must_use]
    pub fn text(self) -> &'static str {
        match self {
            Question::Q1Motivation => {
                "What motivated your site's development and implementation of energy or power aware job scheduling or resource management capabilities?"
            }
            Question::Q2SystemDescription => {
                "Please describe your data center and major HPC system(s) where EPA JSRM capabilities have been deployed (site power budget, cooling capacity, cabinets/nodes/cores, peak performance, power draw)."
            }
            Question::Q3Workload => {
                "Describe the general workload on your HPC system(s): running snapshot, backlog, throughput, scheduling goal, job size and wallclock percentiles."
            }
            Question::Q4Capabilities => {
                "Describe the energy and power aware job scheduling and resource management capabilities of your large-scale HPC system(s)."
            }
            Question::Q5Elements => {
                "List and briefly describe all elements that comprise your EPA JSRM capabilities (implementation time, commercial availability, non-portable work)."
            }
            Question::Q6JointOptimization => {
                "Do you have application/task level joint optimization, such as topology-aware task allocation, as a way of directly or indirectly improving energy consumption?"
            }
            Question::Q7Efficacy => {
                "How well does your solution work? What are the advantages and disadvantages of your implementation?"
            }
            Question::Q8NextSteps => {
                "What are the next steps for the EPA JSRM capability you have developed?"
            }
        }
    }
}

/// Q2's quantitative answer.
#[derive(Debug, Clone, Serialize)]
pub struct SystemAnswer {
    /// Q2(a): site power budget, watts.
    pub site_budget_watts: f64,
    /// Q2(b): cooling capacity, watts.
    pub cooling_capacity_watts: f64,
    /// Q2(c): cabinets.
    pub cabinets: u32,
    /// Q2(c): nodes.
    pub nodes: u32,
    /// Q2(c): cores.
    pub cores: u64,
    /// Q2(c): peak performance, TFLOP/s.
    pub peak_tflops: f64,
    /// Q2(c): idle draw, watts.
    pub idle_watts: f64,
    /// Q2(c): average draw measured in the run, watts.
    pub avg_watts: f64,
    /// Q2(c): peak draw measured in the run, watts.
    pub peak_watts: f64,
}

/// Q3's quantitative answer.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadAnswer {
    /// Q3(c): jobs per month.
    pub jobs_per_month: f64,
    /// Q3(d): capability share of node-seconds.
    pub capability_share: f64,
    /// Q3(e): job size percentiles (nodes).
    pub size: SummaryStats,
    /// Q3(e): wallclock percentiles (seconds).
    pub runtime_secs: SummaryStats,
}

/// Q7's quantitative answer.
#[derive(Debug, Clone, Serialize)]
pub struct EfficacyAnswer {
    /// Node utilization achieved.
    pub utilization: f64,
    /// Mean wait, seconds.
    pub mean_wait_secs: f64,
    /// Energy per completed job, joules.
    pub energy_per_job_joules: f64,
    /// Seconds over the power budget (0 = the solution held the cap).
    pub budget_violation_secs: f64,
    /// Jobs killed by emergency response.
    pub emergency_kills: u64,
}

/// One site's structured questionnaire response.
#[derive(Debug, Clone, Serialize)]
pub struct SiteResponse {
    /// Site key.
    pub site: String,
    /// Q1.
    pub motivation: String,
    /// Q2.
    pub system: SystemAnswer,
    /// Q3 (None when the workload produced no jobs).
    pub workload: Option<WorkloadAnswer>,
    /// Q4: capability descriptions by stage.
    pub capabilities: Vec<(Stage, Mechanism, String)>,
    /// Q5: products/elements involved.
    pub elements: Vec<String>,
    /// Q6: true when the site does topology-/application-aware placement.
    pub joint_optimization: bool,
    /// Q7.
    pub efficacy: EfficacyAnswer,
    /// Q8: the tech-development items are the declared next steps.
    pub next_steps: Vec<String>,
}

impl SiteResponse {
    /// Assembles a response from the site's config and its run report.
    #[must_use]
    pub fn assemble(config: &SiteConfig, report: &SiteReport) -> SiteResponse {
        SiteResponse {
            site: config.meta.key.clone(),
            motivation: config.meta.motivation.clone(),
            system: SystemAnswer {
                site_budget_watts: config.facility.site_budget_watts,
                cooling_capacity_watts: config.facility.cooling_capacity_watts,
                cabinets: config.system.cabinets,
                nodes: config.system.total_nodes(),
                cores: config.system.total_cores(),
                peak_tflops: config.system.peak_tflops,
                idle_watts: config.system.idle_watts(),
                avg_watts: report.outcome.avg_watts,
                peak_watts: report.outcome.peak_watts,
            },
            workload: report.workload.as_ref().map(|w| WorkloadAnswer {
                jobs_per_month: w.jobs_per_month,
                capability_share: w.capability_share,
                size: w.size,
                runtime_secs: w.runtime_secs,
            }),
            capabilities: config
                .capabilities
                .iter()
                .map(|c| (c.stage, c.mechanism, c.description.clone()))
                .collect(),
            elements: config.meta.products.clone(),
            joint_optimization: config
                .capabilities
                .iter()
                .any(|c| c.mechanism == Mechanism::TopologyAware),
            efficacy: EfficacyAnswer {
                utilization: report.outcome.utilization,
                mean_wait_secs: report.outcome.mean_wait_secs,
                energy_per_job_joules: report.outcome.energy_per_job_joules,
                budget_violation_secs: report.outcome.budget_violation_secs,
                emergency_kills: report.outcome.emergency_kills,
            },
            next_steps: config
                .capabilities
                .iter()
                .filter(|c| c.stage == Stage::TechDevelopment)
                .map(|c| c.description.clone())
                .collect(),
        }
    }

    /// Renders the answer to one question as prose + figures.
    #[must_use]
    pub fn answer(&self, q: Question) -> String {
        match q {
            Question::Q1Motivation => self.motivation.clone(),
            Question::Q2SystemDescription => format!(
                "{} cabinets, {} nodes, {} cores, {:.0} TF peak; site budget {:.1} kW, cooling {:.1} kW; idle {:.1} kW, avg {:.1} kW, peak {:.1} kW",
                self.system.cabinets,
                self.system.nodes,
                self.system.cores,
                self.system.peak_tflops,
                self.system.site_budget_watts / 1e3,
                self.system.cooling_capacity_watts / 1e3,
                self.system.idle_watts / 1e3,
                self.system.avg_watts / 1e3,
                self.system.peak_watts / 1e3,
            ),
            Question::Q3Workload => match &self.workload {
                Some(w) => format!(
                    "{:.0} jobs/month; capability share {:.0}%; size min/median/max = {:.0}/{:.0}/{:.0} nodes (p10 {:.0}, p90 {:.0}); wallclock median {:.1} h (p10 {:.1} h, p90 {:.1} h)",
                    w.jobs_per_month,
                    100.0 * w.capability_share,
                    w.size.min,
                    w.size.median,
                    w.size.max,
                    w.size.p10,
                    w.size.p90,
                    w.runtime_secs.median / 3600.0,
                    w.runtime_secs.p10 / 3600.0,
                    w.runtime_secs.p90 / 3600.0,
                ),
                None => "no workload recorded".into(),
            },
            Question::Q4Capabilities => self
                .capabilities
                .iter()
                .filter(|(s, ..)| *s == Stage::Production)
                .map(|(_, _, d)| d.as_str())
                .collect::<Vec<_>>()
                .join("; "),
            Question::Q5Elements => self.elements.join(", "),
            Question::Q6JointOptimization => {
                if self.joint_optimization {
                    "yes: topology-/application-aware placement in production".into()
                } else {
                    "no application/task-level joint optimization reported".into()
                }
            }
            Question::Q7Efficacy => format!(
                "utilization {:.0}%, mean wait {:.1} h, energy/job {:.1} kWh, budget violations {:.0} s, emergency kills {}",
                100.0 * self.efficacy.utilization,
                self.efficacy.mean_wait_secs / 3600.0,
                self.efficacy.energy_per_job_joules / 3.6e6,
                self.efficacy.budget_violation_secs,
                self.efficacy.emergency_kills,
            ),
            Question::Q8NextSteps => {
                if self.next_steps.is_empty() {
                    "continue production operation".into()
                } else {
                    self.next_steps.join("; ")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_simcore::time::SimTime;
    use epa_sites::centers;
    use epa_sites::runner::run_site;

    fn small_report() -> (SiteConfig, SiteReport) {
        let mut site = centers::stfc::config(3);
        site.horizon = SimTime::from_days(1.0);
        let report = run_site(&site);
        (site, report)
    }

    #[test]
    fn assemble_covers_all_questions() {
        let (config, report) = small_report();
        let r = SiteResponse::assemble(&config, &report);
        for q in Question::ALL {
            let text = r.answer(q);
            assert!(!text.is_empty(), "{q:?} answer empty");
        }
        assert_eq!(r.site, "stfc");
        assert_eq!(r.system.nodes, 360);
        assert!(r.workload.is_some());
    }

    #[test]
    fn question_texts_match_survey() {
        assert!(Question::Q1Motivation.text().contains("motivated"));
        assert!(Question::Q3Workload.text().contains("workload"));
        assert!(Question::Q6JointOptimization
            .text()
            .contains("topology-aware"));
        assert_eq!(Question::ALL.len(), 8);
    }

    #[test]
    fn q8_lists_tech_development() {
        let (config, report) = small_report();
        let r = SiteResponse::assemble(&config, &report);
        assert!(r.answer(Question::Q8NextSteps).contains("reporting tool"));
    }

    #[test]
    fn q6_negative_for_stfc() {
        let (config, report) = small_report();
        let r = SiteResponse::assemble(&config, &report);
        assert!(!r.joint_optimization);
        assert!(r.answer(Question::Q6JointOptimization).starts_with("no"));
    }
}
