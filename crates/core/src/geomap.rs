//! The Figure 2 geographic map, as ASCII art.
//!
//! Figure 2 of the survey shows the nine participating centers on a world
//! map spanning Asia, Europe, and the United States. The renderer plots
//! equirectangular-projected markers on a character grid with a sparse
//! coastline sketch, plus a legend, and computes the regional totals the
//! paper reports ("span the geographic regions of Asia, Europe and the
//! United States").

use epa_sites::config::SiteMeta;
use serde::Serialize;
use std::collections::BTreeMap;

/// Geographic region classification used in the survey's §III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Region {
    /// North and South America.
    Americas,
    /// Europe (and nearby Middle East per the survey's grouping of KAUST
    /// with its region — we classify by longitude band).
    Europe,
    /// Asia.
    Asia,
}

/// Classifies a site by longitude band (equirectangular heuristic).
#[must_use]
pub fn region_of(lon: f64) -> Region {
    if lon < -30.0 {
        Region::Americas
    } else if lon < 30.0 {
        Region::Europe
    } else {
        Region::Asia
    }
}

/// Renders the world map with one numbered marker per site.
#[must_use]
pub fn render_map(sites: &[SiteMeta], width: usize, height: usize) -> String {
    let width = width.max(40);
    let height = height.max(12);
    let mut grid = vec![vec![' '; width]; height];

    // A minimal continent sketch: rough bounding boxes as dots.
    // (lat_min, lat_max, lon_min, lon_max)
    let land: [(f64, f64, f64, f64); 6] = [
        (25.0, 70.0, -125.0, -65.0),  // North America
        (-35.0, 10.0, -80.0, -35.0),  // South America
        (36.0, 70.0, -10.0, 40.0),    // Europe
        (-35.0, 35.0, -15.0, 50.0),   // Africa
        (5.0, 70.0, 45.0, 145.0),     // Asia
        (-40.0, -12.0, 115.0, 155.0), // Australia
    ];
    for (lat_min, lat_max, lon_min, lon_max) in land {
        let mut lat = lat_min;
        while lat <= lat_max {
            let mut lon = lon_min;
            while lon <= lon_max {
                let (x, y) = project(lat, lon, width, height);
                grid[y][x] = '.';
                lon += 8.0;
            }
            lat += 6.0;
        }
    }

    for (i, site) in sites.iter().enumerate() {
        let (x, y) = project(site.lat, site.lon, width, height);
        let marker = char::from_digit((i as u32 + 1) % 10, 10).unwrap_or('*');
        // Nearby sites may project onto one cell (LRZ and CINECA are ~4°
        // apart); spiral outward to the nearest free-ish cell.
        let mut placed = false;
        'search: for radius in 0..4i64 {
            for dy in -radius..=radius {
                for dx in -radius..=radius {
                    let nx = (x as i64 + dx).clamp(0, width as i64 - 1) as usize;
                    let ny = (y as i64 + dy).clamp(0, height as i64 - 1) as usize;
                    if !grid[ny][nx].is_ascii_digit() {
                        grid[ny][nx] = marker;
                        placed = true;
                        break 'search;
                    }
                }
            }
        }
        if !placed {
            grid[y][x] = marker;
        }
    }

    let mut out = String::new();
    out.push_str("Figure 2: Map of the geographic location of the participating centers\n");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    for row in grid {
        let line: String = row.into_iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out.push_str(&"-".repeat(width));
    out.push('\n');
    for (i, site) in sites.iter().enumerate() {
        out.push_str(&format!(
            "{}: {} ({}) [{:.2}°, {:.2}°]\n",
            (i + 1) % 10,
            site.name,
            site.country,
            site.lat,
            site.lon
        ));
    }
    out
}

fn project(lat: f64, lon: f64, width: usize, height: usize) -> (usize, usize) {
    let x = ((lon + 180.0) / 360.0 * (width as f64 - 1.0)).round() as usize;
    // Clip to ±75° latitude so the populated band fills the grid.
    let lat_c = lat.clamp(-75.0, 75.0);
    let y = ((75.0 - lat_c) / 150.0 * (height as f64 - 1.0)).round() as usize;
    (x.min(width - 1), y.min(height - 1))
}

/// Regional totals (the survey: 4 Asia-adjacent, 4 Europe, 1 US —
/// depending on where KAUST is banded).
#[must_use]
pub fn regional_totals(sites: &[SiteMeta]) -> BTreeMap<Region, usize> {
    let mut out = BTreeMap::new();
    for s in sites {
        *out.entry(region_of(s.lon)).or_insert(0) += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_sites::all_sites;

    fn metas() -> Vec<SiteMeta> {
        all_sites(1).into_iter().map(|s| s.meta).collect()
    }

    #[test]
    fn projection_corners() {
        assert_eq!(project(75.0, -180.0, 100, 30), (0, 0));
        assert_eq!(project(-75.0, 180.0, 100, 30), (99, 29));
        let (x, y) = project(0.0, 0.0, 101, 31);
        assert_eq!((x, y), (50, 15));
    }

    #[test]
    fn map_contains_all_markers_and_legend() {
        let m = render_map(&metas(), 100, 28);
        for i in 1..=9 {
            assert!(
                m.contains(&format!("{i}: ")),
                "legend missing site {i}\n{m}"
            );
        }
        // Markers 1..9 appear in the grid body too.
        let grid_part: String = m.lines().take(30).collect::<Vec<_>>().join("\n");
        for i in 1..=9u32 {
            let c = char::from_digit(i, 10).unwrap();
            assert!(grid_part.contains(c), "marker {c} missing");
        }
    }

    #[test]
    fn regions_match_survey() {
        let totals = regional_totals(&metas());
        assert_eq!(totals[&Region::Americas], 1, "Trinity");
        assert_eq!(totals[&Region::Europe], 4, "CEA, LRZ, STFC, CINECA");
        assert_eq!(totals[&Region::Asia], 4, "RIKEN, Tokyo Tech, JCAHPC, KAUST");
    }

    #[test]
    fn region_banding() {
        assert_eq!(region_of(-106.0), Region::Americas);
        assert_eq!(region_of(2.0), Region::Europe);
        assert_eq!(region_of(139.0), Region::Asia);
        assert_eq!(region_of(39.1), Region::Asia); // KAUST is geographically Asia
    }
}
