//! Renderers for Tables I and II.
//!
//! The survey splits the nine centers across two tables: Table I carries
//! RIKEN, Tokyo Tech, CEA, KAUST, and LRZ; Table II carries STFC,
//! Trinity (LANL+Sandia), CINECA, and JCAHPC. Each row is one center;
//! the three columns are the capability stages. The renderer produces the
//! same rows from the site models' declared capabilities, optionally
//! annotated with measured evidence from the simulation (the "initial
//! analysis" the paper's title promises).

use epa_sites::runner::SiteReport;
use epa_sites::taxonomy::Stage;

/// The centers of Table I, in row order.
pub const TABLE1_SITES: [&str; 5] = ["riken", "tokyo-tech", "cea", "kaust", "lrz"];

/// The centers of Table II, in row order.
pub const TABLE2_SITES: [&str; 4] = ["stfc", "trinity", "cineca", "jcahpc"];

fn wrap(text: &str, width: usize) -> Vec<String> {
    let mut lines = Vec::new();
    let mut cur = String::new();
    for word in text.split_whitespace() {
        if !cur.is_empty() && cur.len() + 1 + word.len() > width {
            lines.push(std::mem::take(&mut cur));
        }
        if !cur.is_empty() {
            cur.push(' ');
        }
        cur.push_str(word);
    }
    if !cur.is_empty() {
        lines.push(cur);
    }
    if lines.is_empty() {
        lines.push(String::new());
    }
    lines
}

fn render_row(report: &SiteReport, col_width: usize) -> String {
    let mut columns: Vec<Vec<String>> = Vec::new();
    for stage in Stage::ALL {
        let mut cell_lines = Vec::new();
        let caps: Vec<&str> = report
            .capabilities
            .iter()
            .filter(|c| c.stage == stage)
            .map(|c| c.description.as_str())
            .collect();
        if caps.is_empty() {
            cell_lines.push("—".to_owned());
        }
        for (i, cap) in caps.iter().enumerate() {
            if i > 0 {
                cell_lines.push(String::new());
            }
            cell_lines.extend(wrap(cap, col_width));
        }
        columns.push(cell_lines);
    }
    let height = columns.iter().map(Vec::len).max().unwrap_or(1);
    let mut out = String::new();
    let name_lines = wrap(&report.name, 14);
    for i in 0..height.max(name_lines.len()) {
        let name = name_lines.get(i).map_or("", String::as_str);
        out.push_str(&format!("{name:<14} |"));
        for col in &columns {
            let cell = col.get(i).map_or("", String::as_str);
            out.push_str(&format!(" {cell:<width$} |", width = col_width));
        }
        out.push('\n');
    }
    out
}

fn render_table(title: &str, sites: &[&str], reports: &[SiteReport], col_width: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    let total_width = 14 + 3 * (col_width + 3) + 1;
    out.push_str(&"=".repeat(total_width));
    out.push('\n');
    out.push_str(&format!("{:<14} |", "Center"));
    for stage in Stage::ALL {
        let header = match stage {
            Stage::Research => "Research Activities",
            Stage::TechDevelopment => "Tech Development (intent to deploy)",
            Stage::Production => "Production Development",
        };
        out.push_str(&format!(" {header:<width$} |", width = col_width));
    }
    out.push('\n');
    out.push_str(&"-".repeat(total_width));
    out.push('\n');
    for key in sites {
        match reports.iter().find(|r| r.key == *key) {
            Some(report) => {
                out.push_str(&render_row(report, col_width));
                out.push_str(&"-".repeat(total_width));
                out.push('\n');
            }
            None => {
                out.push_str(&format!("{key:<14} | (no report)\n"));
            }
        }
    }
    out
}

/// Renders Table I from the site reports.
#[must_use]
pub fn render_table1(reports: &[SiteReport]) -> String {
    render_table(
        "TABLE I: Part 1 of the summary of the answers from each center",
        &TABLE1_SITES,
        reports,
        42,
    )
}

/// Renders Table II from the site reports.
#[must_use]
pub fn render_table2(reports: &[SiteReport]) -> String {
    render_table(
        "TABLE II: Part 2 of the summary of the answers from each center",
        &TABLE2_SITES,
        reports,
        42,
    )
}

/// A measured-evidence annex: one line per site showing the simulation
/// numbers that substantiate its production row.
#[must_use]
pub fn render_evidence(reports: &[SiteReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>10} {:>8} {:>11} {:>11} {:>9} {:>10} {:>7}\n",
        "center", "completed", "util%", "avg kW", "peak kW", "PUE", "cost/h", "kills"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<12} {:>10} {:>8.1} {:>11.1} {:>11.1} {:>9.2} {:>10.2} {:>7}\n",
            r.key,
            r.outcome.completed,
            100.0 * r.outcome.utilization,
            r.outcome.avg_watts / 1e3,
            r.outcome.peak_watts / 1e3,
            r.mean_pue,
            r.mean_cost_per_hour,
            r.outcome.emergency_kills,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_simcore::time::SimTime;
    use epa_sites::runner::run_site;
    use epa_sites::{all_sites, centers};

    fn quick_reports() -> Vec<SiteReport> {
        // Short horizons keep the test fast while exercising all sites.
        all_sites(5)
            .into_iter()
            .map(|mut s| {
                s.horizon = SimTime::from_hours(12.0);
                run_site(&s)
            })
            .collect()
    }

    #[test]
    fn tables_cover_all_nine_centers() {
        let reports = quick_reports();
        let t1 = render_table1(&reports);
        let t2 = render_table2(&reports);
        for name in ["RIKEN", "Tokyo", "CEA", "KAUST", "Leibniz"] {
            assert!(t1.contains(name), "Table I missing {name}:\n{t1}");
        }
        for name in ["Hartree", "Trinity", "CINECA", "JCAHPC"] {
            assert!(t2.contains(name), "Table II missing {name}:\n{t2}");
        }
    }

    #[test]
    fn table1_contains_signature_capabilities() {
        let reports = quick_reports();
        let t1 = render_table1(&reports);
        assert!(t1.contains("emergency job killing"), "RIKEN row");
        assert!(t1.contains("270 W"), "KAUST row");
        assert!(t1.contains("energy to solution"), "LRZ row");
    }

    #[test]
    fn empty_stage_renders_dash() {
        let mut site = centers::jcahpc::config(5);
        site.horizon = SimTime::from_hours(6.0);
        // JCAHPC's Table II row has no tech-development column entry.
        let report = run_site(&site);
        let row = render_row(&report, 42);
        assert!(row.contains('—'));
    }

    #[test]
    fn evidence_has_one_line_per_site() {
        let reports = quick_reports();
        let e = render_evidence(&reports);
        assert_eq!(e.lines().count(), 10); // header + 9 sites
        assert!(e.contains("kaust"));
    }

    #[test]
    fn wrap_behaviour() {
        assert_eq!(wrap("a b c", 3), vec!["a b", "c"]);
        assert_eq!(wrap("", 10), vec![String::new()]);
        let long = wrap("supercalifragilistic", 5);
        assert_eq!(long, vec!["supercalifragilistic"]);
    }
}
