//! Per-user energy accounting and billing.
//!
//! The survey's Q1 answers are dominated by cost: LRZ schedules for
//! energy because German electricity is expensive; STFC's tech-dev row is
//! a per-job user power-consumption reporting tool. This module turns a
//! site run into the artifact those capabilities imply: a per-user energy
//! ledger priced at the site's marginal electricity rate, with the
//! efficiency-mark distribution Tokyo Tech attaches.

use epa_rm::reports::{EfficiencyMark, UserEnergyReport};
use epa_sched::engine::SimOutcome;
use serde::Serialize;
use std::collections::BTreeMap;

/// One user's line on the energy bill.
#[derive(Debug, Clone, Serialize)]
pub struct UserBill {
    /// User index.
    pub user: u32,
    /// Jobs completed.
    pub jobs: u64,
    /// Node-hours consumed.
    pub node_hours: f64,
    /// Energy consumed, kWh.
    pub energy_kwh: f64,
    /// Cost at the site rate, currency units.
    pub cost: f64,
    /// Efficiency-mark counts (A–E).
    pub marks: BTreeMap<String, u64>,
}

/// The site-wide energy bill.
#[derive(Debug, Clone, Serialize)]
pub struct EnergyBill {
    /// Price per MWh used.
    pub price_per_mwh: f64,
    /// Per-user lines, sorted by energy descending.
    pub users: Vec<UserBill>,
    /// Total billed energy, kWh.
    pub total_kwh: f64,
    /// Total billed cost.
    pub total_cost: f64,
}

/// Builds the bill from a run outcome.
///
/// `user_of` maps a job id to its submitting user (the engine's outcome
/// does not carry users; the caller keeps the original job list).
/// `nominal_watts_per_node` sets the grading reference.
#[must_use]
pub fn bill_users(
    outcome: &SimOutcome,
    user_of: &BTreeMap<u64, u32>,
    nominal_watts_per_node: f64,
    price_per_mwh: f64,
) -> EnergyBill {
    let mut per_user: BTreeMap<u32, UserBill> = BTreeMap::new();
    for job in &outcome.jobs {
        let user = user_of.get(&job.id.0).copied().unwrap_or(u32::MAX);
        let entry = per_user.entry(user).or_insert_with(|| UserBill {
            user,
            jobs: 0,
            node_hours: 0.0,
            energy_kwh: 0.0,
            cost: 0.0,
            marks: BTreeMap::new(),
        });
        entry.jobs += 1;
        entry.node_hours += f64::from(job.nodes) * job.run_secs / 3600.0;
        entry.energy_kwh += job.energy_joules / 3.6e6;
        if job.run_secs > 0.0 {
            let report = UserEnergyReport::new(
                job.id,
                user,
                job.nodes,
                job.run_secs,
                job.energy_joules,
                nominal_watts_per_node,
            );
            *entry.marks.entry(report.mark.to_string()).or_insert(0) += 1;
        }
    }
    let mut users: Vec<UserBill> = per_user.into_values().collect();
    for u in &mut users {
        u.cost = u.energy_kwh / 1000.0 * price_per_mwh;
    }
    users.sort_by(|a, b| b.energy_kwh.partial_cmp(&a.energy_kwh).expect("finite"));
    let total_kwh: f64 = users.iter().map(|u| u.energy_kwh).sum();
    let total_cost: f64 = users.iter().map(|u| u.cost).sum();
    EnergyBill {
        price_per_mwh,
        users,
        total_kwh,
        total_cost,
    }
}

impl EnergyBill {
    /// Renders the bill as a text table (top `n` users).
    #[must_use]
    pub fn render(&self, n: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>6} {:>6} {:>12} {:>12} {:>10}  marks\n",
            "user", "jobs", "node-h", "kWh", "cost"
        ));
        for u in self.users.iter().take(n) {
            let marks: Vec<String> = u
                .marks
                .iter()
                .filter(|(_, c)| **c > 0)
                .map(|(m, c)| format!("{m}:{c}"))
                .collect();
            out.push_str(&format!(
                "{:>6} {:>6} {:>12.1} {:>12.1} {:>10.2}  {}\n",
                u.user,
                u.jobs,
                u.node_hours,
                u.energy_kwh,
                u.cost,
                marks.join(" ")
            ));
        }
        out.push_str(&format!(
            "total: {:.1} kWh, {:.2} at {:.0}/MWh\n",
            self.total_kwh, self.total_cost, self.price_per_mwh
        ));
        out
    }

    /// The A–E mark distribution over all users' jobs.
    #[must_use]
    pub fn mark_totals(&self) -> BTreeMap<String, u64> {
        let mut out: BTreeMap<String, u64> = [
            EfficiencyMark::A,
            EfficiencyMark::B,
            EfficiencyMark::C,
            EfficiencyMark::D,
            EfficiencyMark::E,
        ]
        .iter()
        .map(|m| (m.to_string(), 0))
        .collect();
        for u in &self.users {
            for (m, c) in &u.marks {
                *out.entry(m.clone()).or_insert(0) += c;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_sched::engine::{ClusterSim, EngineConfig};
    use epa_sched::policies::fcfs::Fcfs;
    use epa_simcore::time::{SimDuration, SimTime};
    use epa_workload::job::JobBuilder;

    fn run_two_users() -> (SimOutcome, BTreeMap<u64, u32>) {
        use epa_cluster::node::NodeSpec;
        use epa_cluster::system::SystemSpec;
        use epa_cluster::topology::Topology;
        let jobs = vec![
            JobBuilder::new(1)
                .user(0)
                .nodes(4)
                .runtime(SimDuration::from_hours(2.0))
                .estimate(SimDuration::from_hours(3.0))
                .build(),
            JobBuilder::new(2)
                .user(1)
                .nodes(2)
                .runtime(SimDuration::from_hours(1.0))
                .estimate(SimDuration::from_hours(2.0))
                .build(),
        ];
        let user_of: BTreeMap<u64, u32> = jobs.iter().map(|j| (j.id.0, j.user)).collect();
        let system = SystemSpec {
            name: "bill-test".into(),
            cabinets: 1,
            nodes_per_cabinet: 8,
            node: NodeSpec::typical_xeon(),
            topology: Topology::FatTree { arity: 8 },
            peak_tflops: 1.0,
        }
        .build();
        let mut policy = Fcfs;
        let out = ClusterSim::new(
            system,
            jobs,
            &mut policy,
            EngineConfig::new(SimTime::from_hours(8.0)),
        )
        .run();
        (out, user_of)
    }

    #[test]
    fn bill_attributes_energy_to_users() {
        let (out, user_of) = run_two_users();
        let bill = bill_users(&out, &user_of, 290.0, 100.0);
        assert_eq!(bill.users.len(), 2);
        // User 0: 4 nodes × 2 h ≫ user 1: 2 nodes × 1 h — sorted first.
        assert_eq!(bill.users[0].user, 0);
        assert!(bill.users[0].energy_kwh > bill.users[1].energy_kwh);
        assert!((bill.users[0].node_hours - 8.0).abs() < 1e-6);
        assert!((bill.users[1].node_hours - 2.0).abs() < 1e-6);
        // Cost scales with energy and rate.
        assert!((bill.total_cost - bill.total_kwh / 1000.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn bill_totals_match_job_energy() {
        let (out, user_of) = run_two_users();
        let bill = bill_users(&out, &user_of, 290.0, 100.0);
        let job_kwh: f64 = out.jobs.iter().map(|j| j.energy_joules / 3.6e6).sum();
        assert!((bill.total_kwh - job_kwh).abs() < 1e-9);
    }

    #[test]
    fn marks_distribution_populated() {
        let (out, user_of) = run_two_users();
        let bill = bill_users(&out, &user_of, 290.0, 100.0);
        let totals = bill.mark_totals();
        let total: u64 = totals.values().sum();
        assert_eq!(total, 2, "each completed job carries a mark");
    }

    #[test]
    fn render_contains_users_and_total() {
        let (out, user_of) = run_two_users();
        let bill = bill_users(&out, &user_of, 290.0, 180.0);
        let text = bill.render(10);
        assert!(text.contains("total:"));
        assert!(text.contains("180/MWh"));
        assert_eq!(text.lines().count(), 4); // header + 2 users + total
    }
}
